//! # vqmc — scalable variational quantum Monte Carlo in Rust
//!
//! A from-scratch Rust reproduction of *“Overcoming barriers to
//! scalability in variational quantum Monte Carlo”* (Zhao, De, Chen,
//! Stokes, Veerapaneni — SC 2021): VQMC with **exact autoregressive
//! sampling** (MADE networks) versus the classical **RBM + MCMC**
//! pipeline, including the distributed (multi-device) sampling
//! parallelisation the paper scales to 10 000-dimensional problems.
//!
//! This crate is a facade: it re-exports the workspace's sub-crates
//! under stable module names so applications depend on one crate.
//!
//! ## Quickstart
//!
//! ```
//! use vqmc::prelude::*;
//!
//! // A 6-spin disordered transverse-field Ising model.
//! let h = TransverseFieldIsing::random(6, 42);
//!
//! // MADE wavefunction + exact autoregressive sampling + Adam.
//! let wf = Made::new(6, made_hidden_size(6), 1);
//! let mut trainer = Trainer::new(
//!     wf,
//!     AutoSampler::new(),
//!     TrainerConfig {
//!         iterations: 100,
//!         batch_size: 256,
//!         ..TrainerConfig::paper_default(7)
//!     },
//! );
//! let trace = trainer.run(&h);
//!
//! // The variational energy upper-bounds the true ground energy.
//! let exact = ground_state(&h, 200, 1e-10);
//! assert!(trace.final_energy() >= exact.energy - 0.5);
//! ```
//!
//! ## Module map
//!
//! | module | contents |
//! |---|---|
//! | [`tensor`] | dense rayon-parallel kernels, [`tensor::SpinBatch`] |
//! | [`autodiff`] | reverse-mode tape (gradient verification oracle) |
//! | [`hamiltonian`] | TIM, Max-Cut/QUBO, local energies, exact Lanczos |
//! | [`nn`] | MADE and RBM neural quantum states |
//! | [`sampler`] | exact AUTO sampling and Metropolis–Hastings MCMC |
//! | [`optim`] | SGD, Adam, stochastic reconfiguration + CG |
//! | [`cluster`] | virtual multi-GPU cluster (threads + cost model) |
//! | [`baselines`] | random cut, Goemans–Williamson, Burer–Monteiro |
//! | [`core`] | the VQMC trainer, estimators, distributed trainer |
//! | [`serve`] | dynamic-batching TCP inference server + client |
//! | [`dist`] | real-socket rank mesh: multi-process TCP collectives |

#![warn(missing_docs)]

pub use vqmc_autodiff as autodiff;
pub use vqmc_baselines as baselines;
pub use vqmc_cluster as cluster;
pub use vqmc_core as core;
pub use vqmc_dist as dist;
pub use vqmc_hamiltonian as hamiltonian;
pub use vqmc_nn as nn;
pub use vqmc_optim as optim;
pub use vqmc_sampler as sampler;
pub use vqmc_serve as serve;
pub use vqmc_tensor as tensor;

/// The most common imports in one line.
pub mod prelude {
    pub use crate::baselines::{brute_force, goemans_williamson, random_cut, BurerMonteiro};
    pub use crate::cluster::{Cluster, DeviceSpec, Topology};
    pub use crate::core::{
        hitting_time, Collective, CollectiveError, DistributedConfig, DistributedTrainer,
        EnergyStats, HittingConfig, OptimizerChoice, ShardedTrainer, Trainer, TrainerConfig,
        TrainingTrace,
    };
    pub use crate::dist::{Mesh, MeshConfig};
    pub use crate::hamiltonian::{
        ground_state, Graph, MaxCut, Qubo, SparseRowHamiltonian, TransverseFieldIsing,
    };
    pub use crate::nn::{
        made_hidden_size, rbm_hidden_size, Autoregressive, BatchedSampling, Made, Nade, Rbm,
        WaveFunction,
    };
    pub use crate::optim::{Adam, Optimizer, Sgd, SrConfig};
    pub use crate::sampler::{
        AutoSampler, BatchSampler, BurnIn, GibbsConfig, GibbsSampler, IncrementalAutoSampler,
        McmcConfig, McmcSampler, NadeNativeSampler, RbmFastMcmc, SampleRequest, Sampler,
        TemperingConfig, TemperingSampler, Thinning,
    };
    pub use crate::tensor::{Matrix, SpinBatch, Vector};
}
