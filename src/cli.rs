//! Subcommand implementations for `vqmc-cli`.

use std::collections::BTreeMap;

use vqmc::baselines::{brute_force, goemans_williamson, local_search_1opt, random_cut};
use vqmc::core::observables::fidelity;
use vqmc::nn::checkpoint::{load_any, AnyModel, Checkpoint};
use vqmc::prelude::*;
use vqmc::serve::{BatcherConfig, ServeConfig, Server};

/// Top-level usage text.
pub const USAGE: &str = "\
vqmc-cli — variational quantum Monte Carlo (SC'21 reproduction)

USAGE:
  vqmc-cli <command> [--flag value]...

COMMANDS:
  train      train a wavefunction on a problem instance
             --problem tim|maxcut|sk   (default tim)
             --n <spins>               (default 16)
             --model made|nade|rbm     (default made)
             --sampler auto|mcmc|gibbs (default: auto for made/nade, mcmc for rbm)
             --optimizer adam|sgd|sr   (default adam)
             --iters <N>               (default 300)
             --hidden <N[,N...]>       hidden widths, comma-separated for a
                                       deep stack, e.g. 256,128 (default:
                                       size heuristic; made only for >1)
             --batch <N>               (default 512)
             --seed <N>                (default 0)
             --instance-seed <N>       (default 2021)
             --checkpoint <path>       save the trained model
             --save-model <path>       alias for --checkpoint
             --save-precision f64|f32  checkpoint parameter storage width
                                       (default f64; f32 halves the file)
             --load-model <path>       warm-start from a saved checkpoint
             --exact true              compare against Lanczos (n <= 16)
             --ranks <N>               single-box multi-process run: spawn N
                                       OS processes over loopback TCP; the
                                       trace is bit-identical to --ranks 1
                                       at any N (made+auto only)
             --dist-timeout-ms <N>     per-collective deadline (default 30000)
             --connect-timeout-ms <N>  mesh-formation deadline (default 10000)
             --rank k --world N --peers a:p,b:p,...
                                       run as ONE rank of an existing mesh
                                       (what --ranks passes to its children;
                                       usable directly across machines)
  evaluate   load a checkpoint and report energy statistics
             --checkpoint <path> --problem ... --n ... [--batch N]
  sample     draw configurations from a checkpointed model
             --checkpoint <path> [--count N]
  serve      dynamic-batching TCP inference server over a checkpoint
             --checkpoint <path>       model to serve (required)
             --addr <host:port>        (default 127.0.0.1:0 = ephemeral)
             --port <N>                shorthand for --addr 127.0.0.1:N
             --max-batch <N>           coalesce ceiling (default 64)
             --max-wait-us <N>         batch fill window (default 200)
             --queue-cap <N>           admission bound (default 1024)
             --workers <N>             engine replicas (default:
                                       VQMC_THREADS if set, else 1)
             --timeout-ms <N>          per-request deadline (default 2000)
             --runtime epoll|threads   connection runtime (default epoll:
                                       nonblocking event loops; threads =
                                       one blocking thread per connection)
             --event-loops <N>         epoll event-loop threads (default 1)
             --shed-threshold <F>      queue fraction where LocalEnergy
                                       shedding starts (default 0.75)
             --precision f64|f32       default execution precision for
                                       untagged requests (default: the
                                       checkpoint's storage precision)
             --problem tim|sk|maxcut|none  LocalEnergy hamiltonian
                                       (default tim; n from the model)
             --instance-seed <N>       (default 2021)
  baselines  classical Max-Cut solvers on one instance
             --n <vertices> [--instance-seed N] [--seed N]
  scaling    mini weak-scaling report on the virtual cluster
             [--n N] [--mbs N] [--iters N]
  help       show this text";

type Flags = BTreeMap<String, String>;

fn get<'a>(flags: &'a Flags, key: &str, default: &'a str) -> &'a str {
    flags.get(key).map(String::as_str).unwrap_or(default)
}

fn get_usize(flags: &Flags, key: &str, default: usize) -> Result<usize, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} wants an integer, got {v:?}")),
    }
}

fn get_u64(flags: &Flags, key: &str, default: u64) -> Result<u64, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("--{key} wants an integer, got {v:?}")),
    }
}

/// `--hidden 256,128` → `Some(vec![256, 128])`; absent → `None` (size
/// heuristic).  Every width must be a positive integer.
fn get_hidden_list(flags: &Flags) -> Result<Option<Vec<usize>>, String> {
    match flags.get("hidden") {
        None => Ok(None),
        Some(v) => {
            let widths: Result<Vec<usize>, _> =
                v.split(',').map(|t| t.trim().parse::<usize>()).collect();
            let widths = widths.map_err(|_| {
                format!("--hidden wants a comma-separated list of integers, got {v:?}")
            })?;
            if widths.is_empty() || widths.contains(&0) {
                return Err(format!("--hidden widths must be positive, got {v:?}"));
            }
            Ok(Some(widths))
        }
    }
}

/// Single-hidden-layer models accept exactly one `--hidden` width.
fn single_hidden(
    hidden: &Option<Vec<usize>>,
    model: &str,
    fallback: usize,
) -> Result<usize, String> {
    match hidden {
        None => Ok(fallback),
        Some(ws) if ws.len() == 1 => Ok(ws[0]),
        Some(ws) => Err(format!(
            "--model {model} supports one hidden layer, got {} widths \
             (deep stacks are made-only)",
            ws.len()
        )),
    }
}

/// The problem instances the CLI can build.
enum Problem {
    Tim(TransverseFieldIsing),
    MaxCut(MaxCut),
}

impl Problem {
    fn build(flags: &Flags) -> Result<(Self, usize), String> {
        let n = get_usize(flags, "n", 16)?;
        let instance_seed = get_u64(flags, "instance-seed", 2021)?;
        let problem = match get(flags, "problem", "tim") {
            "tim" => Problem::Tim(TransverseFieldIsing::random(n, instance_seed)),
            "sk" => Problem::Tim(TransverseFieldIsing::sherrington_kirkpatrick(
                n,
                0.7,
                instance_seed,
            )),
            "maxcut" => Problem::MaxCut(MaxCut::random(n, instance_seed)),
            other => return Err(format!("unknown problem {other:?} (tim|maxcut|sk)")),
        };
        Ok((problem, n))
    }

    fn hamiltonian(&self) -> &dyn SparseRowHamiltonian {
        match self {
            Problem::Tim(h) => h,
            Problem::MaxCut(h) => h,
        }
    }
}

fn optimizer_choice(flags: &Flags) -> Result<OptimizerChoice, String> {
    Ok(match get(flags, "optimizer", "adam") {
        "adam" => OptimizerChoice::paper_default(),
        "sgd" => OptimizerChoice::Sgd { lr: 0.1 },
        "sr" => OptimizerChoice::paper_sr(),
        other => return Err(format!("unknown optimizer {other:?} (adam|sgd|sr)")),
    })
}

fn trainer_config(flags: &Flags) -> Result<TrainerConfig, String> {
    Ok(TrainerConfig {
        iterations: get_usize(flags, "iters", 300)?,
        batch_size: get_usize(flags, "batch", 512)?,
        optimizer: optimizer_choice(flags)?,
        ..TrainerConfig::paper_default(get_u64(flags, "seed", 0)?)
    })
}

fn report_trace(trace: &TrainingTrace) {
    let stride = (trace.records.len() / 10).max(1);
    for (it, rec) in trace.records.iter().enumerate() {
        if it % stride == 0 || it + 1 == trace.records.len() {
            println!(
                "iter {it:>5}: energy {:>12.4}  std {:>9.4}",
                rec.energy, rec.std_dev
            );
        }
    }
    println!(
        "done: final energy {:.6}, best {:.6}, {:.2}s",
        trace.final_energy(),
        trace.best_energy(),
        trace.total_secs
    );
}

fn maybe_exact(flags: &Flags, h: &dyn SparseRowHamiltonian, final_energy: f64) {
    if get(flags, "exact", "false") == "true" {
        let n = h.num_spins();
        if n > 16 {
            eprintln!("(skipping --exact: n = {n} > 16)");
            return;
        }
        let gs = ground_state(h, 400, 1e-12);
        println!(
            "exact λ_min = {:.6}, relative gap = {:.3e}",
            gs.energy,
            (final_energy - gs.energy).abs() / gs.energy.abs()
        );
    }
}

/// Builds the initial wavefunction for `train`: fresh, or warm-started
/// from `--load-model` (spin count must match the problem).
fn init_model<M: Checkpoint + WaveFunction>(
    flags: &Flags,
    n: usize,
    fresh: impl FnOnce() -> M,
) -> Result<M, String> {
    match flags.get("load-model") {
        None => Ok(fresh()),
        Some(path) => {
            let m = M::load(path).map_err(|e| format!("--load-model {path}: {e}"))?;
            if m.num_spins() != n {
                return Err(format!(
                    "--load-model {path} has {} spins but the problem has {n} \
                     (its kind must also match --model)",
                    m.num_spins()
                ));
            }
            println!("warm-starting from {path}");
            Ok(m)
        }
    }
}

/// `vqmc-cli train`.
pub fn train(flags: &Flags) -> Result<(), String> {
    // Multi-process arms: `--rank` means we ARE one rank of a mesh;
    // `--ranks N` (N > 1) means spawn the mesh on this box.
    if flags.contains_key("rank") {
        return train_worker(flags);
    }
    let ranks = get_usize(flags, "ranks", 1)?;
    if ranks > 1 {
        return train_launch(flags, ranks);
    }
    let (problem, n) = Problem::build(flags)?;
    let h = problem.hamiltonian();
    let config = trainer_config(flags)?;
    let model = get(flags, "model", "made");
    let model_seed = get_u64(flags, "seed", 0)?.wrapping_add(1);
    let hidden = get_hidden_list(flags)?;
    let default_sampler = if model == "rbm" { "mcmc" } else { "auto" };
    let sampler_name = get(flags, "sampler", default_sampler);
    println!(
        "training {model} (+{sampler_name}) on {} with {} for {} iterations, batch {}",
        get(flags, "problem", "tim"),
        config.optimizer.label(),
        config.iterations,
        config.batch_size
    );

    let save_precision = match flags.get("save-precision") {
        None => vqmc::tensor::Precision::F64,
        Some(s) => vqmc::tensor::Precision::parse(s)
            .ok_or_else(|| format!("--save-precision wants f64|f32, got {s:?}"))?,
    };

    // Dispatch over (model, sampler). Each arm owns its concrete types;
    // each returns the run's final energy plus a deferred save closure.
    type SaveFn = Box<dyn FnOnce(&str) -> Result<(), String>>;
    let (final_energy, save): (f64, SaveFn) =
        match (model, sampler_name) {
            ("made", "auto") => {
                let hs = hidden.clone().unwrap_or_else(|| vec![made_hidden_size(n)]);
                let wf = init_model(flags, n, || Made::with_hidden(n, &hs, model_seed))?;
                let mut t = Trainer::new(wf, IncrementalAutoSampler::new(), config);
                let trace = t.run(h);
                report_trace(&trace);
                let wf = t.into_wavefunction();
                (
                    trace.final_energy(),
                    Box::new(move |p: &str| {
                        wf.save_with_precision(p, save_precision).map_err(|e| e.to_string())
                    }),
                )
            }
            ("made", "mcmc") => {
                let hs = hidden.clone().unwrap_or_else(|| vec![made_hidden_size(n)]);
                let wf = init_model(flags, n, || Made::with_hidden(n, &hs, model_seed))?;
                let mut t = Trainer::new(wf, McmcSampler::default(), config);
                let trace = t.run(h);
                report_trace(&trace);
                let wf = t.into_wavefunction();
                (
                    trace.final_energy(),
                    Box::new(move |p: &str| {
                        wf.save_with_precision(p, save_precision).map_err(|e| e.to_string())
                    }),
                )
            }
            ("nade", "auto") => {
                let h1 = single_hidden(&hidden, "nade", made_hidden_size(n))?;
                let wf = init_model(flags, n, || Nade::new(n, h1, model_seed))?;
                let mut t = Trainer::new(wf, NadeNativeSampler::new(), config);
                let trace = t.run(h);
                report_trace(&trace);
                let wf = t.into_wavefunction();
                (
                    trace.final_energy(),
                    Box::new(move |p: &str| {
                        wf.save_with_precision(p, save_precision).map_err(|e| e.to_string())
                    }),
                )
            }
            ("rbm", "mcmc") => {
                let h1 = single_hidden(&hidden, "rbm", rbm_hidden_size(n))?;
                let wf = init_model(flags, n, || Rbm::new(n, h1, model_seed))?;
                let mut t = Trainer::new(wf, RbmFastMcmc(McmcSampler::default()), config);
                let trace = t.run(h);
                report_trace(&trace);
                let wf = t.into_wavefunction();
                (
                    trace.final_energy(),
                    Box::new(move |p: &str| {
                        wf.save_with_precision(p, save_precision).map_err(|e| e.to_string())
                    }),
                )
            }
            ("rbm", "gibbs") => {
                let h1 = single_hidden(&hidden, "rbm", rbm_hidden_size(n))?;
                let wf = init_model(flags, n, || Rbm::new(n, h1, model_seed))?;
                let mut t = Trainer::new(wf, GibbsSampler::default(), config);
                let trace = t.run(h);
                report_trace(&trace);
                let wf = t.into_wavefunction();
                (
                    trace.final_energy(),
                    Box::new(move |p: &str| {
                        wf.save_with_precision(p, save_precision).map_err(|e| e.to_string())
                    }),
                )
            }
            (m, s) => {
                return Err(format!(
                    "unsupported combination --model {m} --sampler {s} \
                     (made+auto, made+mcmc, nade+auto, rbm+mcmc, rbm+gibbs)"
                ))
            }
        };

    maybe_exact(flags, h, final_energy);
    if let Some(path) = flags.get("checkpoint").or_else(|| flags.get("save-model")) {
        save(path)?;
        println!("checkpoint written to {path}");
    }
    Ok(())
}

/// `train --ranks N`: re-executes this binary N times over reserved
/// loopback ports, forwarding every training flag plus the per-rank
/// mesh coordinates.  Rank 0's child inherits stdout (it is the
/// printing rank); the launcher returns when all ranks have exited and
/// surfaces the first failure.
fn train_launch(flags: &Flags, ranks: usize) -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let exe = exe
        .to_str()
        .ok_or("current_exe is not valid UTF-8")?
        .to_string();
    let flags = flags.clone();
    vqmc::dist::run_ranks(&exe, ranks, move |rank, peers| {
        let mut args = vec!["train".to_string()];
        for (k, v) in &flags {
            if k != "ranks" {
                args.push(format!("--{k}"));
                args.push(v.clone());
            }
        }
        args.push("--rank".into());
        args.push(rank.to_string());
        args.push("--world".into());
        args.push(ranks.to_string());
        args.push("--peers".into());
        args.push(peers.join(","));
        args
    })
    .map_err(|e| e.to_string())
}

/// One rank of a multi-process training mesh: replicated sampling,
/// sharded local-energy measurement, socket allgather — bit-identical
/// to the single-process trainer at any world size (the `vqmc-dist`
/// oracle tests assert this; `tests/dist_train.rs` asserts it through
/// this exact code path).  Only the golden made+auto arm is wired: the
/// rank-count-invariance contract is stated for it, and silently
/// accepting other arms would imply a guarantee nobody has tested.
fn train_worker(flags: &Flags) -> Result<(), String> {
    use std::time::Duration;
    use vqmc::dist::{Mesh, MeshConfig};

    let rank = get_usize(flags, "rank", 0)?;
    let world = get_usize(flags, "world", 1)?;
    let peers: Vec<String> = flags
        .get("peers")
        .ok_or("--rank needs --peers a:port,b:port,... (one per rank)")?
        .split(',')
        .map(str::to_string)
        .collect();
    if peers.len() != world {
        return Err(format!(
            "--world {world} but --peers lists {} addresses",
            peers.len()
        ));
    }
    let model = get(flags, "model", "made");
    let sampler_name = get(flags, "sampler", "auto");
    if (model, sampler_name) != ("made", "auto") {
        return Err(format!(
            "multi-process training supports --model made --sampler auto \
             (got {model}+{sampler_name})"
        ));
    }
    let (problem, n) = Problem::build(flags)?;
    let h = problem.hamiltonian();
    let config = trainer_config(flags)?;
    let model_seed = get_u64(flags, "seed", 0)?.wrapping_add(1);
    let hidden =
        get_hidden_list(flags)?.unwrap_or_else(|| vec![made_hidden_size(n)]);
    let save_precision = match flags.get("save-precision") {
        None => vqmc::tensor::Precision::F64,
        Some(s) => vqmc::tensor::Precision::parse(s)
            .ok_or_else(|| format!("--save-precision wants f64|f32, got {s:?}"))?,
    };
    // Quiet warm-start (every rank loads the identical file; only rank 0
    // narrates).
    let wf = match flags.get("load-model") {
        None => Made::with_hidden(n, &hidden, model_seed),
        Some(path) => {
            let m = Made::load(path).map_err(|e| format!("--load-model {path}: {e}"))?;
            if m.num_spins() != n {
                return Err(format!(
                    "--load-model {path} has {} spins but the problem has {n}",
                    m.num_spins()
                ));
            }
            if rank == 0 {
                println!("warm-starting from {path}");
            }
            m
        }
    };

    let mut mesh_cfg = MeshConfig::new(rank, peers);
    mesh_cfg.connect_timeout =
        Duration::from_millis(get_u64(flags, "connect-timeout-ms", 10_000)?);
    mesh_cfg.collective_timeout =
        Duration::from_millis(get_u64(flags, "dist-timeout-ms", 30_000)?);
    let mut mesh = Mesh::connect(mesh_cfg).map_err(|e| format!("rank {rank}: {e}"))?;

    if rank == 0 {
        println!(
            "training made (+auto) on {} with {} for {} iterations, batch {} \
             across {world} ranks",
            get(flags, "problem", "tim"),
            config.optimizer.label(),
            config.iterations,
            config.batch_size
        );
    }
    let mut t = ShardedTrainer::new(wf, IncrementalAutoSampler::new(), config);
    let trace = t.run(h, &mut mesh).map_err(|e| format!("rank {rank}: {e}"))?;
    mesh.shutdown();

    if rank == 0 {
        report_trace(&trace);
        maybe_exact(flags, h, trace.final_energy());
        if let Some(path) = flags.get("checkpoint").or_else(|| flags.get("save-model")) {
            t.into_wavefunction()
                .save_with_precision(path, save_precision)
                .map_err(|e| e.to_string())?;
            println!("checkpoint written to {path}");
        }
    }
    Ok(())
}

/// Draws `count` configurations from a loaded checkpoint through the
/// unified batched sampling layer — the one sampling call `evaluate`
/// and `sample` share, regardless of the model's architecture.
fn sample_checkpoint(model: &AnyModel, count: usize, seed: u64) -> vqmc::sampler::SampleOutput {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    BatchSampler::new().sample_stream(model.as_batched_sampling(), count, &mut rng)
}

/// `vqmc-cli evaluate`.
pub fn evaluate(flags: &Flags) -> Result<(), String> {
    let path = flags
        .get("checkpoint")
        .ok_or("evaluate needs --checkpoint <path>")?;
    let (problem, _) = Problem::build(flags)?;
    let h = problem.hamiltonian();
    let batch_size = get_usize(flags, "batch", 1024)?;

    // The file header's kind tag disambiguates the model type.
    let (model, _) = load_any(path).map_err(|e| format!("{path}: {e}"))?;
    if model.num_spins() != h.num_spins() {
        return Err(format!(
            "checkpoint has {} spins but the problem has {}",
            model.num_spins(),
            h.num_spins()
        ));
    }
    // Evaluate through the unified batched sampling layer: exact AUTO
    // for checkpointed MADE/NADE (normalised), MCMC fallback for RBM —
    // the dispatch lives in the sampler, not here.
    let out = sample_checkpoint(&model, batch_size, get_u64(flags, "seed", 0)?);
    let wf = model.as_wavefunction();
    let mut eval = |b: &SpinBatch| wf.log_psi(b);
    let local = vqmc::hamiltonian::local_energies(
        h,
        &out.batch,
        &out.log_psi,
        &mut eval,
        Default::default(),
    );
    let stats = EnergyStats::from_local_energies(&local);
    println!(
        "energy = {:.6} ± {:.6} (batch {batch_size}), best sample {:.6}",
        stats.mean,
        stats.std_dev / (batch_size as f64).sqrt(),
        stats.min
    );
    if h.num_spins() <= 14 && get(flags, "exact", "false") == "true" {
        let gs = ground_state(h, 400, 1e-12);
        println!(
            "exact λ_min = {:.6}; fidelity = {:.4}",
            gs.energy,
            fidelity(wf, &gs.vector)
        );
    }
    Ok(())
}

/// `vqmc-cli sample`.
pub fn sample(flags: &Flags) -> Result<(), String> {
    let path = flags
        .get("checkpoint")
        .ok_or("sample needs --checkpoint <path>")?;
    let count = get_usize(flags, "count", 16)?;
    let (model, _) = load_any(path).map_err(|e| format!("{path}: {e}"))?;
    let out = sample_checkpoint(&model, count, get_u64(flags, "seed", 0)?);
    let (batch, log_psi) = (out.batch, out.log_psi);
    for s in 0..batch.batch_size() {
        let bits: String = batch
            .sample(s)
            .iter()
            .map(|&b| if b == 1 { '1' } else { '0' })
            .collect();
        println!("{bits}  logψ = {:.4}", log_psi[s]);
    }
    Ok(())
}

/// `vqmc-cli serve` — load a checkpoint and serve it over TCP with
/// dynamic request batching until a client sends `Shutdown` (or the
/// process is killed).
pub fn serve(flags: &Flags) -> Result<(), String> {
    use std::sync::Arc;
    use std::time::Duration;

    let path = flags
        .get("checkpoint")
        .ok_or("serve needs --checkpoint <path>")?;
    let (model, ckpt_precision) = load_any(path).map_err(|e| format!("{path}: {e}"))?;
    let n = model.num_spins();

    // Execution precision: defaults to the checkpoint's own storage
    // precision, overridable with --precision.
    let precision = match flags.get("precision") {
        None => ckpt_precision,
        Some(s) => vqmc::tensor::Precision::parse(s)
            .ok_or_else(|| format!("--precision wants f64|f32, got {s:?}"))?,
    };

    // The hamiltonian (for LocalEnergy requests) is built over the
    // model's own spin count — there is no --n here by design.
    let instance_seed = get_u64(flags, "instance-seed", 2021)?;
    let hamiltonian: Option<Arc<dyn SparseRowHamiltonian>> = match get(flags, "problem", "tim") {
        "none" => None,
        "tim" => Some(Arc::new(TransverseFieldIsing::random(n, instance_seed))),
        "sk" => Some(Arc::new(TransverseFieldIsing::sherrington_kirkpatrick(
            n,
            0.7,
            instance_seed,
        ))),
        "maxcut" => Some(Arc::new(MaxCut::random(n, instance_seed))),
        other => return Err(format!("unknown problem {other:?} (tim|sk|maxcut|none)")),
    };

    let addr = match (flags.get("addr"), flags.get("port")) {
        (Some(_), Some(_)) => return Err("give --addr or --port, not both".into()),
        (Some(a), None) => a.clone(),
        (None, Some(p)) => format!("127.0.0.1:{p}"),
        (None, None) => "127.0.0.1:0".to_string(),
    };
    // Engine replicas follow the kernel thread-pool convention: an
    // explicit flag wins, then VQMC_THREADS, then 1.
    let default_workers = std::env::var("VQMC_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&w| w >= 1)
        .unwrap_or(1);
    let runtime = match get(flags, "runtime", "epoll") {
        "epoll" => vqmc::serve::Runtime::Epoll,
        "threads" | "threaded" => vqmc::serve::Runtime::Threaded,
        other => return Err(format!("unknown runtime {other:?} (epoll|threads)")),
    };
    let shed_threshold = match flags.get("shed-threshold") {
        None => 0.75,
        Some(s) => s
            .parse::<f64>()
            .ok()
            .filter(|t| (0.0..=1.0).contains(t))
            .ok_or_else(|| format!("--shed-threshold wants a fraction in [0, 1], got {s:?}"))?,
    };
    let config = ServeConfig {
        addr,
        batcher: BatcherConfig {
            max_batch: get_usize(flags, "max-batch", 64)?,
            max_wait: Duration::from_micros(get_u64(flags, "max-wait-us", 200)?),
            queue_cap: get_usize(flags, "queue-cap", 1024)?,
        },
        workers: get_usize(flags, "workers", default_workers)?,
        request_timeout: Duration::from_millis(get_u64(flags, "timeout-ms", 2000)?),
        base_seed: get_u64(flags, "seed", 0)?,
        precision,
        runtime,
        event_loops: get_usize(flags, "event-loops", 1)?,
        shed_threshold,
        ..ServeConfig::default()
    };
    let max_batch = config.batcher.max_batch;
    let workers = config.workers;

    let server = Server::start(model, hamiltonian, config).map_err(|e| e.to_string())?;
    println!(
        "serving {} ({} spins, max_batch {max_batch}, {workers} worker(s), {} runtime, precision {}) — listening on {}",
        path,
        n,
        match runtime {
            vqmc::serve::Runtime::Epoll => "epoll",
            vqmc::serve::Runtime::Threaded => "threaded",
        },
        precision.as_str(),
        server.local_addr()
    );
    use std::io::Write;
    std::io::stdout().flush().ok();
    server.join();
    println!("server drained and stopped");
    Ok(())
}

/// `vqmc-cli baselines`.
pub fn baselines(flags: &Flags) -> Result<(), String> {
    let n = get_usize(flags, "n", 30)?;
    let instance_seed = get_u64(flags, "instance-seed", 2021)?;
    let seed = get_u64(flags, "seed", 0)?;
    let mc = MaxCut::random(n, instance_seed);
    let graph = mc.graph();
    println!("Max-Cut instance: n = {n}, |E| = {}", graph.num_edges());
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (_, rc) = random_cut(graph, 1, &mut rng);
    println!("random cut            : {rc}");
    let gw = goemans_williamson(graph, 100, &mut rng);
    println!(
        "Goemans-Williamson    : {} (SDP bound {:.2})",
        gw.cut, gw.sdp_value
    );
    let bm = BurerMonteiro::default().solve(graph, &mut rng);
    let (mut x, _) = vqmc::baselines::hyperplane_round(graph, &bm.v, 100, &mut rng);
    let bm_cut = local_search_1opt(graph, &mut x);
    println!("Burer-Monteiro + 1opt : {bm_cut}");
    if n <= 22 {
        let (_, opt) = brute_force(graph);
        println!("exact optimum         : {opt}");
    }
    Ok(())
}

/// `vqmc-cli scaling`.
pub fn scaling(flags: &Flags) -> Result<(), String> {
    let n = get_usize(flags, "n", 128)?;
    let mbs = get_usize(flags, "mbs", 16)?;
    let iters = get_usize(flags, "iters", 10)?;
    let hidden = made_hidden_size(n);
    let h = TransverseFieldIsing::random(n, 2021);
    println!("weak scaling: TIM n = {n}, mbs = {mbs}, {iters} iterations\n");
    println!("config    L   modelled s/iter   energy");
    for topo in Topology::paper_configurations() {
        let label = topo.label();
        let l = topo.num_devices();
        let cluster = Cluster::new(topo, DeviceSpec::v100());
        let wf = Made::new(n, hidden, 1);
        let config = DistributedConfig {
            iterations: iters,
            minibatch_per_device: mbs,
            optimizer: OptimizerChoice::paper_default(),
            local_energy: Default::default(),
            seed: 9,
            cost_hidden: hidden,
            cost_offdiag: n,
        };
        let mut t = DistributedTrainer::new(cluster, wf, IncrementalAutoSampler::new(), config);
        let trace = t.run(&h);
        println!(
            "{label:>6} {l:>4}   {:>15.4}   {:>10.4}",
            t.elapsed_modelled() / iters as f64,
            trace.final_energy()
        );
    }
    Ok(())
}
