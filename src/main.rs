//! `vqmc-cli` — command-line front end to the vqmc library.
//!
//! ```text
//! vqmc-cli train     --problem tim --n 20 --model made --sampler auto ...
//! vqmc-cli evaluate  --checkpoint model.ckpt --problem tim --n 20 ...
//! vqmc-cli sample    --checkpoint model.ckpt --count 16
//! vqmc-cli serve     --checkpoint model.ckpt --port 4710 --max-batch 64
//! vqmc-cli baselines --n 30 --seed 7
//! vqmc-cli scaling   --n 128 --mbs 16
//! vqmc-cli help
//! ```
//!
//! Argument parsing is hand-rolled (no CLI dependency): flags are
//! `--key value` pairs validated against each subcommand's schema, with
//! actionable error messages.

use std::collections::BTreeMap;
use std::process::ExitCode;

mod cli;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprintln!("{}", cli::USAGE);
        return ExitCode::FAILURE;
    };
    let rest: Vec<String> = args.collect();
    let flags = match parse_flags(&rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "train" => cli::train(&flags),
        "evaluate" => cli::evaluate(&flags),
        "sample" => cli::sample(&flags),
        "serve" => cli::serve(&flags),
        "baselines" => cli::baselines(&flags),
        "scaling" => cli::scaling(&flags),
        "help" | "--help" | "-h" => {
            println!("{}", cli::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parses `--key value` pairs; rejects dangling flags and positionals.
fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut map = BTreeMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = &args[i];
        let Some(name) = key.strip_prefix("--") else {
            return Err(format!("expected a --flag, found {key:?}"));
        };
        let Some(value) = args.get(i + 1) else {
            return Err(format!("flag --{name} is missing its value"));
        };
        if map.insert(name.to_string(), value.clone()).is_some() {
            return Err(format!("flag --{name} given twice"));
        }
        i += 2;
    }
    Ok(map)
}
