//! The batched local-energy engine (paper Eq. 3).
//!
//! For a sample `x` the local energy is
//!
//! ```text
//! l(x) = (Hψ)(x) / ψ(x) = H_xx + Σ_i H_{x,yᵢ} · ψ(yᵢ)/ψ(x),   yᵢ = flip_i(x)
//! ```
//!
//! The wavefunction ratios are evaluated in *log space*
//! (`ψ(y)/ψ(x) = exp(logψ(y) − logψ(x))`), which is the standard VQMC
//! trick to avoid under/overflow of raw amplitudes.
//!
//! Cost profile: the diagonal is one vectorised pass; the off-diagonal
//! terms need `logψ` at every flip-neighbour of every sample — up to
//! `bs · n` extra configurations.  Those are gathered into large
//! *neighbour batches* and pushed through the wavefunction in chunks, so
//! the network sees a small, fixed number of big forward passes exactly
//! as the paper describes ("a fixed number of forward passes for
//! physical quantity measurements"), with the chunk size capping peak
//! memory.

use vqmc_tensor::{par, SpinBatch, Vector, Workspace};

use crate::SparseRowHamiltonian;

/// Tuning for the local-energy engine.
#[derive(Clone, Copy, Debug)]
pub struct LocalEnergyConfig {
    /// Maximum number of neighbour configurations evaluated per forward
    /// pass.  Bounds peak memory at `chunk_rows × n` spin bytes plus the
    /// wavefunction's activation footprint.
    pub chunk_rows: usize,
}

impl Default for LocalEnergyConfig {
    fn default() -> Self {
        LocalEnergyConfig { chunk_rows: 16_384 }
    }
}

/// Reusable scratch state for [`local_energies_into`].
///
/// Owns every intermediate the engine needs — the off-diagonal work-item
/// list, the neighbour batch, the neighbour `logψ` buffer, and a scratch
/// pool for the diagonal kernel — so that repeated calls with stable
/// shapes perform no heap allocation.
#[derive(Debug, Default)]
pub struct LocalEnergyScratch {
    /// Scratch pool for the batched diagonal.
    ws: Workspace,
    /// Off-diagonal work items `(sample index, flip index, H_xy)`.
    items: Vec<(usize, usize, f64)>,
    /// Neighbour configurations of the current chunk.
    neigh: SpinBatch,
    /// `logψ` of the current neighbour chunk.
    log_psi_y: Vector,
    /// Wavefunction ratios `ψ(y)/ψ(x)` of the current chunk (filled with
    /// the log-ratios, exponentiated in one vectorised pass).
    ratios: Vec<f64>,
}

impl LocalEnergyScratch {
    /// Fresh scratch (buffers grow on first use).
    pub fn new() -> Self {
        LocalEnergyScratch::default()
    }
}

/// Computes the local energies of every sample in `batch`.
///
/// * `log_psi_x` — `logψ` of the batch itself (the caller already has it
///   from the sampling step; recomputation would waste a forward pass).
/// * `log_psi` — evaluator for arbitrary configuration batches.
///
/// Returns the vector `l(x)` per sample.
pub fn local_energies(
    h: &dyn SparseRowHamiltonian,
    batch: &SpinBatch,
    log_psi_x: &Vector,
    log_psi: &mut dyn FnMut(&SpinBatch) -> Vector,
    cfg: LocalEnergyConfig,
) -> Vector {
    let mut scratch = LocalEnergyScratch::new();
    let mut out = Vector::default();
    local_energies_into(
        h,
        batch,
        log_psi_x,
        &mut |b, dst: &mut Vector| dst.copy_from(&log_psi(b)),
        cfg,
        &mut scratch,
        &mut out,
    );
    out
}

/// [`local_energies`] into a caller-owned vector with reusable scratch —
/// the steady-state training path performs no heap allocation here.
///
/// `log_psi` writes the neighbour-batch `logψ` into a caller-owned
/// vector so the wavefunction's workspace variants plug in directly.
pub fn local_energies_into(
    h: &dyn SparseRowHamiltonian,
    batch: &SpinBatch,
    log_psi_x: &Vector,
    log_psi: &mut dyn FnMut(&SpinBatch, &mut Vector),
    cfg: LocalEnergyConfig,
    scratch: &mut LocalEnergyScratch,
    out: &mut Vector,
) {
    let bs = batch.batch_size();
    let n = batch.num_spins();
    assert_eq!(log_psi_x.len(), bs, "local_energies: logψ(x) length mismatch");
    assert_eq!(h.num_spins(), n, "local_energies: spin-count mismatch");
    assert!(cfg.chunk_rows > 0, "local_energies: zero chunk size");

    // Diagonal part, vectorised.
    h.diagonal_batch_into(batch, &mut scratch.ws, out);

    // Gather neighbour work items: (sample index, flip index, H_xy).
    scratch.items.clear();
    for s in 0..bs {
        let items = &mut scratch.items;
        h.for_each_offdiag(batch.sample(s), &mut |i, v| {
            items.push((s, i, v));
        });
    }
    if scratch.items.is_empty() {
        return; // purely diagonal Hamiltonian (Max-Cut / QUBO)
    }

    // Evaluate neighbours in chunks: one big forward pass per chunk.
    //
    // The neighbour build and the log-ratio fill are striped over the
    // pool (each worker owns a contiguous row range of the chunk — a
    // static partition, so results are bit-identical at any thread
    // count); the final scatter-accumulate stays sequential because
    // many rows can target the same sample `s` and the accumulation
    // order must not depend on the partition.
    for chunk in scratch.items.chunks(cfg.chunk_rows) {
        let rows = chunk.len();
        scratch.neigh.resize(rows, n);
        let parts = if par::should_parallelize(rows * n) {
            par::active_threads().min(rows.max(1))
        } else {
            1
        };
        {
            let pneigh = par::SendPtr(scratch.neigh.as_bytes_mut().as_mut_ptr());
            par::run(parts, &|w| {
                let r = par::stripe(rows, parts, w);
                for row in r {
                    // SAFETY: row ranges are disjoint across workers and
                    // every row lies inside the `rows × n` byte buffer
                    // resized above; the region joins before the borrow
                    // of `neigh` ends.
                    let dst = unsafe {
                        std::slice::from_raw_parts_mut(pneigh.get().add(row * n), n)
                    };
                    let (s, flip, _) = chunk[row];
                    dst.copy_from_slice(batch.sample(s));
                    dst[flip] ^= 1;
                }
            });
        }
        log_psi(&scratch.neigh, &mut scratch.log_psi_y);
        debug_assert_eq!(scratch.log_psi_y.len(), rows);
        // Ratios in one vectorised exp over the chunk: fill with the
        // log-ratios, exponentiate through the dispatched kernel, then
        // scatter-accumulate weighted by the matrix elements.
        scratch.ratios.resize(rows, 0.0);
        {
            let log_psi_y = &scratch.log_psi_y;
            let pratios = par::SendPtr(scratch.ratios.as_mut_ptr());
            par::run(parts, &|w| {
                let r = par::stripe(rows, parts, w);
                for row in r {
                    let (s, _, _) = chunk[row];
                    // SAFETY: disjoint per-row writes, same partition as
                    // above.
                    unsafe {
                        *pratios.get().add(row) = log_psi_y[row] - log_psi_x[s];
                    }
                }
            });
        }
        vqmc_tensor::ops::exp_slice(&mut scratch.ratios);
        for (row, &(s, _, hxy)) in chunk.iter().enumerate() {
            out[s] += hxy * scratch.ratios[row];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxcut::MaxCut;
    use crate::tim::TransverseFieldIsing;
    use crate::{DenseHamiltonian, SparseRowHamiltonian};
    use vqmc_tensor::batch::{encode_config, enumerate_configs};

    /// An explicit positive wavefunction over the full basis, for exact
    /// cross-checks: ψ(x) given by a fixed formula.
    fn log_psi_formula(config: &[u8]) -> f64 {
        // Arbitrary smooth positive amplitude.
        let idx = encode_config(config) as f64;
        0.3 * (idx * 0.17).sin() - 0.05 * idx.sqrt()
    }

    fn eval_log_psi(batch: &SpinBatch) -> Vector {
        Vector::from_fn(batch.batch_size(), |s| log_psi_formula(batch.sample(s)))
    }

    /// Local energy from the dense materialisation:
    /// `l(x) = Σ_y H_xy ψ(y) / ψ(x)`.
    fn dense_local_energy(dense: &DenseHamiltonian, n: usize, x: &[u8]) -> f64 {
        let xi = encode_config(x);
        let all = enumerate_configs(n);
        let mut acc = 0.0;
        for (y, config) in all.samples().enumerate() {
            let hxy = dense.matrix().get(xi, y);
            if hxy != 0.0 {
                acc += hxy * (log_psi_formula(config) - log_psi_formula(x)).exp();
            }
        }
        acc
    }

    #[test]
    fn tim_local_energy_matches_dense_definition() {
        let n = 5;
        let h = TransverseFieldIsing::random(n, 91);
        let dense = DenseHamiltonian::from_sparse(&h);
        let batch = enumerate_configs(n);
        let log_psi_x = eval_log_psi(&batch);
        let local = local_energies(
            &h,
            &batch,
            &log_psi_x,
            &mut eval_log_psi,
            LocalEnergyConfig::default(),
        );
        for (s, config) in batch.samples().enumerate() {
            let expected = dense_local_energy(&dense, n, config);
            assert!(
                (local[s] - expected).abs() < 1e-9,
                "sample {s}: {} vs {expected}",
                local[s]
            );
        }
    }

    #[test]
    fn diagonal_hamiltonian_local_energy_is_diagonal() {
        let mc = MaxCut::random(6, 12);
        let batch = enumerate_configs(6);
        let log_psi_x = eval_log_psi(&batch);
        let local = local_energies(
            &mc,
            &batch,
            &log_psi_x,
            &mut |_b: &SpinBatch| panic!("diagonal model must not evaluate neighbours"),
            LocalEnergyConfig::default(),
        );
        for (s, config) in batch.samples().enumerate() {
            assert_eq!(local[s], mc.diagonal(config));
        }
    }

    #[test]
    fn chunking_is_transparent() {
        let n = 4;
        let h = TransverseFieldIsing::random(n, 7);
        let batch = enumerate_configs(n);
        let log_psi_x = eval_log_psi(&batch);
        let big = local_energies(
            &h,
            &batch,
            &log_psi_x,
            &mut eval_log_psi,
            LocalEnergyConfig { chunk_rows: 1_000_000 },
        );
        let tiny = local_energies(
            &h,
            &batch,
            &log_psi_x,
            &mut eval_log_psi,
            LocalEnergyConfig { chunk_rows: 3 },
        );
        for s in 0..batch.batch_size() {
            assert!((big[s] - tiny[s]).abs() < 1e-12);
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_allocating() {
        let n = 5;
        let h = TransverseFieldIsing::random(n, 17);
        let mut scratch = LocalEnergyScratch::new();
        let mut out = Vector::default();
        // Reuse one scratch across differently sized batches; every call
        // must agree bit-for-bit with the allocating path.
        for bs in [1usize, 7, 32, 4] {
            let batch = SpinBatch::from_fn(bs, n, |s, i| ((s * 31 + i * 7) % 3 == 0) as u8);
            let log_psi_x = eval_log_psi(&batch);
            local_energies_into(
                &h,
                &batch,
                &log_psi_x,
                &mut |b, dst: &mut Vector| dst.copy_from(&eval_log_psi(b)),
                LocalEnergyConfig { chunk_rows: 6 },
                &mut scratch,
                &mut out,
            );
            let alloc = local_energies(
                &h,
                &batch,
                &log_psi_x,
                &mut eval_log_psi,
                LocalEnergyConfig { chunk_rows: 6 },
            );
            assert_eq!(out.as_slice(), alloc.as_slice(), "bs={bs}");
        }
    }

    #[test]
    fn exact_eigenvector_gives_constant_local_energy() {
        // At an exact eigenvector, l(x) = λ for every x (zero-variance
        // principle, Eq. 4).
        let n = 4;
        let h = TransverseFieldIsing::random(n, 3);
        let gs = crate::exact::ground_state(&h, 100, 1e-13);
        let batch = enumerate_configs(n);
        let logpsi = |b: &SpinBatch| {
            Vector::from_fn(b.batch_size(), |s| {
                let idx = encode_config(b.sample(s));
                gs.vector[idx].max(1e-300).ln()
            })
        };
        let mut eval = logpsi;
        let log_psi_x = eval(&batch);
        let local = local_energies(&h, &batch, &log_psi_x, &mut eval, LocalEnergyConfig::default());
        for s in 0..batch.batch_size() {
            // Components with non-negligible amplitude must sit at λ_min.
            if gs.vector[s] > 1e-4 {
                assert!(
                    (local[s] - gs.energy).abs() < 1e-4,
                    "x={s}: l={} λ={}",
                    local[s],
                    gs.energy
                );
            }
        }
    }
}
