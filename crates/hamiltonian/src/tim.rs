//! The disordered transverse-field Ising model (TIM) of the paper's
//! Eq. 11/13:
//!
//! ```text
//! H = − Σᵢ (αᵢ Xᵢ + βᵢ Zᵢ) − Σ_{i<j} βᵢⱼ Zᵢ Zⱼ
//! ```
//!
//! with disorder `αᵢ ~ U(0,1)`, `βᵢ ~ U(−1,1)`, `βᵢⱼ ~ U(−1,1)` drawn
//! once per instance seed and then fixed (§5.1).  In the computational
//! basis, `Z` is diagonal with `σᵢ = 1 − 2xᵢ`, and each `Xᵢ` contributes
//! a single-spin-flip off-diagonal of weight `−αᵢ ≤ 0` — satisfying the
//! Perron–Frobenius non-positivity requirement, so the ground state can
//! be taken entrywise non-negative and `ψ = √π` is lossless.

use std::sync::Arc;

use rand::distributions::{Distribution, Uniform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vqmc_tensor::{SpinBatch, Vector};

use crate::couplings::Couplings;
use crate::SparseRowHamiltonian;

/// Standard normal via Box–Muller (keeps `rand_distr` out of the
/// dependency set).
pub(crate) fn gaussian(rng: &mut StdRng) -> f64 {
    use rand::Rng;
    loop {
        let u1: f64 = rng.gen();
        let u2: f64 = rng.gen();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// Disordered transverse-field Ising Hamiltonian (paper Eq. 11/13).
///
/// Cloning is cheap: the (possibly large) coupling matrix is behind an
/// `Arc`, which is how the virtual cluster shares one instance across
/// device replicas.
#[derive(Clone, Serialize, Deserialize)]
pub struct TransverseFieldIsing {
    /// Transverse fields `αᵢ ≥ 0` (the X-term weights).
    alpha: Vector,
    /// Longitudinal fields `βᵢ` (the Z-term weights).
    beta: Vector,
    /// Pairwise couplings `βᵢⱼ`.
    couplings: Arc<Couplings>,
}

impl TransverseFieldIsing {
    /// Builds a TIM from explicit disorder.  All `αᵢ` must be
    /// non-negative (Perron–Frobenius condition, paper §2.4).
    pub fn new(alpha: Vector, beta: Vector, couplings: Couplings) -> Self {
        let n = alpha.len();
        assert_eq!(beta.len(), n, "TIM: beta length mismatch");
        assert_eq!(couplings.len(), n, "TIM: couplings size mismatch");
        assert!(
            alpha.iter().all(|&a| a >= 0.0),
            "TIM: transverse fields must be non-negative"
        );
        TransverseFieldIsing {
            alpha,
            beta,
            couplings: Arc::new(couplings),
        }
    }

    /// The paper's §5.1 random instance: `αᵢ ~ U(0,1)`, `βᵢ ~ U(−1,1)`,
    /// dense `βᵢⱼ ~ U(−1,1)`, all drawn from `seed` and then fixed.
    pub fn random(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let unit = Uniform::new(0.0f64, 1.0);
        let sym = Uniform::new(-1.0f64, 1.0);
        let alpha = Vector::from_fn(n, |_| unit.sample(&mut rng));
        let beta = Vector::from_fn(n, |_| sym.sample(&mut rng));
        let couplings = Couplings::dense_from_upper(n, |_, _| sym.sample(&mut rng));
        TransverseFieldIsing::new(alpha, beta, couplings)
    }

    /// Random instance with *sparse* couplings of mean degree `degree`
    /// (diluted disorder).  Used for very large `n` where the dense
    /// `n×n` coupling matrix would not fit; documented as a substitution
    /// in DESIGN.md — the sampling-scalability experiments are agnostic
    /// to coupling density, which only affects the measurement kernel.
    pub fn random_sparse(n: usize, degree: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let unit = Uniform::new(0.0f64, 1.0);
        let sym = Uniform::new(-1.0f64, 1.0);
        let alpha = Vector::from_fn(n, |_| unit.sample(&mut rng));
        let beta = Vector::from_fn(n, |_| sym.sample(&mut rng));
        // Each vertex proposes `degree/2` partners; symmetrised storage
        // gives mean degree ≈ `degree`.
        let vert = Uniform::new(0usize, n);
        let mut edges = Vec::with_capacity(n * degree / 2);
        let mut seen = std::collections::HashSet::new();
        for i in 0..n {
            for _ in 0..degree.div_ceil(2) {
                let j = vert.sample(&mut rng);
                if i != j {
                    let key = (i.min(j), i.max(j));
                    if seen.insert(key) {
                        edges.push((key.0, key.1, sym.sample(&mut rng)));
                    }
                }
            }
        }
        let couplings = Couplings::sparse_from_edges(n, &edges);
        TransverseFieldIsing::new(alpha, beta, couplings)
    }

    /// The quantum Sherrington–Kirkpatrick model: Gaussian all-pairs
    /// couplings `βᵢⱼ ~ N(0, 1/n)` (the `1/√n` normalisation keeps the
    /// energy extensive), no longitudinal field, and a uniform
    /// transverse field `αᵢ = gamma` — the canonical mean-field spin
    /// glass, a natural stress workload beyond the paper's uniform
    /// disorder.
    pub fn sherrington_kirkpatrick(n: usize, gamma: f64, seed: u64) -> Self {
        assert!(gamma >= 0.0, "SK: transverse field must be non-negative");
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = 1.0 / (n as f64).sqrt();
        let alpha = Vector::full(n, gamma);
        let beta = Vector::zeros(n);
        let couplings =
            Couplings::dense_from_upper(n, |_, _| gaussian(&mut rng) * scale);
        TransverseFieldIsing::new(alpha, beta, couplings)
    }

    /// Transverse fields `αᵢ`.
    pub fn alpha(&self) -> &Vector {
        &self.alpha
    }

    /// Longitudinal fields `βᵢ`.
    pub fn beta(&self) -> &Vector {
        &self.beta
    }

    /// Pairwise couplings.
    pub fn couplings(&self) -> &Couplings {
        &self.couplings
    }
}

impl SparseRowHamiltonian for TransverseFieldIsing {
    fn num_spins(&self) -> usize {
        self.alpha.len()
    }

    fn diagonal(&self, x: &[u8]) -> f64 {
        debug_assert_eq!(x.len(), self.num_spins());
        let sigma: Vec<f64> = x.iter().map(|&b| 1.0 - 2.0 * b as f64).collect();
        let field_term: f64 = self
            .beta
            .iter()
            .zip(&sigma)
            .map(|(&b, &s)| b * s)
            .sum();
        -field_term - self.couplings.pair_energy(&sigma)
    }

    fn for_each_offdiag(&self, _x: &[u8], visit: &mut dyn FnMut(usize, f64)) {
        for (i, &a) in self.alpha.iter().enumerate() {
            if a != 0.0 {
                visit(i, -a);
            }
        }
    }

    fn sparsity(&self) -> usize {
        self.num_spins() + 1
    }

    fn diagonal_batch_into(
        &self,
        batch: &SpinBatch,
        ws: &mut vqmc_tensor::Workspace,
        out: &mut Vector,
    ) {
        // Vectorised: −Σ βᵢσᵢ via one matvec-style pass, pair term via
        // the coupling backend's batched kernel (GEMM when dense).
        let bs = batch.batch_size();
        let mut sigma = vqmc_tensor::Matrix::from_vec(0, 0, ws.take(0));
        batch.to_ising_matrix_into(&mut sigma);
        self.couplings.pair_energy_batch_into(batch, ws, out);
        for s in 0..bs {
            let field: f64 = vqmc_tensor::vector::dot(sigma.row(s), &self.beta);
            out[s] = -field - out[s];
        }
        ws.give(sigma.into_vec());
    }
}

impl std::fmt::Debug for TransverseFieldIsing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TransverseFieldIsing(n={}, couplings={:?})",
            self.num_spins(),
            self.couplings
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqmc_tensor::batch::enumerate_configs;

    #[test]
    fn random_instance_is_deterministic() {
        let a = TransverseFieldIsing::random(8, 42);
        let b = TransverseFieldIsing::random(8, 42);
        assert_eq!(a.alpha().as_slice(), b.alpha().as_slice());
        assert_eq!(a.beta().as_slice(), b.beta().as_slice());
        let c = TransverseFieldIsing::random(8, 43);
        assert_ne!(a.alpha().as_slice(), c.alpha().as_slice());
    }

    #[test]
    fn disorder_ranges() {
        let h = TransverseFieldIsing::random(64, 7);
        assert!(h.alpha().iter().all(|&a| (0.0..1.0).contains(&a)));
        assert!(h.beta().iter().all(|&b| (-1.0..1.0).contains(&b)));
    }

    #[test]
    fn diagonal_hand_check_two_spins() {
        // H = -α0 X0 - α1 X1 - β0 Z0 - β1 Z1 - β01 Z0 Z1.
        let h = TransverseFieldIsing::new(
            Vector(vec![0.3, 0.7]),
            Vector(vec![0.5, -0.2]),
            Couplings::dense_from_upper(2, |_, _| 0.4),
        );
        // x = [0,0] -> σ = [+1,+1]: diag = -(0.5 - 0.2) - 0.4 = -0.7
        assert!((h.diagonal(&[0, 0]) - (-0.7)).abs() < 1e-12);
        // x = [1,0] -> σ = [-1,+1]: diag = -(-0.5 - 0.2) - (-0.4) = 1.1
        assert!((h.diagonal(&[1, 0]) - 1.1).abs() < 1e-12);
    }

    #[test]
    fn offdiag_lists_all_flips_with_alpha_weights() {
        let h = TransverseFieldIsing::new(
            Vector(vec![0.3, 0.0, 0.9]),
            Vector::zeros(3),
            Couplings::dense_from_upper(3, |_, _| 0.0),
        );
        let mut seen = Vec::new();
        h.for_each_offdiag(&[0, 1, 0], &mut |i, v| seen.push((i, v)));
        // α₁ = 0 is skipped.
        assert_eq!(seen, vec![(0, -0.3), (2, -0.9)]);
    }

    #[test]
    fn diagonal_batch_matches_scalar() {
        let h = TransverseFieldIsing::random(6, 11);
        let batch = enumerate_configs(6);
        let d = h.diagonal_batch(&batch);
        for (s, config) in batch.samples().enumerate() {
            assert!(
                (d[s] - h.diagonal(config)).abs() < 1e-10,
                "config {s}: {} vs {}",
                d[s],
                h.diagonal(config)
            );
        }
    }

    #[test]
    fn sparse_variant_valid() {
        let h = TransverseFieldIsing::random_sparse(100, 6, 3);
        assert_eq!(h.num_spins(), 100);
        let x = vec![0u8; 100];
        let d = h.diagonal(&x);
        assert!(d.is_finite());
    }

    #[test]
    fn sherrington_kirkpatrick_statistics() {
        let n = 200;
        let h = TransverseFieldIsing::sherrington_kirkpatrick(n, 0.5, 7);
        assert!(h.alpha().iter().all(|&a| a == 0.5));
        assert!(h.beta().iter().all(|&b| b == 0.0));
        // Coupling variance ≈ 1/n.
        let mut sum_sq = 0.0;
        let mut count = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                let v = h.couplings().get(i, j);
                sum_sq += v * v;
                count += 1;
            }
        }
        let var = sum_sq / count as f64;
        assert!(
            (var - 1.0 / n as f64).abs() < 0.3 / n as f64,
            "coupling variance {var} vs 1/n = {}",
            1.0 / n as f64
        );
    }

    #[test]
    fn sk_ground_energy_is_extensive() {
        // λ_min / n should be O(1) thanks to the 1/√n normalisation.
        let h = TransverseFieldIsing::sherrington_kirkpatrick(8, 0.3, 3);
        let gs = crate::exact::ground_state(&h, 200, 1e-10);
        let per_spin = gs.energy / 8.0;
        assert!((-2.0..0.0).contains(&per_spin), "e/n = {per_spin}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_alpha_rejected() {
        let _ = TransverseFieldIsing::new(
            Vector(vec![-0.1]),
            Vector::zeros(1),
            Couplings::dense_from_upper(1, |_, _| 0.0),
        );
    }
}
