//! # vqmc-hamiltonian
//!
//! Problem definitions for the VQMC workspace: sparse-row-computable
//! Hamiltonians in the sense of the paper's Definition 2.1, concrete
//! instances (the disordered transverse-field Ising model and Max-Cut /
//! QUBO), the batched local-energy engine of Eq. 3, and an exact
//! ground-state oracle (matrix-free Lanczos) used by the test-suite.
//!
//! ## The sparsity contract (Definition 2.1)
//!
//! A Hamiltonian `H ∈ ℝ^{2ⁿ×2ⁿ}` is *row-s-sparse and efficiently row
//! computable* when, for any basis state `x`, the list of non-zero
//! entries `{(y, H_xy)}` of row `x` can be produced in `O(s)` time.  The
//! [`SparseRowHamiltonian`] trait encodes exactly this: `diagonal(x)`
//! plus a visitor over off-diagonal connections.  Both concrete models
//! here have only *single-spin-flip* off-diagonals, so a connection is
//! identified by the index of the flipped spin — no `2ⁿ`-sized object is
//! ever materialised.
//!
//! ## Models
//!
//! * [`TransverseFieldIsing`] — the paper's Eq. 11/13 with
//!   `αᵢ ~ U(0,1)`, `βᵢ, βᵢⱼ ~ U(−1,1)`: n single-flip connections of
//!   weight `−αᵢ` plus a dense-coupling diagonal.
//! * [`MaxCut`] — the diagonal Hamiltonian `H_xx = −cut(x)` over a random
//!   Bernoulli graph (the paper's §5.1 generator).  Note the paper's
//!   §2.4 states `βᵢⱼ = ¼Lᵢⱼ`, which with its Eq. 11 sign convention
//!   would make the *ferromagnetic* (cut-minimising) state the ground
//!   state; the physically intended mapping is antiferromagnetic, so we
//!   use `H_xx = −cut(x)` directly (an affine relabelling; the argmin is
//!   the maximum cut, as in the paper's experiments).
//! * [`Qubo`] — general quadratic unconstrained binary optimisation,
//!   `H_xx = xᵀQx + cᵀx`, of which Max-Cut is the canonical instance.

#![warn(missing_docs)]

pub mod couplings;
pub mod dense;
pub mod exact;
pub mod local_energy;
pub mod maxcut;
pub mod tim;

use vqmc_tensor::{SpinBatch, Vector, Workspace};

pub use couplings::Couplings;
pub use dense::DenseHamiltonian;
pub use exact::{ground_state, GroundState};
pub use local_energy::{local_energies, local_energies_into, LocalEnergyConfig, LocalEnergyScratch};
pub use maxcut::{Graph, MaxCut, Qubo};
pub use tim::TransverseFieldIsing;

/// A real-symmetric matrix over the `2ⁿ` spin basis that satisfies the
/// paper's Definition 2.1 (row-sparse, efficiently row computable).
///
/// Off-diagonal structure is restricted to single-spin flips, which both
/// paper models satisfy: row `x` connects to `y = flip_i(x)` with matrix
/// element given by the visitor.
pub trait SparseRowHamiltonian: Send + Sync {
    /// Number of spins `n` (the matrix is `2ⁿ × 2ⁿ`).
    fn num_spins(&self) -> usize;

    /// Diagonal element `H_xx`.
    fn diagonal(&self, x: &[u8]) -> f64;

    /// Visits every non-zero off-diagonal element of row `x` as
    /// `(flip_index i, H_{x, flip_i(x)})`.
    fn for_each_offdiag(&self, x: &[u8], visit: &mut dyn FnMut(usize, f64));

    /// Row sparsity `s`: an upper bound on the number of non-zeros per
    /// row, including the diagonal.
    fn sparsity(&self) -> usize;

    /// Batched diagonal.  The default loops over samples; models with
    /// dense couplings override this with a GEMM formulation.
    fn diagonal_batch(&self, batch: &SpinBatch) -> Vector {
        let mut ws = Workspace::new();
        let mut out = Vector::default();
        self.diagonal_batch_into(batch, &mut ws, &mut out);
        out
    }

    /// [`SparseRowHamiltonian::diagonal_batch`] into a caller-owned
    /// vector, with scratch drawn from `ws` — allocation-free at steady
    /// state.  The default loops over samples; overrides must produce
    /// identical values.
    fn diagonal_batch_into(&self, batch: &SpinBatch, ws: &mut Workspace, out: &mut Vector) {
        let _ = ws;
        out.resize(batch.batch_size());
        for s in 0..batch.batch_size() {
            out[s] = self.diagonal(batch.sample(s));
        }
    }

    /// Number of off-diagonal connections of row `x` (default: count via
    /// the visitor).
    fn num_offdiag(&self, x: &[u8]) -> usize {
        let mut count = 0;
        self.for_each_offdiag(x, &mut |_, _| count += 1);
        count
    }

    /// Matrix element `H_xy` between two explicit configurations.
    /// Intended for tests (O(s) via the visitor).
    fn matrix_element(&self, x: &[u8], y: &[u8]) -> f64 {
        assert_eq!(x.len(), y.len());
        let diff: Vec<usize> = (0..x.len()).filter(|&i| x[i] != y[i]).collect();
        match diff.len() {
            0 => self.diagonal(x),
            1 => {
                let mut elem = 0.0;
                self.for_each_offdiag(x, &mut |i, v| {
                    if i == diff[0] {
                        elem = v;
                    }
                });
                elem
            }
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy 2-spin Hamiltonian for trait-default tests:
    /// diagonal = number of up spins, flips with weight -1.
    struct Toy;
    impl SparseRowHamiltonian for Toy {
        fn num_spins(&self) -> usize {
            2
        }
        fn diagonal(&self, x: &[u8]) -> f64 {
            x.iter().map(|&b| b as f64).sum()
        }
        fn for_each_offdiag(&self, _x: &[u8], visit: &mut dyn FnMut(usize, f64)) {
            visit(0, -1.0);
            visit(1, -1.0);
        }
        fn sparsity(&self) -> usize {
            3
        }
    }

    #[test]
    fn default_diagonal_batch_matches_scalar() {
        let h = Toy;
        let batch = vqmc_tensor::batch::enumerate_configs(2);
        let d = h.diagonal_batch(&batch);
        assert_eq!(d.as_slice(), &[0.0, 1.0, 1.0, 2.0]);
    }

    #[test]
    fn default_num_offdiag_counts() {
        let h = Toy;
        assert_eq!(h.num_offdiag(&[0, 0]), 2);
    }

    #[test]
    fn matrix_element_dispatch() {
        let h = Toy;
        assert_eq!(h.matrix_element(&[1, 0], &[1, 0]), 1.0); // diagonal
        assert_eq!(h.matrix_element(&[1, 0], &[0, 0]), -1.0); // single flip
        assert_eq!(h.matrix_element(&[1, 0], &[0, 1]), 0.0); // double flip
    }
}
