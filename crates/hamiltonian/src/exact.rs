//! Exact ground-state oracle: matrix-free Lanczos with full
//! reorthogonalisation, plus a symmetric-tridiagonal eigensolver (an
//! implicit-shift QL, after EISPACK's `tql2`).
//!
//! This is the correctness anchor of the whole workspace: every VQMC
//! convergence test compares the variational energy against
//! [`ground_state`] on instances small enough to enumerate (`n ≤ 20`
//! works; tests use `n ≤ 12`).  The Hamiltonian is never materialised —
//! `H v` is applied row by row through the [`SparseRowHamiltonian`]
//! visitor, costing `O(2ⁿ · s)` per iteration.

use rayon::prelude::*;
use vqmc_tensor::batch::{decode_config, encode_config};
use vqmc_tensor::Vector;

use crate::SparseRowHamiltonian;

/// Result of an exact ground-state solve.
#[derive(Clone, Debug)]
pub struct GroundState {
    /// Minimal eigenvalue `λ_min(H)`.
    pub energy: f64,
    /// Unit-norm ground eigenvector over the `2ⁿ` basis (sign-fixed so
    /// that the largest-magnitude component is positive).
    pub vector: Vector,
    /// Number of Lanczos iterations performed.
    pub iterations: usize,
    /// Final residual `‖Hv − λv‖`.
    pub residual: f64,
}

/// Applies `H` to an explicit state vector, matrix-free.
///
/// `out[x] = H_xx v[x] + Σ_i H_{x, flip_i(x)} v[flip_i(x)]`.
pub fn apply_hamiltonian(h: &dyn SparseRowHamiltonian, v: &Vector) -> Vector {
    let n = h.num_spins();
    let dim = 1usize << n;
    assert_eq!(v.len(), dim, "apply_hamiltonian: dimension mismatch");
    let out: Vec<f64> = (0..dim)
        .into_par_iter()
        .map(|x| {
            let config = decode_config(x, n);
            let mut acc = h.diagonal(&config) * v[x];
            let mut flipped = config.clone();
            h.for_each_offdiag(&config, &mut |i, hxy| {
                flipped[i] ^= 1;
                let y = encode_config(&flipped);
                flipped[i] ^= 1;
                acc += hxy * v[y];
            });
            acc
        })
        .collect();
    Vector(out)
}

/// Computes the minimal eigenpair of `h` by Lanczos iteration.
///
/// * `max_iter` — Krylov dimension cap (clamped to the basis dimension).
/// * `tol` — stop when the ground-eigenvalue estimate moves less than
///   this between iterations *and* the residual is below `√tol`.
///
/// Panics for `n > 20` (the state vector would exceed 8 MiB × 2²⁰⁻²⁰...;
/// 2²⁰ doubles = 8 MiB is fine, beyond that this oracle is the wrong
/// tool).
pub fn ground_state(h: &dyn SparseRowHamiltonian, max_iter: usize, tol: f64) -> GroundState {
    let n = h.num_spins();
    assert!(n <= 20, "ground_state: n = {n} too large for the exact oracle");
    let dim = 1usize << n;
    let m_cap = max_iter.min(dim);

    // Deterministic, generically non-orthogonal-to-ground start vector.
    let mut q = Vector::from_fn(dim, |x| 1.0 + ((x as f64 * 0.618_033_988_75).sin() * 0.01));
    let norm = q.norm2();
    q.scale(1.0 / norm);

    let mut basis: Vec<Vector> = vec![q.clone()];
    let mut alphas: Vec<f64> = Vec::new();
    let mut betas: Vec<f64> = Vec::new();
    let mut prev_energy = f64::INFINITY;

    for it in 0..m_cap {
        let mut w = apply_hamiltonian(h, &basis[it]);
        let alpha = w.dot(&basis[it]);
        alphas.push(alpha);
        w.axpy(-alpha, &basis[it]);
        if it > 0 {
            let beta_prev = betas[it - 1];
            w.axpy(-beta_prev, &basis[it - 1]);
        }
        // Full reorthogonalisation: cheap at these dimensions and
        // eliminates ghost eigenvalues.
        for b in &basis {
            let overlap = w.dot(b);
            w.axpy(-overlap, b);
        }
        let beta = w.norm2();

        // Solve the current tridiagonal problem for the lowest pair.
        let (evals, evecs) = tridiag_eigen(&alphas, &betas);
        let (ground_idx, &ground_energy) = evals
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite eigenvalues"))
            .expect("nonempty spectrum");

        let converged_energy = (prev_energy - ground_energy).abs() < tol;
        // Residual bound for Lanczos: |beta_m * s_m| where s_m is the
        // last component of the tridiagonal eigenvector.
        let last_component = evecs[alphas.len() - 1][ground_idx];
        let residual_bound = (beta * last_component).abs();

        if converged_energy && residual_bound < tol.sqrt() || beta < 1e-14 || it + 1 == m_cap {
            // Assemble the Ritz vector in the full basis.
            let mut v = Vector::zeros(dim);
            for (j, b) in basis.iter().enumerate() {
                v.axpy(evecs[j][ground_idx], b);
            }
            let vnorm = v.norm2();
            v.scale(1.0 / vnorm);
            // Fix the sign: largest-magnitude component positive.
            let amax = v
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).expect("finite"))
                .map(|(i, _)| i)
                .expect("nonempty");
            if v[amax] < 0.0 {
                v.scale(-1.0);
            }
            let hv = apply_hamiltonian(h, &v);
            let mut resid = hv;
            resid.axpy(-ground_energy, &v);
            return GroundState {
                energy: ground_energy,
                vector: v,
                iterations: it + 1,
                residual: resid.norm2(),
            };
        }

        prev_energy = ground_energy;
        betas.push(beta);
        w.scale(1.0 / beta);
        basis.push(w);
    }
    unreachable!("loop always returns at the iteration cap");
}

/// All eigenvalues and eigenvectors of the symmetric tridiagonal matrix
/// with diagonal `alphas` and off-diagonal `betas`
/// (`betas.len() == alphas.len() - 1` entries are used).
///
/// Returns `(eigenvalues, rows)` where `rows[i][k]` is component `i` of
/// eigenvector `k`.  Implicit-shift QL after EISPACK `tql2`.
pub fn tridiag_eigen(alphas: &[f64], betas: &[f64]) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = alphas.len();
    assert!(n > 0, "tridiag_eigen: empty matrix");
    let mut d = alphas.to_vec();
    let mut e = vec![0.0; n];
    e[..n - 1].copy_from_slice(&betas[..n - 1]);
    // z starts as identity; accumulates rotations.
    let mut z = vec![vec![0.0; n]; n];
    for (i, row) in z.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small off-diagonal to split at.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 50, "tridiag_eigen: QL failed to converge");

            // Implicit shift from the 2x2 trailing block.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(g));
            let (mut s, mut c) = (1.0f64, 1.0f64);
            let mut p = 0.0f64;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the rotation into the eigenvector matrix.
                for row in z.iter_mut() {
                    f = row[i + 1];
                    row[i + 1] = s * row[i] + c * f;
                    row[i] = c * row[i] - s * f;
                }
            }
            if r == 0.0 && m > l + 1 {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    (d, z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::couplings::Couplings;
    use crate::maxcut::MaxCut;
    use crate::tim::TransverseFieldIsing;
    use crate::DenseHamiltonian;

    #[test]
    fn tridiag_2x2_analytic() {
        // [[1, 2], [2, 1]] -> eigenvalues -1 and 3.
        let (mut evals, _) = tridiag_eigen(&[1.0, 1.0], &[2.0]);
        evals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((evals[0] + 1.0).abs() < 1e-12);
        assert!((evals[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn tridiag_eigenvectors_satisfy_definition() {
        let alphas = [2.0, -1.0, 0.5, 3.0];
        let betas = [1.0, 0.7, -0.3];
        let (evals, evecs) = tridiag_eigen(&alphas, &betas);
        // Check T v = λ v column by column.
        for k in 0..4 {
            for i in 0..4 {
                let mut tv = alphas[i] * evecs[i][k];
                if i > 0 {
                    tv += betas[i - 1] * evecs[i - 1][k];
                }
                if i < 3 {
                    tv += betas[i] * evecs[i + 1][k];
                }
                assert!(
                    (tv - evals[k] * evecs[i][k]).abs() < 1e-10,
                    "eigenpair {k}, row {i}"
                );
            }
        }
    }

    #[test]
    fn single_spin_transverse_field_analytic() {
        // H = -αX - βZ has eigenvalues ∓√(α² + β²).
        let h = TransverseFieldIsing::new(
            Vector(vec![0.8]),
            Vector(vec![0.6]),
            Couplings::dense_from_upper(1, |_, _| 0.0),
        );
        let gs = ground_state(&h, 50, 1e-12);
        assert!((gs.energy + 1.0).abs() < 1e-10, "energy {}", gs.energy);
        assert!(gs.residual < 1e-8);
    }

    #[test]
    fn maxcut_ground_energy_is_negative_max_cut() {
        let mc = MaxCut::random(8, 55);
        // Brute-force the max cut.
        let best = (0..256u32)
            .map(|bits| {
                let x: Vec<u8> = (0..8).map(|i| ((bits >> i) & 1) as u8).collect();
                mc.cut_value(&x)
            })
            .max()
            .unwrap();
        let gs = ground_state(&mc, 256, 1e-12);
        assert!(
            (gs.energy + best as f64).abs() < 1e-8,
            "λ_min {} vs -maxcut {}",
            gs.energy,
            best
        );
    }

    #[test]
    fn lanczos_matches_dense_rayleigh_bound() {
        let h = TransverseFieldIsing::random(6, 23);
        let gs = ground_state(&h, 200, 1e-12);
        let dense = DenseHamiltonian::from_sparse(&h);
        // The eigenvector must achieve its own eigenvalue as Rayleigh
        // quotient, and no vector can do better.
        let rq = dense.rayleigh_quotient(&gs.vector);
        assert!((rq - gs.energy).abs() < 1e-8, "RQ {rq} vs λ {}", gs.energy);
        // Perturbed vectors cannot go below λ_min.
        let mut perturbed = gs.vector.clone();
        perturbed[3] += 0.1;
        perturbed[17] -= 0.05;
        assert!(dense.rayleigh_quotient(&perturbed) >= gs.energy - 1e-9);
    }

    #[test]
    fn ground_vector_nonnegative_for_nonpositive_offdiagonals() {
        // Perron–Frobenius: with H_xy ≤ 0 off-diagonal the ground vector
        // can be chosen non-negative; our sign convention should yield it.
        let h = TransverseFieldIsing::random(5, 31);
        let gs = ground_state(&h, 200, 1e-12);
        assert!(
            gs.vector.iter().all(|&v| v >= -1e-8),
            "ground vector has a negative component"
        );
    }

    #[test]
    fn apply_hamiltonian_matches_dense_matvec() {
        let h = TransverseFieldIsing::random(5, 3);
        let dense = DenseHamiltonian::from_sparse(&h);
        let v = Vector::from_fn(32, |i| ((i * 7 + 3) % 13) as f64 - 6.0);
        let a = apply_hamiltonian(&h, &v);
        let b = dense.matvec(&v);
        for i in 0..32 {
            assert!((a[i] - b[i]).abs() < 1e-10, "component {i}");
        }
    }
}
