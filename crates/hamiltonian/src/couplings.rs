//! Storage strategies for the pairwise couplings `βᵢⱼ`.
//!
//! The paper's disordered TIM draws a coupling for **every** pair
//! `i < j`, i.e. a dense symmetric matrix.  At `n = 10 000` that matrix
//! is `8·n² = 800 MB` of `f64` — storable once on this machine, but not
//! per-replica.  [`Couplings`] therefore offers two backings:
//!
//! * [`Couplings::Dense`] — the literal `n×n` symmetric matrix (zero
//!   diagonal, `βᵢⱼ` mirrored into both triangles) used up to a few
//!   thousand spins and shared across device replicas behind an `Arc`.
//! * [`Couplings::SparseRows`] — a CSR-like structure for graphs /
//!   diluted disorder, used by Max-Cut (whose adjacency is ~25 % dense
//!   under the paper's generator, but stored sparsely for uniformity at
//!   large `n`).
//!
//! Both expose the two bulk kernels the energy engine needs: the
//! quadratic form `σᵀ B σ` per batch row, and the *field*
//! `f_i(σ) = Σ_j B_ij σ_j` used for O(1)-per-flip energy deltas.

use serde::{Deserialize, Serialize};
use vqmc_tensor::{Matrix, SpinBatch, Vector, Workspace};

/// Symmetric pairwise couplings with a zero diagonal.
#[derive(Clone, Serialize, Deserialize)]
pub enum Couplings {
    /// Explicit dense symmetric matrix (both triangles populated).
    Dense(Matrix),
    /// Sparse rows: `rows[i]` lists `(j, B_ij)` with `j ≠ i`; symmetric
    /// entries are stored on both rows.
    SparseRows {
        /// Per-row adjacency: `rows[i] = [(j, B_ij), ...]`.
        rows: Vec<Vec<(usize, f64)>>,
    },
}

impl Couplings {
    /// Builds a dense backing from the strict upper triangle visitor
    /// `f(i, j) -> βᵢⱼ` (called once per `i < j`).
    pub fn dense_from_upper(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                let v = f(i, j);
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        Couplings::Dense(m)
    }

    /// Builds a sparse backing from an edge list `(i, j, βᵢⱼ)` with
    /// `i ≠ j`; duplicate edges are rejected by debug assertion.
    pub fn sparse_from_edges(n: usize, edges: &[(usize, usize, f64)]) -> Self {
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        for &(i, j, v) in edges {
            assert!(i != j, "Couplings: self-loop ({i},{i})");
            assert!(i < n && j < n, "Couplings: vertex out of range");
            rows[i].push((j, v));
            rows[j].push((i, v));
        }
        for r in &mut rows {
            r.sort_unstable_by_key(|&(j, _)| j);
            debug_assert!(
                r.windows(2).all(|w| w[0].0 != w[1].0),
                "Couplings: duplicate edge"
            );
        }
        Couplings::SparseRows { rows }
    }

    /// Number of spins.
    pub fn len(&self) -> usize {
        match self {
            Couplings::Dense(m) => m.rows(),
            Couplings::SparseRows { rows } => rows.len(),
        }
    }

    /// True when there are no spins.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Single coupling `B_ij` (O(1) dense, O(log deg) sparse).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        match self {
            Couplings::Dense(m) => m.get(i, j),
            Couplings::SparseRows { rows } => rows[i]
                .binary_search_by_key(&j, |&(k, _)| k)
                .map(|idx| rows[i][idx].1)
                .unwrap_or(0.0),
        }
    }

    /// The field `f_i = Σ_j B_ij σ_j` for one Ising configuration
    /// `σ ∈ {±1}ⁿ`.
    pub fn field(&self, sigma: &[f64]) -> Vector {
        match self {
            Couplings::Dense(m) => m.matvec(&Vector(sigma.to_vec())),
            Couplings::SparseRows { rows } => Vector::from_fn(rows.len(), |i| {
                rows[i].iter().map(|&(j, v)| v * sigma[j]).sum()
            }),
        }
    }

    /// Quadratic pair energy `Σ_{i<j} B_ij σ_i σ_j = ½ σᵀ B σ` for one
    /// configuration.
    pub fn pair_energy(&self, sigma: &[f64]) -> f64 {
        match self {
            Couplings::Dense(m) => {
                let mut acc = 0.0;
                for (i, &si) in sigma.iter().enumerate() {
                    let row = m.row(i);
                    // Strict upper triangle only.
                    let mut partial = 0.0;
                    for j in (i + 1)..sigma.len() {
                        partial += row[j] * sigma[j];
                    }
                    acc += si * partial;
                }
                acc
            }
            Couplings::SparseRows { rows } => {
                let mut acc = 0.0;
                for (i, row) in rows.iter().enumerate() {
                    for &(j, v) in row {
                        if j > i {
                            acc += v * sigma[i] * sigma[j];
                        }
                    }
                }
                acc
            }
        }
    }

    /// Batched pair energies `½ diag(Σ B Σᵀ)` where `Σ` is the batch of
    /// Ising rows.  Dense backing uses one GEMM (the vectorised path the
    /// GPU would take); sparse loops rows.
    pub fn pair_energy_batch(&self, batch: &SpinBatch) -> Vector {
        let mut ws = Workspace::new();
        let mut out = Vector::default();
        self.pair_energy_batch_into(batch, &mut ws, &mut out);
        out
    }

    /// [`Couplings::pair_energy_batch`] into a caller-owned vector, with
    /// scratch drawn from `ws` — allocation-free at steady state.
    pub fn pair_energy_batch_into(&self, batch: &SpinBatch, ws: &mut Workspace, out: &mut Vector) {
        let bs = batch.batch_size();
        out.resize(bs);
        match self {
            Couplings::Dense(m) => {
                let mut sigma = Matrix::from_vec(0, 0, ws.take(0));
                let mut sb = Matrix::from_vec(0, 0, ws.take(0));
                batch.to_ising_matrix_into(&mut sigma);
                // (Σ B) has shape bs×n; rowwise dot with Σ gives σᵀBσ.
                sigma.matmul_nt_into(m, &mut sb); // B symmetric: Bᵀ = B
                for s in 0..bs {
                    out[s] = 0.5 * vqmc_tensor::vector::dot(sb.row(s), sigma.row(s));
                }
                ws.give(sb.into_vec());
                ws.give(sigma.into_vec());
            }
            Couplings::SparseRows { .. } => {
                let mut sigma = ws.take(batch.num_spins());
                for s in 0..bs {
                    for (v, &b) in sigma.iter_mut().zip(batch.sample(s)) {
                        *v = 1.0 - 2.0 * b as f64;
                    }
                    out[s] = self.pair_energy(&sigma);
                }
                ws.give(sigma);
            }
        }
    }

    /// Bytes of storage used by the backing (memory-model input).
    pub fn storage_bytes(&self) -> usize {
        match self {
            Couplings::Dense(m) => std::mem::size_of_val(m.as_slice()),
            Couplings::SparseRows { rows } => rows
                .iter()
                .map(|r| r.len() * std::mem::size_of::<(usize, f64)>())
                .sum(),
        }
    }
}

impl std::fmt::Debug for Couplings {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Couplings::Dense(m) => write!(f, "Couplings::Dense({}x{})", m.rows(), m.cols()),
            Couplings::SparseRows { rows } => {
                let nnz: usize = rows.iter().map(Vec::len).sum();
                write!(f, "Couplings::SparseRows(n={}, nnz={})", rows.len(), nnz)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both_backings() -> (Couplings, Couplings) {
        // 4-spin system: edges (0,1)=2.0, (1,2)=-1.0, (0,3)=0.5
        let edges = [(0usize, 1usize, 2.0), (1, 2, -1.0), (0, 3, 0.5)];
        let dense = Couplings::dense_from_upper(4, |i, j| {
            edges
                .iter()
                .find(|&&(a, b, _)| (a, b) == (i, j))
                .map(|&(_, _, v)| v)
                .unwrap_or(0.0)
        });
        let sparse = Couplings::sparse_from_edges(4, &edges);
        (dense, sparse)
    }

    #[test]
    fn get_is_symmetric_and_zero_diagonal() {
        for c in [both_backings().0, both_backings().1] {
            assert_eq!(c.get(0, 1), 2.0);
            assert_eq!(c.get(1, 0), 2.0);
            assert_eq!(c.get(2, 2), 0.0);
            assert_eq!(c.get(2, 3), 0.0);
        }
    }

    #[test]
    fn field_matches_manual() {
        let (dense, sparse) = both_backings();
        let sigma = [1.0, -1.0, 1.0, -1.0];
        // f_0 = 2*(-1) + 0.5*(-1) = -2.5 ; f_1 = 2*1 + (-1)*1 = 1
        for c in [dense, sparse] {
            let f = c.field(&sigma);
            assert_eq!(f[0], -2.5);
            assert_eq!(f[1], 1.0);
            assert_eq!(f[2], 1.0); // -1 * σ_1 = 1
            assert_eq!(f[3], 0.5); // 0.5 * σ_0
        }
    }

    #[test]
    fn pair_energy_consistent_across_backings() {
        let (dense, sparse) = both_backings();
        for bits in 0..16u8 {
            let sigma: Vec<f64> = (0..4)
                .map(|i| if bits >> i & 1 == 1 { -1.0 } else { 1.0 })
                .collect();
            let ed = dense.pair_energy(&sigma);
            let es = sparse.pair_energy(&sigma);
            assert!((ed - es).abs() < 1e-12, "bits={bits}: {ed} vs {es}");
        }
    }

    #[test]
    fn pair_energy_batch_matches_scalar() {
        let (dense, sparse) = both_backings();
        let batch = vqmc_tensor::batch::enumerate_configs(4);
        for c in [dense, sparse] {
            let batched = c.pair_energy_batch(&batch);
            for (s, config) in batch.samples().enumerate() {
                let sigma: Vec<f64> = config.iter().map(|&b| 1.0 - 2.0 * b as f64).collect();
                assert!(
                    (batched[s] - c.pair_energy(&sigma)).abs() < 1e-12,
                    "sample {s}"
                );
            }
        }
    }

    #[test]
    fn field_gives_flip_delta() {
        // Flipping spin i changes pair energy by -2 σ_i f_i.
        let (dense, _) = both_backings();
        let sigma = [1.0, 1.0, -1.0, 1.0];
        let e0 = dense.pair_energy(&sigma);
        let f = dense.field(&sigma);
        for i in 0..4 {
            let mut flipped = sigma;
            flipped[i] = -flipped[i];
            let e1 = dense.pair_energy(&flipped);
            assert!(
                ((e1 - e0) - (-2.0 * sigma[i] * f[i])).abs() < 1e-12,
                "flip {i}"
            );
        }
    }

    #[test]
    fn storage_bytes_positive_for_nonempty() {
        let (dense, sparse) = both_backings();
        assert_eq!(dense.storage_bytes(), 16 * 8);
        assert!(sparse.storage_bytes() > 0);
        assert!(!dense.is_empty());
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn sparse_rejects_self_loop() {
        let _ = Couplings::sparse_from_edges(3, &[(1, 1, 1.0)]);
    }
}
