//! Explicit dense materialisation of a sparse-row Hamiltonian.
//!
//! Only sensible for small spin counts (the matrix is `2ⁿ × 2ⁿ`); it is
//! the bridge between the implicit row representation and the exact
//! linear-algebra oracles used by the tests (hermiticity checks, exact
//! diagonalisation cross-validation, explicit Rayleigh quotients).

use vqmc_tensor::batch::{decode_config, encode_config};
use vqmc_tensor::{Matrix, Vector};

use crate::SparseRowHamiltonian;

/// Maximum spin count for dense materialisation (`2¹² × 2¹²` = 128 MiB).
pub const MAX_DENSE_SPINS: usize = 12;

/// A fully materialised Hamiltonian over the `2ⁿ` basis.
#[derive(Clone, Debug)]
pub struct DenseHamiltonian {
    n: usize,
    matrix: Matrix,
}

impl DenseHamiltonian {
    /// Materialises `h` row by row.  Panics for `n >` [`MAX_DENSE_SPINS`].
    pub fn from_sparse(h: &dyn SparseRowHamiltonian) -> Self {
        let n = h.num_spins();
        assert!(
            n <= MAX_DENSE_SPINS,
            "DenseHamiltonian: n = {n} exceeds the {MAX_DENSE_SPINS}-spin dense limit"
        );
        let dim = 1usize << n;
        let mut matrix = Matrix::zeros(dim, dim);
        for x in 0..dim {
            let config = decode_config(x, n);
            matrix.set(x, x, h.diagonal(&config));
            let mut flipped = config.clone();
            h.for_each_offdiag(&config, &mut |i, v| {
                flipped[i] ^= 1;
                let y = encode_config(&flipped);
                flipped[i] ^= 1;
                matrix.set(x, y, v);
            });
        }
        DenseHamiltonian { n, matrix }
    }

    /// Number of spins.
    pub fn num_spins(&self) -> usize {
        self.n
    }

    /// Basis dimension `2ⁿ`.
    pub fn dim(&self) -> usize {
        1 << self.n
    }

    /// The dense matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// `H v` over an explicit state vector.
    pub fn matvec(&self, v: &Vector) -> Vector {
        self.matrix.matvec(v)
    }

    /// Rayleigh quotient `⟨v, Hv⟩ / ⟨v, v⟩` — the population objective of
    /// the paper's Eq. 1 for an explicit trial vector.
    pub fn rayleigh_quotient(&self, v: &Vector) -> f64 {
        let hv = self.matvec(v);
        let num = v.dot(&hv);
        let den = v.dot(v);
        assert!(den > 0.0, "rayleigh_quotient: zero vector");
        num / den
    }

    /// Maximum asymmetry `max |H_xy − H_yx|` (hermiticity check).
    pub fn max_asymmetry(&self) -> f64 {
        let dim = self.dim();
        let mut worst = 0.0f64;
        for x in 0..dim {
            for y in (x + 1)..dim {
                worst = worst.max((self.matrix.get(x, y) - self.matrix.get(y, x)).abs());
            }
        }
        worst
    }

    /// True when every off-diagonal entry is `≤ 0` (the Perron–Frobenius
    /// precondition of the paper's §2.1).
    pub fn offdiagonals_nonpositive(&self) -> bool {
        let dim = self.dim();
        for x in 0..dim {
            for y in 0..dim {
                if x != y && self.matrix.get(x, y) > 0.0 {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxcut::MaxCut;
    use crate::tim::TransverseFieldIsing;

    #[test]
    fn tim_materialisation_is_symmetric_and_signed() {
        let h = TransverseFieldIsing::random(6, 17);
        let dense = DenseHamiltonian::from_sparse(&h);
        assert_eq!(dense.dim(), 64);
        assert_eq!(dense.max_asymmetry(), 0.0);
        assert!(dense.offdiagonals_nonpositive());
    }

    #[test]
    fn maxcut_materialisation_is_diagonal() {
        let h = MaxCut::random(5, 3);
        let dense = DenseHamiltonian::from_sparse(&h);
        for x in 0..dense.dim() {
            for y in 0..dense.dim() {
                if x != y {
                    assert_eq!(dense.matrix().get(x, y), 0.0);
                }
            }
        }
    }

    #[test]
    fn matrix_elements_match_trait_accessor() {
        let h = TransverseFieldIsing::random(4, 9);
        let dense = DenseHamiltonian::from_sparse(&h);
        for x in 0..16usize {
            for y in 0..16usize {
                let cx = decode_config(x, 4);
                let cy = decode_config(y, 4);
                assert!(
                    (dense.matrix().get(x, y) - h.matrix_element(&cx, &cy)).abs() < 1e-12,
                    "({x},{y})"
                );
            }
        }
    }

    #[test]
    fn rayleigh_quotient_of_basis_state_is_diagonal() {
        let h = TransverseFieldIsing::random(3, 5);
        let dense = DenseHamiltonian::from_sparse(&h);
        let mut v = Vector::zeros(8);
        v[5] = 1.0;
        let d5 = h.diagonal(&decode_config(5, 3));
        assert!((dense.rayleigh_quotient(&v) - d5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dense limit")]
    fn oversize_rejected() {
        let h = TransverseFieldIsing::random(13, 1);
        let _ = DenseHamiltonian::from_sparse(&h);
    }
}
