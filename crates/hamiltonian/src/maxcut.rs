//! Max-Cut and QUBO as diagonal Hamiltonians.
//!
//! Following the paper's §2.4, Max-Cut on a graph `G = (V, E)` is the
//! ground-state problem of a purely diagonal Ising Hamiltonian; VQMC
//! then acts as a combinatorial-optimisation heuristic (equivalent to a
//! natural evolution strategy, [Zhao et al. 2020]).  We realise the
//! mapping as `H_xx = −cut(x)`, so energy minimisation maximises the
//! cut.  (The paper's `βᵢⱼ = ¼Lᵢⱼ` with its Eq. 11 sign would point the
//! wrong way — see the crate-level docs.)
//!
//! The random instance generator mirrors §5.1: a Bernoulli(0.5) matrix
//! `B` is symmetrised as `(B + Bᵀ)/2` and *rounded half-to-even* (the
//! NumPy convention the reference implementation would have used), which
//! keeps an edge only where both `B_ij` and `B_ji` are 1 — effective
//! edge density ¼.  The paper's own Table 2 confirms this: the random-cut
//! baseline at `n = 500` scores ≈ 15 696 ≈ ¼·n(n−1)/2 / 2.

use rand::distributions::{Bernoulli, Distribution};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use vqmc_tensor::{Matrix, SpinBatch, Vector};

use crate::couplings::Couplings;
use crate::SparseRowHamiltonian;

/// An undirected simple graph stored as an edge list plus adjacency rows.
#[derive(Clone, Serialize, Deserialize)]
pub struct Graph {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Builds a graph from an edge list; edges are deduplicated and
    /// normalised to `i < j`, self-loops rejected.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut set = std::collections::BTreeSet::new();
        for (a, b) in edges {
            assert!(a != b, "Graph: self-loop at {a}");
            assert!(a < n && b < n, "Graph: vertex out of range");
            set.insert((a.min(b), a.max(b)));
        }
        Graph {
            n,
            edges: set.into_iter().collect(),
        }
    }

    /// The paper's §5.1 generator: `B_ij ~ Bernoulli(0.5)`, adjacency
    /// `A = round((B + Bᵀ)/2)` with round-half-to-even, diagonal zeroed.
    /// Equivalent to keeping edge `(i,j)` iff `B_ij = B_ji = 1`.
    pub fn random_bernoulli(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let coin = Bernoulli::new(0.5).expect("valid probability");
        // Draw the full asymmetric matrix B row-major, like the
        // reference generator, so the instance depends only on the seed.
        let mut b = vec![false; n * n];
        for cell in b.iter_mut() {
            *cell = coin.sample(&mut rng);
        }
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if b[i * n + j] && b[j * n + i] {
                    edges.push((i, j));
                }
            }
        }
        Graph { n, edges }
    }

    /// Erdős–Rényi `G(n, p)` generator (for tests and extra workloads).
    pub fn random_gnp(n: usize, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "Graph: p out of [0,1]");
        let mut rng = StdRng::seed_from_u64(seed);
        let coin = Bernoulli::new(p).expect("valid probability");
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if coin.sample(&mut rng) {
                    edges.push((i, j));
                }
            }
        }
        Graph { n, edges }
    }

    /// Complete graph `K_n`.
    pub fn complete(n: usize) -> Self {
        let mut edges = Vec::with_capacity(n * (n - 1) / 2);
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((i, j));
            }
        }
        Graph { n, edges }
    }

    /// Cycle graph `C_n`.
    pub fn cycle(n: usize) -> Self {
        assert!(n >= 3, "Graph::cycle needs n >= 3");
        Graph {
            n,
            edges: (0..n).map(|i| (i.min((i + 1) % n), i.max((i + 1) % n))).collect(),
        }
    }

    /// Random `d`-regular graph by the configuration (pairing) model
    /// with rejection of self-loops and multi-edges; `n·d` must be even.
    /// Standard Max-Cut benchmark family (e.g. the G-set graphs).
    pub fn random_regular(n: usize, d: usize, seed: u64) -> Self {
        assert!(d < n, "Graph::random_regular: degree must be < n");
        assert!((n * d).is_multiple_of(2), "Graph::random_regular: n·d must be even");
        let mut rng = StdRng::seed_from_u64(seed);
        'attempt: for _ in 0..200 {
            // Half-edge stubs, shuffled and paired.
            let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
            // Fisher-Yates.
            for i in (1..stubs.len()).rev() {
                let j = rand::Rng::gen_range(&mut rng, 0..=i);
                stubs.swap(i, j);
            }
            let mut set = std::collections::BTreeSet::new();
            for pair in stubs.chunks_exact(2) {
                let (a, b) = (pair[0].min(pair[1]), pair[0].max(pair[1]));
                if a == b || !set.insert((a, b)) {
                    continue 'attempt; // self-loop or duplicate: redraw
                }
            }
            return Graph {
                n,
                edges: set.into_iter().collect(),
            };
        }
        panic!("Graph::random_regular: no simple pairing found (d too large?)");
    }

    /// `w × h` grid graph (planar Max-Cut is polynomial; a useful sanity
    /// family because the optimum is the full edge set for even cases).
    pub fn grid(width: usize, height: usize) -> Self {
        assert!(width >= 1 && height >= 1, "Graph::grid: empty grid");
        let idx = |r: usize, c: usize| r * width + c;
        let mut edges = Vec::new();
        for r in 0..height {
            for c in 0..width {
                if c + 1 < width {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < height {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        Graph {
            n: width * height,
            edges,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge list (each edge once, `i < j`).
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Cut value of a binary partition `x ∈ {0,1}ⁿ`: the number of edges
    /// whose endpoints fall on different sides.
    pub fn cut_value(&self, x: &[u8]) -> usize {
        debug_assert_eq!(x.len(), self.n);
        self.edges
            .iter()
            .filter(|&&(a, b)| x[a] != x[b])
            .count()
    }

    /// Dense adjacency matrix (tests / baselines; O(n²) memory).
    pub fn adjacency_matrix(&self) -> Matrix {
        let mut m = Matrix::zeros(self.n, self.n);
        for &(a, b) in &self.edges {
            m.set(a, b, 1.0);
            m.set(b, a, 1.0);
        }
        m
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph(n={}, |E|={})", self.n, self.edges.len())
    }
}

/// Max-Cut as a diagonal Hamiltonian: `H_xx = −cut(x)`.
///
/// Ground energy is `−maxcut(G)`; the VQMC objective value is therefore
/// directly comparable with the classical baselines in `vqmc-baselines`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MaxCut {
    graph: Graph,
    /// Unit-weight couplings on the edges (for the batched cut kernel).
    adjacency: Couplings,
}

impl MaxCut {
    /// Wraps a graph.
    pub fn new(graph: Graph) -> Self {
        let edges: Vec<(usize, usize, f64)> = graph
            .edges()
            .iter()
            .map(|&(a, b)| (a, b, 1.0))
            .collect();
        let adjacency = Couplings::sparse_from_edges(graph.num_vertices(), &edges);
        MaxCut { graph, adjacency }
    }

    /// Random instance per the paper's generator.
    pub fn random(n: usize, seed: u64) -> Self {
        MaxCut::new(Graph::random_bernoulli(n, seed))
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Cut value of one configuration.
    pub fn cut_value(&self, x: &[u8]) -> usize {
        self.graph.cut_value(x)
    }

    /// Batched cut values via the Ising identity
    /// `cut(x) = (|E| − Σ_{i<j} L_ij σᵢσⱼ) / 2`.
    pub fn cut_values(&self, batch: &SpinBatch) -> Vector {
        let pair = self.adjacency.pair_energy_batch(batch);
        let m = self.graph.num_edges() as f64;
        Vector::from_fn(batch.batch_size(), |s| (m - pair[s]) / 2.0)
    }
}

impl SparseRowHamiltonian for MaxCut {
    fn num_spins(&self) -> usize {
        self.graph.num_vertices()
    }

    fn diagonal(&self, x: &[u8]) -> f64 {
        -(self.graph.cut_value(x) as f64)
    }

    fn for_each_offdiag(&self, _x: &[u8], _visit: &mut dyn FnMut(usize, f64)) {
        // Purely diagonal: no off-diagonal elements.
    }

    fn sparsity(&self) -> usize {
        1
    }

    fn diagonal_batch_into(
        &self,
        batch: &SpinBatch,
        ws: &mut vqmc_tensor::Workspace,
        out: &mut Vector,
    ) {
        // `H_xx = −cut(x) = −(|E| − Σ L_ij σᵢσⱼ)/2` via the batched
        // pair-energy kernel.
        self.adjacency.pair_energy_batch_into(batch, ws, out);
        let m = self.graph.num_edges() as f64;
        for s in 0..batch.batch_size() {
            out[s] = (out[s] - m) / 2.0;
        }
    }
}

/// Quadratic unconstrained binary optimisation:
/// `H_xx = Σ_{i<j} Q_ij x_i x_j + Σ_i c_i x_i` over `x ∈ {0,1}ⁿ`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Qubo {
    quadratic: Couplings,
    linear: Vector,
}

impl Qubo {
    /// Builds a QUBO from symmetric pairwise terms and a linear term.
    pub fn new(quadratic: Couplings, linear: Vector) -> Self {
        assert_eq!(quadratic.len(), linear.len(), "Qubo: size mismatch");
        Qubo { quadratic, linear }
    }

    /// The Max-Cut objective as a QUBO: maximising
    /// `Σ_(i,j)∈E (x_i + x_j − 2 x_i x_j)` equals maximising the cut, so
    /// the *minimisation* form has `Q_ij = +2` on edges and
    /// `c_i = −deg(i)`.
    pub fn from_maxcut(graph: &Graph) -> Self {
        let n = graph.num_vertices();
        let mut degree = vec![0.0f64; n];
        let edges: Vec<(usize, usize, f64)> = graph
            .edges()
            .iter()
            .map(|&(a, b)| {
                degree[a] += 1.0;
                degree[b] += 1.0;
                (a, b, 2.0)
            })
            .collect();
        Qubo {
            quadratic: Couplings::sparse_from_edges(n, &edges),
            linear: Vector(degree.into_iter().map(|d| -d).collect()),
        }
    }

    /// Objective value for one configuration.
    pub fn value(&self, x: &[u8]) -> f64 {
        let mut acc = 0.0;
        for (&xi, &li) in x.iter().zip(self.linear.iter()) {
            if xi == 1 {
                acc += li;
            }
        }
        // Σ_{i<j} Q_ij x_i x_j — only pairs with both bits set count.
        // Reuse the Ising pair kernel: x_i x_j = (1+σ_i)(1+σ_j)/4 would
        // be indirect; just iterate the sparse rows via `get` through
        // pair_energy of a ±1 encoding is wrong here, so do it directly.
        match &self.quadratic {
            Couplings::SparseRows { rows } => {
                for (i, row) in rows.iter().enumerate() {
                    if x[i] == 1 {
                        for &(j, q) in row {
                            if j > i && x[j] == 1 {
                                acc += q;
                            }
                        }
                    }
                }
            }
            Couplings::Dense(m) => {
                for (i, &xi) in x.iter().enumerate() {
                    if xi == 1 {
                        for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                            if xj == 1 {
                                acc += m.get(i, j);
                            }
                        }
                    }
                }
            }
        }
        acc
    }
}

impl SparseRowHamiltonian for Qubo {
    fn num_spins(&self) -> usize {
        self.linear.len()
    }

    fn diagonal(&self, x: &[u8]) -> f64 {
        self.value(x)
    }

    fn for_each_offdiag(&self, _x: &[u8], _visit: &mut dyn FnMut(usize, f64)) {}

    fn sparsity(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqmc_tensor::batch::enumerate_configs;

    #[test]
    fn bernoulli_generator_deterministic_and_quarter_dense() {
        let g1 = Graph::random_bernoulli(100, 5);
        let g2 = Graph::random_bernoulli(100, 5);
        assert_eq!(g1.edges(), g2.edges());
        // Edge density should be near 1/4 of all pairs.
        let pairs = 100 * 99 / 2;
        let density = g1.num_edges() as f64 / pairs as f64;
        assert!(
            (0.18..0.32).contains(&density),
            "density {density} not ≈ 0.25"
        );
    }

    #[test]
    fn cut_value_hand_check() {
        // Triangle: any 2-1 split cuts 2 edges.
        let g = Graph::complete(3);
        assert_eq!(g.cut_value(&[0, 0, 0]), 0);
        assert_eq!(g.cut_value(&[1, 0, 0]), 2);
        assert_eq!(g.cut_value(&[1, 1, 0]), 2);
    }

    #[test]
    fn cycle_even_has_perfect_cut() {
        let g = Graph::cycle(6);
        let alternating = [0u8, 1, 0, 1, 0, 1];
        assert_eq!(g.cut_value(&alternating), 6);
    }

    #[test]
    fn batched_cuts_match_scalar() {
        let mc = MaxCut::random(8, 13);
        let batch = enumerate_configs(8);
        let cuts = mc.cut_values(&batch);
        for (s, config) in batch.samples().enumerate() {
            assert!(
                (cuts[s] - mc.cut_value(config) as f64).abs() < 1e-9,
                "config {s}"
            );
        }
    }

    #[test]
    fn hamiltonian_is_negative_cut() {
        let mc = MaxCut::random(10, 21);
        let x = [0, 1, 0, 0, 1, 1, 0, 1, 0, 1];
        assert_eq!(mc.diagonal(&x), -(mc.cut_value(&x) as f64));
        let mut visits = 0;
        mc.for_each_offdiag(&x, &mut |_, _| visits += 1);
        assert_eq!(visits, 0, "Max-Cut must be diagonal");
    }

    #[test]
    fn diagonal_batch_override_consistent() {
        let mc = MaxCut::random(7, 3);
        let batch = enumerate_configs(7);
        let d = mc.diagonal_batch(&batch);
        for (s, config) in batch.samples().enumerate() {
            assert!((d[s] - mc.diagonal(config)).abs() < 1e-9);
        }
    }

    #[test]
    fn complement_partition_has_equal_cut() {
        let g = Graph::random_bernoulli(20, 9);
        let x: Vec<u8> = (0..20).map(|i| (i % 3 == 0) as u8).collect();
        let xc: Vec<u8> = x.iter().map(|&b| 1 - b).collect();
        assert_eq!(g.cut_value(&x), g.cut_value(&xc));
    }

    #[test]
    fn qubo_from_maxcut_equals_negative_cut() {
        let g = Graph::random_bernoulli(9, 77);
        let q = Qubo::from_maxcut(&g);
        let batch = enumerate_configs(9);
        for config in batch.samples() {
            // Q(x) = −cut(x): Σ (x_i + x_j − 2 x_i x_j) over edges is the
            // cut, and from_maxcut negates it for minimisation.
            assert!(
                (q.value(config) + g.cut_value(config) as f64).abs() < 1e-9,
                "mismatch on {config:?}"
            );
        }
    }

    #[test]
    fn random_regular_has_uniform_degree() {
        let g = Graph::random_regular(24, 3, 5);
        let mut deg = vec![0usize; 24];
        for &(a, b) in g.edges() {
            deg[a] += 1;
            deg[b] += 1;
        }
        assert!(deg.iter().all(|&d| d == 3), "degrees {deg:?}");
        assert_eq!(g.num_edges(), 24 * 3 / 2);
        // Deterministic per seed.
        assert_eq!(g.edges(), Graph::random_regular(24, 3, 5).edges());
    }

    #[test]
    fn grid_is_bipartite_fully_cuttable() {
        let g = Graph::grid(4, 3);
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 3 * 3 + 4 * 2); // 9 horizontal + 8 vertical
        // Checkerboard partition cuts every edge.
        let x: Vec<u8> = (0..12).map(|v| (((v / 4) + (v % 4)) % 2) as u8).collect();
        assert_eq!(g.cut_value(&x), g.num_edges());
    }

    #[test]
    #[should_panic(expected = "even")]
    fn random_regular_rejects_odd_stub_count() {
        let _ = Graph::random_regular(5, 3, 1);
    }

    #[test]
    fn graph_from_edges_dedupes_and_orders() {
        let g = Graph::from_edges(4, [(2, 1), (1, 2), (0, 3)]);
        assert_eq!(g.edges(), &[(0, 3), (1, 2)]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let _ = Graph::from_edges(3, [(1, 1)]);
    }
}
