//! # vqmc-optim
//!
//! The optimisers of the paper's §5.1 training setup:
//!
//! * [`Sgd`] — plain stochastic gradient descent (paper lr 0.1);
//! * [`Adam`] — Adam with PyTorch-default moments (paper lr 0.01, the
//!   default optimiser of all the paper's tables);
//! * [`sr`] — **stochastic reconfiguration** (Sorella 1998), the quantum
//!   natural gradient: precondition the energy gradient by the inverse
//!   of the regularised quantum Fisher matrix
//!   `S = E[O Oᵀ] − E[O]E[O]ᵀ` built from the per-sample log-derivative
//!   rows `O(x) = ∇θ logψθ(x)`.  `S` is never materialised: the solve
//!   `(S + λI)δ = g` runs matrix-free through [`cg`] conjugate
//!   gradients, with each matvec costing two passes over the `bs × d`
//!   row matrix.
//!
//! All optimisers operate on flat parameter vectors (the
//! `WaveFunction::params` layout), keeping them model-agnostic.

#![warn(missing_docs)]

pub mod adam;
pub mod cg;
pub mod sgd;
pub mod sr;

use vqmc_tensor::Vector;

pub use adam::Adam;
pub use cg::{conjugate_gradient, conjugate_gradient_into, CgResult, CgScratch, CgStats};
pub use sgd::Sgd;
pub use sr::{SrConfig, SrScratch, SrSolution, StochasticReconfiguration};

/// A first-order optimiser over a flat parameter vector.
///
/// `step` receives the *gradient of the loss* and mutates the parameters
/// in the descent direction (i.e. it subtracts).
pub trait Optimizer: Send {
    /// Applies one update `θ ← θ − update(g)`.
    fn step(&mut self, params: &mut Vector, grad: &Vector);

    /// Clears any accumulated state (moments, step counters).
    fn reset(&mut self);

    /// Human-readable name for logs and result tables.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Any optimiser must monotonically reduce a well-conditioned
    /// quadratic when stepped with its exact gradient.
    fn quadratic_descends(opt: &mut dyn Optimizer) {
        let mut theta = Vector(vec![3.0, -2.0, 1.5, 0.7]);
        let target = Vector(vec![1.0, 1.0, -1.0, 0.0]);
        let loss = |p: &Vector| -> f64 {
            p.iter()
                .zip(target.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum()
        };
        let mut prev = loss(&theta);
        for _ in 0..200 {
            let grad = Vector(
                theta
                    .iter()
                    .zip(target.iter())
                    .map(|(a, b)| 2.0 * (a - b))
                    .collect(),
            );
            opt.step(&mut theta, &grad);
        }
        let after = loss(&theta);
        assert!(after < prev * 0.01, "loss {prev} -> {after}");
        prev = after;
        let _ = prev;
    }

    #[test]
    fn sgd_descends_quadratic() {
        quadratic_descends(&mut Sgd::new(0.1));
    }

    #[test]
    fn adam_descends_quadratic() {
        quadratic_descends(&mut Adam::new(0.05));
    }
}
