//! Matrix-free conjugate-gradient solver for symmetric positive-definite
//! systems — the linear-algebra engine behind stochastic
//! reconfiguration's `(S + λI)δ = g` solve.

use vqmc_tensor::Vector;

/// Outcome of a CG solve.
#[derive(Clone, Debug)]
pub struct CgResult {
    /// The solution estimate.
    pub x: Vector,
    /// Iterations executed.
    pub iterations: usize,
    /// Final residual norm `‖b − Ax‖`.
    pub residual: f64,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
}

/// Solver diagnostics without the solution vector (which
/// [`conjugate_gradient_into`] writes into the caller's buffer).
#[derive(Clone, Copy, Debug)]
pub struct CgStats {
    /// Iterations executed.
    pub iterations: usize,
    /// Final residual norm `‖b − Ax‖`.
    pub residual: f64,
    /// Whether the tolerance was reached before the iteration cap.
    pub converged: bool,
}

/// Reusable scratch vectors for [`conjugate_gradient_into`]: the
/// residual, search direction, and matvec product.
#[derive(Clone, Debug, Default)]
pub struct CgScratch {
    r: Vector,
    p: Vector,
    ap: Vector,
}

impl CgScratch {
    /// Fresh scratch (buffers grow on first use).
    pub fn new() -> Self {
        CgScratch::default()
    }
}

/// Solves `A x = b` for SPD `A` given only the matvec `apply`.
///
/// * `tol` — relative residual target `‖r‖ ≤ tol·‖b‖`.
/// * `max_iter` — iteration cap (CG converges in at most `dim` exact
///   steps; SR uses far fewer).
pub fn conjugate_gradient(
    apply: &mut dyn FnMut(&Vector) -> Vector,
    b: &Vector,
    tol: f64,
    max_iter: usize,
) -> CgResult {
    let mut x = Vector::default();
    let mut scratch = CgScratch::new();
    let stats = conjugate_gradient_into(
        &mut |v, out: &mut Vector| out.copy_from(&apply(v)),
        b,
        tol,
        max_iter,
        &mut x,
        &mut scratch,
    );
    CgResult {
        x,
        iterations: stats.iterations,
        residual: stats.residual,
        converged: stats.converged,
    }
}

/// [`conjugate_gradient`] with caller-owned solution and scratch —
/// allocation-free once the buffers are warm.  `apply` writes `A v` into
/// its output argument.
pub fn conjugate_gradient_into(
    apply: &mut dyn FnMut(&Vector, &mut Vector),
    b: &Vector,
    tol: f64,
    max_iter: usize,
    x: &mut Vector,
    scratch: &mut CgScratch,
) -> CgStats {
    let n = b.len();
    x.resize(n);
    x.fill(0.0);
    let b_norm = b.norm2();
    if b_norm == 0.0 {
        return CgStats {
            iterations: 0,
            residual: 0.0,
            converged: true,
        };
    }
    let target = tol * b_norm;

    let CgScratch { r, p, ap } = scratch;
    r.copy_from(b);
    p.copy_from(b);
    let mut rs_old = r.dot(r);

    for it in 0..max_iter {
        if rs_old.sqrt() <= target {
            return CgStats {
                iterations: it,
                residual: rs_old.sqrt(),
                converged: true,
            };
        }
        apply(p, ap);
        let p_ap = p.dot(ap);
        assert!(
            p_ap > 0.0,
            "conjugate_gradient: matrix is not positive definite (pᵀAp = {p_ap})"
        );
        let alpha = rs_old / p_ap;
        x.axpy(alpha, p);
        r.axpy(-alpha, ap);
        let rs_new = r.dot(r);
        let beta = rs_new / rs_old;
        // p = r + beta p (dispatched xpby kernel).
        vqmc_tensor::vector::xpby(p, r, beta);
        rs_old = rs_new;
    }
    CgStats {
        iterations: max_iter,
        residual: rs_old.sqrt(),
        converged: rs_old.sqrt() <= target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqmc_tensor::Matrix;

    fn spd_matrix(n: usize, seed: u64) -> Matrix {
        // A = MᵀM + n·I is comfortably SPD.
        let mut state = seed | 1;
        let m = Matrix::from_fn(n, n, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 100) as f64 / 50.0 - 1.0
        });
        let mut a = m.matmul_tn(&m);
        for i in 0..n {
            a.set(i, i, a.get(i, i) + n as f64);
        }
        a
    }

    #[test]
    fn solves_identity() {
        let b = Vector(vec![1.0, -2.0, 3.0]);
        let res = conjugate_gradient(&mut |v: &Vector| v.clone(), &b, 1e-12, 10);
        assert!(res.converged);
        for i in 0..3 {
            assert!((res.x[i] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn solves_random_spd_system() {
        let n = 20;
        let a = spd_matrix(n, 5);
        let x_true = Vector::from_fn(n, |i| (i as f64 * 0.3).sin());
        let b = a.matvec(&x_true);
        let res = conjugate_gradient(&mut |v: &Vector| a.matvec(v), &b, 1e-12, 200);
        assert!(res.converged, "residual {}", res.residual);
        for i in 0..n {
            assert!((res.x[i] - x_true[i]).abs() < 1e-8, "component {i}");
        }
    }

    #[test]
    fn converges_in_at_most_dim_iterations() {
        let n = 12;
        let a = spd_matrix(n, 9);
        let b = Vector::full(n, 1.0);
        let res = conjugate_gradient(&mut |v: &Vector| a.matvec(v), &b, 1e-10, n + 2);
        assert!(res.converged);
        assert!(res.iterations <= n + 1);
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let res = conjugate_gradient(&mut |v: &Vector| v.clone(), &Vector::zeros(5), 1e-12, 10);
        assert!(res.converged);
        assert_eq!(res.iterations, 0);
        assert!(res.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn reports_non_convergence_honestly() {
        let n = 30;
        let a = spd_matrix(n, 3);
        let b = Vector::full(n, 1.0);
        let res = conjugate_gradient(&mut |v: &Vector| a.matvec(v), &b, 1e-14, 2);
        assert!(!res.converged);
        assert!(res.residual > 0.0);
    }

    #[test]
    fn into_path_matches_allocating_with_reused_scratch() {
        let mut x = Vector::default();
        let mut scratch = CgScratch::new();
        // One scratch reused across systems of different size.
        for (n, seed) in [(20usize, 5u64), (8, 2), (30, 3)] {
            let a = spd_matrix(n, seed);
            let b = Vector::from_fn(n, |i| (i as f64 * 0.7).cos());
            let reference = conjugate_gradient(&mut |v: &Vector| a.matvec(v), &b, 1e-12, 200);
            let stats = conjugate_gradient_into(
                &mut |v, out: &mut Vector| out.copy_from(&a.matvec(v)),
                &b,
                1e-12,
                200,
                &mut x,
                &mut scratch,
            );
            assert_eq!(stats.iterations, reference.iterations);
            assert_eq!(x.as_slice(), reference.x.as_slice(), "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "positive definite")]
    fn indefinite_matrix_detected() {
        // A = -I is negative definite.
        let b = Vector::full(4, 1.0);
        let _ = conjugate_gradient(
            &mut |v: &Vector| {
                let mut out = v.clone();
                out.scale(-1.0);
                out
            },
            &b,
            1e-10,
            10,
        );
    }
}
