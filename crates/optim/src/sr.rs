//! Stochastic reconfiguration (Sorella 1998) — quantum natural gradient.
//!
//! Given the per-sample log-derivative rows `O ∈ ℝ^{bs×d}`
//! (`O[s,·] = ∇θ logψθ(x_s)`), the quantum Fisher / overlap matrix is
//!
//! ```text
//! S = (1/bs) Σ_s O_s O_sᵀ − Ō Ōᵀ,     Ō = (1/bs) Σ_s O_s
//! ```
//!
//! and the SR update direction solves `(S + λI) δ = g` where `g` is the
//! energy gradient and `λ` the diagonal regulariser (paper §5.1:
//! `λ = 10⁻³`, lr 0.1).  `S` is `d × d` and is **never materialised**:
//! CG only needs `S·v`, which costs two passes over `O`
//! (`u = O v` then `Oᵀ u`), i.e. `O(bs·d)` per matvec.
//!
//! (Convention note: the paper's Eq. 5 writes the Fisher in terms of
//! `∇ log π = 2∇ logψ`, a constant factor 4 on `S` that is absorbed by
//! the learning rate; we use the standard `O = ∇ logψ` convention.)
//!
//! Every reduction in the matvec (`dot` per row, `axpy` accumulate, the
//! CG direction update) routes through the runtime-dispatched SIMD
//! kernels of `vqmc_tensor::simd`, so the SR solve inherits the AVX2
//! fused-multiply-add path without any code here changing.

use vqmc_tensor::{Matrix, Vector};

use crate::cg::{conjugate_gradient_into, CgResult, CgScratch, CgStats};

/// Configuration of the SR solve.
#[derive(Clone, Copy, Debug)]
pub struct SrConfig {
    /// Diagonal shift `λ` (paper: `10⁻³`).
    pub lambda: f64,
    /// CG relative-residual tolerance.
    pub cg_tol: f64,
    /// CG iteration cap.
    pub cg_max_iter: usize,
}

impl Default for SrConfig {
    fn default() -> Self {
        SrConfig {
            lambda: 1e-3,
            cg_tol: 1e-6,
            cg_max_iter: 200,
        }
    }
}

/// The preconditioned direction plus solver diagnostics.
#[derive(Clone, Debug)]
pub struct SrSolution {
    /// The natural-gradient direction `δ = (S + λI)⁻¹ g`.
    pub direction: Vector,
    /// CG diagnostics for the solve.
    pub cg: CgResult,
}

/// Reusable scratch state for [`StochasticReconfiguration::precondition_into`]:
/// the mean row `Ō`, the `u = O v` intermediate, and the CG vectors.
#[derive(Clone, Debug, Default)]
pub struct SrScratch {
    mean: Vector,
    u: Vector,
    cg: CgScratch,
}

impl SrScratch {
    /// Fresh scratch (buffers grow on first use).
    pub fn new() -> Self {
        SrScratch::default()
    }
}

/// Matrix-free stochastic-reconfiguration preconditioner.
#[derive(Clone, Copy, Debug, Default)]
pub struct StochasticReconfiguration {
    /// Solve configuration.
    pub config: SrConfig,
}

impl StochasticReconfiguration {
    /// Creates an SR preconditioner.
    pub fn new(config: SrConfig) -> Self {
        StochasticReconfiguration { config }
    }

    /// Mean row `Ō` of the per-sample gradients.
    pub fn mean_row(o_rows: &Matrix) -> Vector {
        let mut mean = Vector::default();
        Self::mean_row_into(o_rows, &mut mean);
        mean
    }

    /// [`StochasticReconfiguration::mean_row`] into a caller-owned
    /// vector.
    pub fn mean_row_into(o_rows: &Matrix, out: &mut Vector) {
        let bs = o_rows.rows();
        assert!(bs > 0, "SR: empty batch");
        out.resize(o_rows.cols());
        out.fill(0.0);
        for row in o_rows.rows_iter() {
            vqmc_tensor::vector::axpy(out, 1.0, row);
        }
        out.scale(1.0 / bs as f64);
    }

    /// Applies the regularised Fisher matrix:
    /// `(S + λI)v = (1/bs)Oᵀ(Ov) − Ō(Ō·v) + λv`.
    pub fn apply_fisher(o_rows: &Matrix, mean: &Vector, lambda: f64, v: &Vector) -> Vector {
        let mut u = Vector::default();
        let mut out = Vector::default();
        Self::apply_fisher_into(o_rows, mean, lambda, v, &mut u, &mut out);
        out
    }

    /// [`StochasticReconfiguration::apply_fisher`] with a caller-owned
    /// `u = O v` intermediate and output — allocation-free once warm.
    pub fn apply_fisher_into(
        o_rows: &Matrix,
        mean: &Vector,
        lambda: f64,
        v: &Vector,
        u: &mut Vector,
        out: &mut Vector,
    ) {
        let bs = o_rows.rows() as f64;
        // u = O v  (per-sample dot products).
        u.resize(o_rows.rows());
        for s in 0..o_rows.rows() {
            u[s] = vqmc_tensor::vector::dot(o_rows.row(s), v);
        }
        // out = (1/bs) Oᵀ u
        out.resize(o_rows.cols());
        out.fill(0.0);
        for (s, row) in o_rows.rows_iter().enumerate() {
            if u[s] != 0.0 {
                vqmc_tensor::vector::axpy(out.as_mut_slice(), u[s] / bs, row);
            }
        }
        // − Ō (Ō·v) + λ v
        let mv = mean.dot(v);
        out.axpy(-mv, mean);
        out.axpy(lambda, v);
    }

    /// Solves `(S + λI) δ = grad` and returns the direction.
    pub fn precondition(&self, o_rows: &Matrix, grad: &Vector) -> SrSolution {
        let mut scratch = SrScratch::new();
        let mut direction = Vector::default();
        let stats = self.precondition_into(o_rows, grad, &mut scratch, &mut direction);
        SrSolution {
            cg: CgResult {
                x: direction.clone(),
                iterations: stats.iterations,
                residual: stats.residual,
                converged: stats.converged,
            },
            direction,
        }
    }

    /// [`StochasticReconfiguration::precondition`] with caller-owned
    /// direction and scratch — the steady-state SR solve performs no
    /// heap allocation.
    pub fn precondition_into(
        &self,
        o_rows: &Matrix,
        grad: &Vector,
        scratch: &mut SrScratch,
        direction: &mut Vector,
    ) -> CgStats {
        assert_eq!(
            o_rows.cols(),
            grad.len(),
            "SR: gradient/O-row dimension mismatch"
        );
        let SrScratch { mean, u, cg } = scratch;
        Self::mean_row_into(o_rows, mean);
        let lambda = self.config.lambda;
        conjugate_gradient_into(
            &mut |v: &Vector, out: &mut Vector| {
                Self::apply_fisher_into(o_rows, mean, lambda, v, u, out)
            },
            grad,
            self.config.cg_tol,
            self.config.cg_max_iter,
            direction,
            cg,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_rows() -> Matrix {
        Matrix::from_rows(&[
            &[1.0, 0.5, -0.2],
            &[0.3, -1.0, 0.8],
            &[-0.7, 0.2, 0.4],
            &[0.1, 0.9, -1.1],
        ])
    }

    /// Dense reference for S = cov(O).
    fn dense_fisher(o: &Matrix, lambda: f64) -> Matrix {
        let bs = o.rows() as f64;
        let d = o.cols();
        let mean = StochasticReconfiguration::mean_row(o);
        let mut s = Matrix::zeros(d, d);
        for row in o.rows_iter() {
            s.add_outer(1.0 / bs, row, row);
        }
        s.add_outer(-1.0, &mean, &mean);
        for i in 0..d {
            s.set(i, i, s.get(i, i) + lambda);
        }
        s
    }

    #[test]
    fn matrix_free_matvec_matches_dense() {
        let o = toy_rows();
        let mean = StochasticReconfiguration::mean_row(&o);
        let dense = dense_fisher(&o, 0.01);
        let v = Vector(vec![0.3, -1.2, 0.5]);
        let fast = StochasticReconfiguration::apply_fisher(&o, &mean, 0.01, &v);
        let slow = dense.matvec(&v);
        for i in 0..3 {
            assert!((fast[i] - slow[i]).abs() < 1e-12, "component {i}");
        }
    }

    #[test]
    fn precondition_solves_dense_system() {
        let o = toy_rows();
        let cfg = SrConfig {
            lambda: 0.05,
            cg_tol: 1e-12,
            cg_max_iter: 100,
        };
        let sr = StochasticReconfiguration::new(cfg);
        let g = Vector(vec![1.0, -0.5, 0.25]);
        let sol = sr.precondition(&o, &g);
        assert!(sol.cg.converged);
        // Verify (S + λI) δ = g against the dense matrix.
        let dense = dense_fisher(&o, 0.05);
        let back = dense.matvec(&sol.direction);
        for i in 0..3 {
            assert!((back[i] - g[i]).abs() < 1e-8, "component {i}");
        }
    }

    #[test]
    fn centered_rows_have_zero_fisher_on_constants() {
        // A direction along which every O_s is identical contributes
        // nothing to cov(O): S v = λ v there.
        let o = Matrix::from_rows(&[&[1.0, 2.0], &[1.0, -1.0], &[1.0, 0.5]]);
        let mean = StochasticReconfiguration::mean_row(&o);
        // v along the constant first coordinate.
        let v = Vector(vec![1.0, 0.0]);
        let out = StochasticReconfiguration::apply_fisher(&o, &mean, 0.125, &v);
        assert!((out[0] - 0.125).abs() < 1e-12);
        // Covariance couples only through coordinate 2's variation with
        // coordinate 1 (which is constant → zero).
        assert!(out[1].abs() < 1e-12);
    }

    #[test]
    fn large_lambda_recovers_plain_gradient() {
        // (S + λI)⁻¹g → g/λ as λ → ∞: SR degrades gracefully to SGD.
        let o = toy_rows();
        let cfg = SrConfig {
            lambda: 1e9,
            cg_tol: 1e-14,
            cg_max_iter: 50,
        };
        let g = Vector(vec![2.0, -1.0, 0.5]);
        let sol = StochasticReconfiguration::new(cfg).precondition(&o, &g);
        for i in 0..3 {
            assert!((sol.direction[i] * 1e9 - g[i]).abs() < 1e-5);
        }
    }
}
