//! Plain stochastic gradient descent.

use vqmc_tensor::Vector;

use crate::Optimizer;

/// `θ ← θ − lr · g`.  The paper's SGD runs use `lr = 0.1`.
#[derive(Clone, Copy, Debug)]
pub struct Sgd {
    lr: f64,
}

impl Sgd {
    /// Creates an SGD optimiser with the given learning rate.
    pub fn new(lr: f64) -> Self {
        assert!(lr > 0.0, "Sgd: non-positive learning rate");
        Sgd { lr }
    }

    /// The paper's default SGD learning rate (§5.1).
    pub fn paper_default() -> Self {
        Sgd::new(0.1)
    }

    /// Learning rate accessor.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut Vector, grad: &Vector) {
        assert_eq!(params.len(), grad.len(), "Sgd: length mismatch");
        params.axpy(-self.lr, grad);
    }

    fn reset(&mut self) {}

    fn name(&self) -> &'static str {
        "SGD"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_step_math() {
        let mut opt = Sgd::new(0.5);
        let mut p = Vector(vec![1.0, 2.0]);
        opt.step(&mut p, &Vector(vec![2.0, -4.0]));
        assert_eq!(p.as_slice(), &[0.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_shapes_panic() {
        let mut opt = Sgd::new(0.1);
        let mut p = Vector::zeros(2);
        opt.step(&mut p, &Vector::zeros(3));
    }

    #[test]
    #[should_panic(expected = "non-positive")]
    fn zero_lr_rejected() {
        let _ = Sgd::new(0.0);
    }
}
