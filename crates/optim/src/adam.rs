//! Adam (Kingma & Ba 2015) with PyTorch-default hyperparameters — the
//! paper's default optimiser (`lr = 0.01`).

use vqmc_tensor::Vector;

use crate::Optimizer;

/// Adam optimiser with bias-corrected first/second moments.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    m: Vector,
    v: Vector,
    t: u64,
}

impl Adam {
    /// Adam with the standard moments `β = (0.9, 0.999)`, `ε = 1e-8`.
    pub fn new(lr: f64) -> Self {
        Adam::with_moments(lr, 0.9, 0.999, 1e-8)
    }

    /// The paper's default (`lr = 0.01`).
    pub fn paper_default() -> Self {
        Adam::new(0.01)
    }

    /// Fully parameterised constructor.
    pub fn with_moments(lr: f64, beta1: f64, beta2: f64, eps: f64) -> Self {
        assert!(lr > 0.0, "Adam: non-positive learning rate");
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2));
        Adam {
            lr,
            beta1,
            beta2,
            eps,
            m: Vector::zeros(0),
            v: Vector::zeros(0),
            t: 0,
        }
    }

    /// Learning rate accessor.
    pub fn learning_rate(&self) -> f64 {
        self.lr
    }

    /// Steps taken since the last reset.
    pub fn steps_taken(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut Vector, grad: &Vector) {
        assert_eq!(params.len(), grad.len(), "Adam: length mismatch");
        if self.m.len() != params.len() {
            assert_eq!(self.t, 0, "Adam: parameter dimension changed mid-run");
            self.m = Vector::zeros(params.len());
            self.v = Vector::zeros(params.len());
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grad[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / bc1;
            let v_hat = self.v[i] / bc2;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn reset(&mut self) {
        self.m = Vector::zeros(0);
        self.v = Vector::zeros(0);
        self.t = 0;
    }

    fn name(&self) -> &'static str {
        "ADAM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_step_is_lr_sized() {
        // With bias correction, the very first Adam step has magnitude
        // ≈ lr regardless of gradient scale.
        for &scale in &[1e-4, 1.0, 1e4] {
            let mut opt = Adam::new(0.01);
            let mut p = Vector(vec![0.0]);
            opt.step(&mut p, &Vector(vec![scale]));
            assert!(
                (p[0].abs() - 0.01).abs() < 1e-6,
                "scale {scale}: step {}",
                p[0]
            );
        }
    }

    #[test]
    fn step_direction_opposes_gradient() {
        let mut opt = Adam::new(0.01);
        let mut p = Vector(vec![1.0, 1.0]);
        opt.step(&mut p, &Vector(vec![5.0, -5.0]));
        assert!(p[0] < 1.0);
        assert!(p[1] > 1.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Adam::new(0.01);
        let mut p = Vector(vec![0.0]);
        opt.step(&mut p, &Vector(vec![1.0]));
        assert_eq!(opt.steps_taken(), 1);
        opt.reset();
        assert_eq!(opt.steps_taken(), 0);
        // Usable with a different dimension after reset.
        let mut p2 = Vector::zeros(3);
        opt.step(&mut p2, &Vector(vec![1.0, 1.0, 1.0]));
        assert_eq!(opt.steps_taken(), 1);
    }

    #[test]
    #[should_panic(expected = "dimension changed")]
    fn dimension_change_without_reset_panics() {
        let mut opt = Adam::new(0.01);
        let mut p = Vector::zeros(2);
        opt.step(&mut p, &Vector::zeros(2));
        let mut p3 = Vector::zeros(3);
        opt.step(&mut p3, &Vector::zeros(3));
    }

    #[test]
    fn moments_average_gradients() {
        // Alternating ±g gradients: first moment shrinks toward zero, so
        // steps get smaller — Adam damps oscillation.
        let mut opt = Adam::new(0.1);
        let mut p = Vector(vec![0.0]);
        let mut first_step = 0.0;
        let mut last_step = 0.0;
        for t in 0..20 {
            let before = p[0];
            let g = if t % 2 == 0 { 1.0 } else { -1.0 };
            opt.step(&mut p, &Vector(vec![g]));
            let step = (p[0] - before).abs();
            if t == 0 {
                first_step = step;
            }
            last_step = step;
        }
        assert!(last_step < first_step);
    }
}
