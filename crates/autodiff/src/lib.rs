//! # vqmc-autodiff
//!
//! A small reverse-mode automatic-differentiation tape over
//! [`vqmc_tensor::Matrix`] values.
//!
//! ## Why this crate exists
//!
//! The paper this workspace reproduces ran on PyTorch, whose autograd
//! provided the per-sample gradients `∇θ log ψθ(x)` that drive VQMC's
//! Eq. 5 estimators.  The Rust ML ecosystem is thin on autodiff, so the
//! hot path in `vqmc-nn` uses *hand-derived analytic backprop* instead —
//! and this tape is the **verification oracle** that keeps those manual
//! derivations honest: every analytic gradient is tested against (a) this
//! tape and (b) central finite differences.
//!
//! The tape is tensor-valued (each node holds a whole `Matrix`), supports
//! exactly the operations the paper's two architectures need (dense and
//! masked matmuls, row-bias broadcast, ReLU / Sigmoid / ln-cosh,
//! Bernoulli log-likelihoods, reductions), and is deliberately simple
//! rather than fast.
//!
//! ## Example
//!
//! ```
//! use vqmc_autodiff::Tape;
//! use vqmc_tensor::Matrix;
//!
//! let mut tape = Tape::new();
//! let x = tape.input(Matrix::from_rows(&[&[1.0, 2.0]]));        // 1x2
//! let w = tape.input(Matrix::from_rows(&[&[3.0], &[4.0]]));     // 2x1
//! let y = tape.matmul_nn(x, w);                                  // 1x1 = [11]
//! let loss = tape.sum(y);
//! let grads = tape.backward(loss);
//! assert_eq!(grads.get(w).as_slice(), &[1.0, 2.0]);              // d(loss)/dw = x^T
//! ```

#![warn(missing_docs)]

mod numeric;
mod tape;

pub use numeric::{central_diff_gradient, check_gradient};
pub use tape::{Gradients, Tape, TensorId};
