//! Finite-difference utilities: the second, independent gradient oracle.

/// Central-difference gradient of a scalar function `f` at `x0` with step
/// `h`: `g_i ≈ (f(x + h e_i) − f(x − h e_i)) / 2h`.
pub fn central_diff_gradient(f: &dyn Fn(&[f64]) -> f64, x0: &[f64], h: f64) -> Vec<f64> {
    let mut x = x0.to_vec();
    let mut grad = Vec::with_capacity(x0.len());
    for i in 0..x0.len() {
        let orig = x[i];
        x[i] = orig + h;
        let fp = f(&x);
        x[i] = orig - h;
        let fm = f(&x);
        x[i] = orig;
        grad.push((fp - fm) / (2.0 * h));
    }
    grad
}

/// Asserts that `analytic` matches the central-difference gradient of `f`
/// at `x0` to tolerance `tol` (mixed absolute/relative).  Returns the
/// largest observed deviation for diagnostics.
///
/// Panics with a labelled message on the first mismatching coordinate.
pub fn check_gradient(
    label: &str,
    f: &dyn Fn(&[f64]) -> f64,
    x0: &[f64],
    analytic: &[f64],
    tol: f64,
) -> f64 {
    assert_eq!(
        x0.len(),
        analytic.len(),
        "{label}: gradient length mismatch"
    );
    let numeric = central_diff_gradient(f, x0, 1e-6);
    let mut worst = 0.0f64;
    for (i, (a, n)) in analytic.iter().zip(&numeric).enumerate() {
        let scale = a.abs().max(n.abs()).max(1.0);
        let dev = (a - n).abs() / scale;
        worst = worst.max(dev);
        assert!(
            dev <= tol,
            "{label}: coordinate {i}: analytic {a} vs numeric {n} (relative deviation {dev:.3e} > {tol:.1e})"
        );
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient() {
        // f(x) = sum x_i^2, grad = 2x.
        let f = |xs: &[f64]| xs.iter().map(|x| x * x).sum::<f64>();
        let x0 = [1.0, -2.0, 0.5];
        let g = central_diff_gradient(&f, &x0, 1e-6);
        for (gi, xi) in g.iter().zip(&x0) {
            assert!((gi - 2.0 * xi).abs() < 1e-7);
        }
    }

    #[test]
    fn check_gradient_accepts_correct() {
        let f = |xs: &[f64]| xs[0].sin() + xs[1] * xs[1];
        let x0 = [0.7f64, 1.3];
        let analytic = [x0[0].cos(), 2.0 * x0[1]];
        let worst = check_gradient("sin+sq", &f, &x0, &analytic, 1e-6);
        assert!(worst < 1e-6);
    }

    #[test]
    #[should_panic(expected = "coordinate 0")]
    fn check_gradient_rejects_wrong() {
        let f = |xs: &[f64]| xs[0] * xs[0];
        let x0 = [2.0];
        let wrong = [1.0]; // true gradient is 4.0
        check_gradient("wrong", &f, &x0, &wrong, 1e-6);
    }
}
