//! The reverse-mode tape itself.

use vqmc_tensor::{ops, Matrix};

/// Handle to a value recorded on a [`Tape`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TensorId(usize);

/// The operation that produced a node, with parent handles.
///
/// Each variant documents its vector-Jacobian product (the backward
/// rule applied in [`Tape::backward`]).
enum Op {
    /// Leaf node: an input or parameter.
    Input,
    /// `C = A + B` elementwise. `dA += dC`, `dB += dC`.
    Add(usize, usize),
    /// `C = A - B` elementwise. `dA += dC`, `dB -= dC`.
    Sub(usize, usize),
    /// `C = A ⊙ B` elementwise. `dA += dC ⊙ B`, `dB += dC ⊙ A`.
    Mul(usize, usize),
    /// `C = A * B` (`A: m×k`, `B: k×n`). `dA += dC B^T`, `dB += A^T dC`.
    MatMulNN(usize, usize),
    /// `C = A * B^T` (`A: m×k`, `B: n×k`). `dA += dC B`, `dB += dC^T A`.
    MatMulNT(usize, usize),
    /// `C = A + 1·b` (bias `b: 1×n` broadcast over rows).
    /// `dA += dC`, `db += column-sum(dC)`.
    AddRowBias(usize, usize),
    /// `C = relu(A)`. `dA += dC ⊙ 1{A > 0}`.
    Relu(usize),
    /// `C = σ(A)`. `dA += dC ⊙ C(1-C)`.
    Sigmoid(usize),
    /// `C = ln cosh(A)`. `dA += dC ⊙ tanh(A)`.
    LnCosh(usize),
    /// `C = c · A`. `dA += c · dC`.
    Scale(usize, f64),
    /// `C = A ⊙ M` for a constant mask `M`. `dA += dC ⊙ M`.
    MulConst(usize, Matrix),
    /// Scalar `C = Σ_ij A_ij` (1×1). `dA += dC · 1`.
    Sum(usize),
    /// Row reduction `C[i,0] = Σ_j A_ij` (m×1). `dA[i,j] += dC[i,0]`.
    RowSum(usize),
    /// Fused Bernoulli log-likelihood: given logits `A` (m×n) and a
    /// constant target matrix `T ∈ {0,1}^{m×n}`,
    /// `C[i,0] = Σ_j T_ij ln σ(A_ij) + (1-T_ij) ln(1-σ(A_ij))`.
    /// `dA[i,j] += dC[i,0] · (T_ij − σ(A_ij))`.
    ///
    /// This is exactly MADE's per-sample log-probability, fused for
    /// numerical stability (no intermediate `σ` underflow).
    BernoulliLogProb(usize, Matrix),
}

struct Node {
    value: Matrix,
    op: Op,
}

/// Gradients of a scalar output with respect to every node on the tape.
pub struct Gradients {
    grads: Vec<Matrix>,
}

impl Gradients {
    /// Gradient with respect to node `id` (same shape as its value).
    pub fn get(&self, id: TensorId) -> &Matrix {
        &self.grads[id.0]
    }
}

/// A reverse-mode tape of tensor operations.
///
/// Record a computation with the builder methods, then call
/// [`Tape::backward`] on a scalar (1×1) node to obtain gradients with
/// respect to every recorded node.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// Empty tape.
    pub fn new() -> Self {
        Tape { nodes: Vec::new() }
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Value of a node.
    pub fn value(&self, id: TensorId) -> &Matrix {
        &self.nodes[id.0].value
    }

    fn push(&mut self, value: Matrix, op: Op) -> TensorId {
        self.nodes.push(Node { value, op });
        TensorId(self.nodes.len() - 1)
    }

    /// Records a leaf (input / parameter) node.
    pub fn input(&mut self, value: Matrix) -> TensorId {
        self.push(value, Op::Input)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let mut v = self.value(a).clone();
        v.axpy(1.0, self.value(b));
        self.push(v, Op::Add(a.0, b.0))
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let mut v = self.value(a).clone();
        v.axpy(-1.0, self.value(b));
        self.push(v, Op::Sub(a.0, b.0))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let mut v = self.value(a).clone();
        v.hadamard_inplace(self.value(b));
        self.push(v, Op::Mul(a.0, b.0))
    }

    /// Matrix product `A * B`.
    pub fn matmul_nn(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self.value(a).matmul_nn(self.value(b));
        self.push(v, Op::MatMulNN(a.0, b.0))
    }

    /// Matrix product `A * B^T` (the FC-layer layout).
    pub fn matmul_nt(&mut self, a: TensorId, b: TensorId) -> TensorId {
        let v = self.value(a).matmul_nt(self.value(b));
        self.push(v, Op::MatMulNT(a.0, b.0))
    }

    /// Broadcast-adds a `1×n` bias node to every row of `a`.
    pub fn add_row_bias(&mut self, a: TensorId, bias: TensorId) -> TensorId {
        let bias_mat = self.value(bias);
        assert_eq!(bias_mat.rows(), 1, "add_row_bias: bias must be 1×n");
        let bias_vec: vqmc_tensor::Vector = bias_mat.row(0).to_vec().into();
        let mut v = self.value(a).clone();
        v.add_row_bias(&bias_vec);
        self.push(v, Op::AddRowBias(a.0, bias.0))
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(ops::relu);
        self.push(v, Op::Relu(a.0))
    }

    /// Elementwise sigmoid.
    pub fn sigmoid(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(ops::sigmoid);
        self.push(v, Op::Sigmoid(a.0))
    }

    /// Elementwise `ln cosh`.
    pub fn ln_cosh(&mut self, a: TensorId) -> TensorId {
        let v = self.value(a).map(ops::ln_cosh);
        self.push(v, Op::LnCosh(a.0))
    }

    /// Scalar multiple `c · A`.
    pub fn scale(&mut self, a: TensorId, c: f64) -> TensorId {
        let mut v = self.value(a).clone();
        v.scale(c);
        self.push(v, Op::Scale(a.0, c))
    }

    /// Hadamard product with a constant mask (MADE's weight masks).
    pub fn mul_const(&mut self, a: TensorId, mask: Matrix) -> TensorId {
        let mut v = self.value(a).clone();
        v.hadamard_inplace(&mask);
        self.push(v, Op::MulConst(a.0, mask))
    }

    /// Full reduction to a 1×1 scalar node.
    pub fn sum(&mut self, a: TensorId) -> TensorId {
        let s = self.value(a).sum();
        self.push(Matrix::from_vec(1, 1, vec![s]), Op::Sum(a.0))
    }

    /// Per-row reduction: `m×n → m×1`.
    pub fn row_sum(&mut self, a: TensorId) -> TensorId {
        let m = self.value(a);
        let v = Matrix::from_vec(
            m.rows(),
            1,
            m.rows_iter().map(|r| r.iter().sum()).collect(),
        );
        self.push(v, Op::RowSum(a.0))
    }

    /// Fused per-sample Bernoulli log-likelihood of constant targets
    /// under `logits`:
    /// `out[i] = Σ_j t_ij ln σ(l_ij) + (1 − t_ij) ln(1 − σ(l_ij))`.
    pub fn bernoulli_log_prob(&mut self, logits: TensorId, targets: Matrix) -> TensorId {
        let l = self.value(logits);
        assert_eq!(l.shape(), targets.shape(), "bernoulli_log_prob: shape mismatch");
        let v = Matrix::from_vec(
            l.rows(),
            1,
            (0..l.rows())
                .map(|i| {
                    l.row(i)
                        .iter()
                        .zip(targets.row(i))
                        .map(|(&logit, &t)| {
                            if t > 0.5 {
                                ops::log_sigmoid(logit)
                            } else {
                                ops::log_one_minus_sigmoid(logit)
                            }
                        })
                        .sum()
                })
                .collect(),
        );
        self.push(v, Op::BernoulliLogProb(logits.0, targets))
    }

    /// Reverse pass from a scalar (1×1) node; returns gradients for every
    /// node on the tape.
    pub fn backward(&self, output: TensorId) -> Gradients {
        let out_node = &self.nodes[output.0];
        assert_eq!(
            out_node.value.shape(),
            (1, 1),
            "backward: output must be a 1×1 scalar node"
        );
        let mut grads: Vec<Matrix> = self
            .nodes
            .iter()
            .map(|n| Matrix::zeros(n.value.rows(), n.value.cols()))
            .collect();
        grads[output.0].set(0, 0, 1.0);

        for idx in (0..=output.0).rev() {
            // Leaves keep their accumulated gradient; nothing to propagate.
            if matches!(self.nodes[idx].op, Op::Input) {
                continue;
            }
            // Take the output gradient by value so we can mutate parents.
            let g = std::mem::replace(&mut grads[idx], Matrix::zeros(0, 0));
            match &self.nodes[idx].op {
                Op::Input => unreachable!(),
                Op::Add(a, b) => {
                    grads[*a].axpy(1.0, &g);
                    grads[*b].axpy(1.0, &g);
                }
                Op::Sub(a, b) => {
                    grads[*a].axpy(1.0, &g);
                    grads[*b].axpy(-1.0, &g);
                }
                Op::Mul(a, b) => {
                    let mut ga = g.clone();
                    ga.hadamard_inplace(&self.nodes[*b].value);
                    grads[*a].axpy(1.0, &ga);
                    let mut gb = g.clone();
                    gb.hadamard_inplace(&self.nodes[*a].value);
                    grads[*b].axpy(1.0, &gb);
                }
                Op::MatMulNN(a, b) => {
                    // C = A B: dA = dC B^T, dB = A^T dC.
                    let da = g.matmul_nt(&self.nodes[*b].value);
                    grads[*a].axpy(1.0, &da);
                    let db = self.nodes[*a].value.matmul_tn(&g);
                    grads[*b].axpy(1.0, &db);
                }
                Op::MatMulNT(a, b) => {
                    // C = A B^T: dA = dC B, dB = dC^T A.
                    let da = g.matmul_nn(&self.nodes[*b].value);
                    grads[*a].axpy(1.0, &da);
                    let db = g.matmul_tn(&self.nodes[*a].value);
                    grads[*b].axpy(1.0, &db);
                }
                Op::AddRowBias(a, bias) => {
                    grads[*a].axpy(1.0, &g);
                    // Column-sum of g into the 1×n bias gradient.
                    let cols = g.cols();
                    let mut col_sum = vec![0.0; cols];
                    for row in g.rows_iter() {
                        for (s, v) in col_sum.iter_mut().zip(row) {
                            *s += v;
                        }
                    }
                    grads[*bias].axpy(1.0, &Matrix::from_vec(1, cols, col_sum));
                }
                Op::Relu(a) => {
                    let mut ga = g.clone();
                    let av = &self.nodes[*a].value;
                    for (gv, &x) in ga.as_mut_slice().iter_mut().zip(av.as_slice()) {
                        *gv *= ops::relu_prime(x);
                    }
                    grads[*a].axpy(1.0, &ga);
                }
                Op::Sigmoid(a) => {
                    let mut ga = g.clone();
                    let sv = &self.nodes[idx].value;
                    for (gv, &s) in ga.as_mut_slice().iter_mut().zip(sv.as_slice()) {
                        *gv *= ops::sigmoid_prime_from_value(s);
                    }
                    grads[*a].axpy(1.0, &ga);
                }
                Op::LnCosh(a) => {
                    let mut ga = g.clone();
                    let av = &self.nodes[*a].value;
                    for (gv, &x) in ga.as_mut_slice().iter_mut().zip(av.as_slice()) {
                        *gv *= ops::ln_cosh_prime(x);
                    }
                    grads[*a].axpy(1.0, &ga);
                }
                Op::Scale(a, c) => {
                    grads[*a].axpy(*c, &g);
                }
                Op::MulConst(a, mask) => {
                    let mut ga = g.clone();
                    ga.hadamard_inplace(mask);
                    grads[*a].axpy(1.0, &ga);
                }
                Op::Sum(a) => {
                    let s = g.get(0, 0);
                    let (r, c) = self.nodes[*a].value.shape();
                    let ones = Matrix::from_fn(r, c, |_, _| s);
                    grads[*a].axpy(1.0, &ones);
                }
                Op::RowSum(a) => {
                    let (r, c) = self.nodes[*a].value.shape();
                    let expand = Matrix::from_fn(r, c, |i, _| g.get(i, 0));
                    grads[*a].axpy(1.0, &expand);
                }
                Op::BernoulliLogProb(a, targets) => {
                    let lv = &self.nodes[*a].value;
                    let (r, c) = lv.shape();
                    let mut ga = Matrix::zeros(r, c);
                    for i in 0..r {
                        let gi = g.get(i, 0);
                        let l_row = lv.row(i);
                        let t_row = targets.row(i);
                        let out = ga.row_mut(i);
                        for j in 0..c {
                            out[j] = gi * (t_row[j] - ops::sigmoid(l_row[j]));
                        }
                    }
                    grads[*a].axpy(1.0, &ga);
                }
            }
        }
        // Restore zero-shape placeholders for intermediate nodes we
        // consumed: gradients of non-leaf nodes are rarely queried, but
        // keep shapes consistent for the API.
        for (idx, node) in self.nodes.iter().enumerate() {
            if grads[idx].shape() == (0, 0) {
                grads[idx] = Matrix::zeros(node.value.rows(), node.value.cols());
            }
        }
        Gradients { grads }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(tape: &Tape, id: TensorId) -> f64 {
        tape.value(id).get(0, 0)
    }

    #[test]
    fn add_sub_gradients() {
        let mut t = Tape::new();
        let a = t.input(Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = t.input(Matrix::from_rows(&[&[3.0, 4.0]]));
        let c = t.add(a, b);
        let d = t.sub(c, a); // d = b
        let s = t.sum(d);
        assert_eq!(scalar(&t, s), 7.0);
        let g = t.backward(s);
        assert_eq!(g.get(a).as_slice(), &[0.0, 0.0]);
        assert_eq!(g.get(b).as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn mul_gradient_is_other_operand() {
        let mut t = Tape::new();
        let a = t.input(Matrix::from_rows(&[&[2.0, 3.0]]));
        let b = t.input(Matrix::from_rows(&[&[5.0, 7.0]]));
        let c = t.mul(a, b);
        let s = t.sum(c);
        let g = t.backward(s);
        assert_eq!(g.get(a).as_slice(), &[5.0, 7.0]);
        assert_eq!(g.get(b).as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn matmul_nn_gradients() {
        let mut t = Tape::new();
        let x = t.input(Matrix::from_rows(&[&[1.0, 2.0]]));
        let w = t.input(Matrix::from_rows(&[&[3.0], &[4.0]]));
        let y = t.matmul_nn(x, w);
        assert_eq!(scalar(&t, y), 11.0);
        let s = t.sum(y);
        let g = t.backward(s);
        assert_eq!(g.get(x).as_slice(), &[3.0, 4.0]);
        assert_eq!(g.get(w).as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn matmul_nt_matches_nn_with_transpose() {
        let mut t = Tape::new();
        let x = t.input(Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]));
        let w = t.input(Matrix::from_rows(&[&[2.0, 1.0], &[-1.0, 4.0], &[0.0, 1.0]]));
        let y = t.matmul_nt(x, w); // 2x3
        let s = t.sum(y);
        let g = t.backward(s);

        let mut t2 = Tape::new();
        let x2 = t2.input(Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]));
        let wt = t2.input(
            Matrix::from_rows(&[&[2.0, 1.0], &[-1.0, 4.0], &[0.0, 1.0]]).transpose(),
        );
        let y2 = t2.matmul_nn(x2, wt);
        let s2 = t2.sum(y2);
        let g2 = t2.backward(s2);

        assert!(g.get(x).max_abs_diff(g2.get(x2)) < 1e-12);
        assert!(g.get(w).max_abs_diff(&g2.get(wt).transpose()) < 1e-12);
    }

    #[test]
    fn bias_gradient_is_column_sum() {
        let mut t = Tape::new();
        let x = t.input(Matrix::zeros(3, 2));
        let b = t.input(Matrix::from_rows(&[&[1.0, 2.0]]));
        let y = t.add_row_bias(x, b);
        let s = t.sum(y);
        assert_eq!(scalar(&t, s), 3.0 * 3.0); // 3 rows * (1+2)
        let g = t.backward(s);
        assert_eq!(g.get(b).as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn activation_gradients_match_finite_diff() {
        use crate::numeric::central_diff_gradient;
        let x0 = [0.5, -1.3, 2.0, -0.1];

        for act in 0..3 {
            let f = |xs: &[f64]| {
                let mut t = Tape::new();
                let x = t.input(Matrix::from_vec(1, 4, xs.to_vec()));
                let y = match act {
                    0 => t.relu(x),
                    1 => t.sigmoid(x),
                    _ => t.ln_cosh(x),
                };
                let s = t.sum(y);
                t.value(s).get(0, 0)
            };
            let numeric = central_diff_gradient(&f, &x0, 1e-6);

            let mut t = Tape::new();
            let x = t.input(Matrix::from_vec(1, 4, x0.to_vec()));
            let y = match act {
                0 => t.relu(x),
                1 => t.sigmoid(x),
                _ => t.ln_cosh(x),
            };
            let s = t.sum(y);
            let g = t.backward(s);
            for (an, nu) in g.get(x).as_slice().iter().zip(&numeric) {
                assert!((an - nu).abs() < 1e-6, "act {act}: {an} vs {nu}");
            }
        }
    }

    #[test]
    fn bernoulli_log_prob_value_and_gradient() {
        use vqmc_tensor::ops::sigmoid;
        let logits = [0.3, -1.2];
        let targets = Matrix::from_rows(&[&[1.0, 0.0]]);

        let mut t = Tape::new();
        let l = t.input(Matrix::from_vec(1, 2, logits.to_vec()));
        let lp = t.bernoulli_log_prob(l, targets.clone());
        let expected = sigmoid(0.3).ln() + (1.0 - sigmoid(-1.2)).ln();
        assert!((t.value(lp).get(0, 0) - expected).abs() < 1e-12);

        let s = t.sum(lp);
        let g = t.backward(s);
        // d/dl = t - sigmoid(l)
        assert!((g.get(l).get(0, 0) - (1.0 - sigmoid(0.3))).abs() < 1e-12);
        assert!((g.get(l).get(0, 1) - (0.0 - sigmoid(-1.2))).abs() < 1e-12);
    }

    #[test]
    fn mask_blocks_gradient_flow() {
        let mut t = Tape::new();
        let w = t.input(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let mask = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let wm = t.mul_const(w, mask);
        let s = t.sum(wm);
        let g = t.backward(s);
        assert_eq!(g.get(w).row(0), &[1.0, 0.0]);
        assert_eq!(g.get(w).row(1), &[0.0, 1.0]);
    }

    #[test]
    fn row_sum_gradient_broadcasts() {
        let mut t = Tape::new();
        let x = t.input(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let r = t.row_sum(x);
        let half = t.scale(r, 0.5);
        let s = t.sum(half);
        assert_eq!(scalar(&t, s), 5.0);
        let g = t.backward(s);
        assert!(g.get(x).as_slice().iter().all(|&v| v == 0.5));
    }

    #[test]
    fn reused_node_accumulates_gradient() {
        // f = sum(a ⊙ a) -> df/da = 2a.
        let mut t = Tape::new();
        let a = t.input(Matrix::from_rows(&[&[3.0, -2.0]]));
        let sq = t.mul(a, a);
        let s = t.sum(sq);
        let g = t.backward(s);
        assert_eq!(g.get(a).as_slice(), &[6.0, -4.0]);
    }

    #[test]
    #[should_panic(expected = "1×1")]
    fn backward_from_non_scalar_panics() {
        let mut t = Tape::new();
        let a = t.input(Matrix::zeros(2, 2));
        let _ = t.backward(a);
    }
}
