//! Fault injection: ranks die mid-job and the survivors must get a
//! clean [`CollectiveError`] — promptly, on every survivor, with no
//! hang and **no partial update** — rather than wedging in a poll loop.
//!
//! `Mesh::abandon` closes the TCP connections without the orderly
//! GOODBYE, which is exactly what a SIGKILL'd process looks like from
//! the other end of the socket.

use std::time::{Duration, Instant};

use vqmc_core::backend::CollectiveError;
use vqmc_core::trainer::{OptimizerChoice, Trainer, TrainerConfig};
use vqmc_core::{Collective, ShardedTrainer};
use vqmc_dist::{peers_for_ports, reserve_loopback_ports, Mesh, MeshConfig};
use vqmc_hamiltonian::{LocalEnergyConfig, TransverseFieldIsing};
use vqmc_nn::{Made, WaveFunction};
use vqmc_sampler::IncrementalAutoSampler;
use vqmc_tensor::Vector;

fn spawn_ranks<T, F>(world: usize, timeout: Duration, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(Mesh, usize) -> T + Send + Sync + 'static,
{
    let ports = reserve_loopback_ports(world).expect("reserve ports");
    let peers = peers_for_ports(&ports);
    let f = std::sync::Arc::new(f);
    let handles: Vec<_> = (0..world)
        .map(|rank| {
            let peers = peers.clone();
            let f = f.clone();
            std::thread::spawn(move || {
                let mut cfg = MeshConfig::new(rank, peers);
                cfg.connect_timeout = Duration::from_secs(20);
                cfg.collective_timeout = timeout;
                let mesh = Mesh::connect(cfg).expect("mesh formation");
                f(mesh, rank)
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("rank panicked"))
        .collect()
}

/// A rank dying between collectives surfaces as `RankLost` on every
/// survivor — far inside the collective timeout (the EOF is detected
/// eagerly, not discovered by deadline expiry) — and the mesh stays
/// poisoned: later collectives fail instantly instead of re-waiting.
#[test]
fn rank_death_mid_job_yields_rank_lost_on_all_survivors() {
    let timeout = Duration::from_secs(30);
    let results = spawn_ranks(3, timeout, |mut mesh, rank| {
        let v = Vector::from_fn(8, |i| (rank * 10 + i) as f64);
        // Round 1: everyone participates; must succeed on all ranks.
        let first = mesh.allreduce_mean(v.clone());
        if rank == 2 {
            assert!(first.is_ok(), "rank 2 round 1: {first:?}");
            // Give the survivors time to finish draining round 1 so the
            // dirty EOF is unambiguously "between collectives".
            std::thread::sleep(Duration::from_millis(200));
            mesh.abandon();
            return (first, None, Duration::ZERO);
        }
        assert!(first.is_ok(), "rank {rank} round 1: {first:?}");
        // Round 2: rank 2 is gone.
        let start = Instant::now();
        let second = mesh.allreduce_mean(v.clone());
        let elapsed = start.elapsed();
        // Sticky: a third attempt fails immediately with the same error.
        let third = mesh.allreduce_mean(v);
        assert_eq!(second.as_ref().err(), third.as_ref().err());
        (first, Some(second), elapsed)
    });
    for (rank, (first, second, elapsed)) in results.iter().enumerate() {
        assert!(first.is_ok(), "rank {rank} round 1 failed: {first:?}");
        if rank == 2 {
            continue;
        }
        let second = second.as_ref().unwrap();
        match second {
            Err(CollectiveError::RankLost { rank: lost }) => {
                assert_eq!(*lost, 2, "rank {rank} blamed the wrong rank")
            }
            other => panic!("rank {rank}: expected RankLost, got {other:?}"),
        }
        assert!(
            *elapsed < timeout / 2,
            "rank {rank} took {elapsed:?} — EOF not detected eagerly"
        );
    }
}

/// The no-partial-update contract end to end: a rank crashes after `k`
/// full training iterations; the survivors' step `k+1` fails and their
/// parameters are bit-identical to a single-process trainer stopped at
/// iteration `k` — the failed iteration left no trace.
#[test]
fn crashed_rank_leaves_no_partial_update() {
    let n = 6;
    let k = 3;
    let seed = 7;
    let h = TransverseFieldIsing::random(n, 13);
    let cfg = TrainerConfig {
        iterations: k,
        batch_size: 33,
        optimizer: OptimizerChoice::paper_default(),
        local_energy: LocalEnergyConfig::default(),
        seed,
    };

    // Reference: k clean single-process iterations.
    let mut reference = Trainer::new(Made::new(n, 8, 3), IncrementalAutoSampler::new(), cfg);
    reference.run(&h);
    let ref_params = reference.into_wavefunction().params();

    let h2 = h.clone();
    let results = spawn_ranks(3, Duration::from_secs(30), move |mut mesh, rank| {
        let mut t = ShardedTrainer::new(Made::new(n, 8, 3), IncrementalAutoSampler::new(), cfg);
        let mut opt = t.make_optimizer();
        for i in 0..k {
            t.step(&h2, &mut mesh, opt.as_mut())
                .unwrap_or_else(|e| panic!("rank {rank} iter {i}: {e}"));
        }
        if rank == 2 {
            std::thread::sleep(Duration::from_millis(200));
            mesh.abandon();
            return (None, t.into_wavefunction().params());
        }
        let failed = t.step(&h2, &mut mesh, opt.as_mut());
        (Some(failed.err()), t.into_wavefunction().params())
    });

    for (rank, (failure, params)) in results.iter().enumerate() {
        assert_eq!(
            ref_params.as_slice(),
            params.as_slice(),
            "rank {rank}: parameters diverged from the k-iteration reference"
        );
        if rank == 2 {
            continue;
        }
        match failure {
            Some(Some(CollectiveError::RankLost { rank: lost })) => {
                assert_eq!(*lost, 2, "rank {rank} blamed the wrong rank")
            }
            other => panic!("rank {rank}: expected Some(RankLost), got {other:?}"),
        }
    }
}

/// A peer that never comes up: the dialing side gives up with a clean
/// `Handshake` error near the connect deadline — no infinite backoff.
#[test]
fn connect_backoff_gives_up_cleanly_when_peer_never_binds() {
    let ports = reserve_loopback_ports(2).unwrap();
    let peers = peers_for_ports(&ports);
    // Rank 1 dials rank 0's address; nothing ever binds it.
    let mut cfg = MeshConfig::new(1, peers);
    cfg.connect_timeout = Duration::from_millis(600);
    let start = Instant::now();
    let err = Mesh::connect(cfg).err().expect("must not form a mesh");
    let elapsed = start.elapsed();
    assert!(
        matches!(err, CollectiveError::Handshake(_)),
        "expected Handshake, got {err:?}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "gave up after {elapsed:?} — backoff did not respect the deadline"
    );
}

/// The accept side of the same failure: a higher rank that never dials
/// in leaves the acceptor with a clean `Handshake` error naming the
/// missing ranks.
#[test]
fn accept_times_out_cleanly_when_higher_rank_never_dials() {
    let ports = reserve_loopback_ports(2).unwrap();
    let peers = peers_for_ports(&ports);
    // Rank 0 binds and waits for rank 1; rank 1 never starts.
    let mut cfg = MeshConfig::new(0, peers);
    cfg.connect_timeout = Duration::from_millis(600);
    let start = Instant::now();
    let err = Mesh::connect(cfg).err().expect("must not form a mesh");
    let elapsed = start.elapsed();
    match &err {
        CollectiveError::Handshake(msg) => {
            assert!(msg.contains("[1]"), "error should name rank 1: {msg}")
        }
        other => panic!("expected Handshake, got {other:?}"),
    }
    assert!(elapsed < Duration::from_secs(5), "took {elapsed:?}");
}

/// Dying *inside* a collective (after sending a reduce contribution but
/// before the broadcast completes) also resolves: the survivors see
/// either the dirty EOF or a failed send to the dead rank, and nobody
/// waits out the full deadline.
#[test]
fn rank_death_mid_collective_does_not_hang() {
    let timeout = Duration::from_secs(30);
    let results = spawn_ranks(4, timeout, |mut mesh, rank| {
        if rank == 3 {
            // Rank 3's reduce role at stride 1 is to send to rank 2 and
            // exit the reduce loop; it dies before the broadcast phase
            // can reach it.  Sending the frame manually and abandoning
            // reproduces that window.
            std::thread::sleep(Duration::from_millis(100));
            mesh.abandon();
            return (Ok(Vector::default()), Duration::ZERO);
        }
        let start = Instant::now();
        let out = mesh.allreduce_mean(Vector::from_fn(4, |i| (rank + i) as f64));
        (out, start.elapsed())
    });
    for (rank, (out, elapsed)) in results.iter().enumerate() {
        if rank == 3 {
            continue;
        }
        match out {
            Err(CollectiveError::RankLost { rank: lost }) => {
                assert_eq!(*lost, 3, "rank {rank} blamed rank {lost}")
            }
            Err(other) => panic!("rank {rank}: {other:?}"),
            Ok(_) => panic!("rank {rank}: collective succeeded without rank 3"),
        }
        assert!(
            *elapsed < timeout / 2,
            "rank {rank} took {elapsed:?} — not eager"
        );
    }
}
