//! The tentpole contract: collectives over **real TCP sockets** are
//! bit-identical to the in-process oracle.
//!
//! * `allreduce_mean` over a loopback mesh must reproduce
//!   [`vqmc_cluster::allreduce_mean_tree`] — the PR 3 property-tested
//!   reduction — bit for bit, for power-of-two and ragged world sizes,
//!   for adversarial float values, and across many sequential rounds.
//! * `allgather` must return every rank's contribution in rank order,
//!   tolerating ragged lengths (shard sizes differ by one).
//! * The full training stacks ([`ShardedTrainer`] replicated-sampling
//!   mode and [`DistributedTrainer`]'s mesh backend) must match their
//!   single-process / in-process-cluster references bitwise when the
//!   collective actually crosses the kernel's TCP stack.

use std::time::Duration;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vqmc_cluster::{allreduce_mean_tree, Cluster, DeviceSpec, Topology};
use vqmc_core::trainer::{OptimizerChoice, Trainer, TrainerConfig};
use vqmc_core::{Collective, DistributedConfig, DistributedTrainer, ShardedTrainer};
use vqmc_dist::{peers_for_ports, reserve_loopback_ports, Mesh, MeshConfig};
use vqmc_hamiltonian::{LocalEnergyConfig, TransverseFieldIsing};
use vqmc_nn::{Made, WaveFunction};
use vqmc_sampler::IncrementalAutoSampler;
use vqmc_tensor::Vector;

/// Forms a `world`-rank loopback mesh, one thread per rank, and runs
/// `f(mesh, rank)` on each.  Returns the per-rank results in rank
/// order; panics in any rank propagate.
fn with_mesh<T, F>(world: usize, f: F) -> Vec<T>
where
    T: Send + 'static,
    F: Fn(Mesh, usize) -> T + Send + Sync + 'static,
{
    let ports = reserve_loopback_ports(world).expect("reserve ports");
    let peers = peers_for_ports(&ports);
    let f = std::sync::Arc::new(f);
    let handles: Vec<_> = (0..world)
        .map(|rank| {
            let peers = peers.clone();
            let f = f.clone();
            std::thread::spawn(move || {
                let mut cfg = MeshConfig::new(rank, peers);
                cfg.connect_timeout = Duration::from_secs(20);
                cfg.collective_timeout = Duration::from_secs(60);
                let mesh = Mesh::connect(cfg).expect("mesh formation");
                f(mesh, rank)
            })
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("rank panicked"))
        .collect()
}

/// Adversarially-spread magnitudes: catastrophic cancellation bait,
/// denormals, and ulp-separated values — any re-association or
/// reciprocal-multiply shortcut shows up as a bit flip.
fn gen_vector(rng: &mut StdRng, len: usize) -> Vec<f64> {
    (0..len)
        .map(|_| {
            let mag = match rng.gen_range(0..5u32) {
                0 => 1e-300,
                1 => 1e-8,
                2 => 1.0,
                3 => 1e8,
                _ => 1e300,
            };
            let sign = if rng.gen_range(0..2u32) == 0 { -1.0 } else { 1.0 };
            sign * mag * (1.0 + rng.gen_range(0..1_000_000u32) as f64 * 1e-9)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Socket allreduce == in-process oracle tree, bit for bit, across
    /// several sequential rounds (exercising the per-collective seq).
    #[test]
    fn socket_allreduce_matches_oracle_bitwise(
        seed in 0u64..1u64 << 48,
        world in 1usize..=5,
        len in 0usize..40,
        rounds in 1usize..4,
    ) {
        // Oracle: the PR 3 tree over the same rank-ordered inputs.
        let mut expected = Vec::with_capacity(rounds);
        for round in 0..rounds {
            let mut rng = StdRng::seed_from_u64(seed ^ (round as u64) << 32);
            let vectors: Vec<Vector> = (0..world)
                .map(|_| Vector(gen_vector(&mut rng, len)))
                .collect();
            let topo = Topology::new(1, world);
            expected.push(allreduce_mean_tree(vectors, &topo).0);
        }

        let results = with_mesh(world, move |mut mesh, rank| {
            let mut got = Vec::with_capacity(rounds);
            for round in 0..rounds {
                let mut rng = StdRng::seed_from_u64(seed ^ (round as u64) << 32);
                // Re-derive this rank's contribution: ranks 0..r burn
                // the earlier draws in order.
                let mut mine = Vec::new();
                for r in 0..=rank {
                    mine = gen_vector(&mut rng, len);
                    let _ = r;
                }
                got.push(mesh.allreduce_mean(Vector(mine)).expect("allreduce"));
            }
            mesh.shutdown();
            got
        });

        for (rank, got) in results.iter().enumerate() {
            for (round, (g, e)) in got.iter().zip(&expected).enumerate() {
                prop_assert_eq!(g.len(), e.len());
                for (i, (a, b)) in g.iter().zip(e.iter()).enumerate() {
                    prop_assert_eq!(
                        a.to_bits(), b.to_bits(),
                        "rank {} round {} elem {}: socket {} != oracle {}",
                        rank, round, i, a, b
                    );
                }
            }
        }
    }
}

/// Allgather returns every rank's contribution, in rank order, with
/// ragged lengths (rank r contributes r+1 values tagged by rank).
#[test]
fn socket_allgather_preserves_rank_order_and_ragged_lengths() {
    for world in [1usize, 2, 3, 5] {
        let results = with_mesh(world, |mut mesh, rank| {
            let mine = Vector::from_fn(rank + 1, |i| (rank * 100 + i) as f64);
            let parts = mesh.allgather(&mine).expect("allgather");
            mesh.shutdown();
            parts
        });
        for (rank, parts) in results.iter().enumerate() {
            assert_eq!(parts.len(), world, "world {world} rank {rank}");
            for (q, part) in parts.iter().enumerate() {
                assert_eq!(part.len(), q + 1, "world {world} rank {rank} part {q}");
                for (i, v) in part.iter().enumerate() {
                    assert_eq!(*v, (q * 100 + i) as f64);
                }
            }
        }
    }
}

/// Interleaved allreduce/allgather rounds stay in phase — the seq and
/// op tags keep frames from one collective out of the next.
#[test]
fn mixed_collectives_stay_in_phase() {
    let world = 3;
    let results = with_mesh(world, |mut mesh, rank| {
        let mut log = Vec::new();
        for round in 0..6u64 {
            if round % 2 == 0 {
                let v = Vector::from_fn(4, |i| (rank as f64 + 1.0) * (round + 1) as f64 + i as f64);
                log.push(mesh.allreduce_mean(v).expect("allreduce").0);
            } else {
                let v = Vector::from_fn(2, |i| rank as f64 * 10.0 + round as f64 + i as f64);
                let parts = mesh.allgather(&v).expect("allgather");
                log.push(parts.into_iter().flat_map(|p| p.0).collect());
            }
        }
        mesh.shutdown();
        log
    });
    // All ranks see identical allreduce results and identical gathers.
    for rank in 1..world {
        assert_eq!(results[0], results[rank], "rank {rank} diverged from rank 0");
    }
    // Spot-check round 0 against the oracle.
    let vectors: Vec<Vector> = (0..world)
        .map(|r| Vector::from_fn(4, |i| (r as f64 + 1.0) + i as f64))
        .collect();
    let expected = allreduce_mean_tree(vectors, &Topology::new(1, world)).0.clone();
    assert_eq!(results[0][0], expected.0);
}

fn training_config(iters: usize, bs: usize, seed: u64) -> TrainerConfig {
    TrainerConfig {
        iterations: iters,
        batch_size: bs,
        optimizer: OptimizerChoice::paper_default(),
        local_energy: LocalEnergyConfig::default(),
        seed,
    }
}

/// End-to-end golden-path contract: `ShardedTrainer` over real sockets
/// reproduces the plain single-process `Trainer` bitwise — the property
/// that makes `train --ranks N` emit the same trace at any N.
#[test]
fn sharded_training_over_sockets_matches_plain_trainer_bitwise() {
    let n = 7;
    let h = TransverseFieldIsing::random(n, 17);
    let cfg = training_config(5, 50, 3);

    let mut plain = Trainer::new(Made::new(n, 10, 4), IncrementalAutoSampler::new(), cfg);
    let reference = plain.run(&h);
    let ref_params = plain.into_wavefunction().params();

    // 3 ranks: non-power-of-two tree + ragged 17/17/16 shard split.
    for world in [2usize, 3] {
        let h = h.clone();
        let results = with_mesh(world, move |mut mesh, _rank| {
            let mut t = ShardedTrainer::new(
                Made::new(n, 10, 4),
                IncrementalAutoSampler::new(),
                cfg,
            );
            let trace = t.run(&h, &mut mesh).unwrap();
            mesh.shutdown();
            (trace, t.into_wavefunction().params())
        });
        for (rank, (trace, params)) in results.iter().enumerate() {
            for (i, (a, b)) in reference.records.iter().zip(&trace.records).enumerate() {
                assert_eq!(
                    a.energy.to_bits(),
                    b.energy.to_bits(),
                    "world {world} rank {rank} iter {i}: energy diverged over sockets"
                );
                assert_eq!(a.std_dev.to_bits(), b.std_dev.to_bits());
                assert_eq!(a.min_energy.to_bits(), b.min_energy.to_bits());
            }
            assert_eq!(
                ref_params.as_slice(),
                params.as_slice(),
                "world {world} rank {rank}: parameters diverged over sockets"
            );
        }
    }
}

/// The data-parallel arm: `DistributedTrainer` over a socket mesh is
/// bit-identical to the same trainer over the in-process simulated
/// cluster (per-rank sampling, tree-reduced stats and gradient).
#[test]
fn distributed_trainer_over_sockets_matches_cluster_backend_bitwise() {
    let n = 6;
    let h = TransverseFieldIsing::random(n, 11);
    let cfg = DistributedConfig {
        iterations: 4,
        minibatch_per_device: 24,
        optimizer: OptimizerChoice::paper_default(),
        local_energy: LocalEnergyConfig::default(),
        seed: 5,
        cost_hidden: 8,
        cost_offdiag: n,
    };

    for world in [2usize, 3] {
        // Reference: the simulated cluster backend.
        let cluster = Cluster::new(Topology::new(1, world), DeviceSpec::v100());
        let mut reference = DistributedTrainer::new(
            cluster,
            Made::new(n, 8, 2),
            IncrementalAutoSampler::new(),
            cfg,
        );
        let ref_trace = reference.run(&h);
        let ref_params = reference.params();

        let h2 = h.clone();
        let results = with_mesh(world, move |mesh, _rank| {
            let mut t = DistributedTrainer::over_mesh(
                Box::new(mesh),
                Made::new(n, 8, 2),
                IncrementalAutoSampler::new(),
                cfg,
            );
            let trace = t.try_run(&h2).unwrap();
            (trace, t.params())
        });
        for (rank, (trace, params)) in results.iter().enumerate() {
            for (i, (a, b)) in ref_trace.records.iter().zip(&trace.records).enumerate() {
                assert_eq!(
                    a.energy.to_bits(),
                    b.energy.to_bits(),
                    "world {world} rank {rank} iter {i}"
                );
                assert_eq!(a.std_dev.to_bits(), b.std_dev.to_bits());
                assert_eq!(a.min_energy.to_bits(), b.min_energy.to_bits());
            }
            assert_eq!(
                ref_params.as_slice(),
                params.as_slice(),
                "world {world} rank {rank}: parameters diverged"
            );
        }
    }
}

/// World size 1 short-circuits without any sockets and still applies
/// the oracle's exact mean (true division by 1).
#[test]
fn world_of_one_needs_no_sockets() {
    let mut mesh = Mesh::connect(MeshConfig::new(0, vec!["127.0.0.1:1".into()])).unwrap();
    assert_eq!(mesh.rank(), 0);
    assert_eq!(mesh.world(), 1);
    let v = Vector::from_fn(5, |i| i as f64 + 0.5);
    let expected = allreduce_mean_tree(vec![v.clone()], &Topology::new(1, 1)).0.clone();
    let got = mesh.allreduce_mean(v.clone()).unwrap();
    assert_eq!(got.0, expected.0);
    let parts = mesh.allgather(&v).unwrap();
    assert_eq!(parts.len(), 1);
    assert_eq!(parts[0].0, v.0);
    mesh.shutdown();
}
