//! Single-box launcher: reserves loopback ports and spawns one child
//! process per rank, re-executing the current binary with per-rank
//! flags.  The parent waits for all children and reports the first
//! failure (killing the stragglers so a crashed rank never leaves the
//! job wedged).

use std::io;
use std::net::TcpListener;
use std::process::{Child, Command};

/// Reserves `n` distinct loopback ports by binding ephemeral listeners
/// and immediately dropping them.  The OS keeps recently-closed ports
/// out of ephemeral reuse long enough for the children to re-bind them.
pub fn reserve_loopback_ports(n: usize) -> io::Result<Vec<u16>> {
    // Hold all listeners simultaneously so the same port is never
    // handed out twice.
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<io::Result<_>>()?;
    listeners.iter().map(|l| Ok(l.local_addr()?.port())).collect()
}

/// Formats a reserved port list as the `--peers` address list.
pub fn peers_for_ports(ports: &[u16]) -> Vec<String> {
    ports.iter().map(|p| format!("127.0.0.1:{p}")).collect()
}

/// Spawns `world` copies of `exe`, one per rank.  `build_args(rank,
/// &peers)` produces each child's full argument vector.  Rank 0
/// inherits the parent's stdout/stderr (it is the printing rank);
/// other ranks inherit stderr only, so their panics stay visible
/// without interleaving into rank 0's report.
///
/// Returns when every child has exited.  If any child fails, the
/// remaining children are killed and an error naming the first failed
/// rank is returned.
pub fn run_ranks(
    exe: &str,
    world: usize,
    build_args: impl Fn(usize, &[String]) -> Vec<String>,
) -> io::Result<()> {
    let ports = reserve_loopback_ports(world)?;
    let peers = peers_for_ports(&ports);
    let mut children: Vec<(usize, Child)> = Vec::with_capacity(world);
    for rank in 0..world {
        let args = build_args(rank, &peers);
        let mut cmd = Command::new(exe);
        cmd.args(&args);
        if rank != 0 {
            cmd.stdout(std::process::Stdio::null());
        }
        match cmd.spawn() {
            Ok(child) => children.push((rank, child)),
            Err(e) => {
                for (_, mut c) in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(io::Error::new(
                    e.kind(),
                    format!("spawning rank {rank}: {e}"),
                ));
            }
        }
    }
    let mut first_failure: Option<(usize, std::process::ExitStatus)> = None;
    for i in 0..children.len() {
        let status = children[i].1.wait()?;
        let rank = children[i].0;
        if !status.success() && first_failure.is_none() {
            first_failure = Some((rank, status));
            // A failed rank strands its peers mid-collective; their own
            // RankLost timeouts would eventually fire, but killing them
            // returns control to the user immediately.  The loop keeps
            // running, so the killed ranks are reaped by their own
            // `wait` below.
            for (_, other) in children.iter_mut().skip(i + 1) {
                let _ = other.kill();
            }
        }
    }
    match first_failure {
        Some((rank, status)) => Err(io::Error::other(format!(
            "rank {rank} exited with {status}"
        ))),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_ports_are_distinct() {
        let ports = reserve_loopback_ports(8).unwrap();
        let mut seen = std::collections::HashSet::new();
        for p in &ports {
            assert!(seen.insert(*p), "duplicate reserved port {p}");
        }
        let peers = peers_for_ports(&ports);
        assert_eq!(peers.len(), 8);
        assert!(peers[0].starts_with("127.0.0.1:"));
    }

    #[test]
    fn run_ranks_reports_failed_rank() {
        // `false` exits 1 for every rank; the launcher must surface the
        // failure instead of hanging or claiming success.
        let err = run_ranks("false", 2, |_, _| Vec::new()).unwrap_err();
        assert!(err.to_string().contains("exited with"), "{err}");
    }

    #[test]
    fn run_ranks_succeeds_on_clean_exits() {
        run_ranks("true", 3, |_, _| Vec::new()).unwrap();
    }
}
