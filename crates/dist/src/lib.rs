//! # vqmc-dist
//!
//! Multi-**process** data-parallel training over real TCP sockets.
//! Where `vqmc-cluster` *simulates* a machine (synthetic clock, modelled
//! interconnect) and `vqmc_core::backend::ThreadMesh` rendezvouses
//! threads in one address space, this crate runs the same collectives
//! between separate OS processes over loopback (or a real network):
//!
//! * [`wire`] — the framed message set (HELLO handshake, GOODBYE
//!   orderly-leave, DATA collective hops) carried inside `vqmc-net`'s
//!   length-prefixed framing;
//! * [`mesh`] — [`Mesh`]: the full-mesh [`vqmc_core::Collective`] whose
//!   `allreduce_mean` replays the **exact pairwise schedule** of
//!   [`vqmc_cluster::allreduce_mean_tree`], making socket training
//!   bit-identical to the in-process oracle (property-tested in
//!   `tests/mesh_oracle.rs`);
//! * [`launcher`] — single-box helper that reserves loopback ports and
//!   spawns one child process per rank.
//!
//! The determinism contract and failure semantics (eager
//! [`vqmc_core::CollectiveError::RankLost`] on dirty EOF, per-collective
//! deadlines, no partial updates) are documented on [`mesh`].

#![warn(missing_docs)]

pub mod launcher;
pub mod mesh;
pub mod wire;

pub use launcher::{peers_for_ports, reserve_loopback_ports, run_ranks};
pub use mesh::{Mesh, MeshConfig};
