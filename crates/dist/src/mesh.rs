//! The socket rank mesh: a full TCP mesh of `world` processes with
//! binomial-tree collectives whose pairwise combination order is the
//! **verbatim schedule** of [`vqmc_cluster::allreduce_mean_tree`] — so
//! an allreduce over the wire returns the same bits the in-process
//! oracle returns for the same rank-ordered inputs (property-tested in
//! this crate's `mesh_oracle` suite).
//!
//! ## Topology and handshake
//!
//! Rank `r` listens on `peers[r]`, dials every lower rank (with bounded
//! backoff — a peer that never comes up yields a clean
//! [`CollectiveError::Handshake`], not a hang) and accepts from every
//! higher rank.  A `HELLO`/`HELLO_ACK` exchange pins protocol version,
//! world size and rank identity before any collective traffic.
//!
//! ## Determinism
//!
//! The reduce phase runs the oracle's exact schedule: at stride `s`,
//! rank `r` with `r % 2s == 0` absorbs `r+s` via `acc.axpy(1.0, recv)`
//! — the same [`vqmc_tensor::Vector::axpy`] call, in the same order —
//! and rank 0 finishes with true division by `L`.  The broadcast
//! retraces the tree.  Nothing is ever re-associated, so the result is
//! bit-identical at any byte-level fragmentation the TCP stream
//! chooses (the `vqmc-net` decoder reassembles splits losslessly).
//!
//! ## Failure semantics
//!
//! Every collective runs under a deadline.  A peer EOF **without** a
//! prior `GOODBYE` is a crash: the mesh poisons itself and the current
//! (and every later) collective returns [`CollectiveError::RankLost`]
//! promptly on all survivors — no hang, and because trainers only
//! apply updates after all of an iteration's collectives succeed, no
//! partial gradient either.  An orderly shutdown sends `GOODBYE`
//! first, so ranks finishing their last iteration at different times
//! do not misread each other's close as a crash.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use polling::{Event, Poller};
use vqmc_core::backend::{Collective, CollectiveError};
use vqmc_net::{Connection, ReadStatus};
use vqmc_tensor::Vector;

use crate::wire::{self, Msg, OP_BCAST, OP_GATHER, OP_GBCAST, OP_REDUCE};

/// Mesh formation parameters for one rank.
#[derive(Clone, Debug)]
pub struct MeshConfig {
    /// This process's rank in `0..peers.len()`.
    pub rank: usize,
    /// One listen address per rank (`peers[rank]` is ours).
    pub peers: Vec<String>,
    /// Budget for the whole handshake: bind, dial-with-backoff, accept.
    pub connect_timeout: Duration,
    /// Deadline for each collective once the mesh is up.
    pub collective_timeout: Duration,
    /// Upper bound on one frame's payload (gradients are `d` doubles;
    /// the default admits ~128M parameters).
    pub max_payload: usize,
}

impl MeshConfig {
    /// Defaults: 10 s handshake, 30 s per collective, 1 GiB frames.
    pub fn new(rank: usize, peers: Vec<String>) -> Self {
        MeshConfig {
            rank,
            peers,
            connect_timeout: Duration::from_secs(10),
            collective_timeout: Duration::from_secs(30),
            max_payload: 1 << 30,
        }
    }
}

struct Peer {
    conn: Connection,
    /// Parsed DATA frames from this peer, in arrival order (TCP
    /// preserves per-peer FIFO; the schedule never needs reordering
    /// within one peer).
    inbox: VecDeque<(u8, u64, Vec<f64>)>,
    /// False once EOF was observed.
    open: bool,
    /// True once a GOODBYE arrived — a later EOF is an orderly leave.
    goodbye: bool,
    /// Whether write readiness is currently armed on the poller.
    write_armed: bool,
}

/// One rank's handle on the TCP mesh.  See the module docs.
pub struct Mesh {
    rank: usize,
    world: usize,
    timeout: Duration,
    poller: Poller,
    /// Indexed by peer rank; `None` at our own slot.
    peers: Vec<Option<Peer>>,
    events: Vec<Event>,
    /// Collective sequence number (incremented at the start of each).
    seq: u64,
    /// Sticky failure; set once, returned by every later collective.
    dead: Option<CollectiveError>,
    /// Set once the orderly-leave GOODBYEs have been sent.
    said_goodbye: bool,
}

fn hs_err(e: impl std::fmt::Display) -> CollectiveError {
    CollectiveError::Handshake(e.to_string())
}

/// Blocking framed write for the handshake phase (before the sockets
/// go nonblocking).
fn write_frame_blocking(stream: &mut TcpStream, payload: &[u8]) -> io::Result<()> {
    stream.write_all(&(payload.len() as u32).to_le_bytes())?;
    stream.write_all(payload)
}

/// Blocking framed read for the handshake phase.
fn read_frame_blocking(stream: &mut TcpStream, max: usize) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("handshake frame of {len} bytes"),
        ));
    }
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

impl Mesh {
    /// Forms the mesh: binds, dials lower ranks with backoff, accepts
    /// higher ranks, validates every HELLO.  Fails cleanly (never
    /// hangs) if a peer does not come up within `connect_timeout`.
    pub fn connect(cfg: MeshConfig) -> Result<Mesh, CollectiveError> {
        let world = cfg.peers.len();
        if world == 0 || cfg.rank >= world {
            return Err(hs_err(format!(
                "rank {} outside world of {world}",
                cfg.rank
            )));
        }
        let poller = Poller::new().map_err(hs_err)?;
        let mut mesh = Mesh {
            rank: cfg.rank,
            world,
            timeout: cfg.collective_timeout,
            poller,
            peers: (0..world).map(|_| None).collect(),
            events: Vec::new(),
            seq: 0,
            dead: None,
            said_goodbye: false,
        };
        if world == 1 {
            return Ok(mesh);
        }
        let deadline = Instant::now() + cfg.connect_timeout;

        // Bind before dialing anyone: lower ranks may already be
        // dialing us, and the listener backlog holds their connection
        // attempts until we reach the accept loop.
        let listener = TcpListener::bind(&cfg.peers[cfg.rank])
            .map_err(|e| hs_err(format!("bind {}: {e}", cfg.peers[cfg.rank])))?;
        listener.set_nonblocking(true).map_err(hs_err)?;

        // Dial every lower rank, retrying while its listener comes up.
        for lower in 0..cfg.rank {
            let stream = dial_with_backoff(&cfg.peers[lower], deadline, lower)?;
            let mut stream = stream;
            let remaining = deadline.saturating_duration_since(Instant::now());
            stream.set_read_timeout(Some(remaining.max(Duration::from_millis(1)))).map_err(hs_err)?;
            stream.set_write_timeout(Some(remaining.max(Duration::from_millis(1)))).map_err(hs_err)?;
            write_frame_blocking(
                &mut stream,
                &wire::encode_hello(cfg.rank as u32, world as u32),
            )
            .map_err(|e| hs_err(format!("hello to rank {lower}: {e}")))?;
            let ack = read_frame_blocking(&mut stream, 64)
                .map_err(|e| hs_err(format!("hello-ack from rank {lower}: {e}")))?;
            match wire::parse(&ack).map_err(hs_err)? {
                Msg::HelloAck { rank, world: w }
                    if rank as usize == lower && w as usize == world => {}
                other => {
                    return Err(hs_err(format!(
                        "rank {lower} answered with {other:?} (expected HelloAck for world {world})"
                    )))
                }
            }
            mesh.install_peer(lower, stream, cfg.max_payload)?;
        }

        // Accept every higher rank; identify each by its HELLO.
        let expected_higher = world - cfg.rank - 1;
        let mut accepted = 0;
        while accepted < expected_higher {
            if Instant::now() >= deadline {
                let missing: Vec<usize> = (cfg.rank + 1..world)
                    .filter(|&r| mesh.peers[r].is_none())
                    .collect();
                return Err(hs_err(format!(
                    "ranks {missing:?} did not connect within {:?}",
                    cfg.connect_timeout
                )));
            }
            match listener.accept() {
                Ok((mut stream, _)) => {
                    stream.set_nonblocking(false).map_err(hs_err)?;
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    stream
                        .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))
                        .map_err(hs_err)?;
                    let hello = read_frame_blocking(&mut stream, 64)
                        .map_err(|e| hs_err(format!("hello: {e}")))?;
                    let from = match wire::parse(&hello).map_err(hs_err)? {
                        Msg::Hello { rank, world: w } if w as usize == world => rank as usize,
                        other => {
                            return Err(hs_err(format!(
                                "bad hello {other:?} (expected world {world})"
                            )))
                        }
                    };
                    if from <= cfg.rank || from >= world {
                        return Err(hs_err(format!("hello from out-of-range rank {from}")));
                    }
                    if mesh.peers[from].is_some() {
                        return Err(hs_err(format!("duplicate connection from rank {from}")));
                    }
                    write_frame_blocking(
                        &mut stream,
                        &wire::encode_hello_ack(cfg.rank as u32, world as u32),
                    )
                    .map_err(|e| hs_err(format!("hello-ack to rank {from}: {e}")))?;
                    mesh.install_peer(from, stream, cfg.max_payload)?;
                    accepted += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(hs_err(format!("accept: {e}"))),
            }
        }
        Ok(mesh)
    }

    fn install_peer(
        &mut self,
        rank: usize,
        stream: TcpStream,
        max_payload: usize,
    ) -> Result<(), CollectiveError> {
        // Clear the handshake's blocking timeouts; Connection flips the
        // socket to nonblocking.
        let _ = stream.set_read_timeout(None);
        let _ = stream.set_write_timeout(None);
        let conn = Connection::new(stream, max_payload).map_err(hs_err)?;
        self.poller
            .add(conn.raw_fd(), rank, true, false)
            .map_err(hs_err)?;
        self.peers[rank] = Some(Peer {
            conn,
            inbox: VecDeque::new(),
            open: true,
            goodbye: false,
            write_armed: false,
        });
        Ok(())
    }

    /// This rank's index.
    pub fn mesh_rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn mesh_world(&self) -> usize {
        self.world
    }

    fn poison(&mut self, e: CollectiveError) -> CollectiveError {
        if self.dead.is_none() {
            self.dead = Some(e.clone());
        }
        self.dead.clone().unwrap()
    }

    /// One poller pass: drain readable peers into inboxes, progress
    /// writable peers' flushes.  A dirty EOF (no GOODBYE first)
    /// anywhere poisons the mesh — the error is returned immediately.
    fn pump(&mut self, wait: Duration) -> Result<(), CollectiveError> {
        self.events.clear();
        let mut events = std::mem::take(&mut self.events);
        let res = self.poller.wait(&mut events, Some(wait));
        let outcome = match res {
            Ok(_) => {
                let mut failure = None;
                for ev in &events {
                    let r = ev.key;
                    if r >= self.peers.len() {
                        continue;
                    }
                    if ev.readable {
                        if let Err(e) = self.drain_peer_reads(r) {
                            failure.get_or_insert(e);
                        }
                    }
                    if ev.writable {
                        if let Err(e) = self.progress_peer_write(r) {
                            failure.get_or_insert(e);
                        }
                    }
                }
                match failure {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }
            Err(e) => Err(CollectiveError::Io(format!("poll: {e}"))),
        };
        self.events = events;
        outcome.map_err(|e| self.poison(e))
    }

    /// Reads everything currently available from peer `r`, parsing
    /// DATA frames into its inbox.  Returns the poison-worthy error if
    /// the peer crashed (dirty EOF) or spoke garbage.
    fn drain_peer_reads(&mut self, r: usize) -> Result<(), CollectiveError> {
        let Some(peer) = self.peers[r].as_mut() else {
            return Ok(());
        };
        if !peer.open {
            return Ok(());
        }
        let mut frames = Vec::new();
        let status = peer.conn.read_frames(|payload| frames.push(payload));
        let mut result = Ok(());
        match status {
            Ok(ReadStatus::Open) => {}
            Ok(ReadStatus::Eof) => {
                peer.open = false;
            }
            Err(_) => {
                // Reset / framing violation: treat as a crash.
                peer.open = false;
                result = Err(CollectiveError::RankLost { rank: r });
            }
        }
        let mut blamed = None;
        for payload in frames {
            match wire::parse(&payload) {
                Ok(Msg::Data { op, seq, values }) => peer.inbox.push_back((op, seq, values)),
                Ok(Msg::Goodbye { blame }) => {
                    peer.goodbye = true;
                    blamed = blamed.or(blame);
                }
                Ok(other) => {
                    return Err(CollectiveError::Protocol(format!(
                        "rank {r} sent {other:?} after handshake"
                    )))
                }
                Err(e) => {
                    return Err(CollectiveError::Protocol(format!("rank {r}: {e}")))
                }
            }
        }
        let crashed = !peer.open && !peer.goodbye;
        if let Some(b) = blamed {
            // The peer left because it saw rank `b` die; adopt that
            // root cause so every survivor blames the same rank no
            // matter whose departure it noticed first.
            self.poison(CollectiveError::RankLost { rank: b as usize });
        }
        if crashed {
            // Crash: the peer vanished without an orderly GOODBYE.
            return Err(CollectiveError::RankLost { rank: r });
        }
        result
    }

    fn progress_peer_write(&mut self, r: usize) -> Result<(), CollectiveError> {
        let Some(peer) = self.peers[r].as_mut() else {
            return Ok(());
        };
        match peer.conn.flush() {
            Ok(true) => {
                if peer.write_armed {
                    peer.write_armed = false;
                    self.poller
                        .modify(peer.conn.raw_fd(), r, true, false)
                        .map_err(|e| CollectiveError::Io(e.to_string()))?;
                }
                Ok(())
            }
            Ok(false) => Ok(()),
            Err(_) => {
                peer.open = false;
                Err(CollectiveError::RankLost { rank: r })
            }
        }
    }

    /// Queues `values` to peer `to` and flushes until the kernel has
    /// accepted every byte (waiting on write readiness under the
    /// deadline when the socket buffer fills).
    fn send(
        &mut self,
        to: usize,
        op: u8,
        seq: u64,
        values: &[f64],
        deadline: Instant,
    ) -> Result<(), CollectiveError> {
        if let Some(e) = &self.dead {
            return Err(e.clone());
        }
        {
            let Some(peer) = self.peers[to].as_mut() else {
                return Err(self.poison(CollectiveError::Protocol(format!(
                    "send to unknown rank {to}"
                ))));
            };
            if !peer.open {
                return Err(self.poison(CollectiveError::RankLost { rank: to }));
            }
            peer.conn.queue_payload(&wire::encode_data(op, seq, values));
        }
        loop {
            let peer = self.peers[to].as_mut().expect("peer exists");
            match peer.conn.flush() {
                Ok(true) => {
                    if peer.write_armed {
                        peer.write_armed = false;
                        let fd = peer.conn.raw_fd();
                        self.poller
                            .modify(fd, to, true, false)
                            .map_err(|e| self.poison(CollectiveError::Io(e.to_string())))?;
                    }
                    return Ok(());
                }
                Ok(false) => {
                    if !peer.write_armed {
                        peer.write_armed = true;
                        let fd = peer.conn.raw_fd();
                        self.poller
                            .modify(fd, to, true, true)
                            .map_err(|e| self.poison(CollectiveError::Io(e.to_string())))?;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(self.poison(CollectiveError::Timeout { rank: Some(to) }));
                    }
                    self.pump(deadline - now)?;
                }
                Err(_) => {
                    peer.open = false;
                    return Err(self.poison(CollectiveError::RankLost { rank: to }));
                }
            }
        }
    }

    /// Receives the next DATA frame from `from`, validating phase and
    /// sequence.  Polls (and services every peer) under the deadline.
    ///
    /// The inbox is consulted **before** the poison flag: a rank that
    /// fully contributed to the current collective and then crashed
    /// must not retroactively fail it — its buffered frames are valid
    /// and complete (TCP delivers data before the FIN, and the decoder
    /// drains before reporting EOF).  The poison stays sticky for the
    /// *next* collective.
    fn recv(
        &mut self,
        from: usize,
        op: u8,
        seq: u64,
        deadline: Instant,
    ) -> Result<Vec<f64>, CollectiveError> {
        loop {
            let Some(peer) = self.peers[from].as_mut() else {
                return Err(self.poison(CollectiveError::Protocol(format!(
                    "recv from unknown rank {from}"
                ))));
            };
            let peer_open = peer.open;
            if let Some((got_op, got_seq, values)) = peer.inbox.pop_front() {
                if got_op != op || got_seq != seq {
                    return Err(self.poison(CollectiveError::Protocol(format!(
                        "rank {from}: expected op {op} seq {seq}, got op {got_op} seq {got_seq}"
                    ))));
                }
                return Ok(values);
            }
            if let Some(e) = &self.dead {
                // Some rank is gone and our sender is not done: the
                // tree cannot complete; fail now rather than wait out
                // the deadline.  Checked before the per-peer close so
                // an already-established root cause (a dirty EOF, or a
                // blame carried by a peer's GOODBYE) wins over blaming
                // whichever orderly departure we noticed afterwards.
                return Err(e.clone());
            }
            if !peer_open {
                // Closed (orderly or not) with nothing buffered while
                // we still need its data: the rank is lost to us.
                return Err(self.poison(CollectiveError::RankLost { rank: from }));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(self.poison(CollectiveError::Timeout { rank: Some(from) }));
            }
            // Poison from the pump is recorded in `self.dead`; loop
            // back so a frame it delivered alongside the failure still
            // wins.
            let _ = self.pump(deadline - now);
        }
    }

    /// Orderly leave: tells every peer this rank is done (so the
    /// subsequent close is not mistaken for a crash) and flushes.
    /// Errors are ignored — a peer that already left cannot be told
    /// twice.
    pub fn shutdown(mut self) {
        self.say_goodbyes();
        // Drop finishes the close; `said_goodbye` keeps it from
        // re-sending.
    }

    /// Simulates a crash (fault injection): closes every connection
    /// **without** the orderly GOODBYE.  Peers observe a dirty EOF and
    /// report this rank as [`CollectiveError::RankLost`].
    pub fn abandon(mut self) {
        self.said_goodbye = true; // suppress the Drop goodbye
    }

    fn say_goodbyes(&mut self) {
        if self.said_goodbye {
            return;
        }
        self.said_goodbye = true;
        // Leaving because a rank died? Tell the peers who, so every
        // survivor reports the root cause rather than whichever
        // departure it noticed first.
        let blame = match &self.dead {
            Some(CollectiveError::RankLost { rank }) => Some(*rank as u32),
            _ => None,
        };
        let deadline = Instant::now() + self.timeout;
        for r in 0..self.world {
            if let Some(peer) = self.peers[r].as_mut() {
                if peer.open {
                    peer.conn.queue_payload(&wire::encode_goodbye(blame));
                }
            }
        }
        for r in 0..self.world {
            while let Some(peer) = self.peers[r].as_mut() {
                if !peer.open {
                    break;
                }
                match peer.conn.flush() {
                    Ok(true) => break,
                    Ok(false) => {
                        if Instant::now() >= deadline {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    Err(_) => break,
                }
            }
        }
    }
}

impl Drop for Mesh {
    /// A mesh dropped on a normal path (e.g. owned inside a boxed
    /// [`Collective`] a trainer consumes) still leaves **orderly** —
    /// ranks finish their last collective at different moments, and a
    /// bare FIN here would read as a crash to a peer mid-drain.  During
    /// a panic unwind the goodbye is deliberately skipped: the peers
    /// *should* see this rank as lost.
    fn drop(&mut self) {
        if !std::thread::panicking() {
            self.say_goodbyes();
        }
    }
}

fn dial_with_backoff(
    addr: &str,
    deadline: Instant,
    rank: usize,
) -> Result<TcpStream, CollectiveError> {
    let mut delay = Duration::from_millis(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if Instant::now() + delay >= deadline {
                    return Err(hs_err(format!(
                        "rank {rank} at {addr} did not come up before the connect deadline: {e}"
                    )));
                }
                std::thread::sleep(delay);
                // Exponential backoff, capped well below human scale so
                // a late-starting peer is picked up quickly.
                delay = (delay * 2).min(Duration::from_millis(200));
            }
        }
    }
}

impl Collective for Mesh {
    fn rank(&self) -> usize {
        self.rank
    }

    fn world(&self) -> usize {
        self.world
    }

    /// The oracle schedule over TCP.  Reduce: at stride `s`, ranks with
    /// `r % 2s == s` send their accumulator to `r − s` and move to the
    /// broadcast phase; ranks with `r % 2s == 0` absorb `r + s` (when
    /// it exists) via the same `axpy(1.0, ·)` the in-process tree
    /// performs.  Rank 0 then applies true division by `L` and the
    /// broadcast retraces the tree from stride `next_power_of_two(L)/2`
    /// down to 1.
    fn allreduce_mean(&mut self, v: Vector) -> Result<Vector, CollectiveError> {
        if let Some(e) = &self.dead {
            return Err(e.clone());
        }
        self.seq += 1;
        let seq = self.seq;
        let l = self.world;
        let r = self.rank;
        let deadline = Instant::now() + self.timeout;
        let mut acc = v;

        // Reduce phase.
        let mut stride = 1;
        while stride < l {
            if r % (2 * stride) == stride {
                self.send(r - stride, OP_REDUCE, seq, acc.as_slice(), deadline)?;
                break;
            }
            if r.is_multiple_of(2 * stride) && r + stride < l {
                let recv = self.recv(r + stride, OP_REDUCE, seq, deadline)?;
                if recv.len() != acc.len() {
                    return Err(self.poison(CollectiveError::Protocol(format!(
                        "rank {} reduced {} values into {} (ragged allreduce)",
                        r + stride,
                        recv.len(),
                        acc.len()
                    ))));
                }
                acc.axpy(1.0, &Vector(recv));
            }
            stride *= 2;
        }
        if r == 0 {
            // True division, matching the oracle bit for bit (see the
            // 1-ulp note in vqmc_cluster::allreduce_mean_tree).
            for x in acc.as_mut_slice() {
                *x /= l as f64;
            }
        }

        // Broadcast phase retraces the tree top-down.
        let mut stride = l.next_power_of_two() / 2;
        while stride >= 1 {
            if r % (2 * stride) == stride {
                let recv = self.recv(r - stride, OP_BCAST, seq, deadline)?;
                acc = Vector(recv);
            } else if r.is_multiple_of(2 * stride) && r + stride < l {
                self.send(r + stride, OP_BCAST, seq, acc.as_slice(), deadline)?;
            }
            if stride == 1 {
                break;
            }
            stride /= 2;
        }
        Ok(acc)
    }

    /// Gather to rank 0, then rank 0 streams all `L` parts to every
    /// rank in rank order (per-peer FIFO keeps them ordered).  Lengths
    /// may differ across ranks — the trainer's shard sizes do.
    fn allgather(&mut self, v: &Vector) -> Result<Vec<Vector>, CollectiveError> {
        if let Some(e) = &self.dead {
            return Err(e.clone());
        }
        self.seq += 1;
        let seq = self.seq;
        let l = self.world;
        let deadline = Instant::now() + self.timeout;
        if l == 1 {
            return Ok(vec![v.clone()]);
        }
        if self.rank == 0 {
            let mut parts: Vec<Vector> = Vec::with_capacity(l);
            parts.push(v.clone());
            for q in 1..l {
                parts.push(Vector(self.recv(q, OP_GATHER, seq, deadline)?));
            }
            for q in 1..l {
                for part in parts.iter() {
                    let values: Vec<f64> = part.as_slice().to_vec();
                    self.send(q, OP_GBCAST, seq, &values, deadline)?;
                }
            }
            Ok(parts)
        } else {
            self.send(0, OP_GATHER, seq, v.as_slice(), deadline)?;
            let mut parts = Vec::with_capacity(l);
            for _ in 0..l {
                parts.push(Vector(self.recv(0, OP_GBCAST, seq, deadline)?));
            }
            Ok(parts)
        }
    }
}
