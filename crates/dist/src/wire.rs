//! The rank-mesh wire protocol.
//!
//! Every message travels inside the `vqmc-net` length-prefixed framing
//! (`u32le payload_len · payload`); this module defines the payloads:
//!
//! ```text
//! HELLO     0x01 · version u8 · rank u32le · world u32le      (handshake, connector → acceptor)
//! HELLO_ACK 0x02 · version u8 · rank u32le · world u32le      (acceptor → connector)
//! GOODBYE   0x03                                              (orderly leave; EOF after this is benign)
//! DATA      0x10 · op u8 · seq u64le · f64le × k              (collective payload)
//! ```
//!
//! `seq` is the collective's sequence number, identical on every rank
//! of an SPMD program — a mismatch means the mesh desynchronised and is
//! reported as a protocol error rather than silently combining vectors
//! from different iterations.  `op` distinguishes the phases so a
//! desync inside one collective (reduce frame meeting a broadcast
//! expectation) is equally loud.

/// Protocol version byte in HELLO/HELLO_ACK.
pub const VERSION: u8 = 1;

/// Reduce-phase contribution (child → parent in the binomial tree).
pub const OP_REDUCE: u8 = 0;
/// Broadcast-phase mean (parent → child).
pub const OP_BCAST: u8 = 1;
/// Allgather contribution (rank → rank 0).
pub const OP_GATHER: u8 = 2;
/// Allgather distribution (rank 0 → rank, one frame per source rank).
pub const OP_GBCAST: u8 = 3;

const TAG_HELLO: u8 = 0x01;
const TAG_HELLO_ACK: u8 = 0x02;
const TAG_GOODBYE: u8 = 0x03;
const TAG_DATA: u8 = 0x10;

/// A decoded mesh message.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// Handshake opener.
    Hello {
        /// Sender's rank.
        rank: u32,
        /// Sender's world size.
        world: u32,
    },
    /// Handshake acknowledgement.
    HelloAck {
        /// Acceptor's rank.
        rank: u32,
        /// Acceptor's world size.
        world: u32,
    },
    /// Orderly leave: the sender has completed every collective it will
    /// ever run; a subsequent EOF from it is not a rank loss.  A rank
    /// that leaves because it observed a *crash* carries the culprit in
    /// `blame`, so survivors converge on the root cause instead of
    /// blaming whichever departure they happened to notice first.
    Goodbye {
        /// The rank whose loss caused this departure, if any.
        blame: Option<u32>,
    },
    /// One collective hop's worth of doubles.
    Data {
        /// Phase tag (`OP_*`).
        op: u8,
        /// Collective sequence number.
        seq: u64,
        /// The values, in little-endian f64 wire order.
        values: Vec<f64>,
    },
}

/// Encodes a HELLO payload.
pub fn encode_hello(rank: u32, world: u32) -> Vec<u8> {
    encode_handshake(TAG_HELLO, rank, world)
}

/// Encodes a HELLO_ACK payload.
pub fn encode_hello_ack(rank: u32, world: u32) -> Vec<u8> {
    encode_handshake(TAG_HELLO_ACK, rank, world)
}

fn encode_handshake(tag: u8, rank: u32, world: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(10);
    out.push(tag);
    out.push(VERSION);
    out.extend_from_slice(&rank.to_le_bytes());
    out.extend_from_slice(&world.to_le_bytes());
    out
}

/// Encodes a GOODBYE payload, optionally naming the rank whose loss
/// caused this departure.
pub fn encode_goodbye(blame: Option<u32>) -> Vec<u8> {
    match blame {
        None => vec![TAG_GOODBYE],
        Some(rank) => {
            let mut out = Vec::with_capacity(5);
            out.push(TAG_GOODBYE);
            out.extend_from_slice(&rank.to_le_bytes());
            out
        }
    }
}

/// Encodes a DATA payload.
pub fn encode_data(op: u8, seq: u64, values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(10 + values.len() * 8);
    out.push(TAG_DATA);
    out.push(op);
    out.extend_from_slice(&seq.to_le_bytes());
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Parses one framed payload into a [`Msg`].
pub fn parse(payload: &[u8]) -> Result<Msg, String> {
    match payload.first() {
        Some(&tag @ (TAG_HELLO | TAG_HELLO_ACK)) => {
            if payload.len() != 10 {
                return Err(format!("handshake frame of {} bytes", payload.len()));
            }
            if payload[1] != VERSION {
                return Err(format!(
                    "protocol version {} (this build speaks {VERSION})",
                    payload[1]
                ));
            }
            let rank = u32::from_le_bytes(payload[2..6].try_into().unwrap());
            let world = u32::from_le_bytes(payload[6..10].try_into().unwrap());
            Ok(if tag == TAG_HELLO {
                Msg::Hello { rank, world }
            } else {
                Msg::HelloAck { rank, world }
            })
        }
        Some(&TAG_GOODBYE) => match payload.len() {
            1 => Ok(Msg::Goodbye { blame: None }),
            5 => Ok(Msg::Goodbye {
                blame: Some(u32::from_le_bytes(payload[1..5].try_into().unwrap())),
            }),
            n => Err(format!("goodbye frame of {n} bytes")),
        },
        Some(&TAG_DATA) => {
            if payload.len() < 10 || !(payload.len() - 10).is_multiple_of(8) {
                return Err(format!("data frame of {} bytes", payload.len()));
            }
            let op = payload[1];
            let seq = u64::from_le_bytes(payload[2..10].try_into().unwrap());
            let values = payload[10..]
                .chunks_exact(8)
                .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
                .collect();
            Ok(Msg::Data { op, seq, values })
        }
        Some(&tag) => Err(format!("unknown message tag {tag:#04x}")),
        None => Err("empty frame".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_roundtrip() {
        let hello = parse(&encode_hello(3, 8)).unwrap();
        assert_eq!(hello, Msg::Hello { rank: 3, world: 8 });
        let ack = parse(&encode_hello_ack(0, 8)).unwrap();
        assert_eq!(ack, Msg::HelloAck { rank: 0, world: 8 });
    }

    #[test]
    fn goodbye_roundtrip() {
        assert_eq!(
            parse(&encode_goodbye(None)).unwrap(),
            Msg::Goodbye { blame: None }
        );
        assert_eq!(
            parse(&encode_goodbye(Some(7))).unwrap(),
            Msg::Goodbye { blame: Some(7) }
        );
    }

    #[test]
    fn data_roundtrip_preserves_bits() {
        // Values chosen to stress bit-exactness: negative zero, a
        // denormal, an ulp-separated pair, infinity and a quiet NaN.
        let values = [
            -0.0,
            f64::MIN_POSITIVE / 2.0,
            1.0,
            1.0 + f64::EPSILON,
            f64::INFINITY,
            f64::NAN,
        ];
        match parse(&encode_data(OP_REDUCE, 42, &values)).unwrap() {
            Msg::Data { op, seq, values: got } => {
                assert_eq!(op, OP_REDUCE);
                assert_eq!(seq, 42);
                assert_eq!(got.len(), values.len());
                for (a, b) in values.iter().zip(&got) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn empty_data_frame_is_valid() {
        match parse(&encode_data(OP_GATHER, 7, &[])).unwrap() {
            Msg::Data { values, .. } => assert!(values.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn malformed_frames_rejected() {
        assert!(parse(&[]).is_err());
        assert!(parse(&[0x55]).is_err());
        assert!(parse(&[TAG_HELLO, VERSION, 0, 0]).is_err());
        assert!(parse(&[TAG_HELLO, VERSION + 9, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        assert!(parse(&[TAG_GOODBYE, 0]).is_err());
        // Data with a ragged f64 tail.
        let mut d = encode_data(OP_BCAST, 1, &[1.0]);
        d.pop();
        assert!(parse(&d).is_err());
    }
}
