//! # vqmc-serve
//!
//! A dynamic-batching inference server for trained wavefunctions — the
//! serving counterpart of the paper's §4 observation that exact (AUTO)
//! sampling of an autoregressive wavefunction is embarrassingly
//! batch-parallel.  Concurrent client requests are coalesced into
//! *single* batched SIMD passes over the model, which is the same lever
//! the paper pulls for multi-GPU training throughput, applied to
//! serving: one forward pass for 64 coalesced requests costs barely
//! more than one pass for a single request.
//!
//! ## Architecture
//!
//! ```text
//!  clients ──TCP──▶ event loops (epoll) ──▶ [ dynamic batcher ] ──▶ engine replicas
//!                    nonblocking accept/      bounded queue,          N workers, one
//!                    read/write, frame        graduated admission,    coalesced SIMD
//!                    reassembly, in-order     coalesce ≤ max_batch    pass per batch,
//!                    pipelined replies        or max_wait_us          shared ModelSlot
//! ```
//!
//! * [`protocol`] — length-prefixed binary frames: `Ping`, `Sample`,
//!   `LogPsi`, `LocalEnergy`, `Shutdown`, `Reload`, `Stats`.
//! * [`batcher`] — the coalescing bounded queue: admission control
//!   (`Overloaded` instead of OOM), deadline propagation, graceful
//!   drain; replies travel through runtime-agnostic [`ReplySink`]s.
//! * [`engine`] — batched execution over a hot-swappable checkpoint
//!   slot ([`ModelSlot`]); coalesced replies are **bit-identical** to
//!   the single-request path (property-tested), including `Sample`,
//!   which draws each request's bits from its own seeded RNG stream
//!   inside one combined incremental AUTO pass.
//! * [`server`] — the TCP front end: the default nonblocking epoll
//!   runtime (`vqmc-net` event loops + completion queues) and the
//!   thread-per-connection baseline, both feeding the same batcher;
//!   graduated admission, atomic checkpoint hot-reload, live stats.
//! * [`client`] — a blocking client (integration tests, `vqmc-loadgen`).
//! * [`stats`] — lock-free serving counters behind the `Stats` frame.

#![warn(missing_docs)]

pub mod batcher;
pub mod client;
pub mod engine;
pub mod protocol;
pub mod server;
pub mod stats;

pub use batcher::{Batcher, BatcherConfig, PushError, ReplySink, WorkItem};
pub use client::{Client, ClientError};
pub use engine::{Engine, ModelSlot, SampleRequest};
pub use protocol::{ErrorCode, OpLatency, Request, Response, StatsSnapshot};
pub use server::{AdmissionTier, Runtime, ServeConfig, Server};
pub use stats::{ServerStats, StatOp};
