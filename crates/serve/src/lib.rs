//! # vqmc-serve
//!
//! A dynamic-batching inference server for trained wavefunctions — the
//! serving counterpart of the paper's §4 observation that exact (AUTO)
//! sampling of an autoregressive wavefunction is embarrassingly
//! batch-parallel.  Concurrent client requests are coalesced into
//! *single* batched SIMD passes over the model, which is the same lever
//! the paper pulls for multi-GPU training throughput, applied to
//! serving: one forward pass for 64 coalesced requests costs barely
//! more than one pass for a single request.
//!
//! ## Architecture
//!
//! ```text
//!  clients ──TCP──▶ connection handlers ──▶ [ dynamic batcher ] ──▶ workers (Engine)
//!                    (frame decode,           bounded queue,          one coalesced
//!                     validation,             coalesce ≤ max_batch    SIMD pass per
//!                     inline Ping)            or max_wait_us)         drained batch
//! ```
//!
//! * [`protocol`] — length-prefixed binary frames: `Ping`, `Sample`,
//!   `LogPsi`, `LocalEnergy`, `Shutdown`.
//! * [`batcher`] — the coalescing bounded queue: admission control
//!   (`Overloaded` instead of OOM), deadline propagation, graceful
//!   drain.
//! * [`engine`] — batched execution over a loaded checkpoint
//!   ([`vqmc_nn::checkpoint::AnyModel`]); coalesced replies are
//!   **bit-identical** to the single-request path (property-tested),
//!   including `Sample`, which draws each request's bits from its own
//!   seeded RNG stream inside one combined incremental AUTO pass.
//! * [`server`] — the TCP front end: accept loop, per-connection
//!   handlers, worker pool, drain-on-`Shutdown`.
//! * [`client`] — a blocking client (integration tests, `vqmc-loadgen`).

#![warn(missing_docs)]

pub mod batcher;
pub mod client;
pub mod engine;
pub mod protocol;
pub mod server;

pub use batcher::{Batcher, BatcherConfig, PushError, WorkItem};
pub use client::{Client, ClientError};
pub use engine::{Engine, SampleRequest};
pub use protocol::{ErrorCode, Request, Response};
pub use server::{ServeConfig, Server};
