//! A minimal blocking client for the serve protocol (used by the
//! integration tests and `vqmc-loadgen`).

use std::io::{self, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use vqmc_tensor::{Precision, SpinBatch, Vector};

use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, ErrorCode, Request, Response,
};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// Malformed server reply.
    Protocol(String),
    /// The server answered with an error frame.
    Server {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// The server answered with the wrong response kind.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code:?}: {message}")
            }
            ClientError::Unexpected(m) => write!(f, "unexpected reply: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The server error code, when the failure is a server error frame.
    pub fn server_code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Server { code, .. } => Some(*code),
            _ => None,
        }
    }
}

/// A blocking connection to a vqmc-serve server.
pub struct Client {
    reader: TcpStream,
    writer: BufWriter<TcpStream>,
    frame: Vec<u8>,
}

impl Client {
    /// Connects to the server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = stream.try_clone()?;
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            frame: Vec::new(),
        })
    }

    /// Sets a read timeout for replies (`None` blocks indefinitely).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one request and awaits the reply.
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.writer, &encode_request(request))?;
        if !read_frame(&mut self.reader, &mut self.frame)? {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        decode_response(&self.frame).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    fn expect_ok(response: Response) -> Result<Response, ClientError> {
        match response {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Ok(other),
        }
    }

    /// Health check; returns `(num_spins, model kind)`.
    pub fn ping(&mut self) -> Result<(usize, String), ClientError> {
        match Self::expect_ok(self.call(&Request::Ping)?)? {
            Response::Pong { num_spins, kind } => Ok((num_spins as usize, kind)),
            other => Err(ClientError::Unexpected(format!("{other:?} to Ping"))),
        }
    }

    /// Draws `count` samples; `seed` pins the reply bit-for-bit.
    pub fn sample(
        &mut self,
        count: u32,
        seed: Option<u64>,
    ) -> Result<(SpinBatch, Vector), ClientError> {
        self.sample_with(count, seed, None)
    }

    /// [`Client::sample`] with an explicit execution precision
    /// (`None` defers to the server default).
    pub fn sample_with(
        &mut self,
        count: u32,
        seed: Option<u64>,
        precision: Option<Precision>,
    ) -> Result<(SpinBatch, Vector), ClientError> {
        match Self::expect_ok(self.call(&Request::Sample {
            count,
            seed,
            precision,
        })?)? {
            Response::Samples { batch, log_psi } => Ok((batch, log_psi)),
            other => Err(ClientError::Unexpected(format!("{other:?} to Sample"))),
        }
    }

    /// Evaluates `logψ` on the given configurations.
    pub fn log_psi(&mut self, batch: &SpinBatch) -> Result<Vector, ClientError> {
        self.log_psi_with(batch, None)
    }

    /// [`Client::log_psi`] with an explicit execution precision.
    pub fn log_psi_with(
        &mut self,
        batch: &SpinBatch,
        precision: Option<Precision>,
    ) -> Result<Vector, ClientError> {
        match Self::expect_ok(self.call(&Request::LogPsi {
            batch: batch.clone(),
            precision,
        })?)? {
            Response::Values(v) => Ok(v),
            other => Err(ClientError::Unexpected(format!("{other:?} to LogPsi"))),
        }
    }

    /// Evaluates local energies on the given configurations.
    pub fn local_energy(&mut self, batch: &SpinBatch) -> Result<Vector, ClientError> {
        self.local_energy_with(batch, None)
    }

    /// [`Client::local_energy`] with an explicit execution precision.
    pub fn local_energy_with(
        &mut self,
        batch: &SpinBatch,
        precision: Option<Precision>,
    ) -> Result<Vector, ClientError> {
        match Self::expect_ok(self.call(&Request::LocalEnergy {
            batch: batch.clone(),
            precision,
        })?)? {
            Response::Values(v) => Ok(v),
            other => Err(ClientError::Unexpected(format!(
                "{other:?} to LocalEnergy"
            ))),
        }
    }

    /// Fetches a point-in-time server statistics snapshot.
    pub fn stats(&mut self) -> Result<crate::protocol::StatsSnapshot, ClientError> {
        match Self::expect_ok(self.call(&Request::Stats)?)? {
            Response::StatsReport(s) => Ok(*s),
            other => Err(ClientError::Unexpected(format!("{other:?} to Stats"))),
        }
    }

    /// Asks the server to hot-swap its checkpoint for the one at
    /// `path` (a server-side path).  In-flight and concurrent requests
    /// are unaffected; each batch runs entirely on old or new weights.
    pub fn reload(&mut self, path: &str) -> Result<(), ClientError> {
        match Self::expect_ok(self.call(&Request::Reload {
            path: path.to_string(),
        })?)? {
            Response::ReloadAck => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?} to Reload"))),
        }
    }

    /// Requests the graceful drain; returns once the server acks.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match Self::expect_ok(self.call(&Request::Shutdown)?)? {
            Response::ShutdownAck => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?} to Shutdown"))),
        }
    }
}
