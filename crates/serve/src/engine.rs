//! The batched execution engine: turns a drained batch of work items
//! into replies with as few model passes as possible.
//!
//! Coalescing rules (all bit-identical to the single-request path —
//! property-tested):
//!
//! * `LogPsi` / `LocalEnergy` — all requests in the batch are
//!   concatenated into **one** configuration batch, pushed through one
//!   forward pass (plus the neighbour passes for local energies), and
//!   the result rows are scattered back per request.  Wavefunction
//!   forward passes are row-independent (each row's arithmetic touches
//!   only that row, in a fixed accumulation order), so coalescing K
//!   requests is bitwise identical to K sequential calls.
//! * `Sample` on MADE — all requests are drawn in **one** incremental
//!   autoregressive pass over the combined batch, but each request's
//!   bits come from its *own* seeded RNG stream
//!   ([`MadeBatchSampler`]).  Because the per-bit conditional of a row
//!   depends only on that row's previously drawn bits, and each
//!   request's RNG is consumed in the same `(bit, row-within-request)`
//!   order as a solo call, the coalesced draw is bit-identical to
//!   sampling each request alone — while the transcendental and
//!   `relu·dot` kernel work runs at the combined batch size (the
//!   paper's batch-parallelism lever, §4).
//! * `Sample` on NADE / RBM — executed per request inside the drained
//!   batch (their samplers are inherently sequential per chain); the
//!   batcher still amortises queue wake-ups.

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vqmc_hamiltonian::{
    local_energies_into, LocalEnergyConfig, LocalEnergyScratch, SparseRowHamiltonian,
};
use vqmc_nn::checkpoint::AnyModel;
use vqmc_nn::{Made, WaveFunction};
use vqmc_sampler::{McmcSampler, SampleOutput};
use vqmc_tensor::{ops, Matrix, SpinBatch, Vector, Workspace};

use crate::batcher::WorkItem;
use crate::protocol::{ErrorCode, Request, Response};

/// A `Sample` request normalised for execution: the server resolves
/// seedless requests to a concrete seed at admission, so execution is
/// deterministic from here on.
#[derive(Clone, Copy, Debug)]
pub struct SampleRequest {
    /// Number of configurations to draw.
    pub count: usize,
    /// RNG seed for this request's private stream.
    pub seed: u64,
}

/// Per-worker execution state: the shared read-only model plus all the
/// scratch the batched passes need (reused across batches, so the
/// steady state stays allocation-quiet like the training loop).
pub struct Engine {
    model: Arc<AnyModel>,
    hamiltonian: Option<Arc<dyn SparseRowHamiltonian>>,
    le_config: LocalEnergyConfig,
    ws: Workspace,
    neigh_ws: Workspace,
    le_scratch: LocalEnergyScratch,
    made_sampler: MadeBatchSampler,
    concat: SpinBatch,
    log_psi_buf: Vector,
    le_out: Vector,
}

impl Engine {
    /// A fresh engine over a loaded model (one per worker thread).
    pub fn new(
        model: Arc<AnyModel>,
        hamiltonian: Option<Arc<dyn SparseRowHamiltonian>>,
        le_config: LocalEnergyConfig,
    ) -> Self {
        if let Some(h) = &hamiltonian {
            assert_eq!(
                h.num_spins(),
                model.num_spins(),
                "hamiltonian/model spin-count mismatch"
            );
        }
        Engine {
            model,
            hamiltonian,
            le_config,
            ws: Workspace::new(),
            neigh_ws: Workspace::new(),
            le_scratch: LocalEnergyScratch::new(),
            made_sampler: MadeBatchSampler::default(),
            concat: SpinBatch::zeros(0, 0),
            log_psi_buf: Vector::default(),
            le_out: Vector::default(),
        }
    }

    /// The served model.
    pub fn model(&self) -> &AnyModel {
        &self.model
    }

    /// Executes one drained batch: groups by operation, runs one
    /// coalesced pass per group, and answers every item exactly once.
    pub fn execute(&mut self, items: Vec<WorkItem>) {
        let now = Instant::now();
        let mut log_psi_items = Vec::new();
        let mut local_energy_items = Vec::new();
        let mut sample_items = Vec::new();
        for item in items {
            if now > item.deadline {
                item.respond(Response::error(
                    ErrorCode::DeadlineExceeded,
                    "request expired while queued",
                ));
                continue;
            }
            match &item.request {
                Request::LogPsi(_) => log_psi_items.push(item),
                Request::LocalEnergy(_) => local_energy_items.push(item),
                Request::Sample { .. } => sample_items.push(item),
                // Ping/Shutdown are handled by the connection layer and
                // never enqueued; answer defensively if one slips in.
                _ => item.respond(Response::error(
                    ErrorCode::Internal,
                    "non-batchable request reached the engine",
                )),
            }
        }
        self.execute_log_psi(log_psi_items);
        self.execute_local_energy(local_energy_items);
        self.execute_samples(sample_items);
    }

    fn gather<'a>(&mut self, batches: impl Iterator<Item = &'a SpinBatch> + Clone) -> Vec<usize> {
        let n = self.model.num_spins();
        let sizes: Vec<usize> = batches.clone().map(|b| b.batch_size()).collect();
        let total = sizes.iter().sum();
        self.concat.resize(total, n);
        let mut row = 0;
        for b in batches {
            for s in 0..b.batch_size() {
                self.concat.sample_mut(row).copy_from_slice(b.sample(s));
                row += 1;
            }
        }
        sizes
    }

    /// One forward pass over the concatenation of every `LogPsi`
    /// request, scattered back per request.
    fn execute_log_psi(&mut self, items: Vec<WorkItem>) {
        if items.is_empty() {
            return;
        }
        let sizes = self.gather(items.iter().map(|it| match &it.request {
            Request::LogPsi(b) => b,
            _ => unreachable!("partitioned by execute"),
        }));
        self.model
            .as_wavefunction()
            .log_psi_into(&self.concat, &mut self.ws, &mut self.log_psi_buf);
        let mut offset = 0;
        for (item, size) in items.into_iter().zip(sizes) {
            let vals = Vector(self.log_psi_buf.as_slice()[offset..offset + size].to_vec());
            offset += size;
            item.respond(Response::Values(vals));
        }
    }

    /// One local-energy evaluation over the concatenation of every
    /// `LocalEnergy` request (one `logψ(x)` pass plus chunked neighbour
    /// passes), scattered back per request.
    fn execute_local_energy(&mut self, items: Vec<WorkItem>) {
        if items.is_empty() {
            return;
        }
        let Some(h) = self.hamiltonian.clone() else {
            for item in items {
                item.respond(Response::error(
                    ErrorCode::BadRequest,
                    "server was started without a hamiltonian (--problem)",
                ));
            }
            return;
        };
        let sizes = self.gather(items.iter().map(|it| match &it.request {
            Request::LocalEnergy(b) => b,
            _ => unreachable!("partitioned by execute"),
        }));
        let wf = self.model.as_wavefunction();
        wf.log_psi_into(&self.concat, &mut self.ws, &mut self.log_psi_buf);
        let neigh_ws = &mut self.neigh_ws;
        local_energies_into(
            h.as_ref(),
            &self.concat,
            &self.log_psi_buf,
            &mut |b, dst| wf.log_psi_into(b, neigh_ws, dst),
            self.le_config,
            &mut self.le_scratch,
            &mut self.le_out,
        );
        let mut offset = 0;
        for (item, size) in items.into_iter().zip(sizes) {
            let vals = Vector(self.le_out.as_slice()[offset..offset + size].to_vec());
            offset += size;
            item.respond(Response::Values(vals));
        }
    }

    fn execute_samples(&mut self, items: Vec<WorkItem>) {
        if items.is_empty() {
            return;
        }
        let reqs: Vec<SampleRequest> = items
            .iter()
            .map(|it| match &it.request {
                Request::Sample { count, seed } => SampleRequest {
                    count: *count as usize,
                    seed: seed.expect("server assigns seeds at admission"),
                },
                _ => unreachable!("partitioned by execute"),
            })
            .collect();
        let replies = self.run_samples(&reqs);
        for (item, reply) in items.into_iter().zip(replies) {
            item.respond(reply);
        }
    }

    /// Draws every sample request, coalescing where the model allows it.
    /// Public for the property tests (and for in-process embedding).
    pub fn run_samples(&mut self, reqs: &[SampleRequest]) -> Vec<Response> {
        match self.model.as_ref() {
            AnyModel::Made(made) => {
                let mut batch = SpinBatch::zeros(0, 0);
                let mut log_psi = Vector::default();
                self.made_sampler
                    .sample_coalesced(made, reqs, &mut batch, &mut log_psi);
                let n = made.num_spins();
                let mut replies = Vec::with_capacity(reqs.len());
                let mut offset = 0;
                for req in reqs {
                    let mut rows = SpinBatch::zeros(req.count, n);
                    for s in 0..req.count {
                        rows.sample_mut(s).copy_from_slice(batch.sample(offset + s));
                    }
                    let lp =
                        Vector(log_psi.as_slice()[offset..offset + req.count].to_vec());
                    offset += req.count;
                    replies.push(Response::Samples {
                        batch: rows,
                        log_psi: lp,
                    });
                }
                replies
            }
            AnyModel::Nade(nade) => reqs
                .iter()
                .map(|req| {
                    let mut rng = StdRng::seed_from_u64(req.seed);
                    let (batch, log_psi) = nade.sample_native(req.count, &mut rng);
                    Response::Samples { batch, log_psi }
                })
                .collect(),
            AnyModel::Rbm(rbm) => reqs
                .iter()
                .map(|req| {
                    let mut rng = StdRng::seed_from_u64(req.seed);
                    let out: SampleOutput =
                        McmcSampler::default().sample_rbm(rbm, req.count, &mut rng);
                    Response::Samples {
                        batch: out.batch,
                        log_psi: out.log_psi,
                    }
                })
                .collect(),
        }
    }

    /// `logψ` for one batch through the same path the coalesced pass
    /// uses (exposed for the identity property tests).
    pub fn run_log_psi(&mut self, batch: &SpinBatch) -> Vector {
        self.model
            .as_wavefunction()
            .log_psi_into(batch, &mut self.ws, &mut self.log_psi_buf);
        Vector(self.log_psi_buf.as_slice().to_vec())
    }
}

/// The coalesced MADE sampler: the incremental AUTO pass of
/// `vqmc_sampler::IncrementalAutoSampler`, generalised to draw each
/// row-range of the combined batch from its own request-seeded RNG.
///
/// Invariant (property-tested): for every request `r`, rows
/// `[offset_r, offset_r + count_r)` of the output are bit-identical —
/// configurations *and* `logψ` — to a solo
/// `IncrementalAutoSampler::sample(wf, count_r, StdRng::seed_from_u64(seed_r))`.
///
/// Two layouts, same arithmetic (dispatch on the combined row count):
///
/// * **row path** (small batches) — one `rows·h` row-major activation
///   buffer, per-row `relu_dot` + `axpy`, vectorised along `h`;
/// * **cols path** (`rows ≥ COLS_THRESHOLD`) — a *transposed* `h·rows`
///   panel driven by the fused `sample_step_cols` kernel: the deferred
///   `W₁` column update and the logit reduction happen in **one**
///   memory pass over the panel, vectorised along the batch, so the
///   per-bit weight rows (`W₁ᵀ` and `W₂`) are streamed once per *batch*
///   instead of once per *row*.  That amortisation is where the batched
///   serving throughput comes from once the weights outgrow cache.
///
/// The kernel reproduces `relu_dot`'s per-row accumulation order
/// exactly (property-tested in `vqmc-tensor`), so both paths produce
/// bit-identical output and the solo-identity invariant holds
/// regardless of which one dispatched.
#[derive(Debug, Default)]
struct MadeBatchSampler {
    /// Per-row hidden pre-activations (`rows · h`, row path).
    z1: Vec<f64>,
    /// Transposed pre-activation panel (`h · rows`, cols path).
    z1t: Vec<f64>,
    /// Which rows drew the previous bit as 1 (`1.0`/`0.0`, cols path —
    /// the deferred update mask for `sample_step_cols`).
    prev_mask: Vec<f64>,
    /// Drawn bits in transposed `n · rows` layout (cols path): the
    /// per-bit draw loop stores sequentially here instead of striding
    /// across the row-major output (64 pages touched per bit);
    /// transposed into the output in one tiled pass at the end.
    bits_t: Vec<u8>,
    /// Sign-flipped logits for a chunk of bits (cols path): `log σ` is
    /// applied to `LS_CHUNK·rows` elements at a time so the
    /// transcendental kernel runs at vector-friendly slice lengths
    /// instead of once per bit.  Elementwise results and the ascending
    /// bit-order accumulation into `log_prob` are unchanged, so this
    /// stays bit-identical to the per-bit path.
    ls_buf: Vec<f64>,
    /// Accumulator stripes for `sample_step_cols` (`5 · rows`).
    cols_scratch: Vec<f64>,
    /// Per-row accumulated `log π`.
    log_prob: Vec<f64>,
    /// Per-row logits of the current output bit.
    logits: Vec<f64>,
    /// `σ(logits)` scratch.
    probs: Vec<f64>,
    /// Request index of every row.
    row_req: Vec<u32>,
    /// Per-request RNG streams (rebuilt each call; capacity reused).
    rngs: Vec<StdRng>,
    /// Cached `W₁ᵀ`, invalidated via [`Made::params_version`].
    w1_t: Matrix,
    cached_version: Option<u64>,
}

/// Below this combined row count the row path wins: the fused kernel
/// vectorises along the batch, so tiny batches would run scalar.
const COLS_THRESHOLD: usize = 8;

impl MadeBatchSampler {
    fn sample_coalesced(
        &mut self,
        wf: &Made,
        reqs: &[SampleRequest],
        out_batch: &mut SpinBatch,
        out_log_psi: &mut Vector,
    ) {
        let n = wf.num_spins();
        let h = wf.hidden_size();
        let rows: usize = reqs.iter().map(|r| r.count).sum();
        out_batch.resize(rows, n);
        out_batch.fill(0);

        self.rngs.clear();
        self.row_req.clear();
        for (r, req) in reqs.iter().enumerate() {
            self.rngs.push(StdRng::seed_from_u64(req.seed));
            self.row_req.extend(std::iter::repeat(r as u32).take(req.count));
        }

        let b1 = wf.b1();
        if self.cached_version != Some(wf.params_version()) {
            wf.w1().transpose_into(&mut self.w1_t);
            self.cached_version = Some(wf.params_version());
        }
        let w2 = wf.w2();
        let b2 = wf.b2();
        self.log_prob.clear();
        self.log_prob.resize(rows, 0.0);
        self.logits.resize(rows, 0.0);
        self.probs.resize(rows, 0.0);
        let kern = vqmc_tensor::simd::kernels();

        if rows >= COLS_THRESHOLD {
            // Cols path: transposed h×rows panel, z1t[j·rows + s]
            // starts at b1[j]; bit i−1's column update is deferred into
            // bit i's fused kernel call via prev_mask.
            let MadeBatchSampler {
                z1t,
                prev_mask,
                bits_t,
                cols_scratch,
                ls_buf,
                log_prob,
                logits,
                probs,
                row_req,
                rngs,
                w1_t,
                ..
            } = self;
            // No clear first: every byte is overwritten in the bit loop,
            // so only grow (and zero) when the geometry changes.
            bits_t.resize(n * rows, 0);
            bits_t.truncate(n * rows);
            z1t.clear();
            z1t.reserve(h * rows);
            for &bj in b1.as_slice() {
                z1t.extend(std::iter::repeat(bj).take(rows));
            }
            prev_mask.clear();
            prev_mask.resize(rows, 0.0);
            cols_scratch.resize(5 * rows, 0.0);
            const LS_CHUNK: usize = 512;
            ls_buf.clear();
            ls_buf.resize(LS_CHUNK.min(n.max(1)) * rows, 0.0);
            let _ = row_req;
            for i in 0..n {
                let w_prev = if i > 0 { Some(w1_t.row(i - 1)) } else { None };
                (kern.sample_step_cols)(
                    z1t,
                    rows,
                    w_prev,
                    prev_mask,
                    w2.row(i),
                    b2[i],
                    cols_scratch,
                    logits,
                );
                probs.copy_from_slice(logits);
                ops::sigmoid_slice(probs);
                // Same draw order as the row path; the update is
                // recorded in prev_mask instead of applied eagerly.
                // Branchless: the drawn bit is data, not control flow,
                // so the 50/50 outcome can't mispredict.  `-x` and the
                // select are exact, so this stays bit-identical to the
                // row path's `if`.
                let row_bits = &mut bits_t[i * rows..(i + 1) * rows];
                let c = i % LS_CHUNK;
                let signed = &mut ls_buf[c * rows..(c + 1) * rows];
                let mut s = 0;
                for (q, req) in reqs.iter().enumerate() {
                    let rng = &mut rngs[q];
                    for _ in 0..req.count {
                        let u = rng.gen::<f64>();
                        let p = probs[s];
                        debug_assert!((0.0..=1.0).contains(&p), "conditional out of range");
                        let bit = (u < p) as u8;
                        row_bits[s] = bit;
                        prev_mask[s] = bit as f64;
                        signed[s] = if bit == 1 { logits[s] } else { -logits[s] };
                        s += 1;
                    }
                }
                if c + 1 == LS_CHUNK || i + 1 == n {
                    let filled = (c + 1) * rows;
                    ops::log_sigmoid_slice(&mut ls_buf[..filled]);
                    for chunk in ls_buf[..filled].chunks_exact(rows) {
                        for (lp, &v) in log_prob.iter_mut().zip(chunk) {
                            *lp += v;
                        }
                    }
                }
            }
            // Tiled transpose of the drawn bits into the row-major
            // output (64-bit tiles keep both sides L1-resident).
            const TILE: usize = 64;
            let mut i0 = 0;
            while i0 < n {
                let iend = (i0 + TILE).min(n);
                for s in 0..rows {
                    let row = out_batch.sample_mut(s);
                    for i in i0..iend {
                        row[i] = bits_t[i * rows + s];
                    }
                }
                i0 = iend;
            }
        } else {
            // Row path: z1[s] starts at b1 and absorbs W₁'s column i
            // when bit i is drawn 1.
            self.z1.clear();
            self.z1.reserve(rows * h);
            for _ in 0..rows {
                self.z1.extend_from_slice(b1);
            }
            for i in 0..n {
                let w2_row = w2.row(i);
                let w1_col = self.w1_t.row(i);
                for s in 0..rows {
                    let z_row = &self.z1[s * h..(s + 1) * h];
                    self.logits[s] = b2[i] + (kern.relu_dot)(w2_row, z_row);
                }
                self.probs.copy_from_slice(&self.logits);
                ops::sigmoid_slice(&mut self.probs);
                // Draw order per request matches the solo sampler exactly:
                // bit-major, then row-within-request — each request's RNG
                // sees the same variate sequence it would see alone.
                for s in 0..rows {
                    let p = self.probs[s];
                    debug_assert!((0.0..=1.0).contains(&p), "conditional out of range");
                    let rng = &mut self.rngs[self.row_req[s] as usize];
                    if rng.gen::<f64>() < p {
                        out_batch.set(s, i, 1);
                        vqmc_tensor::vector::axpy(&mut self.z1[s * h..(s + 1) * h], 1.0, w1_col);
                    } else {
                        self.logits[s] = -self.logits[s];
                    }
                }
                ops::log_sigmoid_slice(&mut self.logits);
                vqmc_tensor::vector::axpy(&mut self.log_prob, 1.0, &self.logits);
            }
        }
        out_log_psi.resize(rows);
        for (o, &lp) in out_log_psi.iter_mut().zip(&self.log_prob) {
            *o = 0.5 * lp;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqmc_nn::{Nade, Rbm};
    use vqmc_sampler::{IncrementalAutoSampler, Sampler};
    use vqmc_tensor::batch::enumerate_configs;

    fn made_engine(n: usize, h: usize, seed: u64) -> Engine {
        Engine::new(
            Arc::new(AnyModel::Made(Made::new(n, h, seed))),
            None,
            LocalEnergyConfig::default(),
        )
    }

    #[test]
    fn coalesced_made_sampling_matches_solo_incremental_sampler() {
        let wf = Made::new(9, 14, 123);
        let reqs = [
            SampleRequest { count: 5, seed: 11 },
            SampleRequest { count: 1, seed: 12 },
            SampleRequest { count: 17, seed: 13 },
            SampleRequest { count: 8, seed: 11 }, // duplicate seed is fine
        ];
        let mut sampler = MadeBatchSampler::default();
        let mut batch = SpinBatch::zeros(0, 0);
        let mut log_psi = Vector::default();
        sampler.sample_coalesced(&wf, &reqs, &mut batch, &mut log_psi);

        let mut offset = 0;
        for req in &reqs {
            let solo = IncrementalAutoSampler::new().sample(
                &wf,
                req.count,
                &mut StdRng::seed_from_u64(req.seed),
            );
            for s in 0..req.count {
                assert_eq!(
                    batch.sample(offset + s),
                    solo.batch.sample(s),
                    "seed {}: configurations must be bit-identical",
                    req.seed
                );
                assert_eq!(
                    log_psi[offset + s].to_bits(),
                    solo.log_psi[s].to_bits(),
                    "seed {}: logψ must be bit-identical",
                    req.seed
                );
            }
            offset += req.count;
        }
    }

    #[test]
    fn coalesced_log_psi_is_bit_identical_to_per_request_pass() {
        let mut engine = made_engine(6, 10, 7);
        let b1 = enumerate_configs(6);
        let b2 = SpinBatch::from_fn(5, 6, |s, i| ((s * 3 + i) % 2) as u8);
        let solo1 = engine.run_log_psi(&b1);
        let solo2 = engine.run_log_psi(&b2);

        // Through the WorkItem path with both requests in one batch.
        let (tx1, rx1) = std::sync::mpsc::channel();
        let (tx2, rx2) = std::sync::mpsc::channel();
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        engine.execute(vec![
            WorkItem {
                request: Request::LogPsi(b1.clone()),
                reply: tx1,
                deadline,
            },
            WorkItem {
                request: Request::LogPsi(b2.clone()),
                reply: tx2,
                deadline,
            },
        ]);
        let (r1, r2) = (rx1.recv().unwrap(), rx2.recv().unwrap());
        for (reply, solo) in [(r1, solo1), (r2, solo2)] {
            match reply {
                Response::Values(v) => {
                    assert_eq!(v.len(), solo.len());
                    for s in 0..v.len() {
                        assert_eq!(v[s].to_bits(), solo[s].to_bits(), "row {s}");
                    }
                }
                other => panic!("expected Values, got {other:?}"),
            }
        }
    }

    #[test]
    fn local_energy_without_hamiltonian_is_bad_request() {
        let mut engine = made_engine(5, 8, 3);
        let (tx, rx) = std::sync::mpsc::channel();
        engine.execute(vec![WorkItem {
            request: Request::LocalEnergy(SpinBatch::zeros(2, 5)),
            reply: tx,
            deadline: Instant::now() + std::time::Duration::from_secs(5),
        }]);
        match rx.recv().unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn expired_items_get_deadline_exceeded_without_execution() {
        let mut engine = made_engine(5, 8, 3);
        let (tx, rx) = std::sync::mpsc::channel();
        engine.execute(vec![WorkItem {
            request: Request::Sample {
                count: 4,
                seed: Some(1),
            },
            reply: tx,
            deadline: Instant::now() - std::time::Duration::from_millis(1),
        }]);
        match rx.recv().unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::DeadlineExceeded),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn nade_and_rbm_sampling_is_deterministic_per_seed() {
        for model in [
            AnyModel::Nade(Nade::new(6, 5, 2)),
            AnyModel::Rbm(Rbm::new(6, 6, 2)),
        ] {
            let mut engine =
                Engine::new(Arc::new(model), None, LocalEnergyConfig::default());
            let reqs = [SampleRequest { count: 6, seed: 42 }];
            let a = engine.run_samples(&reqs);
            let b = engine.run_samples(&reqs);
            assert_eq!(a, b, "same seed must reproduce");
        }
    }
}
