//! The batched execution engine: turns a drained batch of work items
//! into replies with as few model passes as possible.
//!
//! Coalescing rules (all bit-identical to the single-request path —
//! property-tested):
//!
//! * `LogPsi` / `LocalEnergy` — all requests in the batch are
//!   concatenated into **one** configuration batch, pushed through one
//!   forward pass (plus the neighbour passes for local energies), and
//!   the result rows are scattered back per request.  Wavefunction
//!   forward passes are row-independent (each row's arithmetic touches
//!   only that row, in a fixed accumulation order), so coalescing K
//!   requests is bitwise identical to K sequential calls.
//! * `Sample` — delegated to `vqmc-sampler`'s unified
//!   [`BatchSampler`]: the engine owns **no** sampling implementation
//!   of its own.  Exact-AUTO models (MADE's fused panel pass, NADE's
//!   native recursion) draw all requests in one combined incremental
//!   pass, each request's bits from its *own* seeded RNG stream —
//!   bit-identical to sampling each request alone, while the
//!   transcendental and `relu·dot` kernel work runs at the combined
//!   batch size (the paper's batch-parallelism lever, §4).  RBM falls
//!   back to per-request MCMC chains (inherently sequential per chain);
//!   the batcher still amortises queue wake-ups.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use vqmc_hamiltonian::{
    local_energies_into, LocalEnergyConfig, LocalEnergyScratch, SparseRowHamiltonian,
};
use vqmc_nn::checkpoint::AnyModel;
use vqmc_nn::{MadeF32, MadeF32Workspace};
use vqmc_sampler::BatchSampler;
use vqmc_tensor::{Precision, SpinBatch, Vector, Workspace};

use crate::batcher::WorkItem;
use crate::protocol::{ErrorCode, Request, Response};

pub use vqmc_sampler::SampleRequest;

/// The hot-swappable model reference shared by every engine replica.
///
/// A checkpoint reload builds the new [`AnyModel`] off to the side,
/// then [`ModelSlot::swap`]s the `Arc` in — a pointer store under a
/// short write lock.  Engines re-read the slot at the *start of each
/// drained batch*, so a batch executes entirely against one model
/// (never a mix), requests already admitted run old or new weights
/// atomically, and nothing is dropped or drained during the swap.
pub struct ModelSlot {
    current: RwLock<Arc<AnyModel>>,
    /// Bumped on every swap; lets engines detect a pending swap with a
    /// relaxed load before touching the lock.
    version: AtomicU64,
}

impl ModelSlot {
    /// A slot serving `model`.
    pub fn new(model: Arc<AnyModel>) -> Self {
        ModelSlot {
            current: RwLock::new(model),
            version: AtomicU64::new(0),
        }
    }

    /// The currently-served model.
    pub fn get(&self) -> Arc<AnyModel> {
        Arc::clone(&self.current.read().expect("model slot poisoned"))
    }

    /// Atomically replaces the served model.
    pub fn swap(&self, model: Arc<AnyModel>) {
        *self.current.write().expect("model slot poisoned") = model;
        self.version.fetch_add(1, Ordering::Release);
    }

    /// Number of swaps so far.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }
}

/// Per-worker execution state: the shared read-only model plus all the
/// scratch the batched passes need (reused across batches, so the
/// steady state stays allocation-quiet like the training loop).
pub struct Engine {
    slot: Arc<ModelSlot>,
    /// Snapshot of the slot taken at the last batch boundary.
    model: Arc<AnyModel>,
    /// Slot version the snapshot corresponds to.
    model_version: u64,
    hamiltonian: Option<Arc<dyn SparseRowHamiltonian>>,
    le_config: LocalEnergyConfig,
    ws: Workspace,
    neigh_ws: Workspace,
    le_scratch: LocalEnergyScratch,
    sampler: BatchSampler,
    concat: SpinBatch,
    log_psi_buf: Vector,
    le_out: Vector,
    sample_batch: SpinBatch,
    sample_log_psi: Vector,
    /// Cached f32 forward weights (MADE only), built lazily on the
    /// first f32 request and keyed on the model's `params_version`.
    m32_fwd: Option<MadeF32>,
    /// f32 forward-pass scratch.
    ws32: MadeF32Workspace,
}

impl Engine {
    /// A fresh engine over a fixed model (one per worker thread); the
    /// model is wrapped in a private [`ModelSlot`], so this engine
    /// never observes a reload.  Use [`Engine::with_slot`] to share a
    /// hot-swappable slot across replicas.
    pub fn new(
        model: Arc<AnyModel>,
        hamiltonian: Option<Arc<dyn SparseRowHamiltonian>>,
        le_config: LocalEnergyConfig,
    ) -> Self {
        Engine::with_slot(Arc::new(ModelSlot::new(model)), hamiltonian, le_config)
    }

    /// An engine replica over a shared hot-swappable [`ModelSlot`].
    pub fn with_slot(
        slot: Arc<ModelSlot>,
        hamiltonian: Option<Arc<dyn SparseRowHamiltonian>>,
        le_config: LocalEnergyConfig,
    ) -> Self {
        let model = slot.get();
        let model_version = slot.version();
        if let Some(h) = &hamiltonian {
            assert_eq!(
                h.num_spins(),
                model.num_spins(),
                "hamiltonian/model spin-count mismatch"
            );
        }
        Engine {
            slot,
            model,
            model_version,
            hamiltonian,
            le_config,
            ws: Workspace::new(),
            neigh_ws: Workspace::new(),
            le_scratch: LocalEnergyScratch::new(),
            sampler: BatchSampler::new(),
            concat: SpinBatch::zeros(0, 0),
            log_psi_buf: Vector::default(),
            le_out: Vector::default(),
            sample_batch: SpinBatch::zeros(0, 0),
            sample_log_psi: Vector::default(),
            m32_fwd: None,
            ws32: MadeF32Workspace::new(),
        }
    }

    /// The served model (as of the last batch boundary).
    pub fn model(&self) -> &AnyModel {
        &self.model
    }

    /// Re-reads the shared slot at a batch boundary.  On a swap the
    /// cached f32 forward weights are invalidated — they were derived
    /// from the old model's parameters.
    fn refresh_model(&mut self) {
        let v = self.slot.version();
        if v != self.model_version {
            self.model = self.slot.get();
            self.model_version = v;
            self.m32_fwd = None;
        }
    }

    /// Executes one drained batch: groups by (operation, execution
    /// precision), runs one coalesced pass per group, and answers every
    /// item exactly once.  Coalescing only within a precision keeps the
    /// coalesced≡solo bit-identity contract valid per arm; a request
    /// without an explicit precision was resolved to the server default
    /// at admission, so `None` here only appears for items injected by
    /// in-process tests and means f64.
    pub fn execute(&mut self, items: Vec<WorkItem>) {
        self.refresh_model();
        let now = Instant::now();
        // Index 0 = f64 (tag 0), index 1 = f32 (tag 1).
        let mut log_psi_items = [Vec::new(), Vec::new()];
        let mut local_energy_items = [Vec::new(), Vec::new()];
        let mut sample_items = [Vec::new(), Vec::new()];
        for item in items {
            if now > item.deadline {
                item.respond(Response::error(
                    ErrorCode::DeadlineExceeded,
                    "request expired while queued",
                ));
                continue;
            }
            let (bucket, precision) = match &item.request {
                Request::LogPsi { precision, .. } => (&mut log_psi_items, *precision),
                Request::LocalEnergy { precision, .. } => (&mut local_energy_items, *precision),
                Request::Sample { precision, .. } => (&mut sample_items, *precision),
                // Ping/Shutdown are handled by the connection layer and
                // never enqueued; answer defensively if one slips in.
                _ => {
                    item.respond(Response::error(
                        ErrorCode::Internal,
                        "non-batchable request reached the engine",
                    ));
                    continue;
                }
            };
            let p = precision.unwrap_or(Precision::F64);
            bucket[p.tag() as usize].push(item);
        }
        for (group, precision) in log_psi_items.into_iter().zip([Precision::F64, Precision::F32]) {
            self.execute_log_psi(group, precision);
        }
        for (group, precision) in local_energy_items
            .into_iter()
            .zip([Precision::F64, Precision::F32])
        {
            self.execute_local_energy(group, precision);
        }
        for (group, precision) in sample_items.into_iter().zip([Precision::F64, Precision::F32]) {
            self.execute_samples(group, precision);
        }
    }

    /// Refreshes the cached f32 forward weights when the model has an
    /// f32 twin (MADE); returns `false` for models that don't (RBM,
    /// NADE), which run the f64 path regardless of requested precision
    /// — precision is a kernel choice, not an API guarantee.
    fn ensure_f32_weights(&mut self) -> bool {
        let AnyModel::Made(m) = self.model.as_ref() else {
            return false;
        };
        if self.m32_fwd.as_ref().map(|c| c.version()) != Some(m.params_version()) {
            self.m32_fwd = Some(MadeF32::for_log_psi(m));
        }
        true
    }

    /// `logψ` over `self.concat` into `self.log_psi_buf` at the
    /// requested execution precision.
    fn forward_concat(&mut self, precision: Precision) {
        if precision == Precision::F32 && self.ensure_f32_weights() {
            let m32 = self.m32_fwd.as_ref().expect("cached by ensure_f32_weights");
            m32.log_psi_into(&self.concat, &mut self.ws32, &mut self.log_psi_buf);
        } else {
            self.model
                .as_wavefunction()
                .log_psi_into(&self.concat, &mut self.ws, &mut self.log_psi_buf);
        }
    }

    fn gather<'a>(&mut self, batches: impl Iterator<Item = &'a SpinBatch> + Clone) -> Vec<usize> {
        let n = self.model.num_spins();
        let sizes: Vec<usize> = batches.clone().map(|b| b.batch_size()).collect();
        let total = sizes.iter().sum();
        self.concat.resize(total, n);
        let mut row = 0;
        for b in batches {
            for s in 0..b.batch_size() {
                self.concat.sample_mut(row).copy_from_slice(b.sample(s));
                row += 1;
            }
        }
        sizes
    }

    /// One forward pass over the concatenation of every `LogPsi`
    /// request in the precision group, scattered back per request.
    fn execute_log_psi(&mut self, items: Vec<WorkItem>, precision: Precision) {
        if items.is_empty() {
            return;
        }
        let sizes = self.gather(items.iter().map(|it| match &it.request {
            Request::LogPsi { batch, .. } => batch,
            _ => unreachable!("partitioned by execute"),
        }));
        self.forward_concat(precision);
        let mut offset = 0;
        for (item, size) in items.into_iter().zip(sizes) {
            let vals = Vector(self.log_psi_buf.as_slice()[offset..offset + size].to_vec());
            offset += size;
            item.respond(Response::Values(vals));
        }
    }

    /// One local-energy evaluation over the concatenation of every
    /// `LocalEnergy` request (one `logψ(x)` pass plus chunked neighbour
    /// passes), scattered back per request.
    fn execute_local_energy(&mut self, items: Vec<WorkItem>, precision: Precision) {
        if items.is_empty() {
            return;
        }
        let Some(h) = self.hamiltonian.clone() else {
            for item in items {
                item.respond(Response::error(
                    ErrorCode::BadRequest,
                    "server was started without a hamiltonian (--problem)",
                ));
            }
            return;
        };
        let sizes = self.gather(items.iter().map(|it| match &it.request {
            Request::LocalEnergy { batch, .. } => batch,
            _ => unreachable!("partitioned by execute"),
        }));
        if precision == Precision::F32 && self.ensure_f32_weights() {
            // Both the base pass and every neighbour pass run on the f32
            // twin, so the whole logψ ratio is consistently single
            // precision; only the energy accumulation itself is f64.
            let Engine {
                m32_fwd,
                ws32,
                concat,
                log_psi_buf,
                le_config,
                le_scratch,
                le_out,
                ..
            } = self;
            let m32 = m32_fwd.as_ref().expect("cached by ensure_f32_weights");
            m32.log_psi_into(concat, ws32, log_psi_buf);
            local_energies_into(
                h.as_ref(),
                concat,
                log_psi_buf,
                &mut |b, dst| m32.log_psi_into(b, ws32, dst),
                *le_config,
                le_scratch,
                le_out,
            );
        } else {
            let wf = self.model.as_wavefunction();
            wf.log_psi_into(&self.concat, &mut self.ws, &mut self.log_psi_buf);
            let neigh_ws = &mut self.neigh_ws;
            local_energies_into(
                h.as_ref(),
                &self.concat,
                &self.log_psi_buf,
                &mut |b, dst| wf.log_psi_into(b, neigh_ws, dst),
                self.le_config,
                &mut self.le_scratch,
                &mut self.le_out,
            );
        }
        let mut offset = 0;
        for (item, size) in items.into_iter().zip(sizes) {
            let vals = Vector(self.le_out.as_slice()[offset..offset + size].to_vec());
            offset += size;
            item.respond(Response::Values(vals));
        }
    }

    fn execute_samples(&mut self, items: Vec<WorkItem>, precision: Precision) {
        if items.is_empty() {
            return;
        }
        let reqs: Vec<SampleRequest> = items
            .iter()
            .map(|it| match &it.request {
                Request::Sample { count, seed, .. } => SampleRequest {
                    count: *count as usize,
                    seed: seed.expect("server assigns seeds at admission"),
                },
                _ => unreachable!("partitioned by execute"),
            })
            .collect();
        let replies = self.run_samples_with(precision, &reqs);
        for (item, reply) in items.into_iter().zip(replies) {
            item.respond(reply);
        }
    }

    /// Draws every sample request through the unified
    /// [`BatchSampler`], then splits the coalesced output back into
    /// per-request replies (one bulk row copy per request).  Public for
    /// the property tests (and for in-process embedding).
    pub fn run_samples(&mut self, reqs: &[SampleRequest]) -> Vec<Response> {
        self.run_samples_with(Precision::F64, reqs)
    }

    /// [`Engine::run_samples`] at an explicit execution precision
    /// (models without an f32 sampling twin silently run f64; see
    /// `BatchSampler::set_precision`).
    pub fn run_samples_with(
        &mut self,
        precision: Precision,
        reqs: &[SampleRequest],
    ) -> Vec<Response> {
        self.sampler.set_precision(precision);
        self.sampler.sample_requests(
            self.model.as_batched_sampling(),
            reqs,
            &mut self.sample_batch,
            &mut self.sample_log_psi,
        );
        let mut replies = Vec::with_capacity(reqs.len());
        let mut offset = 0;
        for req in reqs {
            let mut rows = SpinBatch::default();
            self.sample_batch
                .copy_rows_into(offset..offset + req.count, &mut rows);
            let lp = Vector(
                self.sample_log_psi.as_slice()[offset..offset + req.count].to_vec(),
            );
            offset += req.count;
            replies.push(Response::Samples {
                batch: rows,
                log_psi: lp,
            });
        }
        replies
    }

    /// `logψ` for one batch through the same path the coalesced pass
    /// uses (exposed for the identity property tests).
    pub fn run_log_psi(&mut self, batch: &SpinBatch) -> Vector {
        self.run_log_psi_with(batch, Precision::F64)
    }

    /// [`Engine::run_log_psi`] at an explicit execution precision.
    pub fn run_log_psi_with(&mut self, batch: &SpinBatch, precision: Precision) -> Vector {
        self.gather(std::iter::once(batch));
        self.forward_concat(precision);
        Vector(self.log_psi_buf.as_slice().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use vqmc_nn::{Made, Nade, Rbm};
    use vqmc_sampler::{IncrementalAutoSampler, Sampler};
    use vqmc_tensor::batch::enumerate_configs;

    fn made_engine(n: usize, h: usize, seed: u64) -> Engine {
        Engine::new(
            Arc::new(AnyModel::Made(Made::new(n, h, seed))),
            None,
            LocalEnergyConfig::default(),
        )
    }

    #[test]
    fn coalesced_sample_replies_match_solo_incremental_sampler() {
        let mut engine = made_engine(9, 14, 123);
        let wf = match engine.model() {
            AnyModel::Made(m) => m.clone(),
            _ => unreachable!(),
        };
        let reqs = [
            SampleRequest { count: 5, seed: 11 },
            SampleRequest { count: 1, seed: 12 },
            SampleRequest { count: 17, seed: 13 },
            SampleRequest { count: 8, seed: 11 }, // duplicate seed is fine
        ];
        let replies = engine.run_samples(&reqs);
        for (req, reply) in reqs.iter().zip(replies) {
            let solo = IncrementalAutoSampler::new().sample(
                &wf,
                req.count,
                &mut StdRng::seed_from_u64(req.seed),
            );
            match reply {
                Response::Samples { batch, log_psi } => {
                    assert_eq!(
                        batch.as_bytes(),
                        solo.batch.as_bytes(),
                        "seed {}: configurations must be bit-identical",
                        req.seed
                    );
                    for s in 0..req.count {
                        assert_eq!(
                            log_psi[s].to_bits(),
                            solo.log_psi[s].to_bits(),
                            "seed {}: logψ must be bit-identical",
                            req.seed
                        );
                    }
                }
                other => panic!("expected Samples, got {other:?}"),
            }
        }
    }

    #[test]
    fn coalesced_log_psi_is_bit_identical_to_per_request_pass() {
        let mut engine = made_engine(6, 10, 7);
        let b1 = enumerate_configs(6);
        let b2 = SpinBatch::from_fn(5, 6, |s, i| ((s * 3 + i) % 2) as u8);
        let solo1 = engine.run_log_psi(&b1);
        let solo2 = engine.run_log_psi(&b2);

        // Through the WorkItem path with both requests in one batch.
        let (tx1, rx1) = std::sync::mpsc::channel();
        let (tx2, rx2) = std::sync::mpsc::channel();
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        engine.execute(vec![
            WorkItem {
                request: Request::LogPsi {
                    batch: b1.clone(),
                    precision: None,
                },
                reply: tx1.into(),
                deadline,
            },
            WorkItem {
                request: Request::LogPsi {
                    batch: b2.clone(),
                    precision: None,
                },
                reply: tx2.into(),
                deadline,
            },
        ]);
        let (r1, r2) = (rx1.recv().unwrap(), rx2.recv().unwrap());
        for (reply, solo) in [(r1, solo1), (r2, solo2)] {
            match reply {
                Response::Values(v) => {
                    assert_eq!(v.len(), solo.len());
                    for s in 0..v.len() {
                        assert_eq!(v[s].to_bits(), solo[s].to_bits(), "row {s}");
                    }
                }
                other => panic!("expected Values, got {other:?}"),
            }
        }
    }

    #[test]
    fn local_energy_without_hamiltonian_is_bad_request() {
        let mut engine = made_engine(5, 8, 3);
        let (tx, rx) = std::sync::mpsc::channel();
        engine.execute(vec![WorkItem {
            request: Request::LocalEnergy {
                batch: SpinBatch::zeros(2, 5),
                precision: None,
            },
            reply: tx.into(),
            deadline: Instant::now() + std::time::Duration::from_secs(5),
        }]);
        match rx.recv().unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn expired_items_get_deadline_exceeded_without_execution() {
        let mut engine = made_engine(5, 8, 3);
        let (tx, rx) = std::sync::mpsc::channel();
        engine.execute(vec![WorkItem {
            request: Request::Sample {
                count: 4,
                seed: Some(1),
                precision: None,
            },
            reply: tx.into(),
            deadline: Instant::now() - std::time::Duration::from_millis(1),
        }]);
        match rx.recv().unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::DeadlineExceeded),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn f32_log_psi_tracks_f64_within_bound() {
        let mut engine = made_engine(48, 24, 99);
        let batch = SpinBatch::from_fn(32, 48, |s, i| ((s * 7 + i * 3) % 2) as u8);
        let f64_vals = engine.run_log_psi(&batch);
        let f32_vals = engine.run_log_psi_with(&batch, Precision::F32);
        let bound = 1e-5 * 48.0;
        for s in 0..batch.batch_size() {
            let err = (f32_vals[s] - f64_vals[s]).abs();
            assert!(
                err <= bound,
                "row {s}: |f32 - f64| = {err:.3e} exceeds {bound:.1e}"
            );
        }
    }

    #[test]
    fn f32_requests_coalesce_with_f64_without_cross_contamination() {
        // A mixed batch must split by precision: the f64 reply stays
        // bit-identical to the solo f64 pass and the f32 reply to the
        // solo f32 pass.
        let mut engine = made_engine(10, 12, 5);
        let batch = SpinBatch::from_fn(7, 10, |s, i| ((s + i) % 2) as u8);
        let solo64 = engine.run_log_psi(&batch);
        let solo32 = engine.run_log_psi_with(&batch, Precision::F32);

        let (tx64, rx64) = std::sync::mpsc::channel();
        let (tx32, rx32) = std::sync::mpsc::channel();
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        engine.execute(vec![
            WorkItem {
                request: Request::LogPsi {
                    batch: batch.clone(),
                    precision: Some(Precision::F64),
                },
                reply: tx64.into(),
                deadline,
            },
            WorkItem {
                request: Request::LogPsi {
                    batch: batch.clone(),
                    precision: Some(Precision::F32),
                },
                reply: tx32.into(),
                deadline,
            },
        ]);
        for (rx, solo, arm) in [(rx64, solo64, "f64"), (rx32, solo32, "f32")] {
            match rx.recv().unwrap() {
                Response::Values(v) => {
                    assert_eq!(v.len(), solo.len());
                    for s in 0..v.len() {
                        assert_eq!(v[s].to_bits(), solo[s].to_bits(), "{arm} row {s}");
                    }
                }
                other => panic!("expected Values, got {other:?}"),
            }
        }
    }

    #[test]
    fn f32_coalesced_sample_replies_match_solo_f32_requests() {
        let mut engine = made_engine(11, 16, 77);
        let reqs = [
            SampleRequest { count: 6, seed: 21 },
            SampleRequest { count: 2, seed: 22 },
            SampleRequest { count: 9, seed: 23 },
        ];
        let coalesced = engine.run_samples_with(Precision::F32, &reqs);
        for (req, reply) in reqs.iter().zip(coalesced) {
            let solo = engine
                .run_samples_with(Precision::F32, std::slice::from_ref(req))
                .pop()
                .unwrap();
            assert_eq!(reply, solo, "seed {}: coalesced f32 must equal solo f32", req.seed);
        }
    }

    #[test]
    fn nade_and_rbm_sampling_is_deterministic_per_seed() {
        for model in [
            AnyModel::Nade(Nade::new(6, 5, 2)),
            AnyModel::Rbm(Rbm::new(6, 6, 2)),
        ] {
            let mut engine =
                Engine::new(Arc::new(model), None, LocalEnergyConfig::default());
            let reqs = [SampleRequest { count: 6, seed: 42 }];
            let a = engine.run_samples(&reqs);
            let b = engine.run_samples(&reqs);
            assert_eq!(a, b, "same seed must reproduce");
        }
    }

    #[test]
    fn nade_coalesced_replies_match_native_sampling() {
        let nade = Nade::new(7, 6, 9);
        let mut engine = Engine::new(
            Arc::new(AnyModel::Nade(nade.clone())),
            None,
            LocalEnergyConfig::default(),
        );
        let reqs = [
            SampleRequest { count: 4, seed: 31 },
            SampleRequest { count: 11, seed: 32 },
        ];
        let replies = engine.run_samples(&reqs);
        for (req, reply) in reqs.iter().zip(replies) {
            let (sb, slp) =
                nade.sample_native(req.count, &mut StdRng::seed_from_u64(req.seed));
            match reply {
                Response::Samples { batch, log_psi } => {
                    assert_eq!(batch.as_bytes(), sb.as_bytes(), "seed {}", req.seed);
                    for s in 0..req.count {
                        assert_eq!(log_psi[s].to_bits(), slp[s].to_bits());
                    }
                }
                other => panic!("expected Samples, got {other:?}"),
            }
        }
    }
}
