//! The dynamic batcher: a bounded coalescing queue between connection
//! handler threads and model worker threads.
//!
//! State machine (per queue):
//!
//! ```text
//!             push ok                 drain (≤ max_batch or max_wait)
//!   clients ───────────▶ [ queue ] ─────────────────────▶ workers
//!      │                    │  ▲
//!      │ queue full         │  │ close() — shutdown signal
//!      ▼                    ▼  │
//!   Overloaded        ShuttingDown for new pushes;
//!   (immediate)       queued items still drain (graceful)
//! ```
//!
//! * **Admission control** — `push` fails immediately with
//!   [`PushError::Overloaded`] when the queue holds `queue_cap` items:
//!   backpressure is an error reply, never unbounded memory.
//! * **Coalescing** — a worker calling [`Batcher::next_batch`] blocks
//!   until the queue is non-empty, then keeps collecting until it holds
//!   `max_batch` items or `max_wait` has elapsed since the first item
//!   was seen, and drains up to `max_batch` in arrival order.  With
//!   `max_batch = 1` it degenerates to a plain work queue (the baseline
//!   the serving benchmark compares against).
//! * **Graceful drain** — [`Batcher::close`] flips the queue to
//!   draining: new pushes fail with [`PushError::ShuttingDown`], but
//!   workers keep draining until the queue is empty, after which
//!   `next_batch` returns `None` and workers exit.  Every item that was
//!   ever accepted gets exactly one reply.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::protocol::{Request, Response};

/// Single-use reply path back to whoever admitted the request.
///
/// The two runtimes answer differently — the thread-per-connection
/// handler blocks on an `mpsc` channel, the epoll runtime posts the
/// encoded reply into an event loop's completion queue — so the
/// batcher and engine only see this closure.  Stats recording wraps
/// here too, transparently to the execution layer.
pub struct ReplySink(Box<dyn FnOnce(Response) + Send>);

impl ReplySink {
    /// Wraps an arbitrary single-use reply delivery.
    pub fn new(f: impl FnOnce(Response) + Send + 'static) -> Self {
        ReplySink(Box::new(f))
    }

    /// A channel-backed sink plus its receiver (the blocking runtime
    /// and the in-process tests).
    pub fn channel() -> (Self, std::sync::mpsc::Receiver<Response>) {
        let (tx, rx) = std::sync::mpsc::channel();
        (ReplySink::from(tx), rx)
    }

    /// Delivers the reply, consuming the sink.
    pub fn send(self, response: Response) {
        (self.0)(response)
    }
}

impl From<std::sync::mpsc::Sender<Response>> for ReplySink {
    /// A hung-up receiver (client vanished while queued) is ignored —
    /// there is nobody left to answer.
    fn from(tx: std::sync::mpsc::Sender<Response>) -> Self {
        ReplySink::new(move |r| {
            let _ = tx.send(r);
        })
    }
}

impl std::fmt::Debug for ReplySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ReplySink(..)")
    }
}

/// One queued request plus everything needed to answer it.
#[derive(Debug)]
pub struct WorkItem {
    /// The decoded request (never `Ping`/`Shutdown` — those are handled
    /// inline by the connection handler).
    pub request: Request,
    /// Single-use reply path back to the admitting runtime.
    pub reply: ReplySink,
    /// Absolute deadline; items drained past it are answered with
    /// `DeadlineExceeded` instead of being executed.
    pub deadline: Instant,
}

impl WorkItem {
    /// Delivers the reply for this item.
    pub fn respond(self, response: Response) {
        self.reply.send(response);
    }
}

/// Why a push was refused (the item is handed back for the error reply).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity.
    Overloaded,
    /// The batcher is draining.
    ShuttingDown,
}

/// Batching knobs.
#[derive(Clone, Copy, Debug)]
pub struct BatcherConfig {
    /// Maximum items coalesced into one worker batch.
    pub max_batch: usize,
    /// Maximum time a worker waits for the batch to fill once the first
    /// item is available.
    pub max_wait: Duration,
    /// Admission-control bound on queued items.
    pub queue_cap: usize,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        BatcherConfig {
            max_batch: 64,
            max_wait: Duration::from_micros(200),
            queue_cap: 1024,
        }
    }
}

struct State {
    queue: VecDeque<WorkItem>,
    open: bool,
}

/// The coalescing queue shared by connection handlers and workers.
pub struct Batcher {
    config: BatcherConfig,
    state: Mutex<State>,
    notify: Condvar,
}

impl Batcher {
    /// A fresh, open batcher.
    pub fn new(config: BatcherConfig) -> Self {
        assert!(config.max_batch >= 1, "max_batch must be at least 1");
        assert!(config.queue_cap >= 1, "queue_cap must be at least 1");
        Batcher {
            config,
            state: Mutex::new(State {
                queue: VecDeque::new(),
                open: true,
            }),
            notify: Condvar::new(),
        }
    }

    /// The configuration the batcher was built with.
    pub fn config(&self) -> &BatcherConfig {
        &self.config
    }

    /// Enqueues a work item, or hands it back with the refusal reason.
    pub fn push(&self, item: WorkItem) -> Result<(), (WorkItem, PushError)> {
        let mut st = self.state.lock().unwrap();
        if !st.open {
            return Err((item, PushError::ShuttingDown));
        }
        if st.queue.len() >= self.config.queue_cap {
            return Err((item, PushError::Overloaded));
        }
        st.queue.push_back(item);
        drop(st);
        self.notify.notify_all();
        Ok(())
    }

    /// Number of items currently queued (diagnostics only).
    pub fn queued(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }

    /// Blocks until work is available, coalesces up to
    /// `max_batch`/`max_wait`, and drains the batch in arrival order.
    ///
    /// Returns `None` when the batcher is closed *and* empty — the
    /// worker-exit signal.
    pub fn next_batch(&self) -> Option<Vec<WorkItem>> {
        let mut st = self.state.lock().unwrap();
        // Phase 1: wait for the first item (or exit on drained close).
        loop {
            if !st.queue.is_empty() {
                break;
            }
            if !st.open {
                return None;
            }
            st = self.notify.wait(st).unwrap();
        }
        // Phase 2: let the batch fill, bounded by max_wait.  A closed
        // batcher drains immediately — no point waiting for arrivals
        // that can no longer be admitted.
        if self.config.max_batch > 1 {
            let fill_deadline = Instant::now() + self.config.max_wait;
            while st.queue.len() < self.config.max_batch && st.open {
                let now = Instant::now();
                if now >= fill_deadline {
                    break;
                }
                let (guard, timeout) = self
                    .notify
                    .wait_timeout(st, fill_deadline - now)
                    .unwrap();
                st = guard;
                if timeout.timed_out() {
                    break;
                }
            }
        }
        let take = st.queue.len().min(self.config.max_batch);
        let batch: Vec<WorkItem> = st.queue.drain(..take).collect();
        drop(st);
        // Wake peers: more items may remain, or a closer may be waiting.
        self.notify.notify_all();
        Some(batch)
    }

    /// Switches to draining mode: new pushes fail, queued items still
    /// drain, and workers exit once the queue is empty.
    pub fn close(&self) {
        self.state.lock().unwrap().open = false;
        self.notify.notify_all();
    }

    /// Whether [`Batcher::close`] has been called.
    pub fn is_closed(&self) -> bool {
        !self.state.lock().unwrap().open
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::sync::Arc;

    fn item() -> (WorkItem, mpsc::Receiver<Response>) {
        let (sink, rx) = ReplySink::channel();
        (
            WorkItem {
                request: Request::Sample {
                    count: 1,
                    seed: Some(0),
                    precision: None,
                },
                reply: sink,
                deadline: Instant::now() + Duration::from_secs(5),
            },
            rx,
        )
    }

    fn batcher(max_batch: usize, queue_cap: usize) -> Batcher {
        Batcher::new(BatcherConfig {
            max_batch,
            max_wait: Duration::from_millis(20),
            queue_cap,
        })
    }

    #[test]
    fn overload_refused_at_capacity() {
        let b = batcher(4, 2);
        let mut rxs = Vec::new();
        for _ in 0..2 {
            let (it, rx) = item();
            b.push(it).unwrap();
            rxs.push(rx);
        }
        let (it, _rx) = item();
        let (_, err) = b.push(it).unwrap_err();
        assert_eq!(err, PushError::Overloaded);
        assert_eq!(b.queued(), 2);
    }

    #[test]
    fn push_after_close_refused_but_queue_drains() {
        let b = batcher(8, 8);
        let (it, _rx1) = item();
        b.push(it).unwrap();
        b.close();
        let (it, _rx2) = item();
        let (_, err) = b.push(it).unwrap_err();
        assert_eq!(err, PushError::ShuttingDown);
        // The queued item still drains...
        let batch = b.next_batch().expect("queued item must drain");
        assert_eq!(batch.len(), 1);
        // ...and then workers are told to exit.
        assert!(b.next_batch().is_none());
    }

    #[test]
    fn coalesces_up_to_max_batch() {
        let b = batcher(3, 16);
        let mut rxs = Vec::new();
        for _ in 0..5 {
            let (it, rx) = item();
            b.push(it).unwrap();
            rxs.push(rx);
        }
        let first = b.next_batch().unwrap();
        assert_eq!(first.len(), 3, "batch capped at max_batch");
        let second = b.next_batch().unwrap();
        assert_eq!(second.len(), 2, "remainder drained next");
    }

    #[test]
    fn max_wait_bounds_the_fill_delay() {
        let b = batcher(64, 16);
        let (it, _rx) = item();
        b.push(it).unwrap();
        let t0 = Instant::now();
        let batch = b.next_batch().unwrap();
        let waited = t0.elapsed();
        assert_eq!(batch.len(), 1);
        assert!(
            waited < Duration::from_secs(2),
            "worker must not wait unboundedly for a full batch ({waited:?})"
        );
    }

    #[test]
    fn worker_wakes_on_late_arrivals() {
        let b = Arc::new(batcher(2, 16));
        let b2 = Arc::clone(&b);
        let worker = std::thread::spawn(move || b2.next_batch());
        std::thread::sleep(Duration::from_millis(5));
        let (it, _rx) = item();
        b.push(it).unwrap();
        let batch = worker.join().unwrap().unwrap();
        assert_eq!(batch.len(), 1);
    }

    #[test]
    fn close_unblocks_idle_workers() {
        let b = Arc::new(batcher(4, 4));
        let b2 = Arc::clone(&b);
        let worker = std::thread::spawn(move || b2.next_batch());
        std::thread::sleep(Duration::from_millis(5));
        b.close();
        assert!(worker.join().unwrap().is_none());
    }
}
