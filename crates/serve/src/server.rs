//! The TCP server front end: two interchangeable runtimes over one
//! execution layer (batcher → engine-replica pool).
//!
//! ```text
//!                     ┌── Epoll (default): 1..k event-loop threads,
//!                     │   nonblocking accept/read/write, thousands of
//!                     │   connections, replies via completion queues
//!  clients ──TCP──────┤
//!                     └── Threaded: accept loop + one blocking handler
//!                         thread per connection (the baseline the
//!                         serving benchmark compares against)
//!                              │ admit (validate · seed · tier · stats)
//!                              ▼
//!                        [ Batcher ] ──drain──▶ engine replicas (N workers,
//!                                               shared hot-swappable ModelSlot)
//! ```
//!
//! Both runtimes share `admit`: shape validation, server-side seeding,
//! precision resolution, the **graduated admission tier**
//! (accept → shed-`LocalEnergy` → saturated, driven by queue depth),
//! and latency-stats wrapping all happen before the batcher sees the
//! item, so the execution layer is runtime-agnostic.
//!
//! * `Shutdown` (frame or [`Server::shutdown`]) triggers the graceful
//!   drain: the batcher closes, workers finish everything admitted,
//!   both runtimes stop reading, flush every queued reply byte
//!   (partial writes resume mid-frame), and exit.  Every admitted
//!   request is answered — the drain drops nothing.
//! * `Reload` swaps the served checkpoint atomically via the shared
//!   [`ModelSlot`]: no connection is dropped, no request errs; each
//!   batch runs entirely on old or new weights.  The epoll runtime
//!   loads the checkpoint on a spawned thread so file I/O never stalls
//!   the event loop.
//! * `Stats` answers a point-in-time [`StatsSnapshot`] from lock-free
//!   counters: queue depth, admission tier, connection gauge,
//!   per-op/per-precision latency percentiles, batch occupancy.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vqmc_hamiltonian::{LocalEnergyConfig, SparseRowHamiltonian};
use vqmc_net::{
    Completions, EventLoop, EventLoopConfig, FrameHandler, FrameOutcome, Ticket,
};
use vqmc_nn::checkpoint::{load_any, AnyModel};
use vqmc_tensor::Precision;

use crate::batcher::{Batcher, BatcherConfig, PushError, ReplySink, WorkItem};
use crate::engine::{Engine, ModelSlot};
use crate::protocol::{
    self, decode_request, encode_response, ErrorCode, Request, Response, StatsSnapshot,
};
use crate::stats::{ServerStats, StatOp};

/// Which connection runtime the server uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Runtime {
    /// Readiness event loop(s): nonblocking sockets, a few threads for
    /// any number of connections.  The default.
    Epoll,
    /// One blocking handler thread per connection (the scalability
    /// baseline; also what the `thread-per-connection` benchmark arm
    /// measures).
    Threaded,
}

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back via
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Batching knobs (max batch, fill wait, admission queue bound).
    pub batcher: BatcherConfig,
    /// Engine replicas (worker threads), each with its own scratch,
    /// all draining the one shared admission queue.
    pub workers: usize,
    /// Per-request deadline measured from admission.
    pub request_timeout: Duration,
    /// Base seed for server-assigned sample seeds (seedless requests
    /// get `splitmix64(base_seed + k)` for the k-th admission).
    pub base_seed: u64,
    /// Chunking for the local-energy neighbour passes.
    pub local_energy: LocalEnergyConfig,
    /// Default execution precision for requests that carry no explicit
    /// precision tag (old clients).  Requests that do carry one always
    /// win; the default only fills the gap.
    pub precision: Precision,
    /// Connection runtime.
    pub runtime: Runtime,
    /// Event-loop threads (epoll runtime only).  Loop 0 accepts and
    /// deals connections round-robin across all loops.
    pub event_loops: usize,
    /// Queue-depth fraction at which the admission tier starts
    /// shedding `LocalEnergy` requests (the most expensive op) while
    /// still accepting the rest; at a full queue everything is
    /// refused.  `1.0` disables shedding (binary accept/overloaded).
    pub shed_threshold: f64,
    /// Connection cap for the epoll runtime (accepts beyond it are
    /// dropped).
    pub max_connections: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            batcher: BatcherConfig::default(),
            workers: 1,
            request_timeout: Duration::from_secs(2),
            base_seed: 0,
            local_energy: LocalEnergyConfig::default(),
            precision: Precision::F64,
            runtime: Runtime::Epoll,
            event_loops: 1,
            shed_threshold: 0.75,
            max_connections: 16 * 1024,
        }
    }
}

/// The admission tiers, most permissive first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum AdmissionTier {
    /// Everything admitted.
    Accept = 0,
    /// Queue depth past the shed threshold: `LocalEnergy` requests are
    /// refused (`Overloaded`), cheaper ops still admitted.
    ShedLocalEnergy = 1,
    /// Queue saturated: every batchable request is refused.
    Saturated = 2,
}

struct Shared {
    batcher: Batcher,
    stop_accepting: AtomicBool,
    seed_counter: AtomicU64,
    base_seed: u64,
    request_timeout: Duration,
    num_spins: usize,
    kind: &'static str,
    precision: Precision,
    shed_threshold: f64,
    slot: Arc<ModelSlot>,
    stats: Arc<ServerStats>,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
    /// Event-loop wakeups, poked on shutdown so drains start without
    /// waiting out a poll tick.
    pollers: Mutex<Vec<Arc<vqmc_net::Poller>>>,
}

impl Shared {
    /// Initiates the graceful drain (idempotent).
    fn begin_shutdown(&self) {
        self.stop_accepting.store(true, Ordering::SeqCst);
        self.batcher.close();
        for p in self.pollers.lock().unwrap().iter() {
            let _ = p.notify();
        }
    }

    fn next_seed(&self) -> u64 {
        let k = self.seed_counter.fetch_add(1, Ordering::Relaxed);
        splitmix64(self.base_seed.wrapping_add(k).wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    /// The current admission tier, derived from queue depth.
    fn tier(&self) -> AdmissionTier {
        let depth = self.batcher.queued();
        let cap = self.batcher.config().queue_cap;
        if depth >= cap {
            AdmissionTier::Saturated
        } else if (depth as f64) >= self.shed_threshold * (cap as f64) {
            AdmissionTier::ShedLocalEnergy
        } else {
            AdmissionTier::Accept
        }
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        self.stats
            .snapshot(self.batcher.queued() as u32, self.tier() as u8)
    }
}

/// SplitMix64 finaliser — decorrelates consecutive admission counters
/// into well-spread seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A running server; dropping it does **not** stop it — call
/// [`Server::shutdown`] or send a `Shutdown` frame, then
/// [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
    loop_handles: Vec<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving `model` (and optionally `hamiltonian`,
    /// required for `LocalEnergy` requests).
    pub fn start(
        model: AnyModel,
        hamiltonian: Option<Arc<dyn SparseRowHamiltonian>>,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;

        let kind = model.kind();
        let num_spins = model.num_spins();
        let slot = Arc::new(ModelSlot::new(Arc::new(model)));
        let shared = Arc::new(Shared {
            batcher: Batcher::new(config.batcher),
            stop_accepting: AtomicBool::new(false),
            seed_counter: AtomicU64::new(0),
            base_seed: config.base_seed,
            request_timeout: config.request_timeout,
            num_spins,
            kind,
            precision: config.precision,
            shed_threshold: config.shed_threshold.clamp(0.0, 1.0),
            slot: Arc::clone(&slot),
            stats: Arc::new(ServerStats::default()),
            conn_handles: Mutex::new(Vec::new()),
            pollers: Mutex::new(Vec::new()),
        });

        let workers = config.workers.max(1);
        let mut worker_handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let shared = Arc::clone(&shared);
            let mut engine = Engine::with_slot(
                Arc::clone(&slot),
                hamiltonian.clone(),
                config.local_energy,
            );
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("vqmc-serve-worker-{w}"))
                    .spawn(move || {
                        while let Some(batch) = shared.batcher.next_batch() {
                            shared.stats.record_occupancy(batch.len());
                            engine.execute(batch);
                        }
                    })?,
            );
        }

        let (accept_handle, loop_handles) = match config.runtime {
            Runtime::Threaded => {
                // Polled non-blocking accept: the drain signal must be
                // able to stop the loop without a wake-up connection.
                listener.set_nonblocking(true)?;
                let accept_shared = Arc::clone(&shared);
                let h = std::thread::Builder::new()
                    .name("vqmc-serve-accept".into())
                    .spawn(move || accept_loop(listener, accept_shared))?;
                (Some(h), Vec::new())
            }
            Runtime::Epoll => {
                let n_loops = config.event_loops.max(1);
                let el_config = EventLoopConfig {
                    max_payload: protocol::MAX_FRAME_LEN,
                    max_connections: config.max_connections,
                    ..EventLoopConfig::default()
                };
                let mut loops = Vec::with_capacity(n_loops);
                let mut listener = Some(listener);
                for _ in 0..n_loops {
                    loops.push(EventLoop::new(listener.take(), el_config.clone())?);
                }
                let handoffs: Vec<_> = loops.iter().map(|l| l.handoff()).collect();
                loops[0].set_peers(handoffs);
                {
                    let mut pollers = shared.pollers.lock().unwrap();
                    pollers.extend(loops.iter().map(|l| l.poller()));
                }
                let mut handles = Vec::with_capacity(n_loops);
                for (i, ev) in loops.into_iter().enumerate() {
                    let mut handler = ServeHandler {
                        shared: Arc::clone(&shared),
                        completions: ev.completions(),
                    };
                    handles.push(
                        std::thread::Builder::new()
                            .name(format!("vqmc-serve-loop-{i}"))
                            .spawn(move || {
                                let _ = ev.run(&mut handler);
                            })?,
                    );
                }
                (None, handles)
            }
        };

        Ok(Server {
            shared,
            local_addr,
            accept_handle,
            loop_handles,
            worker_handles,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Initiates the graceful drain from the hosting process (same
    /// effect as a client `Shutdown` frame).
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the server has fully drained and every thread has
    /// exited.  Returns only after a shutdown was initiated.
    pub fn join(mut self) {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.loop_handles.drain(..) {
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        let handles: Vec<_> = self
            .shared
            .conn_handles
            .lock()
            .unwrap()
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------
// Runtime-agnostic admission
// ---------------------------------------------------------------------

/// Classifies a batchable request for the stats arrays.
fn stat_op(request: &Request) -> (StatOp, Option<Precision>) {
    match request {
        Request::Sample { precision, .. } => (StatOp::Sample, *precision),
        Request::LogPsi { precision, .. } => (StatOp::LogPsi, *precision),
        Request::LocalEnergy { precision, .. } => (StatOp::LocalEnergy, *precision),
        _ => unreachable!("only batchable requests are classified"),
    }
}

/// Validates, seeds, resolves precision, applies the admission tier,
/// wraps latency recording, and enqueues — or answers `sink`
/// immediately with the refusal/validation error.  Every call consumes
/// the sink exactly once, now or when the engine replies.
fn admit(shared: &Arc<Shared>, mut request: Request, sink: ReplySink) {
    // Shape validation happens here, before admission, so malformed
    // requests never occupy queue capacity.
    match &mut request {
        Request::Sample {
            count,
            seed,
            precision,
        } => {
            if *count == 0 {
                return sink.send(Response::error(
                    ErrorCode::BadRequest,
                    "sample count must be positive",
                ));
            }
            if seed.is_none() {
                *seed = Some(shared.next_seed());
            }
            // Resolve the server default here, at admission, so the
            // engine only ever coalesces items of one concrete
            // precision per pass.
            *precision = Some(precision.unwrap_or(shared.precision));
        }
        Request::LogPsi { batch, precision }
        | Request::LocalEnergy { batch, precision } => {
            if batch.num_spins() != shared.num_spins {
                return sink.send(Response::error(
                    ErrorCode::BadRequest,
                    format!(
                        "batch has {} spins but the model has {}",
                        batch.num_spins(),
                        shared.num_spins
                    ),
                ));
            }
            if batch.batch_size() == 0 {
                return sink.send(Response::Values(Default::default()));
            }
            *precision = Some(precision.unwrap_or(shared.precision));
        }
        _ => unreachable!("inline requests are handled by the runtimes"),
    }

    // Graduated admission: shed the expensive op first, then refuse
    // everything once the queue saturates (`push` below double-checks
    // capacity under the queue lock — the tier read is advisory).
    let tier = shared.tier();
    let (op, precision) = stat_op(&request);
    match tier {
        AdmissionTier::Accept => {}
        AdmissionTier::ShedLocalEnergy if op == StatOp::LocalEnergy => {
            shared.stats.on_shed();
            return sink.send(Response::error(
                ErrorCode::Overloaded,
                "shedding local-energy requests under load",
            ));
        }
        AdmissionTier::ShedLocalEnergy => {}
        AdmissionTier::Saturated => {
            shared.stats.on_refused();
            return sink.send(Response::error(
                ErrorCode::Overloaded,
                "admission queue is full",
            ));
        }
    }

    // Wrap latency recording around the reply path.
    let stats = Arc::clone(&shared.stats);
    let tag = precision.map_or(0, |p| p.tag());
    let t0 = Instant::now();
    let sink = ReplySink::new(move |resp| {
        stats.record_latency(op, tag, t0.elapsed().as_micros() as u64);
        sink.send(resp)
    });

    let item = WorkItem {
        request,
        reply: sink,
        deadline: Instant::now() + shared.request_timeout,
    };
    match shared.batcher.push(item) {
        Ok(()) => shared.stats.on_accepted(),
        Err((item, PushError::Overloaded)) => {
            shared.stats.on_refused();
            item.respond(Response::error(
                ErrorCode::Overloaded,
                "admission queue is full",
            ));
        }
        Err((item, PushError::ShuttingDown)) => {
            item.respond(Response::error(
                ErrorCode::ShuttingDown,
                "server is draining",
            ));
        }
    }
}

/// Loads, validates and swaps in a checkpoint (shared by both
/// runtimes; the epoll runtime calls it from a spawned thread).
fn do_reload(shared: &Shared, path: &str) -> Response {
    if shared.stop_accepting.load(Ordering::SeqCst) {
        return Response::error(ErrorCode::ShuttingDown, "server is draining");
    }
    let model = match load_any(std::path::Path::new(path)) {
        Ok((model, _ckpt_precision)) => model,
        Err(e) => {
            return Response::error(
                ErrorCode::BadRequest,
                format!("cannot load checkpoint {path:?}: {e}"),
            )
        }
    };
    if model.kind() != shared.kind {
        return Response::error(
            ErrorCode::BadRequest,
            format!(
                "checkpoint kind {:?} does not match served kind {:?}",
                model.kind(),
                shared.kind
            ),
        );
    }
    if model.num_spins() != shared.num_spins {
        return Response::error(
            ErrorCode::BadRequest,
            format!(
                "checkpoint has {} spins but the server serves {}",
                model.num_spins(),
                shared.num_spins
            ),
        );
    }
    shared.slot.swap(Arc::new(model));
    shared.stats.on_reload();
    Response::ReloadAck
}

// ---------------------------------------------------------------------
// Epoll runtime
// ---------------------------------------------------------------------

/// Per-event-loop glue between `vqmc-net` and the execution layer.
struct ServeHandler {
    shared: Arc<Shared>,
    completions: Arc<Completions>,
}

impl FrameHandler for ServeHandler {
    fn on_frame(&mut self, ticket: Ticket, payload: Vec<u8>) -> FrameOutcome {
        let reply = |resp: Response| FrameOutcome::Reply(encode_response(&resp));
        let request = match decode_request(&payload) {
            // Malformed payload inside an intact frame: answer and keep
            // the connection (framing is still synchronised).
            Err(e) => return reply(Response::error(ErrorCode::BadRequest, e.to_string())),
            Ok(r) => r,
        };
        match request {
            Request::Ping => reply(Response::Pong {
                num_spins: self.shared.num_spins as u32,
                kind: self.shared.kind.into(),
            }),
            Request::Stats => reply(Response::StatsReport(Box::new(self.shared.stats_snapshot()))),
            Request::Shutdown => {
                // The drain flag is shared: every loop sees it via
                // `draining()` and begins its own flush-and-exit.
                self.shared.begin_shutdown();
                reply(Response::ShutdownAck)
            }
            Request::Reload { path } => {
                // Checkpoint I/O must not stall the event loop; load on
                // a helper thread and post the outcome as a completion.
                let shared = Arc::clone(&self.shared);
                let completions = Arc::clone(&self.completions);
                std::thread::spawn(move || {
                    let resp = do_reload(&shared, &path);
                    completions.post(ticket, encode_response(&resp));
                });
                FrameOutcome::Pending
            }
            batchable => {
                let completions = Arc::clone(&self.completions);
                let sink = ReplySink::new(move |resp| {
                    completions.post(ticket, encode_response(&resp));
                });
                admit(&self.shared, batchable, sink);
                FrameOutcome::Pending
            }
        }
    }

    fn draining(&self) -> bool {
        self.shared.stop_accepting.load(Ordering::SeqCst)
    }

    fn on_accept(&mut self) {
        self.shared.stats.on_connect();
    }

    fn on_close(&mut self) {
        self.shared.stats.on_disconnect();
    }
}

// ---------------------------------------------------------------------
// Threaded runtime (baseline)
// ---------------------------------------------------------------------

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.stop_accepting.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("vqmc-serve-conn".into())
                    .spawn(move || connection_loop(stream, conn_shared));
                if let Ok(h) = handle {
                    shared.conn_handles.lock().unwrap().push(h);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

/// Outcome of one timeout-aware frame read.
enum FrameRead {
    /// A complete frame is in the buffer.
    Frame,
    /// EOF, drain-while-idle, or a transport error — close the
    /// connection.
    Close,
}

/// Reads one frame on a stream with a short read timeout, preserving
/// partial progress across timeouts (a plain `read_exact` would lose
/// already-consumed bytes and corrupt the framing).  While *idle*
/// (zero bytes of the next frame read), a drain signal closes the
/// connection; mid-frame, the read keeps waiting for the client.
fn read_frame_idle(
    reader: &mut TcpStream,
    buf: &mut Vec<u8>,
    shared: &Shared,
) -> FrameRead {
    let mut len_bytes = [0u8; 4];
    match fill(reader, &mut len_bytes, shared, true) {
        FillOutcome::Full => {}
        FillOutcome::Close => return FrameRead::Close,
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > protocol::MAX_FRAME_LEN {
        return FrameRead::Close;
    }
    buf.resize(len, 0);
    match fill(reader, buf, shared, false) {
        FillOutcome::Full => FrameRead::Frame,
        FillOutcome::Close => FrameRead::Close,
    }
}

enum FillOutcome {
    Full,
    Close,
}

fn fill(
    reader: &mut TcpStream,
    buf: &mut [u8],
    shared: &Shared,
    idle_at_start: bool,
) -> FillOutcome {
    use std::io::Read;
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return FillOutcome::Close, // EOF (mid-frame = truncation)
            Ok(k) => filled += k,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                let idle = idle_at_start && filled == 0;
                if idle && shared.stop_accepting.load(Ordering::SeqCst) {
                    return FillOutcome::Close; // draining and client idle
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return FillOutcome::Close,
        }
    }
    FillOutcome::Full
}

fn connection_loop(stream: TcpStream, shared: Arc<Shared>) {
    shared.stats.on_connect();
    // Finite read timeout so the handler notices the drain signal even
    // while a client holds the connection open without sending.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    // Cloning doubles the fd cost of this runtime (reader + writer per
    // connection) — under fd exhaustion it fails, and the right answer
    // is to drop this connection, not to panic the handler thread.
    let Ok(mut reader) = stream.try_clone() else {
        shared.stats.on_disconnect();
        return;
    };
    let mut writer = io::BufWriter::new(stream);
    let mut frame = Vec::new();

    while let FrameRead::Frame = read_frame_idle(&mut reader, &mut frame, &shared) {
        let response = match decode_request(&frame) {
            Err(e) => Response::error(ErrorCode::BadRequest, e.to_string()),
            Ok(Request::Ping) => Response::Pong {
                num_spins: shared.num_spins as u32,
                kind: shared.kind.into(),
            },
            Ok(Request::Stats) => Response::StatsReport(Box::new(shared.stats_snapshot())),
            Ok(Request::Shutdown) => {
                shared.begin_shutdown();
                Response::ShutdownAck
            }
            // Blocking file I/O is fine here — this thread serves only
            // this connection.
            Ok(Request::Reload { path }) => do_reload(&shared, &path),
            Ok(request) => handle_batched(request, &shared),
        };
        if protocol::write_frame(&mut writer, &encode_response(&response)).is_err() {
            break;
        }
        if matches!(response, Response::ShutdownAck) {
            // Ack delivered; the drain will close this connection.
            break;
        }
        // After a drain begins, in-flight work above was still answered;
        // stop reading further requests and release the connection.
        if shared.stop_accepting.load(Ordering::SeqCst) {
            break;
        }
    }
    let _ = writer.flush();
    shared.stats.on_disconnect();
}

/// Admits one batchable request and blocks until its reply arrives
/// (each blocking connection has at most one request in flight).
fn handle_batched(request: Request, shared: &Arc<Shared>) -> Response {
    let (sink, rx) = ReplySink::channel();
    admit(shared, request, sink);
    // Workers always answer admitted items (drain included); the
    // generous timeout only guards against a crashed worker.
    match rx.recv_timeout(shared.request_timeout + Duration::from_secs(30)) {
        Ok(response) => response,
        Err(_) => Response::error(ErrorCode::Internal, "worker did not answer"),
    }
}
