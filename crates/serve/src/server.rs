//! The TCP server: accept loop, per-connection handlers, worker pool,
//! admission control and graceful drain.
//!
//! Thread layout:
//!
//! ```text
//! accept thread ──spawns──▶ connection handlers (one per client)
//!                                  │  push (bounded)       ▲ reply
//!                                  ▼                       │
//!                            [ Batcher ] ──drain──▶ worker threads (Engine each)
//! ```
//!
//! * A connection handler reads frames, answers `Ping` inline, resolves
//!   seedless `Sample` requests to a concrete per-request seed, and
//!   pushes everything else into the [`Batcher`] with a single-use
//!   reply channel, blocking until the worker answers (so each
//!   connection has at most one request in flight — concurrency comes
//!   from concurrent connections, exactly like the load generator).
//! * `Shutdown` triggers the graceful drain: the batcher closes (new
//!   work is refused with `ShuttingDown`), workers finish everything
//!   already admitted, the accept loop stops, and [`Server::join`]
//!   returns once every thread has exited.  Every admitted request is
//!   answered — the drain drops nothing.
//! * Deadlines: every admitted request carries
//!   `now + config.request_timeout`; a worker that drains an expired
//!   item answers `DeadlineExceeded` without executing it.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vqmc_hamiltonian::{LocalEnergyConfig, SparseRowHamiltonian};
use vqmc_nn::checkpoint::AnyModel;
use vqmc_tensor::Precision;

use crate::batcher::{Batcher, BatcherConfig, PushError, WorkItem};
use crate::engine::Engine;
use crate::protocol::{
    self, decode_request, encode_response, ErrorCode, Request, Response,
};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (read it back via
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Batching knobs (max batch, fill wait, admission queue bound).
    pub batcher: BatcherConfig,
    /// Worker threads, each with its own [`Engine`] scratch.
    pub workers: usize,
    /// Per-request deadline measured from admission.
    pub request_timeout: Duration,
    /// Base seed for server-assigned sample seeds (seedless requests
    /// get `splitmix64(base_seed + k)` for the k-th admission).
    pub base_seed: u64,
    /// Chunking for the local-energy neighbour passes.
    pub local_energy: LocalEnergyConfig,
    /// Default execution precision for requests that carry no explicit
    /// precision tag (old clients).  Requests that do carry one always
    /// win; the default only fills the gap.
    pub precision: Precision,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            batcher: BatcherConfig::default(),
            workers: 1,
            request_timeout: Duration::from_secs(2),
            base_seed: 0,
            local_energy: LocalEnergyConfig::default(),
            precision: Precision::F64,
        }
    }
}

struct Shared {
    batcher: Batcher,
    stop_accepting: AtomicBool,
    seed_counter: AtomicU64,
    base_seed: u64,
    request_timeout: Duration,
    num_spins: usize,
    kind: &'static str,
    precision: Precision,
    conn_handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    /// Initiates the graceful drain (idempotent).
    fn begin_shutdown(&self) {
        self.stop_accepting.store(true, Ordering::SeqCst);
        self.batcher.close();
    }

    fn next_seed(&self) -> u64 {
        let k = self.seed_counter.fetch_add(1, Ordering::Relaxed);
        splitmix64(self.base_seed.wrapping_add(k).wrapping_add(0x9E37_79B9_7F4A_7C15))
    }
}

/// SplitMix64 finaliser — decorrelates consecutive admission counters
/// into well-spread seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A running server; dropping it does **not** stop it — call
/// [`Server::shutdown`] or send a `Shutdown` frame, then
/// [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving `model` (and optionally `hamiltonian`,
    /// required for `LocalEnergy` requests).
    pub fn start(
        model: AnyModel,
        hamiltonian: Option<Arc<dyn SparseRowHamiltonian>>,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        // Polled non-blocking accept: the drain signal must be able to
        // stop the loop without an extra wake-up connection.
        listener.set_nonblocking(true)?;

        let kind = match &model {
            AnyModel::Made(_) => "made",
            AnyModel::Rbm(_) => "rbm",
            AnyModel::Nade(_) => "nade",
        };
        let model = Arc::new(model);
        let shared = Arc::new(Shared {
            batcher: Batcher::new(config.batcher),
            stop_accepting: AtomicBool::new(false),
            seed_counter: AtomicU64::new(0),
            base_seed: config.base_seed,
            request_timeout: config.request_timeout,
            num_spins: model.num_spins(),
            kind,
            precision: config.precision,
            conn_handles: Mutex::new(Vec::new()),
        });

        let workers = config.workers.max(1);
        let mut worker_handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let shared = Arc::clone(&shared);
            let mut engine = Engine::new(
                Arc::clone(&model),
                hamiltonian.clone(),
                config.local_energy,
            );
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("vqmc-serve-worker-{w}"))
                    .spawn(move || {
                        while let Some(batch) = shared.batcher.next_batch() {
                            engine.execute(batch);
                        }
                    })?,
            );
        }

        let accept_shared = Arc::clone(&shared);
        let accept_handle = std::thread::Builder::new()
            .name("vqmc-serve-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;

        Ok(Server {
            shared,
            local_addr,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Initiates the graceful drain from the hosting process (same
    /// effect as a client `Shutdown` frame).
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Blocks until the server has fully drained and every thread has
    /// exited.  Returns only after a shutdown was initiated.
    pub fn join(mut self) {
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        let handles: Vec<_> = self
            .shared
            .conn_handles
            .lock()
            .unwrap()
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.stop_accepting.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name("vqmc-serve-conn".into())
                    .spawn(move || connection_loop(stream, conn_shared));
                if let Ok(h) = handle {
                    shared.conn_handles.lock().unwrap().push(h);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => break,
        }
    }
}

/// Outcome of one timeout-aware frame read.
enum FrameRead {
    /// A complete frame is in the buffer.
    Frame,
    /// EOF, drain-while-idle, or a transport error — close the
    /// connection.
    Close,
}

/// Reads one frame on a stream with a short read timeout, preserving
/// partial progress across timeouts (a plain `read_exact` would lose
/// already-consumed bytes and corrupt the framing).  While *idle*
/// (zero bytes of the next frame read), a drain signal closes the
/// connection; mid-frame, the read keeps waiting for the client.
fn read_frame_idle(
    reader: &mut TcpStream,
    buf: &mut Vec<u8>,
    shared: &Shared,
) -> FrameRead {
    let mut len_bytes = [0u8; 4];
    match fill(reader, &mut len_bytes, shared, true) {
        FillOutcome::Full => {}
        FillOutcome::Close => return FrameRead::Close,
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > protocol::MAX_FRAME_LEN {
        return FrameRead::Close;
    }
    buf.resize(len, 0);
    match fill(reader, buf, shared, false) {
        FillOutcome::Full => FrameRead::Frame,
        FillOutcome::Close => FrameRead::Close,
    }
}

enum FillOutcome {
    Full,
    Close,
}

fn fill(
    reader: &mut TcpStream,
    buf: &mut [u8],
    shared: &Shared,
    idle_at_start: bool,
) -> FillOutcome {
    use std::io::Read;
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return FillOutcome::Close, // EOF (mid-frame = truncation)
            Ok(k) => filled += k,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                let idle = idle_at_start && filled == 0;
                if idle && shared.stop_accepting.load(Ordering::SeqCst) {
                    return FillOutcome::Close; // draining and client idle
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return FillOutcome::Close,
        }
    }
    FillOutcome::Full
}

fn connection_loop(stream: TcpStream, shared: Arc<Shared>) {
    // Finite read timeout so the handler notices the drain signal even
    // while a client holds the connection open without sending.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let mut reader = stream.try_clone().expect("clone TCP stream");
    let mut writer = io::BufWriter::new(stream);
    let mut frame = Vec::new();

    loop {
        match read_frame_idle(&mut reader, &mut frame, &shared) {
            FrameRead::Frame => {}
            FrameRead::Close => break,
        }
        let response = match decode_request(&frame) {
            Err(e) => Some(Response::error(ErrorCode::BadRequest, e.to_string())),
            Ok(Request::Ping) => Some(Response::Pong {
                num_spins: shared.num_spins as u32,
                kind: shared.kind.into(),
            }),
            Ok(Request::Shutdown) => {
                shared.begin_shutdown();
                Some(Response::ShutdownAck)
            }
            Ok(request) => Some(handle_batched(request, &shared)),
        };
        if let Some(response) = response {
            if protocol::write_frame(&mut writer, &encode_response(&response)).is_err() {
                break;
            }
            let shutting_down = matches!(response, Response::ShutdownAck);
            if shutting_down {
                // Ack delivered; the drain will close this connection.
                break;
            }
        }
        // After a drain begins, in-flight work above was still answered;
        // stop reading further requests and release the connection.
        if shared.stop_accepting.load(Ordering::SeqCst) {
            break;
        }
    }
    let _ = writer.flush();
}

/// Validates, seeds, enqueues and awaits one batchable request.
fn handle_batched(mut request: Request, shared: &Shared) -> Response {
    // Shape validation happens here, before admission, so malformed
    // requests never occupy queue capacity.
    match &mut request {
        Request::Sample {
            count,
            seed,
            precision,
        } => {
            if *count == 0 {
                return Response::error(
                    ErrorCode::BadRequest,
                    "sample count must be positive",
                );
            }
            if seed.is_none() {
                *seed = Some(shared.next_seed());
            }
            // Resolve the server default here, at admission, so the
            // engine only ever coalesces items of one concrete
            // precision per pass.
            *precision = Some(precision.unwrap_or(shared.precision));
        }
        Request::LogPsi { batch, precision }
        | Request::LocalEnergy { batch, precision } => {
            if batch.num_spins() != shared.num_spins {
                return Response::error(
                    ErrorCode::BadRequest,
                    format!(
                        "batch has {} spins but the model has {}",
                        batch.num_spins(),
                        shared.num_spins
                    ),
                );
            }
            if batch.batch_size() == 0 {
                return Response::Values(Default::default());
            }
            *precision = Some(precision.unwrap_or(shared.precision));
        }
        _ => unreachable!("Ping/Shutdown handled inline"),
    }

    let (tx, rx) = mpsc::channel();
    let item = WorkItem {
        request,
        reply: tx,
        deadline: Instant::now() + shared.request_timeout,
    };
    match shared.batcher.push(item) {
        Ok(()) => {}
        Err((_, PushError::Overloaded)) => {
            return Response::error(ErrorCode::Overloaded, "admission queue is full")
        }
        Err((_, PushError::ShuttingDown)) => {
            return Response::error(ErrorCode::ShuttingDown, "server is draining")
        }
    }
    // Workers always answer admitted items (drain included); the
    // generous timeout only guards against a crashed worker.
    match rx.recv_timeout(shared.request_timeout + Duration::from_secs(30)) {
        Ok(response) => response,
        Err(_) => Response::error(ErrorCode::Internal, "worker did not answer"),
    }
}
