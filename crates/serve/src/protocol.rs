//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! ```text
//! frame    := u32le payload_len · payload        (payload_len ≤ 64 MiB)
//! payload  := u8 opcode · body
//! ```
//!
//! All integers are little-endian; floats are IEEE-754 `f64` in
//! little-endian byte order; spin configurations are one byte per spin
//! (`0`/`1`), row-major — exactly the in-memory layout of
//! [`SpinBatch`], so encode/decode is a `memcpy`.
//!
//! Request opcodes (client → server):
//!
//! | op | name | body |
//! |---|---|---|
//! | `0x01` | `Ping` | — |
//! | `0x02` | `Sample` | `u32 count · u8 has_seed · u64 seed · [u8 precision]` |
//! | `0x03` | `LogPsi` | `u32 bs · u32 n · bs·n spin bytes · [u8 precision]` |
//! | `0x04` | `LocalEnergy` | `u32 bs · u32 n · bs·n spin bytes · [u8 precision]` |
//! | `0x05` | `Shutdown` | — |
//! | `0x06` | `Reload` | `u16 path_len · path bytes (UTF-8)` |
//! | `0x07` | `Stats` | — |
//!
//! `[u8 precision]` is an **optional trailing byte** on the batchable
//! requests: absent (the pre-precision frame layout, and what encoding
//! `precision: None` produces) means "server default"; present it is a
//! [`Precision::tag`] (`0` = f64, `1` = f32) forcing that execution
//! arm.  Old clients never send the byte and old servers reject frames
//! that carry it, so the flag is strictly opt-in.
//!
//! Response opcodes (server → client):
//!
//! | op | name | body |
//! |---|---|---|
//! | `0x81` | `Pong` | `u32 n · u8 kind_len · kind bytes` |
//! | `0x82` | `Samples` | `u32 count · u32 n · count·n spin bytes · count f64 logψ` |
//! | `0x83` | `Values` | `u32 len · len f64` |
//! | `0x84` | `ShutdownAck` | — |
//! | `0x85` | `StatsReport` | fixed-layout counters + histograms (see [`StatsSnapshot`]) |
//! | `0x86` | `ReloadAck` | — |
//! | `0xEF` | `Error` | `u8 code · u16 msg_len · msg bytes` |
//!
//! Unknown opcodes, oversized frames and truncated bodies are decode
//! errors; the server answers them with `Error(BadRequest)` and the
//! connection stays usable (framing is still intact — the bad bytes are
//! confined to their frame).

use std::io::{self, Read, Write};

use vqmc_tensor::{Precision, SpinBatch, Vector};

/// Hard ceiling on a frame payload (bounds per-connection memory).
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Hard ceiling on `Sample.count` (bounds one request's work).
pub const MAX_SAMPLE_COUNT: usize = 1 << 20;

/// Hard ceiling on configurations per `LogPsi`/`LocalEnergy` request.
pub const MAX_BATCH_ROWS: usize = 1 << 20;

/// A decoded client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Health check; answered inline (never batched).
    Ping,
    /// Draw `count` exact samples from the served wavefunction.
    Sample {
        /// Number of configurations to draw.
        count: u32,
        /// RNG seed for a deterministic reply; `None` lets the server
        /// pick a fresh stream.
        seed: Option<u64>,
        /// Execution precision; `None` defers to the server default.
        precision: Option<Precision>,
    },
    /// Evaluate `logψ` on the supplied configurations.
    LogPsi {
        /// The configurations to evaluate.
        batch: SpinBatch,
        /// Execution precision; `None` defers to the server default.
        precision: Option<Precision>,
    },
    /// Evaluate local energies `l(x)` on the supplied configurations.
    LocalEnergy {
        /// The configurations to evaluate.
        batch: SpinBatch,
        /// Execution precision; `None` defers to the server default.
        precision: Option<Precision>,
    },
    /// Begin graceful drain: queued work completes, new work is
    /// refused, then the server exits.
    Shutdown,
    /// Atomically swap the served model for the checkpoint at `path`
    /// (same model kind and spin count required).  In-flight and
    /// concurrent requests are never dropped: each one executes
    /// against either the old or the new weights, atomically.
    Reload {
        /// Server-side filesystem path of the checkpoint to load.
        path: String,
    },
    /// Fetch live serving statistics (queue depth, admission tier,
    /// latency percentiles, batch occupancy).
    Stats,
}

/// Error codes carried by [`Response::Error`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The admission queue is full — back off and retry.
    Overloaded = 1,
    /// The request sat in the queue past its deadline.
    DeadlineExceeded = 2,
    /// The server is draining and accepts no new work.
    ShuttingDown = 3,
    /// The request was malformed or violates a server limit.
    BadRequest = 4,
    /// The server failed internally.
    Internal = 5,
}

impl ErrorCode {
    fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::Overloaded,
            2 => ErrorCode::DeadlineExceeded,
            3 => ErrorCode::ShuttingDown,
            4 => ErrorCode::BadRequest,
            5 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A server reply.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Reply to [`Request::Ping`]: spin count and model kind tag.
    Pong {
        /// Number of spins of the served model.
        num_spins: u32,
        /// Model kind tag (`"made"` / `"rbm"` / `"nade"`).
        kind: String,
    },
    /// Reply to [`Request::Sample`].
    Samples {
        /// The sampled configurations.
        batch: SpinBatch,
        /// `logψ` of every sample.
        log_psi: Vector,
    },
    /// Reply to [`Request::LogPsi`] / [`Request::LocalEnergy`].
    Values(Vector),
    /// Reply to [`Request::Shutdown`].
    ShutdownAck,
    /// Reply to [`Request::Stats`].  Boxed: the fixed-layout snapshot
    /// is ~50× the size of the other variants.
    StatsReport(Box<StatsSnapshot>),
    /// Reply to [`Request::Reload`]: the swap is complete and every
    /// request admitted from now on runs the new weights.
    ReloadAck,
    /// Any failure; the connection remains usable.
    Error {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Convenience constructor for error replies.
    pub fn error(code: ErrorCode, message: impl Into<String>) -> Response {
        Response::Error {
            code,
            message: message.into(),
        }
    }
}

/// Batchable operations tracked by the stats, in wire order:
/// `Sample`, `LogPsi`, `LocalEnergy`.
pub const STATS_OPS: usize = 3;

/// Precision arms tracked by the stats, in wire order: f64, f32.
pub const STATS_PRECISIONS: usize = 2;

/// Batch-occupancy histogram buckets: log2-spaced upper edges
/// 1, 2, 4, 8, 16, 32, and 64-or-more items per drained batch.
pub const OCCUPANCY_BUCKETS: usize = 7;

/// Latency summary for one (operation, precision) arm, microseconds
/// measured from admission to reply.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpLatency {
    /// Requests answered on this arm.
    pub count: u64,
    /// Sum of latencies (for the mean).
    pub sum_us: u64,
    /// 50th-percentile latency (log-bucket upper edge).
    pub p50_us: u64,
    /// 95th-percentile latency (log-bucket upper edge).
    pub p95_us: u64,
    /// 99th-percentile latency (log-bucket upper edge).
    pub p99_us: u64,
}

/// One point-in-time view of the serving counters, carried by
/// [`Response::StatsReport`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests admitted to the batcher since startup.
    pub accepted: u64,
    /// Requests shed by the graduated admission tier (load-shedding of
    /// expensive operations before full saturation).
    pub shed: u64,
    /// Requests refused outright (queue saturated).
    pub refused: u64,
    /// Completed checkpoint hot-reloads.
    pub reloads: u64,
    /// Items in the admission queue right now.
    pub queue_depth: u32,
    /// Open client connections right now.
    pub connections: u32,
    /// Current admission tier: 0 = accept, 1 = shedding
    /// `LocalEnergy`, 2 = saturated.
    pub tier: u8,
    /// Per-op (`Sample`, `LogPsi`, `LocalEnergy`), per-precision
    /// (f64, f32) latency summaries.
    pub latency: [[OpLatency; STATS_PRECISIONS]; STATS_OPS],
    /// Drained-batch size histogram (log2 buckets: 1, 2, 4, …, ≥64).
    pub occupancy: [u64; OCCUPANCY_BUCKETS],
}

/// A malformed payload (distinct from transport-level `io::Error`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "protocol decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn de(msg: impl Into<String>) -> DecodeError {
    DecodeError(msg.into())
}

// ---------------------------------------------------------------------
// Payload encode/decode (frame-length prefix handled by read/write_frame)
// ---------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn bytes(&mut self, len: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| de("truncated payload"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(de(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

fn put_batch(buf: &mut Vec<u8>, batch: &SpinBatch) {
    put_u32(buf, batch.batch_size() as u32);
    put_u32(buf, batch.num_spins() as u32);
    buf.extend_from_slice(batch.as_bytes());
}

fn get_batch(c: &mut Cursor) -> Result<SpinBatch, DecodeError> {
    let bs = c.u32()? as usize;
    let n = c.u32()? as usize;
    if bs > MAX_BATCH_ROWS {
        return Err(de(format!("batch of {bs} rows exceeds limit {MAX_BATCH_ROWS}")));
    }
    let bytes = c.bytes(bs.checked_mul(n).ok_or_else(|| de("batch size overflow"))?)?;
    // The fallible constructor owns the value/shape validation, so a
    // garbage frame becomes this request's `BadRequest` instead of a
    // panic in the decoding worker.
    SpinBatch::try_from_bytes(bs, n, bytes).map_err(de)
}

fn put_precision(buf: &mut Vec<u8>, precision: Option<Precision>) {
    if let Some(p) = precision {
        buf.push(p.tag());
    }
}

/// The optional trailing precision byte: absent → `None` (server
/// default), present but unknown → decode error.
fn get_precision(c: &mut Cursor) -> Result<Option<Precision>, DecodeError> {
    if c.remaining() == 0 {
        return Ok(None);
    }
    let tag = c.u8()?;
    Precision::from_tag(tag)
        .map(Some)
        .ok_or_else(|| de(format!("unknown precision tag {tag}")))
}

fn put_f64s(buf: &mut Vec<u8>, vals: &[f64]) {
    for v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn get_f64s(c: &mut Cursor, len: usize) -> Result<Vector, DecodeError> {
    let bytes = c.bytes(len.checked_mul(8).ok_or_else(|| de("f64 count overflow"))?)?;
    Ok(Vector(
        bytes
            .chunks_exact(8)
            .map(|b| f64::from_le_bytes(b.try_into().unwrap()))
            .collect(),
    ))
}

/// Serialises a request into a frame payload (no length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::new();
    match req {
        Request::Ping => buf.push(0x01),
        Request::Sample {
            count,
            seed,
            precision,
        } => {
            buf.push(0x02);
            put_u32(&mut buf, *count);
            buf.push(seed.is_some() as u8);
            put_u64(&mut buf, seed.unwrap_or(0));
            put_precision(&mut buf, *precision);
        }
        Request::LogPsi { batch, precision } => {
            buf.push(0x03);
            put_batch(&mut buf, batch);
            put_precision(&mut buf, *precision);
        }
        Request::LocalEnergy { batch, precision } => {
            buf.push(0x04);
            put_batch(&mut buf, batch);
            put_precision(&mut buf, *precision);
        }
        Request::Shutdown => buf.push(0x05),
        Request::Reload { path } => {
            buf.push(0x06);
            let p = &path.as_bytes()[..path.len().min(u16::MAX as usize)];
            buf.extend_from_slice(&(p.len() as u16).to_le_bytes());
            buf.extend_from_slice(p);
        }
        Request::Stats => buf.push(0x07),
    }
    buf
}

/// Parses a frame payload into a request.
pub fn decode_request(payload: &[u8]) -> Result<Request, DecodeError> {
    let mut c = Cursor::new(payload);
    let op = c.u8()?;
    let req = match op {
        0x01 => Request::Ping,
        0x02 => {
            let count = c.u32()?;
            if count as usize > MAX_SAMPLE_COUNT {
                return Err(de(format!(
                    "sample count {count} exceeds limit {MAX_SAMPLE_COUNT}"
                )));
            }
            let has_seed = c.u8()?;
            let seed = c.u64()?;
            Request::Sample {
                count,
                seed: (has_seed != 0).then_some(seed),
                precision: get_precision(&mut c)?,
            }
        }
        0x03 => Request::LogPsi {
            batch: get_batch(&mut c)?,
            precision: get_precision(&mut c)?,
        },
        0x04 => Request::LocalEnergy {
            batch: get_batch(&mut c)?,
            precision: get_precision(&mut c)?,
        },
        0x05 => Request::Shutdown,
        0x06 => {
            let path_len = c.u16()? as usize;
            let path = String::from_utf8(c.bytes(path_len)?.to_vec())
                .map_err(|_| de("reload path is not UTF-8"))?;
            Request::Reload { path }
        }
        0x07 => Request::Stats,
        other => return Err(de(format!("unknown request opcode {other:#04x}"))),
    };
    c.finish()?;
    Ok(req)
}

/// Serialises a response into a frame payload (no length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut buf = Vec::new();
    match resp {
        Response::Pong { num_spins, kind } => {
            buf.push(0x81);
            put_u32(&mut buf, *num_spins);
            buf.push(kind.len() as u8);
            buf.extend_from_slice(kind.as_bytes());
        }
        Response::Samples { batch, log_psi } => {
            buf.push(0x82);
            put_batch(&mut buf, batch);
            put_f64s(&mut buf, log_psi.as_slice());
        }
        Response::Values(vals) => {
            buf.push(0x83);
            put_u32(&mut buf, vals.len() as u32);
            put_f64s(&mut buf, vals.as_slice());
        }
        Response::ShutdownAck => buf.push(0x84),
        Response::StatsReport(s) => {
            buf.push(0x85);
            put_u64(&mut buf, s.accepted);
            put_u64(&mut buf, s.shed);
            put_u64(&mut buf, s.refused);
            put_u64(&mut buf, s.reloads);
            put_u32(&mut buf, s.queue_depth);
            put_u32(&mut buf, s.connections);
            buf.push(s.tier);
            for op in &s.latency {
                for arm in op {
                    put_u64(&mut buf, arm.count);
                    put_u64(&mut buf, arm.sum_us);
                    put_u64(&mut buf, arm.p50_us);
                    put_u64(&mut buf, arm.p95_us);
                    put_u64(&mut buf, arm.p99_us);
                }
            }
            for &b in &s.occupancy {
                put_u64(&mut buf, b);
            }
        }
        Response::ReloadAck => buf.push(0x86),
        Response::Error { code, message } => {
            buf.push(0xEF);
            buf.push(*code as u8);
            let msg = &message.as_bytes()[..message.len().min(u16::MAX as usize)];
            buf.extend_from_slice(&(msg.len() as u16).to_le_bytes());
            buf.extend_from_slice(msg);
        }
    }
    buf
}

/// Parses a frame payload into a response.
pub fn decode_response(payload: &[u8]) -> Result<Response, DecodeError> {
    let mut c = Cursor::new(payload);
    let op = c.u8()?;
    let resp = match op {
        0x81 => {
            let num_spins = c.u32()?;
            let kind_len = c.u8()? as usize;
            let kind = String::from_utf8(c.bytes(kind_len)?.to_vec())
                .map_err(|_| de("kind tag is not UTF-8"))?;
            Response::Pong { num_spins, kind }
        }
        0x82 => {
            let batch = get_batch(&mut c)?;
            let log_psi = get_f64s(&mut c, batch.batch_size())?;
            Response::Samples { batch, log_psi }
        }
        0x83 => {
            let len = c.u32()? as usize;
            Response::Values(get_f64s(&mut c, len)?)
        }
        0x84 => Response::ShutdownAck,
        0x85 => {
            let mut s = StatsSnapshot {
                accepted: c.u64()?,
                shed: c.u64()?,
                refused: c.u64()?,
                reloads: c.u64()?,
                queue_depth: c.u32()?,
                connections: c.u32()?,
                tier: c.u8()?,
                ..StatsSnapshot::default()
            };
            for op in &mut s.latency {
                for arm in op.iter_mut() {
                    *arm = OpLatency {
                        count: c.u64()?,
                        sum_us: c.u64()?,
                        p50_us: c.u64()?,
                        p95_us: c.u64()?,
                        p99_us: c.u64()?,
                    };
                }
            }
            for b in &mut s.occupancy {
                *b = c.u64()?;
            }
            Response::StatsReport(Box::new(s))
        }
        0x86 => Response::ReloadAck,
        0xEF => {
            let code = ErrorCode::from_u8(c.u8()?).ok_or_else(|| de("unknown error code"))?;
            let msg_len = c.u16()? as usize;
            let message = String::from_utf8(c.bytes(msg_len)?.to_vec())
                .map_err(|_| de("error message is not UTF-8"))?;
            Response::Error { code, message }
        }
        other => return Err(de(format!("unknown response opcode {other:#04x}"))),
    };
    c.finish()?;
    Ok(resp)
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    assert!(payload.len() <= MAX_FRAME_LEN, "frame exceeds MAX_FRAME_LEN");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame into `buf` (resized in place).
///
/// Returns `Ok(false)` on clean EOF at a frame boundary, `Ok(true)` when
/// a full frame was read, and an error for oversized or truncated
/// frames.
pub fn read_frame(r: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<bool> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(false),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit {MAX_FRAME_LEN}"),
        ));
    }
    buf.resize(len, 0);
    r.read_exact(buf)?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(bs: usize, n: usize, seed: u8) -> SpinBatch {
        SpinBatch::from_fn(bs, n, |s, i| ((s + i + seed as usize) % 2) as u8)
    }

    #[test]
    fn request_round_trips() {
        let reqs = [
            Request::Ping,
            Request::Sample {
                count: 128,
                seed: Some(7),
                precision: None,
            },
            Request::Sample {
                count: 1,
                seed: None,
                precision: Some(Precision::F32),
            },
            Request::LogPsi {
                batch: batch(3, 5, 0),
                precision: None,
            },
            Request::LogPsi {
                batch: batch(3, 5, 0),
                precision: Some(Precision::F32),
            },
            Request::LocalEnergy {
                batch: batch(2, 4, 1),
                precision: Some(Precision::F64),
            },
            Request::Shutdown,
            Request::Reload {
                path: "/tmp/ckpt-v2.vqmc".into(),
            },
            Request::Stats,
        ];
        for req in reqs {
            let payload = encode_request(&req);
            assert_eq!(decode_request(&payload).unwrap(), req, "{req:?}");
        }
    }

    /// A frame in the pre-precision layout (no trailing byte) decodes
    /// to `precision: None` — old clients keep working unchanged.
    #[test]
    fn precisionless_frames_decode_as_default() {
        let b = batch(2, 3, 0);
        let mut legacy = vec![0x03];
        put_batch(&mut legacy, &b);
        assert_eq!(
            decode_request(&legacy).unwrap(),
            Request::LogPsi {
                batch: b,
                precision: None
            }
        );
    }

    #[test]
    fn unknown_precision_tag_rejected() {
        let mut p = encode_request(&Request::LogPsi {
            batch: batch(1, 3, 0),
            precision: Some(Precision::F32),
        });
        *p.last_mut().unwrap() = 9;
        assert!(decode_request(&p).is_err());
    }

    #[test]
    fn response_round_trips() {
        let resps = [
            Response::Pong {
                num_spins: 20,
                kind: "made".into(),
            },
            Response::Samples {
                batch: batch(4, 6, 0),
                log_psi: Vector::from_fn(4, |i| -(i as f64) - 0.25),
            },
            Response::Values(Vector::from_fn(7, |i| i as f64 * 1.5 - 3.0)),
            Response::ShutdownAck,
            Response::ReloadAck,
            Response::StatsReport(Box::new({
                let mut s = StatsSnapshot {
                    accepted: 1000,
                    shed: 17,
                    refused: 3,
                    reloads: 2,
                    queue_depth: 42,
                    connections: 2048,
                    tier: 1,
                    ..StatsSnapshot::default()
                };
                s.latency[1][0] = OpLatency {
                    count: 900,
                    sum_us: 123_456,
                    p50_us: 128,
                    p95_us: 512,
                    p99_us: 1024,
                };
                s.occupancy = [1, 2, 4, 8, 16, 32, 64];
                s
            })),
            Response::error(ErrorCode::Overloaded, "queue full"),
        ];
        for resp in resps {
            let payload = encode_response(&resp);
            assert_eq!(decode_response(&payload).unwrap(), resp, "{resp:?}");
        }
    }

    #[test]
    fn malformed_payloads_rejected() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[0x99]).is_err());
        // Truncated Sample body.
        assert!(decode_request(&[0x02, 1, 0, 0]).is_err());
        // Truncated Reload path.
        assert!(decode_request(&[0x06, 5, 0, b'a']).is_err());
        // Trailing garbage after a valid Ping.
        assert!(decode_request(&[0x01, 0xAB]).is_err());
        // Spin byte out of {0, 1}.
        let mut p = encode_request(&Request::LogPsi {
            batch: batch(1, 3, 0),
            precision: None,
        });
        *p.last_mut().unwrap() = 2;
        assert!(decode_request(&p).is_err());
        // Batch row count beyond the limit.
        let mut huge = vec![0x03];
        huge.extend_from_slice(&(MAX_BATCH_ROWS as u32 + 1).to_le_bytes());
        huge.extend_from_slice(&4u32.to_le_bytes());
        assert!(decode_request(&huge).is_err());
    }

    #[test]
    fn framing_round_trips_and_detects_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        let mut buf = Vec::new();
        assert!(read_frame(&mut r, &mut buf).unwrap());
        assert_eq!(buf, b"hello");
        assert!(read_frame(&mut r, &mut buf).unwrap());
        assert_eq!(buf, b"");
        assert!(!read_frame(&mut r, &mut buf).unwrap()); // clean EOF
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_le_bytes());
        let mut r = &wire[..];
        assert!(read_frame(&mut r, &mut Vec::new()).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error_not_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        wire.truncate(wire.len() - 2);
        let mut r = &wire[..];
        assert!(read_frame(&mut r, &mut Vec::new()).is_err());
    }
}
