//! Live serving statistics: lock-free counters and log-bucketed
//! histograms, snapshotted on demand by the `Stats` frame.
//!
//! Everything here is plain relaxed atomics — recording a latency or a
//! batch occupancy is a handful of `fetch_add`s on shared cache lines,
//! cheap enough to sit on the per-request hot path of both runtimes.
//! Percentiles are derived from power-of-two latency buckets at
//! snapshot time, so a reported p99 is the *upper edge* of the bucket
//! containing the 99th-percentile request (≤ 2× the true value — the
//! usual log-histogram trade: O(1) recording, bounded relative error).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::protocol::{
    OpLatency, StatsSnapshot, OCCUPANCY_BUCKETS, STATS_OPS, STATS_PRECISIONS,
};

/// Latency buckets: powers of two in microseconds, 1 µs … ~2.1 s, plus
/// a final overflow bucket.
const LATENCY_BUCKETS: usize = 32;

/// Operation indices into the stats arrays (wire order).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum StatOp {
    /// `Request::Sample`.
    Sample = 0,
    /// `Request::LogPsi`.
    LogPsi = 1,
    /// `Request::LocalEnergy`.
    LocalEnergy = 2,
}

#[derive(Default)]
struct LatencyHist {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl LatencyHist {
    fn record(&self, us: u64) {
        let bucket = (64 - us.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    fn snapshot(&self) -> OpLatency {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        let percentile = |p: f64| -> u64 {
            if total == 0 {
                return 0;
            }
            let rank = ((total as f64) * p).ceil() as u64;
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    // Upper edge of bucket i: 2^i - 1 µs (bucket 0 holds
                    // sub-µs latencies).
                    return (1u64 << i).saturating_sub(1);
                }
            }
            (1u64 << (LATENCY_BUCKETS - 1)).saturating_sub(1)
        };
        OpLatency {
            count: total,
            sum_us: self.sum_us.load(Ordering::Relaxed),
            p50_us: percentile(0.50),
            p95_us: percentile(0.95),
            p99_us: percentile(0.99),
        }
    }
}

/// The shared serving counters (one instance per server, updated by
/// every runtime thread).
#[derive(Default)]
pub struct ServerStats {
    accepted: AtomicU64,
    shed: AtomicU64,
    refused: AtomicU64,
    reloads: AtomicU64,
    connections: AtomicU64,
    latency: [[LatencyHist; STATS_PRECISIONS]; STATS_OPS],
    occupancy: [AtomicU64; OCCUPANCY_BUCKETS],
}

impl ServerStats {
    /// A request was admitted to the batcher.
    pub fn on_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was refused by the shedding tier.
    pub fn on_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// A request was refused because the queue is saturated.
    pub fn on_refused(&self) {
        self.refused.fetch_add(1, Ordering::Relaxed);
    }

    /// A checkpoint hot-reload completed.
    pub fn on_reload(&self) {
        self.reloads.fetch_add(1, Ordering::Relaxed);
    }

    /// Completed reloads so far.
    pub fn reloads(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// A connection opened.
    pub fn on_connect(&self) {
        self.connections.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection closed.
    pub fn on_disconnect(&self) {
        self.connections.fetch_sub(1, Ordering::Relaxed);
    }

    /// Records one request's admission→reply latency.
    pub fn record_latency(&self, op: StatOp, precision_tag: u8, us: u64) {
        self.latency[op as usize][(precision_tag as usize).min(STATS_PRECISIONS - 1)]
            .record(us);
    }

    /// Records the size of one drained batch.
    pub fn record_occupancy(&self, batch_len: usize) {
        if batch_len == 0 {
            return;
        }
        // log2 buckets 1, 2, 4, …, ≥64.
        let bucket = (usize::BITS - 1 - batch_len.leading_zeros()) as usize;
        self.occupancy[bucket.min(OCCUPANCY_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Builds the wire snapshot; `queue_depth` and `tier` are owned by
    /// the admission layer and passed in.
    pub fn snapshot(&self, queue_depth: u32, tier: u8) -> StatsSnapshot {
        let mut s = StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            queue_depth,
            connections: self.connections.load(Ordering::Relaxed) as u32,
            tier,
            ..StatsSnapshot::default()
        };
        for (op, hists) in s.latency.iter_mut().zip(&self.latency) {
            for (arm, hist) in op.iter_mut().zip(hists) {
                *arm = hist.snapshot();
            }
        }
        for (dst, src) in s.occupancy.iter_mut().zip(&self.occupancy) {
            *dst = src.load(Ordering::Relaxed);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles_track_buckets() {
        let stats = ServerStats::default();
        // 99 fast requests (~100 µs) and one slow outlier (~50 ms).
        for _ in 0..99 {
            stats.record_latency(StatOp::LogPsi, 0, 100);
        }
        stats.record_latency(StatOp::LogPsi, 0, 50_000);
        let s = stats.snapshot(0, 0);
        let arm = s.latency[StatOp::LogPsi as usize][0];
        assert_eq!(arm.count, 100);
        assert!(arm.p50_us >= 100 && arm.p50_us < 256, "p50 = {}", arm.p50_us);
        assert!(arm.p99_us >= 100 && arm.p99_us < 256, "p99 = {}", arm.p99_us);
        // The mean sees the outlier even though p99 does not.
        assert_eq!(arm.sum_us, 99 * 100 + 50_000);
    }

    #[test]
    fn occupancy_buckets_are_log2() {
        let stats = ServerStats::default();
        for size in [1, 2, 3, 4, 63, 64, 1000] {
            stats.record_occupancy(size);
        }
        let s = stats.snapshot(0, 0);
        assert_eq!(s.occupancy, [1, 2, 1, 0, 0, 1, 2]);
    }

    #[test]
    fn connection_gauge_tracks_open_close() {
        let stats = ServerStats::default();
        for _ in 0..5 {
            stats.on_connect();
        }
        stats.on_disconnect();
        assert_eq!(stats.snapshot(0, 0).connections, 4);
    }
}
