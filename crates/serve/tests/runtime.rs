//! End-to-end tests of the epoll serving runtime: checkpoint
//! hot-reload under load, graduated admission, live stats, pipelined
//! in-order replies, drain-mid-burst frame integrity, and
//! cross-runtime bit-identity against the thread-per-connection
//! baseline.

use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use vqmc_nn::checkpoint::{AnyModel, Checkpoint};
use vqmc_nn::Made;
use vqmc_serve::protocol::{
    encode_request, read_frame, write_frame, decode_response,
};
use vqmc_serve::{
    BatcherConfig, Client, ClientError, ErrorCode, Request, Response, Runtime, ServeConfig,
    Server,
};
use vqmc_tensor::SpinBatch;

const N: usize = 8;
const HIDDEN: usize = 12;

fn start(config: ServeConfig) -> Server {
    let model = AnyModel::Made(Made::new(N, HIDDEN, 5));
    let ham: Arc<dyn vqmc_hamiltonian::SparseRowHamiltonian> =
        Arc::new(vqmc_hamiltonian::TransverseFieldIsing::random(N, 2021));
    Server::start(model, Some(ham), config).expect("bind ephemeral port")
}

fn test_batch(tweak: usize) -> SpinBatch {
    SpinBatch::from_fn(4, N, |s, i| ((s + i + tweak) % 2) as u8)
}

/// A unique temp path that is removed when dropped.
struct TempCkpt(PathBuf);

impl TempCkpt {
    fn new(name: &str) -> Self {
        TempCkpt(std::env::temp_dir().join(format!(
            "vqmc-serve-test-{}-{}.ckpt",
            name,
            std::process::id()
        )))
    }
    fn path(&self) -> &str {
        self.0.to_str().unwrap()
    }
}

impl Drop for TempCkpt {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// A mid-load `Reload` atomically swaps the served weights: logψ flips
/// from the old model's values to the new model's, concurrent traffic
/// sees zero errors, and every reply matches exactly one of the two
/// models — never a mixture.
#[test]
fn hot_reload_swaps_model_mid_load_without_errors() {
    let ckpt = TempCkpt::new("reload-b");
    Made::new(N, HIDDEN, 99).save(&ckpt.0).unwrap();

    let server = start(ServeConfig::default());
    let addr = server.local_addr();
    let batch = test_batch(0);

    let mut client = Client::connect(addr).unwrap();
    let before = client.log_psi(&batch).unwrap();

    // Sustained background load across the swap.
    let stop = Arc::new(AtomicBool::new(false));
    let loaders: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let batch = batch.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut replies = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    // Any error here fails the test: a hot swap must be
                    // invisible to in-flight traffic.
                    replies.push(client.log_psi(&batch).expect("no errors during reload"));
                    client.sample(2, Some(7)).expect("no errors during reload");
                }
                replies
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(30));
    client.reload(ckpt.path()).expect("reload must succeed");
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);

    let after = client.log_psi(&batch).unwrap();
    assert_ne!(
        before.0, after.0,
        "the mutated checkpoint must be distinguishable from the original"
    );

    for handle in loaders {
        let replies = handle.join().unwrap();
        assert!(!replies.is_empty(), "loader made progress");
        for v in replies {
            // Atomicity: old or new weights, never a torn mixture.
            assert!(
                v.0 == before.0 || v.0 == after.0,
                "reply matches neither old nor new model: {:?}",
                v.0
            );
        }
    }

    assert_eq!(client.stats().unwrap().reloads, 1);
    client.shutdown().unwrap();
    server.join();
}

/// Reload refuses checkpoints that do not match the served model shape
/// and unreadable paths, without disturbing the running server.
#[test]
fn reload_rejects_mismatched_or_missing_checkpoints() {
    let wrong = TempCkpt::new("reload-wrong-shape");
    Made::new(N / 2, HIDDEN, 1).save(&wrong.0).unwrap();

    let server = start(ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    let err = client.reload(wrong.path()).unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::BadRequest));

    let err = client.reload("/nonexistent/vqmc.ckpt").unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::BadRequest));

    // Still serving, still on the original weights.
    assert_eq!(client.stats().unwrap().reloads, 0);
    client.log_psi(&test_batch(0)).unwrap();
    client.shutdown().unwrap();
    server.join();
}

/// Killing the server mid-burst must never truncate a reply frame: a
/// client sees complete frames up to a clean connection end, never a
/// partial frame (`UnexpectedEof` mid-reply).
#[test]
fn shutdown_mid_burst_never_truncates_replies() {
    let server = start(ServeConfig::default());
    let addr = server.local_addr();

    let clients: Vec<_> = (0..8)
        .map(|c| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut ok = 0u64;
                loop {
                    match client.sample(32, Some(c)) {
                        Ok((batch, log_psi)) => {
                            assert_eq!(batch.batch_size(), 32);
                            assert_eq!(log_psi.len(), 32);
                            ok += 1;
                        }
                        // The one outcome this regression test exists
                        // to forbid: EOF in the middle of a frame.
                        Err(ClientError::Io(e))
                            if e.kind() == std::io::ErrorKind::UnexpectedEof =>
                        {
                            panic!("truncated reply frame during drain");
                        }
                        // Acceptable ends: drain refusal or the
                        // connection closing at a frame boundary.
                        Err(_) => break,
                    }
                }
                ok
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(50));
    server.shutdown();
    let total: u64 = clients.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0, "burst made progress before the drain");
    server.join();
}

/// With the shed threshold at zero the admission tier permanently sits
/// at `ShedLocalEnergy`: local-energy requests get `Overloaded`,
/// cheaper ops keep flowing, and the stats report the tier and count.
#[test]
fn graduated_admission_sheds_local_energy_first() {
    let server = start(ServeConfig {
        shed_threshold: 0.0,
        ..ServeConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).unwrap();

    let err = client.local_energy(&test_batch(0)).unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::Overloaded));
    match &err {
        ClientError::Server { message, .. } => {
            assert!(message.contains("shed"), "sheds are labelled: {message}")
        }
        other => panic!("expected a server error, got {other}"),
    }

    // Cheaper ops are still admitted under the shedding tier.
    client.log_psi(&test_batch(0)).unwrap();
    client.sample(2, Some(1)).unwrap();

    let stats = client.stats().unwrap();
    assert_eq!(stats.tier, 1, "tier is ShedLocalEnergy");
    assert_eq!(stats.shed, 1);
    assert_eq!(stats.accepted, 2);

    client.shutdown().unwrap();
    server.join();
}

/// The stats snapshot tracks admissions, per-op/per-precision latency
/// counts, connections, and batch occupancy.
#[test]
fn stats_snapshot_tracks_traffic() {
    let server = start(ServeConfig::default());
    let mut client = Client::connect(server.local_addr()).unwrap();

    for r in 0..3 {
        client.sample(2, Some(r)).unwrap();
    }
    client.log_psi(&test_batch(0)).unwrap();
    client
        .log_psi_with(&test_batch(0), Some(vqmc_tensor::Precision::F32))
        .unwrap();

    let stats = client.stats().unwrap();
    assert_eq!(stats.accepted, 5);
    assert_eq!(stats.refused, 0);
    assert_eq!(stats.tier, 0);
    assert_eq!(stats.connections, 1);
    // latency arrays are [op][precision] with f64 = 0, f32 = 1.
    assert_eq!(stats.latency[0][0].count, 3, "three f64 samples");
    assert_eq!(stats.latency[1][0].count, 1, "one f64 logψ");
    assert_eq!(stats.latency[1][1].count, 1, "one f32 logψ");
    let batches: u64 = stats.occupancy.iter().sum();
    assert!(batches >= 1, "drained batches land in occupancy buckets");

    client.shutdown().unwrap();
    server.join();
}

/// A client that pipelines K requests down one connection before
/// reading anything back gets K replies in request order, each
/// bit-identical to the same request issued solo.
#[test]
fn pipelined_requests_reply_in_order() {
    let server = start(ServeConfig::default());
    let addr = server.local_addr();
    let k = 16usize;

    // Solo references, one request at a time.
    let mut solo = Vec::new();
    {
        let mut client = Client::connect(addr).unwrap();
        for r in 0..k {
            solo.push(client.log_psi(&test_batch(r)).unwrap());
        }
    }

    // One connection, all K requests flushed before the first read.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    for r in 0..k {
        let payload = encode_request(&Request::LogPsi {
            batch: test_batch(r),
            precision: None,
        });
        write_frame(&mut stream, &payload).unwrap();
    }
    stream.flush().unwrap();

    let mut frame = Vec::new();
    for r in 0..k {
        assert!(read_frame(&mut stream, &mut frame).unwrap(), "reply {r}");
        match decode_response(&frame).unwrap() {
            Response::Values(v) => assert_eq!(v, solo[r], "reply {r} in request order"),
            other => panic!("unexpected reply to pipelined LogPsi: {other:?}"),
        }
    }

    drop(stream);
    server.shutdown();
    server.join();
}

/// The thread-per-connection baseline still works behind the same
/// config switch, and seeded sampling is bit-identical across the two
/// runtimes.
#[test]
fn threaded_runtime_matches_epoll_bit_for_bit() {
    let epoll = start(ServeConfig::default());
    let threaded = start(ServeConfig {
        runtime: Runtime::Threaded,
        ..ServeConfig::default()
    });

    let mut a = Client::connect(epoll.local_addr()).unwrap();
    let mut b = Client::connect(threaded.local_addr()).unwrap();
    assert_eq!(a.ping().unwrap(), b.ping().unwrap());

    let (batch_a, lp_a) = a.sample(5, Some(42)).unwrap();
    let (batch_b, lp_b) = b.sample(5, Some(42)).unwrap();
    assert_eq!(batch_a.as_bytes(), batch_b.as_bytes());
    assert_eq!(lp_a, lp_b);
    assert_eq!(
        a.log_psi(&test_batch(1)).unwrap(),
        b.log_psi(&test_batch(1)).unwrap()
    );

    a.shutdown().unwrap();
    b.shutdown().unwrap();
    epoll.join();
    threaded.join();
}

/// Multiple event loops split connections without changing results.
#[test]
fn multiple_event_loops_serve_consistently() {
    let server = start(ServeConfig {
        event_loops: 2,
        batcher: BatcherConfig {
            max_batch: 64,
            max_wait: Duration::from_millis(10),
            queue_cap: 1024,
        },
        ..ServeConfig::default()
    });
    let addr = server.local_addr();

    let mut reference = Client::connect(addr).unwrap();
    let expect = reference.log_psi(&test_batch(0)).unwrap();

    let handles: Vec<_> = (0..6)
        .map(|_| {
            let expect = expect.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..5 {
                    assert_eq!(client.log_psi(&test_batch(0)).unwrap(), expect);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    reference.shutdown().unwrap();
    server.join();
}
