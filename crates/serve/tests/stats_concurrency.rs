//! Concurrency contract of [`ServerStats`]: many runtime threads
//! hammer the counters while other threads probe snapshots, and every
//! snapshot must be *internally sane* — counters monotone across
//! consecutive probes, the connection gauge never negative (recorders
//! pair connect-before-disconnect, as both runtimes do), and histogram
//! totals consistent with the number of recorded events.  After all
//! recorders join, the totals must be exact — relaxed atomics may
//! reorder between cells, but nothing may be lost.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use vqmc_serve::stats::{ServerStats, StatOp};

const OPS: [StatOp; 3] = [StatOp::Sample, StatOp::LogPsi, StatOp::LocalEnergy];

#[test]
fn hammered_stats_stay_sane_under_concurrent_snapshots() {
    let stats = Arc::new(ServerStats::default());
    let stop = Arc::new(AtomicBool::new(false));
    let writers = 4;
    let rounds = 20_000u64;

    let recorders: Vec<_> = (0..writers)
        .map(|w| {
            let stats = stats.clone();
            std::thread::spawn(move || {
                for i in 0..rounds {
                    // Gauge discipline mirrors the runtimes: a connect
                    // always precedes its disconnect on the same thread.
                    stats.on_connect();
                    stats.on_accepted();
                    if i % 7 == 0 {
                        stats.on_shed();
                    }
                    if i % 13 == 0 {
                        stats.on_refused();
                    }
                    let op = OPS[(w + i as usize) % OPS.len()];
                    let precision = (i % 2) as u8;
                    stats.record_latency(op, precision, i % 900);
                    stats.record_occupancy((i % 70) as usize + 1);
                    stats.on_disconnect();
                }
            })
        })
        .collect();

    // Snapshot probes run concurrently with the recorders and check
    // every invariant that must hold *mid-flight*.
    let probes: Vec<_> = (0..2)
        .map(|_| {
            let stats = stats.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut prev_accepted = 0u64;
                let mut prev_shed = 0u64;
                let mut prev_refused = 0u64;
                let mut prev_latency_counts = [[0u64; 2]; 3];
                let mut snapshots = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let s = stats.snapshot(3, 1);
                    // Pass-through fields.
                    assert_eq!(s.queue_depth, 3);
                    assert_eq!(s.tier, 1);
                    // Monotone counters.
                    assert!(s.accepted >= prev_accepted, "accepted went backwards");
                    assert!(s.shed >= prev_shed, "shed went backwards");
                    assert!(s.refused >= prev_refused, "refused went backwards");
                    prev_accepted = s.accepted;
                    prev_shed = s.shed;
                    prev_refused = s.refused;
                    // Gauge: connect-before-disconnect pairing means the
                    // u64 underneath never wraps, so the u32 cast stays
                    // a small non-negative number.
                    assert!(
                        s.connections <= writers as u32,
                        "gauge {} exceeds the number of live recorders",
                        s.connections
                    );
                    // Histograms: per-arm monotone, and each arm's
                    // bucket-derived count can never exceed what the
                    // counters imply happened.
                    for (op, arms) in s.latency.iter().enumerate() {
                        for (arm, lat) in arms.iter().enumerate() {
                            assert!(
                                lat.count >= prev_latency_counts[op][arm],
                                "latency[{op}][{arm}] count went backwards"
                            );
                            prev_latency_counts[op][arm] = lat.count;
                            assert!(
                                lat.count <= s.accepted,
                                "latency[{op}][{arm}] count {} > accepted {}",
                                lat.count,
                                s.accepted
                            );
                            if lat.count > 0 {
                                // p50 ≤ p95 ≤ p99 by construction.
                                assert!(lat.p50_us <= lat.p95_us);
                                assert!(lat.p95_us <= lat.p99_us);
                            }
                        }
                    }
                    snapshots += 1;
                }
                snapshots
            })
        })
        .collect();

    for r in recorders {
        r.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let probe_rounds: u64 = probes.into_iter().map(|p| p.join().unwrap()).sum();
    assert!(probe_rounds > 0, "probes never ran");

    // Quiescent totals are exact.
    let s = stats.snapshot(0, 0);
    let total = writers as u64 * rounds;
    assert_eq!(s.accepted, total);
    assert_eq!(s.shed, writers as u64 * rounds.div_ceil(7));
    assert_eq!(s.refused, writers as u64 * rounds.div_ceil(13));
    assert_eq!(s.connections, 0, "every connect had its disconnect");
    let latency_total: u64 = s
        .latency
        .iter()
        .flat_map(|arms| arms.iter())
        .map(|l| l.count)
        .sum();
    assert_eq!(latency_total, total, "latency records lost or duplicated");
    let occupancy_total: u64 = s.occupancy.iter().sum();
    assert_eq!(occupancy_total, total, "occupancy records lost");
    // Latency sums are exact too (relaxed adds still sum correctly).
    let expect_sum: u64 = (0..rounds).map(|i| i % 900).sum::<u64>() * writers as u64;
    let got_sum: u64 = s
        .latency
        .iter()
        .flat_map(|arms| arms.iter())
        .map(|l| l.sum_us)
        .sum();
    assert_eq!(got_sum, expect_sum, "latency sums drifted");
}
