//! End-to-end tests of the serving stack over real localhost TCP:
//! coalescing identity (batched replies bit-identical to the
//! single-request path), backpressure, deadlines, and graceful drain.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use proptest::prelude::*;
use vqmc_nn::checkpoint::AnyModel;
use vqmc_nn::Made;
use vqmc_serve::{BatcherConfig, Client, ErrorCode, ServeConfig, Server};
use vqmc_tensor::SpinBatch;

fn start_server(n: usize, h: usize, model_seed: u64, batcher: BatcherConfig) -> Server {
    let model = AnyModel::Made(Made::new(n, h, model_seed));
    let ham: Arc<dyn vqmc_hamiltonian::SparseRowHamiltonian> =
        Arc::new(vqmc_hamiltonian::TransverseFieldIsing::random(n, 2021));
    Server::start(
        model,
        Some(ham),
        ServeConfig {
            batcher,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

fn coalescing_config() -> BatcherConfig {
    // A long fill window guarantees concurrent requests actually land
    // in one worker batch.
    BatcherConfig {
        max_batch: 64,
        max_wait: Duration::from_millis(50),
        queue_cap: 1024,
    }
}

/// K concurrent seeded requests (forced into one coalesced batch) must
/// produce byte-identical replies to the same K requests issued
/// sequentially (drained as singleton batches).
#[test]
fn coalesced_replies_bit_identical_to_sequential() {
    let server = start_server(8, 12, 5, coalescing_config());
    let addr = server.local_addr();

    let k = 6;
    // Sequential reference: one connection, one request at a time.
    let mut reference = Vec::new();
    {
        let mut client = Client::connect(addr).unwrap();
        for r in 0..k {
            let sample = client.sample(3 + r as u32, Some(100 + r as u64)).unwrap();
            let batch = SpinBatch::from_fn(4, 8, |s, i| ((s + i + r) % 2) as u8);
            let lp = client.log_psi(&batch).unwrap();
            let le = client.local_energy(&batch).unwrap();
            reference.push((sample, lp, le));
        }
    }

    // Concurrent run: K threads released together so the batcher
    // coalesces them.
    for round in 0..3 {
        let barrier = Arc::new(Barrier::new(k));
        let handles: Vec<_> = (0..k)
            .map(|r| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    barrier.wait();
                    let sample = client.sample(3 + r as u32, Some(100 + r as u64)).unwrap();
                    let batch = SpinBatch::from_fn(4, 8, |s, i| ((s + i + r) % 2) as u8);
                    let lp = client.log_psi(&batch).unwrap();
                    let le = client.local_energy(&batch).unwrap();
                    (r, sample, lp, le)
                })
            })
            .collect();
        for handle in handles {
            let (r, sample, lp, le) = handle.join().unwrap();
            let (ref_sample, ref_lp, ref_le) = &reference[r];
            assert_eq!(
                sample.0.as_bytes(),
                ref_sample.0.as_bytes(),
                "round {round} req {r}: sampled configurations differ"
            );
            for s in 0..sample.1.len() {
                assert_eq!(
                    sample.1[s].to_bits(),
                    ref_sample.1[s].to_bits(),
                    "round {round} req {r}: sample logψ differs at {s}"
                );
            }
            for s in 0..lp.len() {
                assert_eq!(
                    lp[s].to_bits(),
                    ref_lp[s].to_bits(),
                    "round {round} req {r}: logψ differs at {s}"
                );
                assert_eq!(
                    le[s].to_bits(),
                    ref_le[s].to_bits(),
                    "round {round} req {r}: local energy differs at {s}"
                );
            }
        }
    }

    Client::connect(addr).unwrap().shutdown().unwrap();
    server.join();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random coalescing shapes: request sizes, seeds and model shape.
    /// Server replies must match the solo replies bit-for-bit.
    #[test]
    fn coalescing_identity_holds_for_random_shapes(
        n in 3usize..10,
        h in 2usize..14,
        model_seed in 0u64..500,
        nreq in 2usize..5,
        seed0 in 0u64..10_000,
    ) {
        // Request sizes derived from the seed (the vendored proptest
        // stub has no collection strategies).
        let counts: Vec<u32> = (0..nreq)
            .map(|r| 1 + ((seed0 >> (5 * r)) % 11) as u32)
            .collect();
        let server = start_server(n, h, model_seed, coalescing_config());
        let addr = server.local_addr();

        let mut reference = Vec::new();
        {
            let mut client = Client::connect(addr).unwrap();
            for (r, &count) in counts.iter().enumerate() {
                reference.push(client.sample(count, Some(seed0 + r as u64)).unwrap());
            }
        }

        let barrier = Arc::new(Barrier::new(counts.len()));
        let handles: Vec<_> = counts
            .iter()
            .enumerate()
            .map(|(r, &count)| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    barrier.wait();
                    (r, client.sample(count, Some(seed0 + r as u64)).unwrap())
                })
            })
            .collect();
        for handle in handles {
            let (r, got) = handle.join().unwrap();
            prop_assert_eq!(got.0.as_bytes(), reference[r].0.as_bytes());
            for s in 0..got.1.len() {
                prop_assert_eq!(got.1[s].to_bits(), reference[r].1[s].to_bits());
            }
        }
        Client::connect(addr).unwrap().shutdown().unwrap();
        server.join();
    }
}

/// A saturated bounded queue must answer `Overloaded` — never hang,
/// never crash, never drop a connection.
#[test]
fn overload_returns_error_not_hang() {
    let server = start_server(
        10,
        16,
        1,
        BatcherConfig {
            max_batch: 1,
            max_wait: Duration::from_micros(0),
            // Tiny admission bound so the flood saturates it.
            queue_cap: 2,
        },
    );
    let addr = server.local_addr();

    let clients = 16;
    let per_client = 8;
    let overloaded = Arc::new(AtomicUsize::new(0));
    let ok = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let overloaded = Arc::clone(&overloaded);
            let ok = Arc::clone(&ok);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.set_timeout(Some(Duration::from_secs(30))).unwrap();
                for r in 0..per_client {
                    // Large-ish draws keep the single worker busy so the
                    // queue actually fills.
                    match client.sample(512, Some((c * per_client + r) as u64)) {
                        Ok((batch, _)) => {
                            assert_eq!(batch.batch_size(), 512);
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            assert_eq!(
                                e.server_code(),
                                Some(ErrorCode::Overloaded),
                                "only Overloaded is acceptable: {e}"
                            );
                            overloaded.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("no client may hang or crash");
    }
    let (ok, overloaded) = (ok.load(Ordering::Relaxed), overloaded.load(Ordering::Relaxed));
    assert_eq!(ok + overloaded, clients * per_client, "every request answered");
    assert!(ok > 0, "some requests must succeed");
    assert!(
        overloaded > 0,
        "the tiny queue must refuse some of the flood ({ok} ok)"
    );

    Client::connect(addr).unwrap().shutdown().unwrap();
    server.join();
}

/// With a zero request timeout every queued request expires before
/// execution and is answered `DeadlineExceeded`.
#[test]
fn expired_deadline_answered_not_executed() {
    let model = AnyModel::Made(Made::new(6, 8, 2));
    let server = Server::start(
        model,
        None,
        ServeConfig {
            request_timeout: Duration::from_secs(0),
            batcher: BatcherConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(5),
                queue_cap: 64,
            },
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let err = client.sample(4, Some(1)).unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::DeadlineExceeded), "{err}");
    client.shutdown().unwrap();
    server.join();
}

/// Graceful drain: every request admitted before the shutdown gets a
/// real reply; requests after it get `ShuttingDown`; `join` returns.
#[test]
fn graceful_drain_answers_all_in_flight() {
    let server = start_server(
        10,
        16,
        3,
        BatcherConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(2),
            queue_cap: 1024,
        },
    );
    let addr = server.local_addr();

    let stop = Arc::new(AtomicUsize::new(0)); // 0 = running, 1 = draining seen
    let answered = Arc::new(AtomicUsize::new(0));
    let clients = 8;
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let answered = Arc::clone(&answered);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.set_timeout(Some(Duration::from_secs(30))).unwrap();
                for r in 0..50 {
                    match client.sample(64, Some((c * 100 + r) as u64)) {
                        Ok(_) => {
                            answered.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            // After the drain begins only ShuttingDown /
                            // a closed connection are acceptable.
                            if let Some(code) = e.server_code() {
                                assert!(
                                    matches!(
                                        code,
                                        ErrorCode::ShuttingDown | ErrorCode::Overloaded
                                    ),
                                    "unexpected error during drain: {e}"
                                );
                            }
                            stop.store(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            })
        })
        .collect();

    // Let traffic build up, then pull the plug mid-stream.
    std::thread::sleep(Duration::from_millis(30));
    Client::connect(addr).unwrap().shutdown().unwrap();
    for handle in handles {
        handle.join().expect("no client may hang through the drain");
    }
    assert!(
        answered.load(Ordering::Relaxed) > 0,
        "some requests must have completed before the drain"
    );
    server.join(); // must return — all threads exit after the drain
}

/// Ping reports the served model; bad requests get BadRequest and the
/// connection stays usable.
#[test]
fn ping_and_bad_request_handling() {
    let server = start_server(7, 9, 4, BatcherConfig::default());
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();

    let (n, kind) = client.ping().unwrap();
    assert_eq!((n, kind.as_str()), (7, "made"));

    // Wrong spin count → BadRequest, connection still fine.
    let err = client.log_psi(&SpinBatch::zeros(2, 5)).unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::BadRequest), "{err}");
    let (batch, log_psi) = client.sample(3, Some(9)).unwrap();
    assert_eq!(batch.batch_size(), 3);
    assert_eq!(log_psi.len(), 3);

    // Zero-count sample → BadRequest.
    let err = client.sample(0, None).unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::BadRequest), "{err}");

    client.shutdown().unwrap();
    server.join();
}

/// Seedless samples are served (server picks distinct streams).
#[test]
fn seedless_samples_draw_distinct_streams() {
    let server = start_server(12, 10, 6, BatcherConfig::default());
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let (a, _) = client.sample(32, None).unwrap();
    let (b, _) = client.sample(32, None).unwrap();
    assert_ne!(
        a.as_bytes(),
        b.as_bytes(),
        "independent seedless draws should differ"
    );
    client.shutdown().unwrap();
    server.join();
}
