//! End-to-end tests of the serving stack over real localhost TCP:
//! coalescing identity (batched replies bit-identical to the
//! single-request path), backpressure, deadlines, and graceful drain.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use proptest::prelude::*;
use vqmc_nn::checkpoint::AnyModel;
use vqmc_nn::Made;
use vqmc_serve::{BatcherConfig, Client, ErrorCode, ServeConfig, Server};
use vqmc_tensor::{Precision, SpinBatch};

fn start_server(n: usize, h: usize, model_seed: u64, batcher: BatcherConfig) -> Server {
    let model = AnyModel::Made(Made::new(n, h, model_seed));
    let ham: Arc<dyn vqmc_hamiltonian::SparseRowHamiltonian> =
        Arc::new(vqmc_hamiltonian::TransverseFieldIsing::random(n, 2021));
    Server::start(
        model,
        Some(ham),
        ServeConfig {
            batcher,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

fn coalescing_config() -> BatcherConfig {
    // A long fill window guarantees concurrent requests actually land
    // in one worker batch.
    BatcherConfig {
        max_batch: 64,
        max_wait: Duration::from_millis(50),
        queue_cap: 1024,
    }
}

/// K concurrent seeded requests (forced into one coalesced batch) must
/// produce byte-identical replies to the same K requests issued
/// sequentially (drained as singleton batches).
#[test]
fn coalesced_replies_bit_identical_to_sequential() {
    let server = start_server(8, 12, 5, coalescing_config());
    let addr = server.local_addr();

    let k = 6;
    // Sequential reference: one connection, one request at a time.
    let mut reference = Vec::new();
    {
        let mut client = Client::connect(addr).unwrap();
        for r in 0..k {
            let sample = client.sample(3 + r as u32, Some(100 + r as u64)).unwrap();
            let batch = SpinBatch::from_fn(4, 8, |s, i| ((s + i + r) % 2) as u8);
            let lp = client.log_psi(&batch).unwrap();
            let le = client.local_energy(&batch).unwrap();
            reference.push((sample, lp, le));
        }
    }

    // Concurrent run: K threads released together so the batcher
    // coalesces them.
    for round in 0..3 {
        let barrier = Arc::new(Barrier::new(k));
        let handles: Vec<_> = (0..k)
            .map(|r| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    barrier.wait();
                    let sample = client.sample(3 + r as u32, Some(100 + r as u64)).unwrap();
                    let batch = SpinBatch::from_fn(4, 8, |s, i| ((s + i + r) % 2) as u8);
                    let lp = client.log_psi(&batch).unwrap();
                    let le = client.local_energy(&batch).unwrap();
                    (r, sample, lp, le)
                })
            })
            .collect();
        for handle in handles {
            let (r, sample, lp, le) = handle.join().unwrap();
            let (ref_sample, ref_lp, ref_le) = &reference[r];
            assert_eq!(
                sample.0.as_bytes(),
                ref_sample.0.as_bytes(),
                "round {round} req {r}: sampled configurations differ"
            );
            for s in 0..sample.1.len() {
                assert_eq!(
                    sample.1[s].to_bits(),
                    ref_sample.1[s].to_bits(),
                    "round {round} req {r}: sample logψ differs at {s}"
                );
            }
            for s in 0..lp.len() {
                assert_eq!(
                    lp[s].to_bits(),
                    ref_lp[s].to_bits(),
                    "round {round} req {r}: logψ differs at {s}"
                );
                assert_eq!(
                    le[s].to_bits(),
                    ref_le[s].to_bits(),
                    "round {round} req {r}: local energy differs at {s}"
                );
            }
        }
    }

    Client::connect(addr).unwrap().shutdown().unwrap();
    server.join();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random coalescing shapes: request sizes, seeds and model shape.
    /// Server replies must match the solo replies bit-for-bit.
    #[test]
    fn coalescing_identity_holds_for_random_shapes(
        n in 3usize..10,
        h in 2usize..14,
        model_seed in 0u64..500,
        nreq in 2usize..5,
        seed0 in 0u64..10_000,
    ) {
        // Request sizes derived from the seed (the vendored proptest
        // stub has no collection strategies).
        let counts: Vec<u32> = (0..nreq)
            .map(|r| 1 + ((seed0 >> (5 * r)) % 11) as u32)
            .collect();
        let server = start_server(n, h, model_seed, coalescing_config());
        let addr = server.local_addr();

        let mut reference = Vec::new();
        {
            let mut client = Client::connect(addr).unwrap();
            for (r, &count) in counts.iter().enumerate() {
                reference.push(client.sample(count, Some(seed0 + r as u64)).unwrap());
            }
        }

        let barrier = Arc::new(Barrier::new(counts.len()));
        let handles: Vec<_> = counts
            .iter()
            .enumerate()
            .map(|(r, &count)| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    barrier.wait();
                    (r, client.sample(count, Some(seed0 + r as u64)).unwrap())
                })
            })
            .collect();
        for handle in handles {
            let (r, got) = handle.join().unwrap();
            prop_assert_eq!(got.0.as_bytes(), reference[r].0.as_bytes());
            for s in 0..got.1.len() {
                prop_assert_eq!(got.1[s].to_bits(), reference[r].1[s].to_bits());
            }
        }
        Client::connect(addr).unwrap().shutdown().unwrap();
        server.join();
    }
}

/// A saturated bounded queue must answer `Overloaded` — never hang,
/// never crash, never drop a connection.
#[test]
fn overload_returns_error_not_hang() {
    let server = start_server(
        10,
        16,
        1,
        BatcherConfig {
            max_batch: 1,
            max_wait: Duration::from_micros(0),
            // Tiny admission bound so the flood saturates it.
            queue_cap: 2,
        },
    );
    let addr = server.local_addr();

    let clients = 16;
    let per_client = 8;
    let overloaded = Arc::new(AtomicUsize::new(0));
    let ok = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let overloaded = Arc::clone(&overloaded);
            let ok = Arc::clone(&ok);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.set_timeout(Some(Duration::from_secs(30))).unwrap();
                for r in 0..per_client {
                    // Large-ish draws keep the single worker busy so the
                    // queue actually fills.
                    match client.sample(512, Some((c * per_client + r) as u64)) {
                        Ok((batch, _)) => {
                            assert_eq!(batch.batch_size(), 512);
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            assert_eq!(
                                e.server_code(),
                                Some(ErrorCode::Overloaded),
                                "only Overloaded is acceptable: {e}"
                            );
                            overloaded.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("no client may hang or crash");
    }
    let (ok, overloaded) = (ok.load(Ordering::Relaxed), overloaded.load(Ordering::Relaxed));
    assert_eq!(ok + overloaded, clients * per_client, "every request answered");
    assert!(ok > 0, "some requests must succeed");
    assert!(
        overloaded > 0,
        "the tiny queue must refuse some of the flood ({ok} ok)"
    );

    Client::connect(addr).unwrap().shutdown().unwrap();
    server.join();
}

/// With a zero request timeout every queued request expires before
/// execution and is answered `DeadlineExceeded`.
#[test]
fn expired_deadline_answered_not_executed() {
    let model = AnyModel::Made(Made::new(6, 8, 2));
    let server = Server::start(
        model,
        None,
        ServeConfig {
            request_timeout: Duration::from_secs(0),
            batcher: BatcherConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(5),
                queue_cap: 64,
            },
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let err = client.sample(4, Some(1)).unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::DeadlineExceeded), "{err}");
    client.shutdown().unwrap();
    server.join();
}

/// Graceful drain: every request admitted before the shutdown gets a
/// real reply; requests after it get `ShuttingDown`; `join` returns.
#[test]
fn graceful_drain_answers_all_in_flight() {
    let server = start_server(
        10,
        16,
        3,
        BatcherConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(2),
            queue_cap: 1024,
        },
    );
    let addr = server.local_addr();

    let stop = Arc::new(AtomicUsize::new(0)); // 0 = running, 1 = draining seen
    let answered = Arc::new(AtomicUsize::new(0));
    let clients = 8;
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let answered = Arc::clone(&answered);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client.set_timeout(Some(Duration::from_secs(30))).unwrap();
                for r in 0..50 {
                    match client.sample(64, Some((c * 100 + r) as u64)) {
                        Ok(_) => {
                            answered.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            // After the drain begins only ShuttingDown /
                            // a closed connection are acceptable.
                            if let Some(code) = e.server_code() {
                                assert!(
                                    matches!(
                                        code,
                                        ErrorCode::ShuttingDown | ErrorCode::Overloaded
                                    ),
                                    "unexpected error during drain: {e}"
                                );
                            }
                            stop.store(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            })
        })
        .collect();

    // Let traffic build up, then pull the plug mid-stream.
    std::thread::sleep(Duration::from_millis(30));
    Client::connect(addr).unwrap().shutdown().unwrap();
    for handle in handles {
        handle.join().expect("no client may hang through the drain");
    }
    assert!(
        answered.load(Ordering::Relaxed) > 0,
        "some requests must have completed before the drain"
    );
    server.join(); // must return — all threads exit after the drain
}

/// Ping reports the served model; bad requests get BadRequest and the
/// connection stays usable.
#[test]
fn ping_and_bad_request_handling() {
    let server = start_server(7, 9, 4, BatcherConfig::default());
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();

    let (n, kind) = client.ping().unwrap();
    assert_eq!((n, kind.as_str()), (7, "made"));

    // Wrong spin count → BadRequest, connection still fine.
    let err = client.log_psi(&SpinBatch::zeros(2, 5)).unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::BadRequest), "{err}");
    let (batch, log_psi) = client.sample(3, Some(9)).unwrap();
    assert_eq!(batch.batch_size(), 3);
    assert_eq!(log_psi.len(), 3);

    // Zero-count sample → BadRequest.
    let err = client.sample(0, None).unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::BadRequest), "{err}");

    client.shutdown().unwrap();
    server.join();
}

/// A frame whose spin payload is garbage (values outside {0, 1}) must
/// come back as `BadRequest` — not crash a worker — and the connection
/// must stay usable for well-formed traffic afterwards.
#[test]
fn malformed_spin_bytes_get_bad_request_and_connection_survives() {
    use vqmc_serve::protocol::{
        decode_response, encode_request, read_frame, write_frame, Request, Response,
    };

    let server = start_server(6, 8, 11, BatcherConfig::default());
    let addr = server.local_addr();

    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // Hand-built LogPsi frame: shape says 1×6 but one spin byte is 7.
    let mut payload = vec![0x03u8];
    payload.extend_from_slice(&1u32.to_le_bytes());
    payload.extend_from_slice(&6u32.to_le_bytes());
    payload.extend_from_slice(&[0, 1, 0, 7, 1, 0]);
    write_frame(&mut stream, &payload).unwrap();

    let mut frame = Vec::new();
    assert!(read_frame(&mut stream, &mut frame).unwrap());
    match decode_response(&frame).unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::BadRequest, "{message}");
            assert!(message.contains("spin bytes"), "{message}");
        }
        other => panic!("expected BadRequest, got {other:?}"),
    }

    // The same connection still answers well-formed requests.
    write_frame(&mut stream, &encode_request(&Request::Ping)).unwrap();
    assert!(read_frame(&mut stream, &mut frame).unwrap());
    match decode_response(&frame).unwrap() {
        Response::Pong { num_spins, .. } => assert_eq!(num_spins, 6),
        other => panic!("expected Pong, got {other:?}"),
    }

    Client::connect(addr).unwrap().shutdown().unwrap();
    server.join();
}

/// The f32 arm end-to-end over TCP: tagged f32 requests are served,
/// stay deterministic, track the f64 answers within the documented
/// bound, and a server started with `--precision f32` applies f32 to
/// untagged requests.
#[test]
fn f32_precision_served_end_to_end() {
    let n = 16;
    let server = start_server(n, 12, 8, coalescing_config());
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();

    let batch = SpinBatch::from_fn(9, n, |s, i| ((s * 5 + i) % 2) as u8);
    let lp64 = client.log_psi(&batch).unwrap();
    let lp32 = client
        .log_psi_with(&batch, Some(Precision::F32))
        .unwrap();
    let lp32_again = client
        .log_psi_with(&batch, Some(Precision::F32))
        .unwrap();
    let bound = 1e-5 * n as f64;
    for s in 0..batch.batch_size() {
        assert!(
            (lp32[s] - lp64[s]).abs() <= bound,
            "row {s}: |f32 - f64| = {:.3e} exceeds {bound:.1e}",
            (lp32[s] - lp64[s]).abs()
        );
        assert_eq!(lp32[s].to_bits(), lp32_again[s].to_bits(), "row {s}");
    }

    let (s32a, l32a) = client.sample_with(7, Some(33), Some(Precision::F32)).unwrap();
    let (s32b, l32b) = client.sample_with(7, Some(33), Some(Precision::F32)).unwrap();
    assert_eq!(s32a.as_bytes(), s32b.as_bytes(), "f32 draws must reproduce");
    for s in 0..7 {
        assert_eq!(l32a[s].to_bits(), l32b[s].to_bits());
        assert!(l32a[s].is_finite() && l32a[s] < 0.0);
    }

    let le32 = client
        .local_energy_with(&batch, Some(Precision::F32))
        .unwrap();
    assert_eq!(le32.len(), batch.batch_size());
    assert!(le32.as_slice().iter().all(|e| e.is_finite()));

    client.shutdown().unwrap();
    server.join();

    // Second server defaulting to f32: untagged requests run the f32
    // arm, bit-identical to explicitly tagged ones.
    let server = Server::start(
        AnyModel::Made(Made::new(n, 12, 8)),
        None,
        ServeConfig {
            precision: Precision::F32,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();
    let untagged = client.log_psi(&batch).unwrap();
    let tagged = client
        .log_psi_with(&batch, Some(Precision::F32))
        .unwrap();
    for s in 0..batch.batch_size() {
        assert_eq!(
            untagged[s].to_bits(),
            tagged[s].to_bits(),
            "server default must resolve untagged requests to f32"
        );
    }
    client.shutdown().unwrap();
    server.join();
}

/// Seedless samples are served (server picks distinct streams).
#[test]
fn seedless_samples_draw_distinct_streams() {
    let server = start_server(12, 10, 6, BatcherConfig::default());
    let addr = server.local_addr();
    let mut client = Client::connect(addr).unwrap();
    let (a, _) = client.sample(32, None).unwrap();
    let (b, _) = client.sample(32, None).unwrap();
    assert_ne!(
        a.as_bytes(),
        b.as_bytes(),
        "independent seedless draws should differ"
    );
    client.shutdown().unwrap();
    server.join();
}
