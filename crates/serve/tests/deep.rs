//! End-to-end tests of serving **deep** MADE stacks over real
//! localhost TCP: coalesced replies bit-identical to solo ones for
//! Sample / LogPsi / LocalEnergy in both precisions, hot-reload from a
//! depth-1 to a depth-2 checkpoint under sustained load, and a corrupt
//! checkpoint answered with an error frame while the connection (and
//! the served model) stay intact.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

use vqmc_nn::checkpoint::{AnyModel, Checkpoint};
use vqmc_nn::Made;
use vqmc_serve::{BatcherConfig, Client, ErrorCode, ServeConfig, Server};
use vqmc_tensor::{Precision, SpinBatch};

const N: usize = 10;

fn start_deep_server(hidden: &[usize], model_seed: u64) -> Server {
    let model = AnyModel::Made(Made::with_hidden(N, hidden, model_seed));
    let ham: Arc<dyn vqmc_hamiltonian::SparseRowHamiltonian> =
        Arc::new(vqmc_hamiltonian::TransverseFieldIsing::random(N, 2021));
    Server::start(
        model,
        Some(ham),
        ServeConfig {
            // A long fill window guarantees concurrent requests land in
            // one coalesced worker batch.
            batcher: BatcherConfig {
                max_batch: 64,
                max_wait: Duration::from_millis(50),
                queue_cap: 1024,
            },
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

/// A unique temp path that is removed when dropped.
struct TempCkpt(PathBuf);

impl TempCkpt {
    fn new(name: &str) -> Self {
        TempCkpt(std::env::temp_dir().join(format!(
            "vqmc-serve-deep-{}-{}.ckpt",
            name,
            std::process::id()
        )))
    }
    fn path(&self) -> &str {
        self.0.to_str().unwrap()
    }
}

impl Drop for TempCkpt {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Depth-2 model behind the wire: K concurrent seeded requests (forced
/// into one coalesced batch) must produce byte-identical replies to the
/// same K requests issued sequentially — for Sample, LogPsi and
/// LocalEnergy, in f64 and in tagged f32.
#[test]
fn deep_coalesced_replies_bit_identical_to_solo() {
    let server = start_deep_server(&[14, 7], 5);
    let addr = server.local_addr();

    let k = 5;
    let precisions = [None, Some(Precision::F32)];
    for precision in precisions {
        // Sequential reference: one connection, one request at a time.
        let mut reference = Vec::new();
        {
            let mut client = Client::connect(addr).unwrap();
            for r in 0..k {
                let sample = client
                    .sample_with(3 + r as u32, Some(100 + r as u64), precision)
                    .unwrap();
                let batch = SpinBatch::from_fn(4, N, |s, i| ((s + i + r) % 2) as u8);
                let lp = client.log_psi_with(&batch, precision).unwrap();
                let le = client.local_energy_with(&batch, precision).unwrap();
                reference.push((sample, lp, le));
            }
        }

        let barrier = Arc::new(Barrier::new(k));
        let handles: Vec<_> = (0..k)
            .map(|r| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    barrier.wait();
                    let sample = client
                        .sample_with(3 + r as u32, Some(100 + r as u64), precision)
                        .unwrap();
                    let batch = SpinBatch::from_fn(4, N, |s, i| ((s + i + r) % 2) as u8);
                    let lp = client.log_psi_with(&batch, precision).unwrap();
                    let le = client.local_energy_with(&batch, precision).unwrap();
                    (r, sample, lp, le)
                })
            })
            .collect();
        for handle in handles {
            let (r, sample, lp, le) = handle.join().unwrap();
            let (ref_sample, ref_lp, ref_le) = &reference[r];
            assert_eq!(
                sample.0.as_bytes(),
                ref_sample.0.as_bytes(),
                "req {r} ({precision:?}): sampled configurations differ"
            );
            for s in 0..sample.1.len() {
                assert_eq!(
                    sample.1[s].to_bits(),
                    ref_sample.1[s].to_bits(),
                    "req {r} ({precision:?}): sample logψ differs at {s}"
                );
            }
            for s in 0..lp.len() {
                assert_eq!(
                    lp[s].to_bits(),
                    ref_lp[s].to_bits(),
                    "req {r} ({precision:?}): logψ differs at {s}"
                );
                assert_eq!(
                    le[s].to_bits(),
                    ref_le[s].to_bits(),
                    "req {r} ({precision:?}): local energy differs at {s}"
                );
            }
        }
    }

    Client::connect(addr).unwrap().shutdown().unwrap();
    server.join();
}

/// `Reload` swaps a depth-1 server onto a depth-2 checkpoint (same
/// kind, same spin count, deeper stack) while traffic flows: zero
/// errors, every reply matches exactly one of the two models, and the
/// post-swap logψ is the depth-2 model's.
#[test]
fn reload_swaps_depth1_to_depth2_under_load() {
    let ckpt = TempCkpt::new("depth2");
    let deep = Made::with_hidden(N, &[14, 7], 99);
    deep.save(ckpt.path()).unwrap();

    let server = start_deep_server(&[12], 5);
    let addr = server.local_addr();
    let batch = SpinBatch::from_fn(4, N, |s, i| ((s + i) % 2) as u8);

    let mut client = Client::connect(addr).unwrap();
    let before = client.log_psi(&batch).unwrap();

    // Sustained background load across the swap.
    let stop = Arc::new(AtomicBool::new(false));
    let loaders: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let batch = batch.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut replies = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    replies.push(client.log_psi(&batch).expect("no errors during reload"));
                    client.sample(2, Some(7)).expect("no errors during reload");
                }
                replies
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(30));
    client
        .reload(ckpt.path())
        .expect("depth-2 reload must succeed");
    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);

    let after = client.log_psi(&batch).unwrap();
    assert_ne!(
        before.0, after.0,
        "the depth-2 checkpoint must be distinguishable from the depth-1 model"
    );
    // The swapped-in weights are exactly the deep model's.
    let direct = vqmc_nn::WaveFunction::log_psi(&deep, &batch);
    for s in 0..batch.batch_size() {
        assert_eq!(after[s].to_bits(), direct[s].to_bits(), "row {s}");
    }

    for handle in loaders {
        let replies = handle.join().unwrap();
        assert!(!replies.is_empty(), "loader made progress");
        for v in replies {
            assert!(
                v.0 == before.0 || v.0 == after.0,
                "reply matches neither old nor new model: {:?}",
                v.0
            );
        }
    }

    assert_eq!(client.stats().unwrap().reloads, 1);
    client.shutdown().unwrap();
    server.join();
}

/// A corrupt (truncated) checkpoint handed to `Reload` must come back
/// as a structured error frame — the connection stays usable and the
/// served weights are untouched.
#[test]
fn corrupt_checkpoint_reload_answers_error_frame_connection_intact() {
    let good = TempCkpt::new("good");
    let bad = TempCkpt::new("corrupt");
    Made::with_hidden(N, &[14, 7], 3).save(good.path()).unwrap();
    // Truncate mid-parameters: the header parses, the body cannot.
    let bytes = std::fs::read(good.path()).unwrap();
    let mut f = std::fs::File::create(bad.path()).unwrap();
    f.write_all(&bytes[..bytes.len() / 2]).unwrap();
    drop(f);

    let server = start_deep_server(&[12], 5);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let batch = SpinBatch::from_fn(4, N, |s, i| ((s * 3 + i) % 2) as u8);
    let before = client.log_psi(&batch).unwrap();

    let err = client.reload(bad.path()).unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::BadRequest), "{err}");

    // Same connection, same weights, still serving.
    let after = client.log_psi(&batch).unwrap();
    for s in 0..batch.batch_size() {
        assert_eq!(before[s].to_bits(), after[s].to_bits(), "row {s}");
    }
    assert_eq!(client.stats().unwrap().reloads, 0);

    client.shutdown().unwrap();
    server.join();
}
