//! End-to-end tests for the readiness event loop with toy handlers:
//! echo (immediate replies), a worker-thread handler (deferred
//! completions posted out of order), and drain semantics (queued
//! replies — including partial writes — must flush before close).

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use vqmc_net::{
    Completions, EventLoop, EventLoopConfig, FrameHandler, FrameOutcome, Ticket,
};

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(4 + payload.len());
    f.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    f.extend_from_slice(payload);
    f
}

fn read_reply(stream: &mut TcpStream) -> Vec<u8> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("reply length");
    let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut payload).expect("reply payload");
    payload
}

/// Echoes every frame back, optionally via a worker thread that delays
/// and reorders completions.
struct TestHandler {
    stop: Arc<AtomicBool>,
    accepts: Arc<AtomicUsize>,
    closes: Arc<AtomicUsize>,
    /// `Some` → defer every frame to this worker-feeding queue.
    defer: Option<Arc<Mutex<Vec<(Ticket, Vec<u8>)>>>>,
}

impl FrameHandler for TestHandler {
    fn on_frame(&mut self, ticket: Ticket, payload: Vec<u8>) -> FrameOutcome {
        if payload == b"quit" {
            self.stop.store(true, Ordering::SeqCst);
            return FrameOutcome::Reply(b"bye".to_vec());
        }
        match &self.defer {
            Some(q) => {
                q.lock().unwrap().push((ticket, payload));
                FrameOutcome::Pending
            }
            None => FrameOutcome::Reply(payload),
        }
    }

    fn draining(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    fn on_accept(&mut self) {
        self.accepts.fetch_add(1, Ordering::SeqCst);
    }

    fn on_close(&mut self) {
        self.closes.fetch_add(1, Ordering::SeqCst);
    }
}

struct Fixture {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accepts: Arc<AtomicUsize>,
    closes: Arc<AtomicUsize>,
    completions: Arc<Completions>,
    deferred: Option<Arc<Mutex<Vec<(Ticket, Vec<u8>)>>>>,
    loop_thread: thread::JoinHandle<std::io::Result<()>>,
}

fn start(defer: bool, config: EventLoopConfig) -> Fixture {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let ev = EventLoop::new(Some(listener), config).expect("event loop");
    let completions = ev.completions();
    let stop = Arc::new(AtomicBool::new(false));
    let accepts = Arc::new(AtomicUsize::new(0));
    let closes = Arc::new(AtomicUsize::new(0));
    let deferred = defer.then(|| Arc::new(Mutex::new(Vec::new())));
    let mut handler = TestHandler {
        stop: Arc::clone(&stop),
        accepts: Arc::clone(&accepts),
        closes: Arc::clone(&closes),
        defer: deferred.clone(),
    };
    let loop_thread = thread::spawn(move || {
        let r = ev.run(&mut handler);
        drop(handler);
        r
    });
    Fixture {
        addr,
        stop,
        accepts,
        closes,
        completions,
        deferred,
        loop_thread,
    }
}

#[test]
fn echo_round_trips_across_many_connections() {
    let fx = start(false, EventLoopConfig::default());
    let mut streams: Vec<TcpStream> = (0..8)
        .map(|_| TcpStream::connect(fx.addr).expect("connect"))
        .collect();
    for (i, s) in streams.iter_mut().enumerate() {
        let msg = format!("conn-{i}");
        s.write_all(&frame(msg.as_bytes())).expect("send");
        assert_eq!(read_reply(s), msg.as_bytes());
    }
    // Pipelined frames on one connection come back in order.
    let s = &mut streams[0];
    let mut burst = Vec::new();
    for i in 0..32 {
        burst.extend_from_slice(&frame(format!("p{i}").as_bytes()));
    }
    s.write_all(&burst).expect("pipelined send");
    for i in 0..32 {
        assert_eq!(read_reply(s), format!("p{i}").as_bytes());
    }
    fx.stop.store(true, Ordering::SeqCst);
    drop(streams);
    fx.loop_thread.join().expect("join").expect("loop ok");
    assert_eq!(fx.accepts.load(Ordering::SeqCst), 8);
    assert_eq!(fx.closes.load(Ordering::SeqCst), 8);
}

#[test]
fn deferred_completions_reorder_back_to_request_order() {
    let fx = start(true, EventLoopConfig::default());
    let queue = fx.deferred.clone().expect("defer queue");
    let completions = Arc::clone(&fx.completions);

    // Worker that completes frames in REVERSE arrival order once a
    // batch of 8 has accumulated — the loop must still reply in
    // request order.
    let worker = thread::spawn(move || {
        let mut served = 0usize;
        while served < 8 {
            let batch: Vec<(Ticket, Vec<u8>)> = {
                let mut q = queue.lock().unwrap();
                if q.len() < 8 {
                    drop(q);
                    thread::sleep(Duration::from_millis(1));
                    continue;
                }
                q.drain(..).collect()
            };
            for (ticket, payload) in batch.into_iter().rev() {
                completions.post(ticket, payload);
                served += 1;
            }
        }
    });

    let mut s = TcpStream::connect(fx.addr).expect("connect");
    let mut burst = Vec::new();
    for i in 0..8 {
        burst.extend_from_slice(&frame(format!("req-{i}").as_bytes()));
    }
    s.write_all(&burst).expect("send");
    for i in 0..8 {
        assert_eq!(read_reply(&mut s), format!("req-{i}").as_bytes());
    }
    worker.join().expect("worker");
    fx.stop.store(true, Ordering::SeqCst);
    drop(s);
    fx.loop_thread.join().expect("join").expect("loop ok");
}

#[test]
fn drain_flushes_inflight_replies_before_closing() {
    let fx = start(true, EventLoopConfig::default());
    let queue = fx.deferred.clone().expect("defer queue");
    let completions = Arc::clone(&fx.completions);

    let mut s = TcpStream::connect(fx.addr).expect("connect");
    // A large reply (1 MiB) that cannot flush in one nonblocking write
    // against default socket buffers, followed by the drain trigger.
    s.write_all(&frame(b"big")).expect("send");
    // Wait until the frame reached the handler queue.
    let (ticket, _) = loop {
        if let Some(item) = queue.lock().unwrap().pop() {
            break item;
        }
        thread::sleep(Duration::from_millis(1));
    };
    let big = vec![0xabu8; 1 << 20];
    completions.post(ticket, big.clone());
    // Trigger drain immediately — while the 1 MiB reply is (at best)
    // partially written.  The drain phase must finish the write.
    fx.stop.store(true, Ordering::SeqCst);
    let reply = read_reply(&mut s);
    assert_eq!(reply.len(), big.len());
    assert!(reply == big, "drained reply must be byte-identical");
    fx.loop_thread.join().expect("join").expect("loop ok");
    assert_eq!(fx.closes.load(Ordering::SeqCst), 1);
}

#[test]
fn reply_close_flushes_then_disconnects() {
    // A handler that replies-and-closes on a specific payload.
    struct CloseHandler {
        stop: Arc<AtomicBool>,
    }
    impl FrameHandler for CloseHandler {
        fn on_frame(&mut self, _t: Ticket, payload: Vec<u8>) -> FrameOutcome {
            if payload == b"done" {
                FrameOutcome::ReplyClose(b"farewell".to_vec())
            } else {
                FrameOutcome::Reply(payload)
            }
        }
        fn draining(&self) -> bool {
            self.stop.load(Ordering::SeqCst)
        }
    }

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let ev = EventLoop::new(Some(listener), EventLoopConfig::default()).expect("loop");
    let stop = Arc::new(AtomicBool::new(false));
    let mut handler = CloseHandler { stop: Arc::clone(&stop) };
    let jh = thread::spawn(move || ev.run(&mut handler));

    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(&frame(b"hello")).expect("send");
    s.write_all(&frame(b"done")).expect("send");
    assert_eq!(read_reply(&mut s), b"hello");
    assert_eq!(read_reply(&mut s), b"farewell");
    // Server closes: next read yields EOF.
    let mut rest = Vec::new();
    s.read_to_end(&mut rest).expect("eof");
    assert!(rest.is_empty());

    stop.store(true, Ordering::SeqCst);
    jh.join().expect("join").expect("loop ok");
}

#[test]
fn non_reading_pipeliner_stalls_on_outbound_backpressure() {
    // Regression for two review findings: replayed stale readiness
    // events (the loop must clear the event buffer each iteration) and
    // missing outbound flow control.  A client that pipelines requests
    // without reading replies must eventually stall against TCP flow
    // control — the loop stops reading once the connection's unflushed
    // reply bytes pass `max_out_bytes` — rather than the server
    // consuming every request and queueing amplified replies forever.
    const REPLY_LEN: usize = 64 * 1024;

    // Pin kernel socket buffers small (tcp_rmem autotunes to tens of
    // MB on this box, which would absorb the whole request budget and
    // mask the stall).  Accepted sockets inherit the listener's
    // SO_RCVBUF.
    fn shrink_buf(fd: std::os::fd::RawFd, optname: i32) {
        const SOL_SOCKET: i32 = 1;
        extern "C" {
            fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const u8, optlen: u32)
                -> i32;
        }
        let val: i32 = 64 * 1024;
        let r = unsafe {
            setsockopt(fd, SOL_SOCKET, optname, (&val as *const i32).cast(), 4)
        };
        assert_eq!(r, 0, "setsockopt failed");
    }
    const SO_SNDBUF: i32 = 7;
    const SO_RCVBUF: i32 = 8;

    struct AmpHandler {
        stop: Arc<AtomicBool>,
    }
    impl FrameHandler for AmpHandler {
        fn on_frame(&mut self, _t: Ticket, payload: Vec<u8>) -> FrameOutcome {
            FrameOutcome::Reply(vec![payload[0]; REPLY_LEN])
        }
        fn draining(&self) -> bool {
            self.stop.load(Ordering::SeqCst)
        }
    }

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    shrink_buf(listener.as_raw_fd(), SO_RCVBUF);
    let addr = listener.local_addr().expect("addr");
    let config = EventLoopConfig {
        max_out_bytes: 256 * 1024,
        ..EventLoopConfig::default()
    };
    let ev = EventLoop::new(Some(listener), config).expect("loop");
    let stop = Arc::new(AtomicBool::new(false));
    let mut handler = AmpHandler { stop: Arc::clone(&stop) };
    let jh = thread::spawn(move || ev.run(&mut handler));

    let mut s = TcpStream::connect(addr).expect("connect");
    shrink_buf(s.as_raw_fd(), SO_SNDBUF);
    s.set_nonblocking(true).expect("nonblocking");
    let req = frame(&[0x5au8; 4096]);
    // Far more request bytes than the pinned socket buffers hold: an
    // unthrottled server would consume the lot.
    let budget = 2000usize;
    let mut sent = 0usize;
    let mut pos = 0usize;
    let mut stall_start: Option<std::time::Instant> = None;
    let mut stalled = false;
    while sent < budget {
        match s.write(&req[pos..]) {
            Ok(0) => panic!("zero-byte write"),
            Ok(n) => {
                stall_start = None;
                pos += n;
                if pos == req.len() {
                    pos = 0;
                    sent += 1;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                let t0 = *stall_start.get_or_insert_with(std::time::Instant::now);
                if t0.elapsed() > Duration::from_secs(2) {
                    stalled = true;
                    break;
                }
                thread::sleep(Duration::from_millis(5));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => panic!("send: {e}"),
        }
    }
    assert!(
        stalled,
        "server consumed {sent} frames from a non-reading client without stalling it"
    );

    // Backpressure must stall, not corrupt: drain the replies, finish
    // the partial frame, half-close, and check every fully-sent
    // request produced exactly one intact reply.
    let reader = {
        let mut rd = s.try_clone().expect("clone");
        thread::spawn(move || {
            // NB: blocking mode is shared with the writer via the
            // duplicated fd — the writer switches modes below too.
            rd.set_nonblocking(false).expect("blocking reader");
            let mut count = 0usize;
            loop {
                let mut len = [0u8; 4];
                match rd.read_exact(&mut len) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                    Err(e) => panic!("reply length: {e}"),
                }
                let mut payload = vec![0u8; u32::from_le_bytes(len) as usize];
                rd.read_exact(&mut payload).expect("reply payload");
                assert_eq!(payload.len(), REPLY_LEN, "truncated reply");
                assert!(payload.iter().all(|&b| b == 0x5a), "corrupted reply");
                count += 1;
            }
            count
        })
    };
    s.set_nonblocking(false).expect("blocking");
    if pos > 0 {
        s.write_all(&req[pos..]).expect("finish partial frame");
        sent += 1;
    }
    s.shutdown(std::net::Shutdown::Write).expect("half-close");
    let replies = reader.join().expect("reader");
    assert_eq!(replies, sent, "every fully-sent request gets exactly one reply");

    stop.store(true, Ordering::SeqCst);
    jh.join().expect("join").expect("loop ok");
}

#[test]
fn oversized_frame_poisons_only_that_connection() {
    let fx = start(
        false,
        EventLoopConfig {
            max_payload: 1024,
            ..EventLoopConfig::default()
        },
    );

    let mut bad = TcpStream::connect(fx.addr).expect("connect");
    let mut good = TcpStream::connect(fx.addr).expect("connect");
    bad.write_all(&(4096u32).to_le_bytes()).expect("bad prefix");
    let mut rest = Vec::new();
    bad.read_to_end(&mut rest).expect("poisoned conn closed");
    assert!(rest.is_empty());

    good.write_all(&frame(b"still alive")).expect("send");
    assert_eq!(read_reply(&mut good), b"still alive");

    fx.stop.store(true, Ordering::SeqCst);
    drop(good);
    fx.loop_thread.join().expect("join").expect("loop ok");
}
