//! Adversarial fragmentation of the `Connection` read path.
//!
//! The existing `decoder_props` suite samples *random* read splits;
//! this suite is the adversarial complement:
//!
//! * **every** single-cut split of a multi-frame stream, exhaustively
//!   (the cut walks each byte position, so each header straddle and
//!   each payload-boundary split is hit by construction, not by luck);
//! * exhaustive two-cut splits of a stream sized to keep the O(n²)
//!   enumeration fast;
//! * 1-byte-at-a-time delivery of the whole stream;
//! * the same adversarial patterns through a real kernel socket pair
//!   driving [`Connection::read_frames`], including a truncated final
//!   frame at EOF — which must surface the frames that did complete and
//!   report a non-boundary EOF, identically to the in-memory decoder.

use std::io::Write;
use std::net::{TcpListener, TcpStream};

use vqmc_net::{Connection, FrameDecoder, ReadStatus};

/// The reference parse of an unfragmented byte stream.
fn reference_frames(wire: &[u8]) -> (Vec<Vec<u8>>, bool) {
    let mut frames = Vec::new();
    let mut rest = wire;
    while rest.len() >= 4 {
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        if rest.len() < 4 + len {
            return (frames, false);
        }
        frames.push(rest[4..4 + len].to_vec());
        rest = &rest[4 + len..];
    }
    (frames, rest.is_empty())
}

/// Feeds `chunks` through a fresh decoder; returns frames + boundary.
fn decode_chunks(chunks: &[&[u8]]) -> (Vec<Vec<u8>>, bool) {
    let mut dec = FrameDecoder::new(1 << 16);
    let mut frames = Vec::new();
    for chunk in chunks {
        dec.extend(chunk);
        while let Some(f) = dec.next_frame().expect("valid stream") {
            frames.push(f);
        }
    }
    (frames, dec.at_boundary())
}

/// A stream of frames whose payload bytes identify their frame and
/// offset, so any mis-reassembly produces a visibly wrong byte.
fn build_wire(lens: &[usize]) -> (Vec<u8>, Vec<Vec<u8>>) {
    let mut wire = Vec::new();
    let mut payloads = Vec::new();
    for (f, &len) in lens.iter().enumerate() {
        let payload: Vec<u8> = (0..len).map(|i| (f * 37 + i) as u8).collect();
        wire.extend_from_slice(&(len as u32).to_le_bytes());
        wire.extend_from_slice(&payload);
        payloads.push(payload);
    }
    (wire, payloads)
}

/// Every single-cut split — the cut position sweeps every byte of the
/// stream, so every header straddle (cut at offsets 1..4 of a prefix)
/// and every payload straddle occurs exactly once.
#[test]
fn every_single_cut_split_decodes_identically() {
    let (wire, payloads) = build_wire(&[0, 3, 1, 8, 0, 5]);
    let (reference, boundary) = reference_frames(&wire);
    assert_eq!(reference, payloads);
    assert!(boundary);
    for cut in 0..=wire.len() {
        let (frames, at_boundary) = decode_chunks(&[&wire[..cut], &wire[cut..]]);
        assert_eq!(frames, payloads, "cut at byte {cut}");
        assert!(at_boundary, "cut at byte {cut}: boundary lost");
    }
}

/// Every two-cut split of a short stream (O(n²) pairs, all of them).
#[test]
fn every_two_cut_split_decodes_identically() {
    let (wire, payloads) = build_wire(&[2, 0, 4]);
    for a in 0..=wire.len() {
        for b in a..=wire.len() {
            let (frames, at_boundary) = decode_chunks(&[&wire[..a], &wire[a..b], &wire[b..]]);
            assert_eq!(frames, payloads, "cuts at {a},{b}");
            assert!(at_boundary, "cuts at {a},{b}");
        }
    }
}

/// Maximum fragmentation: one byte per read.
#[test]
fn one_byte_at_a_time_decodes_identically() {
    let (wire, payloads) = build_wire(&[5, 0, 1, 13, 2]);
    let chunks: Vec<&[u8]> = wire.chunks(1).collect();
    let (frames, at_boundary) = decode_chunks(&chunks);
    assert_eq!(frames, payloads);
    assert!(at_boundary);
}

/// Every truncation point of the final frame: the completed frames
/// surface, the partial one never does, and the decoder reports a
/// dirty (non-boundary) end.
#[test]
fn every_truncation_of_the_final_frame_is_detected() {
    let (wire, payloads) = build_wire(&[3, 7]);
    let last_frame_start = wire.len() - (7 + 4);
    for cut in last_frame_start + 1..wire.len() {
        let truncated = &wire[..cut];
        let (expect, expect_boundary) = reference_frames(truncated);
        assert_eq!(expect, payloads[..1].to_vec());
        assert!(!expect_boundary);
        // Deliver maximally fragmented for good measure.
        let chunks: Vec<&[u8]> = truncated.chunks(1).collect();
        let (frames, at_boundary) = decode_chunks(&chunks);
        assert_eq!(frames, payloads[..1].to_vec(), "truncated at {cut}");
        assert!(!at_boundary, "truncated at {cut}: dirty EOF not flagged");
    }
}

/// Loopback socket pair with the writer applying a given chunking.
/// Returns the frames `Connection::read_frames` produced and whether
/// the stream ended at a frame boundary.
fn run_socket_session(wire: &[u8], chunk_sizes: &[usize]) -> (Vec<Vec<u8>>, bool) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let wire = wire.to_vec();
    let chunk_sizes = chunk_sizes.to_vec();
    let writer = std::thread::spawn(move || {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_nodelay(true).unwrap();
        let mut pos = 0;
        for &sz in &chunk_sizes {
            let end = (pos + sz).min(wire.len());
            if pos >= end {
                break;
            }
            s.write_all(&wire[pos..end]).unwrap();
            s.flush().unwrap();
            // Give the kernel a chance to deliver this chunk alone, so
            // the reader genuinely observes the fragmentation instead
            // of one coalesced buffer.
            std::thread::sleep(std::time::Duration::from_millis(1));
            pos = end;
        }
        // Remaining bytes (if the sizes under-count) in one burst.
        if pos < wire.len() {
            s.write_all(&wire[pos..]).unwrap();
        }
        // Drop: FIN.
    });
    let (stream, _) = listener.accept().unwrap();
    let mut conn = Connection::new(stream, 1 << 16).unwrap();
    let mut frames = Vec::new();
    while let ReadStatus::Open = conn.read_frames(|f| frames.push(f)).expect("read_frames") {
        std::thread::sleep(std::time::Duration::from_micros(200));
    }
    writer.join().unwrap();
    (frames, conn.inbound_at_boundary())
}

/// 1-byte paced writes through a real kernel socket reassemble exactly
/// like the unfragmented parse.
#[test]
fn socket_one_byte_paced_writes_reassemble() {
    let (wire, payloads) = build_wire(&[4, 0, 9]);
    let ones = vec![1usize; wire.len()];
    let (frames, boundary) = run_socket_session(&wire, &ones);
    assert_eq!(frames, payloads);
    assert!(boundary, "clean close must land on a frame boundary");
}

/// A glued burst (everything in one write) decodes identically too —
/// the other extreme of kernel coalescing.
#[test]
fn socket_single_burst_reassembles() {
    let (wire, payloads) = build_wire(&[1, 6, 0, 2, 30]);
    let (frames, boundary) = run_socket_session(&wire, &[wire.len()]);
    assert_eq!(frames, payloads);
    assert!(boundary);
}

/// Header-straddling paced writes: chunks sized to cut inside every
/// length prefix (3 bytes at a time against 4-byte headers).
#[test]
fn socket_header_straddling_writes_reassemble() {
    let (wire, payloads) = build_wire(&[5, 5, 5]);
    let threes = vec![3usize; wire.len().div_ceil(3)];
    let (frames, boundary) = run_socket_session(&wire, &threes);
    assert_eq!(frames, payloads);
    assert!(boundary);
}

/// A peer that dies mid-frame: the completed frames are delivered, the
/// torn one is not, and the EOF is reported off-boundary — this is the
/// signal `vqmc-dist` uses to distinguish a crash from an orderly
/// leave.
#[test]
fn socket_truncated_final_frame_yields_dirty_eof() {
    let (wire, payloads) = build_wire(&[3, 7]);
    let cut = wire.len() - 4; // inside the last payload
    let (frames, boundary) = run_socket_session(&wire[..cut], &[cut]);
    assert_eq!(frames, payloads[..1].to_vec());
    assert!(!boundary, "EOF mid-frame must not read as a clean boundary");
}
