//! Property tests for the incremental frame decoder (the satellite
//! contract from the serving issue):
//!
//! 1. **Arbitrary-split reassembly.**  A stream of frames cut at
//!    random byte boundaries — 1-byte reads, length prefixes straddling
//!    two reads, a frame's last byte split off — must decode to exactly
//!    the payload sequence a blocking `read_exact` loop produces, bit
//!    for bit.
//! 2. **Boundary tracking.**  After the final byte the decoder sits at
//!    a frame boundary iff the stream ends on one (an EOF mid-frame is
//!    distinguishable from a clean close).
//! 3. **Oversized prefixes are fatal** no matter how the bytes were
//!    split, and are detected from the prefix alone (before the
//!    payload arrives).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vqmc_net::FrameDecoder;

/// Blocking reference: the `read_frame` contract from
/// `vqmc_serve::protocol`, restated over an in-memory buffer.
fn blocking_decode(mut wire: &[u8]) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    while wire.len() >= 4 {
        let len = u32::from_le_bytes(wire[..4].try_into().unwrap()) as usize;
        if wire.len() < 4 + len {
            break;
        }
        frames.push(wire[4..4 + len].to_vec());
        wire = &wire[4 + len..];
    }
    frames
}

/// Deterministic frame stream: `n` frames with payload lengths drawn
/// from a distribution that stresses the interesting sizes (empty, 1
/// byte, a few hundred bytes, multi-KiB).
fn gen_wire(rng: &mut StdRng, n: usize) -> (Vec<u8>, Vec<Vec<u8>>) {
    let mut wire = Vec::new();
    let mut payloads = Vec::new();
    for _ in 0..n {
        let len = match rng.gen_range(0..4u32) {
            0 => 0,
            1 => rng.gen_range(1..8usize),
            2 => rng.gen_range(8..512usize),
            _ => rng.gen_range(512..4096usize),
        };
        let payload: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u32) as u8).collect();
        wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        wire.extend_from_slice(&payload);
        payloads.push(payload);
    }
    (wire, payloads)
}

/// Splits `wire` into random chunks (1 byte up to `max_chunk`).
fn random_chunks(rng: &mut StdRng, wire: &[u8], max_chunk: usize) -> Vec<Vec<u8>> {
    let mut chunks = Vec::new();
    let mut pos = 0;
    while pos < wire.len() {
        let take = rng.gen_range(1..=max_chunk.min(wire.len() - pos));
        chunks.push(wire[pos..pos + take].to_vec());
        pos += take;
    }
    chunks
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any chunking of a valid frame stream reassembles bit-identically
    /// to the blocking reference decoder.
    #[test]
    fn arbitrary_splits_match_blocking_path(
        seed in 0u64..1u64 << 48,
        n_frames in 1usize..12,
        max_chunk in 1usize..64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (wire, payloads) = gen_wire(&mut rng, n_frames);
        let reference = blocking_decode(&wire);
        prop_assert_eq!(&reference, &payloads, "reference decoder sanity");

        let mut decoder = FrameDecoder::new(1 << 20);
        let mut out = Vec::new();
        for chunk in random_chunks(&mut rng, &wire, max_chunk) {
            decoder.extend(&chunk);
            while let Some(frame) = decoder.next_frame().expect("valid stream") {
                out.push(frame);
            }
        }
        prop_assert_eq!(&out, &payloads, "incremental != blocking");
        prop_assert!(decoder.at_boundary());
    }

    /// Truncating the stream mid-frame yields exactly the complete
    /// frames and reports a non-boundary (dirty EOF) state.
    #[test]
    fn truncation_mid_frame_is_detected(
        seed in 0u64..1u64 << 48,
        n_frames in 1usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (wire, payloads) = gen_wire(&mut rng, n_frames);
        // Cut strictly inside the last frame (possibly inside its
        // length prefix).
        let last_start = wire.len() - (payloads.last().unwrap().len() + 4);
        let cut = rng.gen_range(last_start + 1..wire.len());
        let truncated = &wire[..cut];

        let mut decoder = FrameDecoder::new(1 << 20);
        let mut out = Vec::new();
        for chunk in random_chunks(&mut rng, truncated, 16) {
            decoder.extend(&chunk);
            while let Some(frame) = decoder.next_frame().expect("valid prefix") {
                out.push(frame);
            }
        }
        prop_assert_eq!(&out[..], &payloads[..n_frames - 1], "complete frames only");
        prop_assert!(!decoder.at_boundary(), "mid-frame EOF must be dirty");
    }

    /// An oversized length prefix is rejected as soon as the 4 prefix
    /// bytes are in, regardless of chunking, and regardless of how
    /// many valid frames preceded it.
    #[test]
    fn oversized_prefix_rejected_under_any_split(
        seed in 0u64..1u64 << 48,
        n_valid in 0usize..5,
        excess in 1u64..1u64 << 20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let max_payload = 4096usize;
        let (mut wire, payloads) = gen_wire(&mut rng, n_valid);
        let bad_len = (max_payload as u64 + excess).min(u32::MAX as u64) as u32;
        wire.extend_from_slice(&bad_len.to_le_bytes());

        let mut decoder = FrameDecoder::new(max_payload);
        let mut out = Vec::new();
        let mut poisoned = false;
        for chunk in random_chunks(&mut rng, &wire, 16) {
            decoder.extend(&chunk);
            loop {
                match decoder.next_frame() {
                    Ok(Some(frame)) => out.push(frame),
                    Ok(None) => break,
                    Err(_) => {
                        poisoned = true;
                        break;
                    }
                }
            }
            if poisoned {
                break;
            }
        }
        prop_assert!(poisoned, "oversized prefix must poison the stream");
        prop_assert_eq!(&out, &payloads, "frames before the poison still decode");
    }
}
