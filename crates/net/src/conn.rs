//! Nonblocking connection state machine.
//!
//! A [`Connection`] wraps one nonblocking `TcpStream` and owns both
//! directions of its framing state:
//!
//! * **inbound** — bytes are pulled until `WouldBlock` and pushed
//!   through a [`FrameDecoder`](crate::FrameDecoder); complete payloads
//!   surface via a callback,
//! * **outbound** — replies are queued as fully-framed wire buffers
//!   (length prefix prepended at queue time) and flushed with partial-
//!   write tracking, so a reply interrupted mid-write by a full socket
//!   buffer resumes at the exact byte where the kernel stopped.
//!
//! The connection never blocks and never spins: the event loop uses
//! [`Connection::wants_write`] to decide whether to arm write
//! readiness.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::fd::{AsRawFd, RawFd};

use crate::decoder::{FrameDecoder, FrameError};

/// What a read pass observed about the peer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadStatus {
    /// The peer is still sending; more bytes may arrive later.
    Open,
    /// The peer closed its write half (clean EOF at a frame boundary,
    /// or mid-frame — the caller can consult the decoder).
    Eof,
}

/// One nonblocking framed TCP connection.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Outbound wire frames, front being flushed first.
    out: VecDeque<Vec<u8>>,
    /// Bytes of `out.front()` already accepted by the kernel.
    out_pos: usize,
    /// Total outbound bytes queued but not yet written.
    out_bytes: usize,
}

impl Connection {
    /// Adopts `stream`, switching it to nonblocking mode.
    ///
    /// `max_payload` bounds the inbound frame payload length (a prefix
    /// beyond it poisons the connection).
    pub fn new(stream: TcpStream, max_payload: usize) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        // Latency over throughput: replies are single small frames.
        let _ = stream.set_nodelay(true);
        Ok(Connection {
            stream,
            decoder: FrameDecoder::new(max_payload),
            out: VecDeque::new(),
            out_pos: 0,
            out_bytes: 0,
        })
    }

    /// The underlying socket fd (for poller registration).
    pub fn raw_fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    /// Reads until `WouldBlock` or EOF, invoking `on_frame` for every
    /// complete payload.
    ///
    /// Framing violations ([`FrameError`]) are returned as
    /// `InvalidData` errors; transport errors pass through.  Either
    /// way the caller should drop the connection.
    pub fn read_frames(
        &mut self,
        mut on_frame: impl FnMut(Vec<u8>),
    ) -> io::Result<ReadStatus> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.drain_decoder(&mut on_frame)?;
                    return Ok(ReadStatus::Eof);
                }
                Ok(n) => {
                    self.decoder.extend(&chunk[..n]);
                    self.drain_decoder(&mut on_frame)?;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    return Ok(ReadStatus::Open);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn drain_decoder(&mut self, on_frame: &mut impl FnMut(Vec<u8>)) -> io::Result<()> {
        loop {
            match self.decoder.next_frame() {
                Ok(Some(payload)) => on_frame(payload),
                Ok(None) => return Ok(()),
                Err(FrameError::Oversized { len, max }) => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("inbound frame of {len} bytes exceeds limit {max}"),
                    ));
                }
            }
        }
    }

    /// Queues a reply payload, prepending the u32le length prefix.
    pub fn queue_payload(&mut self, payload: &[u8]) {
        let mut frame = Vec::with_capacity(4 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(payload);
        self.out_bytes += frame.len();
        self.out.push_back(frame);
    }

    /// Writes queued frames until done or `WouldBlock`; returns `true`
    /// once the outbound queue is empty.
    ///
    /// A partial write leaves `out_pos` pointing at the first unsent
    /// byte of the front frame — the next call resumes there, so a
    /// reply is never truncated or duplicated across readiness cycles.
    pub fn flush(&mut self) -> io::Result<bool> {
        while let Some(front) = self.out.front() {
            match self.stream.write(&front[self.out_pos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ));
                }
                Ok(n) => {
                    self.out_pos += n;
                    self.out_bytes -= n;
                    if self.out_pos == front.len() {
                        self.out.pop_front();
                        self.out_pos = 0;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }

    /// `true` while queued reply bytes remain unflushed — the event
    /// loop arms write readiness exactly when this holds.
    pub fn wants_write(&self) -> bool {
        !self.out.is_empty()
    }

    /// Queued-but-unwritten outbound bytes.
    pub fn pending_out_bytes(&self) -> usize {
        self.out_bytes
    }

    /// `true` when the inbound stream sits at a frame boundary (an EOF
    /// here is a clean close, not a truncated request).
    pub fn inbound_at_boundary(&self) -> bool {
        self.decoder.at_boundary()
    }
}
