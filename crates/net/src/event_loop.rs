//! Readiness-driven event loop: many connections, one (or a few)
//! threads.
//!
//! The loop owns a [`Poller`](polling::Poller) plus a slab of
//! [`Connection`]s and drives four inputs each iteration:
//!
//! 1. **handoffs** — sockets accepted elsewhere and adopted by this
//!    loop (how a single accepting loop spreads connections across
//!    several event loops),
//! 2. **completions** — replies produced off-loop (engine worker
//!    threads) and posted through [`Completions`], which wakes the
//!    poller,
//! 3. **socket readiness** — nonblocking accept / read / write,
//! 4. **drain** — once [`FrameHandler::draining`] reports true, the
//!    loop stops accepting and reading, lets in-flight work finish,
//!    flushes every queued reply byte (partial writes included), and
//!    exits.
//!
//! ## In-order replies under pipelining
//!
//! A client may pipeline many requests on one connection, and the
//! engine completes batches out of order.  Every decoded frame gets a
//! per-connection sequence number ([`Ticket::seq`]); completed replies
//! park in a per-connection `BTreeMap` and only the contiguous prefix
//! is queued to the socket.  The wire order seen by a client is
//! therefore exactly its request order — the same contract the
//! blocking thread-per-connection runtime provides for free.
//!
//! ## Stale completions
//!
//! Tokens (slab indices) are reused after a connection closes.  Each
//! slot carries a generation counter, captured in the [`Ticket`]; a
//! completion whose generation no longer matches is dropped on the
//! floor instead of being delivered to an unrelated connection.

use std::collections::BTreeMap;
use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use polling::{Event, Poller};

use crate::conn::{Connection, ReadStatus};

/// Poller key reserved for the accept socket (`usize::MAX` is the
/// poller's own wakeup key).
const LISTENER_KEY: usize = usize::MAX - 1;

/// Identifies one decoded frame on one connection incarnation.
///
/// Handlers that defer work ([`FrameOutcome::Pending`]) carry the
/// ticket to the worker and post the reply back through
/// [`Completions::post`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ticket {
    /// Slab index of the connection.
    pub token: usize,
    /// Generation of the slab slot (guards against token reuse).
    pub generation: u64,
    /// Per-connection frame sequence number (0, 1, 2, …) used to
    /// restore request order on the reply stream.
    pub seq: u64,
}

/// What the handler decided about one inbound frame.
#[derive(Debug)]
pub enum FrameOutcome {
    /// Reply immediately with this payload.
    Reply(Vec<u8>),
    /// The reply will arrive later via [`Completions::post`] with the
    /// frame's [`Ticket`].
    Pending,
    /// Reply with this payload, then close the connection once every
    /// queued byte (this reply and any earlier ones) has flushed.
    ReplyClose(Vec<u8>),
    /// Close the connection without a reply (after flushing replies
    /// to earlier frames).
    Close,
}

/// Application hook driven by the event loop.
///
/// `on_frame` runs on the loop thread — it must not block.  Work that
/// needs real compute returns [`FrameOutcome::Pending`] and completes
/// from another thread via [`Completions`].
pub trait FrameHandler {
    /// One complete inbound frame payload.
    fn on_frame(&mut self, ticket: Ticket, payload: Vec<u8>) -> FrameOutcome;

    /// Polled every iteration; returning `true` moves the loop into
    /// its drain phase (stop accepting/reading, finish in-flight,
    /// flush, exit).
    fn draining(&self) -> bool {
        false
    }

    /// A connection was accepted and registered.
    fn on_accept(&mut self) {}

    /// A connection was closed (any cause).
    fn on_close(&mut self) {}
}

/// Cross-thread reply queue: workers post `(ticket, payload)`, the
/// loop wakes and delivers in request order per connection.
pub struct Completions {
    queue: Mutex<Vec<(Ticket, Vec<u8>)>>,
    poller: Arc<Poller>,
}

impl Completions {
    /// Posts a completed reply payload for `ticket` and wakes the loop.
    pub fn post(&self, ticket: Ticket, payload: Vec<u8>) {
        self.queue.lock().expect("completions poisoned").push((ticket, payload));
        let _ = self.poller.notify();
    }

    fn drain_into(&self, into: &mut Vec<(Ticket, Vec<u8>)>) {
        let mut q = self.queue.lock().expect("completions poisoned");
        into.append(&mut q);
    }
}

/// Socket hand-off target: the accepting loop pushes fresh streams
/// here; the owning loop wakes and adopts them.
pub struct Handoff {
    queue: Mutex<Vec<TcpStream>>,
    poller: Arc<Poller>,
}

impl Handoff {
    /// Transfers a freshly-accepted stream to the owning loop.
    pub fn push(&self, stream: TcpStream) {
        self.queue.lock().expect("handoff poisoned").push(stream);
        let _ = self.poller.notify();
    }

    fn take(&self) -> Vec<TcpStream> {
        std::mem::take(&mut *self.queue.lock().expect("handoff poisoned"))
    }
}

/// Tunables for one event loop.
#[derive(Clone, Debug)]
pub struct EventLoopConfig {
    /// Inbound frame payload ceiling (bytes).
    pub max_payload: usize,
    /// Hard cap on concurrently registered connections; accepts beyond
    /// it are dropped (the client sees a reset).
    pub max_connections: usize,
    /// Per-connection cap on frames handed to the application but not
    /// yet replied; beyond it the loop stops reading that socket until
    /// completions catch up (pipelining backpressure).
    pub max_inflight: usize,
    /// Per-connection high-water mark on queued-but-unflushed reply
    /// bytes; beyond it the loop stops reading that socket until the
    /// peer drains its replies (outbound backpressure — a client that
    /// pipelines requests without reading cannot grow the reply queue
    /// without bound).  A single reply larger than the mark is still
    /// queued whole; only further reads stall.
    pub max_out_bytes: usize,
    /// How long the drain phase waits for in-flight work and flushes
    /// before force-closing stragglers.
    pub drain_timeout: Duration,
    /// Poll timeout — the latency with which out-of-band state changes
    /// (e.g. `draining()`) are noticed absent any wakeup.
    pub tick: Duration,
}

impl Default for EventLoopConfig {
    fn default() -> Self {
        EventLoopConfig {
            max_payload: 64 * 1024 * 1024,
            max_connections: 16 * 1024,
            max_inflight: 256,
            max_out_bytes: 16 * 1024 * 1024,
            drain_timeout: Duration::from_secs(10),
            tick: Duration::from_millis(50),
        }
    }
}

/// A reply waiting in the per-connection reorder buffer.
#[derive(Debug)]
enum Parked {
    Frame(Vec<u8>),
    FrameClose(Vec<u8>),
    CloseMarker,
}

/// Live per-connection state.
struct ConnState {
    conn: Connection,
    /// Sequence number the next decoded frame will get.
    next_seq: u64,
    /// Sequence number the next queued-to-socket reply must have.
    write_seq: u64,
    /// Out-of-order completed replies, keyed by seq.
    parked: BTreeMap<u64, Parked>,
    /// Frames handed to the application, reply not yet produced.
    outstanding: usize,
    /// Reading stopped (EOF, poison, or close pending).
    read_open: bool,
    /// Close once `parked` drains and the socket flushes.
    closing: bool,
    /// Interest bits currently registered with the poller.
    reg_read: bool,
    reg_write: bool,
}

struct Slot {
    generation: u64,
    conn: Option<ConnState>,
}

/// One readiness event loop (see module docs).
pub struct EventLoop {
    poller: Arc<Poller>,
    listener: Option<TcpListener>,
    handoff: Arc<Handoff>,
    completions: Arc<Completions>,
    config: EventLoopConfig,
    slots: Vec<Slot>,
    free: Vec<usize>,
    live: usize,
    /// Round-robin adoption targets for accepted sockets (usually the
    /// handoffs of every loop in the pool, this one included).  Empty
    /// means "register locally".
    peers: Vec<Arc<Handoff>>,
    rr: usize,
    /// Tokens touched this iteration, swept once per iteration.
    dirty: Vec<usize>,
}

impl EventLoop {
    /// Builds a loop; `listener` is `Some` only for the loop that
    /// accepts (it is switched to nonblocking mode here).
    pub fn new(listener: Option<TcpListener>, config: EventLoopConfig) -> io::Result<Self> {
        if let Some(l) = &listener {
            l.set_nonblocking(true)?;
        }
        let poller = Arc::new(Poller::new()?);
        Ok(EventLoop {
            handoff: Arc::new(Handoff {
                queue: Mutex::new(Vec::new()),
                poller: Arc::clone(&poller),
            }),
            completions: Arc::new(Completions {
                queue: Mutex::new(Vec::new()),
                poller: Arc::clone(&poller),
            }),
            poller,
            listener,
            config,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            peers: Vec::new(),
            rr: 0,
            dirty: Vec::new(),
        })
    }

    /// The reply queue workers post into.
    pub fn completions(&self) -> Arc<Completions> {
        Arc::clone(&self.completions)
    }

    /// This loop's adoption queue (hand to the accepting loop).
    pub fn handoff(&self) -> Arc<Handoff> {
        Arc::clone(&self.handoff)
    }

    /// The underlying poller (for out-of-band wakeups, e.g. when an
    /// external shutdown flag flips).
    pub fn poller(&self) -> Arc<Poller> {
        Arc::clone(&self.poller)
    }

    /// Sets the round-robin adoption targets for accepted sockets.
    /// Include this loop's own [`Handoff`] to keep distribution
    /// uniform across the pool.
    pub fn set_peers(&mut self, peers: Vec<Arc<Handoff>>) {
        self.peers = peers;
    }

    /// Runs until the handler reports draining and the drain phase
    /// finishes (or times out).  Consumes the loop.
    pub fn run(mut self, handler: &mut impl FrameHandler) -> io::Result<()> {
        if let Some(l) = &self.listener {
            self.poller.add(l.as_raw_fd(), LISTENER_KEY, true, false)?;
        }
        let mut events: Vec<Event> = Vec::new();
        let mut comps: Vec<(Ticket, Vec<u8>)> = Vec::new();
        let mut draining = false;
        let mut drain_deadline = Instant::now(); // set when drain starts

        loop {
            // `wait` appends; without this clear every event ever seen
            // would be replayed each iteration (unbounded growth, and
            // stale readable events would defeat read backpressure).
            events.clear();
            self.poller.wait(&mut events, Some(self.config.tick))?;

            for stream in self.handoff.take() {
                if draining {
                    drop(stream);
                } else {
                    self.register(stream, handler);
                }
            }

            self.completions.drain_into(&mut comps);
            for (ticket, payload) in comps.drain(..) {
                self.deliver(ticket, payload);
            }

            for &ev in events.iter() {
                if ev.key == LISTENER_KEY {
                    self.accept_ready(handler, draining);
                } else {
                    self.socket_ready(ev, handler);
                }
            }

            if !draining && handler.draining() {
                draining = true;
                drain_deadline = Instant::now() + self.config.drain_timeout;
                if let Some(l) = self.listener.take() {
                    let _ = self.poller.delete(l.as_raw_fd());
                }
                // Stop reading everywhere; in-flight work and queued
                // reply bytes still complete and flush below.
                for token in 0..self.slots.len() {
                    if let Some(cs) = self.slots[token].conn.as_mut() {
                        cs.read_open = false;
                        self.dirty.push(token);
                    }
                }
            }

            self.sweep(handler);

            if draining && (self.live == 0 || Instant::now() >= drain_deadline) {
                self.close_all(handler);
                return Ok(());
            }
        }
    }

    /// Adopts an accepted stream into the slab and the poller.
    fn register(&mut self, stream: TcpStream, handler: &mut impl FrameHandler) {
        if self.live >= self.config.max_connections {
            return; // dropped: client sees a reset
        }
        let conn = match Connection::new(stream, self.config.max_payload) {
            Ok(c) => c,
            Err(_) => return,
        };
        let token = match self.free.pop() {
            Some(t) => t,
            None => {
                self.slots.push(Slot { generation: 0, conn: None });
                self.slots.len() - 1
            }
        };
        debug_assert!(token < LISTENER_KEY);
        if self.poller.add(conn.raw_fd(), token, true, false).is_err() {
            self.free.push(token);
            return;
        }
        self.slots[token].conn = Some(ConnState {
            conn,
            next_seq: 0,
            write_seq: 0,
            parked: BTreeMap::new(),
            outstanding: 0,
            read_open: true,
            closing: false,
            reg_read: true,
            reg_write: false,
        });
        self.live += 1;
        self.dirty.push(token);
        handler.on_accept();
    }

    /// Accept until `WouldBlock`, handing off or registering locally.
    fn accept_ready(&mut self, handler: &mut impl FrameHandler, draining: bool) {
        loop {
            let listener = match &self.listener {
                Some(l) => l,
                None => return,
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if draining {
                        drop(stream);
                    } else if self.peers.is_empty() {
                        self.register(stream, handler);
                    } else {
                        let target = self.rr % self.peers.len();
                        self.rr = self.rr.wrapping_add(1);
                        self.peers[target].push(stream);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failure (e.g. fd exhaustion): back
                // off until the next readiness report.
                Err(_) => return,
            }
        }
    }

    /// Applies a readiness event to one connection.
    fn socket_ready(&mut self, ev: Event, handler: &mut impl FrameHandler) {
        let token = ev.key;
        let Some(slot) = self.slots.get_mut(token) else { return };
        let generation = slot.generation;
        let Some(cs) = slot.conn.as_mut() else { return };
        self.dirty.push(token);

        if !(ev.readable && cs.read_open) {
            return; // writable progress happens in the sweep
        }

        // Split the borrow: the read callback needs the bookkeeping
        // fields while `conn` is exclusively lent to `read_frames`.
        let ConnState {
            conn,
            next_seq,
            parked,
            outstanding,
            closing,
            ..
        } = cs;
        let result = conn.read_frames(|payload| {
            if *closing {
                return; // discard frames pipelined after a close decision
            }
            let seq = *next_seq;
            *next_seq += 1;
            let ticket = Ticket { token, generation, seq };
            match handler.on_frame(ticket, payload) {
                FrameOutcome::Reply(p) => {
                    parked.insert(seq, Parked::Frame(p));
                }
                FrameOutcome::Pending => {
                    *outstanding += 1;
                }
                FrameOutcome::ReplyClose(p) => {
                    parked.insert(seq, Parked::FrameClose(p));
                    *closing = true;
                }
                FrameOutcome::Close => {
                    parked.insert(seq, Parked::CloseMarker);
                    *closing = true;
                }
            }
        });
        match result {
            Ok(ReadStatus::Open) => {}
            Ok(ReadStatus::Eof) => {
                cs.read_open = false;
            }
            // Framing poison or transport error: the stream is dead in
            // both directions; replies cannot be delivered reliably.
            Err(_) => self.close(token, handler),
        }
    }

    /// Delivers one worker completion into its connection's reorder
    /// buffer (dropped if the connection is gone or reincarnated).
    fn deliver(&mut self, ticket: Ticket, payload: Vec<u8>) {
        let Some(slot) = self.slots.get_mut(ticket.token) else { return };
        if slot.generation != ticket.generation {
            return;
        }
        let Some(cs) = slot.conn.as_mut() else { return };
        cs.outstanding = cs.outstanding.saturating_sub(1);
        cs.parked.insert(ticket.seq, Parked::Frame(payload));
        self.dirty.push(ticket.token);
    }

    /// Pumps reorder buffers to sockets, flushes, syncs poller
    /// interest, and closes finished connections.  Idempotent per
    /// token, so duplicate dirty entries are harmless.
    fn sweep(&mut self, handler: &mut impl FrameHandler) {
        let mut dirty = std::mem::take(&mut self.dirty);
        for token in dirty.drain(..) {
            let Some(slot) = self.slots.get_mut(token) else { continue };
            let Some(cs) = slot.conn.as_mut() else { continue };

            // Queue the contiguous completed prefix, in request order.
            while let Some(parked) = cs.parked.remove(&cs.write_seq) {
                cs.write_seq += 1;
                match parked {
                    Parked::Frame(p) => cs.conn.queue_payload(&p),
                    Parked::FrameClose(p) => {
                        cs.conn.queue_payload(&p);
                        cs.closing = true;
                        cs.read_open = false;
                    }
                    Parked::CloseMarker => {
                        cs.closing = true;
                        cs.read_open = false;
                    }
                }
            }

            if cs.conn.flush().is_err() {
                self.close(token, handler);
                continue;
            }

            let idle =
                cs.outstanding == 0 && cs.parked.is_empty() && !cs.conn.wants_write();
            if idle && (cs.closing || !cs.read_open) {
                self.close(token, handler);
                continue;
            }

            let want_read = cs.read_open
                && !cs.closing
                && cs.outstanding < self.config.max_inflight
                && cs.conn.pending_out_bytes() < self.config.max_out_bytes;
            let want_write = cs.conn.wants_write();
            if (want_read, want_write) != (cs.reg_read, cs.reg_write) {
                if self
                    .poller
                    .modify(cs.conn.raw_fd(), token, want_read, want_write)
                    .is_err()
                {
                    self.close(token, handler);
                    continue;
                }
                cs.reg_read = want_read;
                cs.reg_write = want_write;
            }
        }
        self.dirty = dirty; // reuse the allocation
    }

    /// Deregisters and drops one connection, recycling its token.
    fn close(&mut self, token: usize, handler: &mut impl FrameHandler) {
        let Some(slot) = self.slots.get_mut(token) else { return };
        let Some(cs) = slot.conn.take() else { return };
        let _ = self.poller.delete(cs.conn.raw_fd());
        slot.generation += 1;
        self.free.push(token);
        self.live -= 1;
        handler.on_close();
    }

    /// Force-closes every remaining connection (drain deadline).
    fn close_all(&mut self, handler: &mut impl FrameHandler) {
        for token in 0..self.slots.len() {
            self.close(token, handler);
        }
    }
}
