//! `vqmc-net` — nonblocking serving runtime for the vqmc stack.
//!
//! The thread-per-connection runtime in `vqmc-serve` spends one OS
//! thread (stack, scheduler slot, context switches) per client, which
//! tops out around a few hundred connections.  This crate provides the
//! pieces of a readiness-driven runtime that serves thousands of
//! connections from one or a few event-loop threads:
//!
//! * [`FrameDecoder`] — incremental reassembly of the length-prefixed
//!   wire frames from arbitrarily-split reads,
//! * [`Connection`] — one nonblocking socket with partial-read and
//!   partial-write tracking,
//! * [`EventLoop`] — the poller-driven loop: accept, read, dispatch to
//!   a [`FrameHandler`], reorder out-of-order completions back into
//!   request order, flush, and drain on shutdown,
//! * [`Completions`] — the cross-thread queue worker threads use to
//!   post replies for frames the handler deferred
//!   ([`FrameOutcome::Pending`]).
//!
//! The readiness primitive itself (epoll on Linux, portable `poll(2)`
//! elsewhere) is the vendored [`polling`] shim, re-exported here.
//!
//! Nothing in this crate knows the vqmc request schema: payloads are
//! opaque byte vectors, so the crate is testable with toy echo
//! handlers and reusable by the load generator for its open-loop
//! connection swarm.

#![warn(missing_docs)]

mod conn;
mod decoder;
mod event_loop;

pub use conn::{Connection, ReadStatus};
pub use decoder::{FrameDecoder, FrameError};
pub use event_loop::{
    Completions, EventLoop, EventLoopConfig, FrameHandler, FrameOutcome, Handoff, Ticket,
};
pub use polling::{Event, Poller};
