//! Incremental decoder for length-prefixed frames.
//!
//! The blocking serve path reads frames with `read_exact` — it can
//! park a thread mid-frame.  A readiness loop cannot: bytes arrive in
//! arbitrary splits (a 1-byte read, a length prefix straddling two
//! `read` calls, the tail of one frame glued to the head of the next),
//! and the decoder must resume exactly where it left off.
//! [`FrameDecoder`] owns that reassembly: feed it whatever the socket
//! yields, pop complete frame payloads.  Property tests assert that
//! any split of a frame stream reassembles bit-identically to the
//! blocking `read_frame` path.
//!
//! Wire format (identical to `vqmc_serve::protocol`):
//!
//! ```text
//! frame := u32le payload_len · payload
//! ```

/// A framing violation (fatal for the connection — the byte stream can
/// no longer be trusted to contain frame boundaries).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds the configured ceiling.
    Oversized {
        /// The length the prefix claimed.
        len: usize,
        /// The configured maximum payload length.
        max: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds limit {max}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Reassembles length-prefixed frames from an arbitrarily-split byte
/// stream.
#[derive(Debug)]
pub struct FrameDecoder {
    /// Unparsed bytes; `pos..` is live, `..pos` already consumed.
    buf: Vec<u8>,
    pos: usize,
    max_payload: usize,
}

impl FrameDecoder {
    /// A fresh decoder with the given payload-length ceiling.
    pub fn new(max_payload: usize) -> Self {
        FrameDecoder {
            buf: Vec::new(),
            pos: 0,
            max_payload,
        }
    }

    /// Appends newly-received bytes (any split is fine, including one
    /// byte at a time).
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: consumed prefix space is reused so
        // steady-state traffic does not creep the buffer.
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos >= 64 * 1024) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame payload, `None` while the buffered
    /// bytes end mid-frame, or a [`FrameError`] when the stream is
    /// unrecoverably malformed.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        let live = &self.buf[self.pos..];
        if live.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(live[..4].try_into().expect("4-byte slice")) as usize;
        if len > self.max_payload {
            return Err(FrameError::Oversized {
                len,
                max: self.max_payload,
            });
        }
        if live.len() < 4 + len {
            return Ok(None);
        }
        let payload = live[4..4 + len].to_vec();
        self.pos += 4 + len;
        Ok(Some(payload))
    }

    /// Number of buffered-but-unparsed bytes.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when the stream sits exactly at a frame boundary — the
    /// state in which an EOF is clean rather than a truncation.
    pub fn at_boundary(&self) -> bool {
        self.buffered() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wire(payloads: &[&[u8]]) -> Vec<u8> {
        let mut w = Vec::new();
        for p in payloads {
            w.extend_from_slice(&(p.len() as u32).to_le_bytes());
            w.extend_from_slice(p);
        }
        w
    }

    #[test]
    fn single_byte_feeds_reassemble() {
        let stream = wire(&[b"hello", b"", b"worlds!"]);
        let mut d = FrameDecoder::new(1024);
        let mut out = Vec::new();
        for &b in &stream {
            d.extend(&[b]);
            while let Some(f) = d.next_frame().unwrap() {
                out.push(f);
            }
        }
        assert_eq!(out, vec![b"hello".to_vec(), b"".to_vec(), b"worlds!".to_vec()]);
        assert!(d.at_boundary());
    }

    #[test]
    fn oversized_prefix_is_fatal() {
        let mut d = FrameDecoder::new(8);
        d.extend(&9u32.to_le_bytes());
        assert_eq!(
            d.next_frame(),
            Err(FrameError::Oversized { len: 9, max: 8 })
        );
    }

    #[test]
    fn mid_frame_is_not_a_boundary() {
        let stream = wire(&[b"abcdef"]);
        let mut d = FrameDecoder::new(1024);
        d.extend(&stream[..7]);
        assert_eq!(d.next_frame().unwrap(), None);
        assert!(!d.at_boundary());
        d.extend(&stream[7..]);
        assert_eq!(d.next_frame().unwrap(), Some(b"abcdef".to_vec()));
        assert!(d.at_boundary());
    }
}
