//! Property tests for the unified batched sampling layer: coalesced
//! multi-request passes must be **bit-identical** — configurations and
//! `logψ` — to solo per-request sampling, and the MADE panel sampler's
//! two layouts must agree bit-for-bit.
//!
//! The verify skill runs this suite on both SIMD dispatch arms
//! (default and `VQMC_SIMD=off` / `--features vqmc/force-scalar`), so
//! the invariants are pinned across every kernel implementation.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vqmc_nn::{Made, Nade};
use vqmc_sampler::{
    BatchSampler, MadeBatchSampler, NadeBatchSampler, PanelLayout, SampleRequest,
};
use vqmc_tensor::{par, SpinBatch, Vector};

/// Request sizes derived from a seed (the vendored proptest stub has no
/// collection strategies). Sizes span 1..=11 so the coalesced row count
/// crosses the cols-path threshold in some cases and not in others.
fn request_list(nreq: usize, seed0: u64) -> Vec<SampleRequest> {
    (0..nreq)
        .map(|r| SampleRequest {
            count: 1 + ((seed0 >> (5 * r)) % 11) as usize,
            seed: seed0.wrapping_add(r as u64),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// MADE: every request's rows in a coalesced pass match a solo
    /// `sample_stream` with that request's seed, bit for bit.
    #[test]
    fn made_coalesced_requests_match_solo_streams(
        n in 3usize..12,
        h in 2usize..16,
        model_seed in 0u64..500,
        nreq in 2usize..5,
        seed0 in 0u64..10_000,
    ) {
        let wf = Made::new(n, h, model_seed);
        let reqs = request_list(nreq, seed0);

        let mut bs = BatchSampler::new();
        let mut batch = SpinBatch::default();
        let mut log_psi = Vector::default();
        bs.sample_requests(&wf, &reqs, &mut batch, &mut log_psi);

        let mut offset = 0;
        for req in &reqs {
            let mut solo_b = SpinBatch::default();
            let mut solo_lp = Vector::default();
            MadeBatchSampler::new().sample_stream(
                &wf,
                req.count,
                &mut StdRng::seed_from_u64(req.seed),
                &mut solo_b,
                &mut solo_lp,
            );
            for s in 0..req.count {
                prop_assert_eq!(batch.sample(offset + s), solo_b.sample(s));
                prop_assert_eq!(log_psi[offset + s].to_bits(), solo_lp[s].to_bits());
            }
            offset += req.count;
        }
    }

    /// NADE: the coalesced batched path is bit-identical per request to
    /// the model's own solo `sample_native` — the batched path must be
    /// a pure re-ordering of the same scalar arithmetic.
    #[test]
    fn nade_coalesced_requests_match_sample_native(
        n in 3usize..12,
        h in 2usize..14,
        model_seed in 0u64..500,
        nreq in 2usize..5,
        seed0 in 0u64..10_000,
    ) {
        let wf = Nade::new(n, h, model_seed);
        let reqs = request_list(nreq, seed0);

        let mut sampler = NadeBatchSampler::new();
        let mut batch = SpinBatch::default();
        let mut log_psi = Vector::default();
        sampler.sample_coalesced(&wf, &reqs, &mut batch, &mut log_psi);

        let mut offset = 0;
        for req in &reqs {
            let (solo_b, solo_lp) =
                wf.sample_native(req.count, &mut StdRng::seed_from_u64(req.seed));
            for s in 0..req.count {
                prop_assert_eq!(batch.sample(offset + s), solo_b.sample(s));
                prop_assert_eq!(log_psi[offset + s].to_bits(), solo_lp[s].to_bits());
            }
            offset += req.count;
        }
    }

    /// NADE single-stream (the training shape) equals `sample_native`
    /// on the same RNG stream.
    #[test]
    fn nade_stream_matches_sample_native(
        n in 3usize..12,
        h in 2usize..14,
        model_seed in 0u64..500,
        count in 1usize..40,
        seed in 0u64..10_000,
    ) {
        let wf = Nade::new(n, h, model_seed);
        let mut batch = SpinBatch::default();
        let mut log_psi = Vector::default();
        NadeBatchSampler::new().sample_stream(
            &wf,
            count,
            &mut StdRng::seed_from_u64(seed),
            &mut batch,
            &mut log_psi,
        );
        let (nb, nlp) = wf.sample_native(count, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(batch.as_bytes(), nb.as_bytes());
        for s in 0..count {
            prop_assert_eq!(log_psi[s].to_bits(), nlp[s].to_bits());
        }
    }

    /// MADE: the row-major and transposed fused-kernel panel layouts
    /// produce bit-identical output on random shapes — so the `Auto`
    /// threshold dispatch is observationally invisible.
    #[test]
    fn made_forced_layouts_agree_on_random_shapes(
        n in 3usize..14,
        h in 2usize..18,
        model_seed in 0u64..500,
        nreq in 1usize..4,
        seed0 in 0u64..10_000,
    ) {
        let wf = Made::new(n, h, model_seed);
        let reqs = request_list(nreq, seed0);

        let mut row_b = SpinBatch::default();
        let mut row_lp = Vector::default();
        let mut sampler = MadeBatchSampler::new();
        sampler.force_layout(PanelLayout::Rows);
        sampler.sample_coalesced(&wf, &reqs, &mut row_b, &mut row_lp);

        let mut col_b = SpinBatch::default();
        let mut col_lp = Vector::default();
        let mut sampler = MadeBatchSampler::new();
        sampler.force_layout(PanelLayout::Cols);
        sampler.sample_coalesced(&wf, &reqs, &mut col_b, &mut col_lp);

        prop_assert_eq!(row_b.as_bytes(), col_b.as_bytes());
        for s in 0..row_lp.len() {
            prop_assert_eq!(row_lp[s].to_bits(), col_lp[s].to_bits());
        }
    }

    /// MADE cols path (the pool-parallel arm): configurations and `logψ`
    /// are **bit-identical at every thread count** — the per-worker
    /// panel stripes and the pre-drawn variates must be observationally
    /// invisible.
    #[test]
    fn made_sampling_bit_identical_across_thread_counts(
        n in 3usize..14,
        h in 2usize..18,
        model_seed in 0u64..500,
        count in 16usize..160,
        seed in 0u64..10_000,
    ) {
        let wf = Made::new(n, h, model_seed);
        let run = |threads: usize| {
            par::with_threads(threads, || {
                let mut sampler = MadeBatchSampler::new();
                sampler.force_layout(PanelLayout::Cols);
                let mut b = SpinBatch::default();
                let mut lp = Vector::default();
                sampler.sample_stream(
                    &wf,
                    count,
                    &mut StdRng::seed_from_u64(seed),
                    &mut b,
                    &mut lp,
                );
                (b, lp)
            })
        };
        let seq = run(1);
        for threads in [2usize, 4, 8] {
            let par_out = run(threads);
            prop_assert_eq!(par_out.0.as_bytes(), seq.0.as_bytes(), "bits at {} threads", threads);
            for s in 0..count {
                prop_assert_eq!(par_out.1[s].to_bits(), seq.1[s].to_bits());
            }
        }
    }
    /// Deep MADE stacks (depth 2): every request's rows in a coalesced
    /// pass match a solo `sample_stream` with that request's seed, bit
    /// for bit — the deep panel pipeline preserves the invariant the
    /// serving layer depends on.
    #[test]
    fn deep_made_coalesced_requests_match_solo_streams(
        n in 3usize..12,
        h1 in 3usize..14,
        h2 in 2usize..10,
        model_seed in 0u64..500,
        nreq in 2usize..5,
        seed0 in 0u64..10_000,
    ) {
        let wf = Made::with_hidden(n, &[h1, h2], model_seed);
        let reqs = request_list(nreq, seed0);

        let mut bs = BatchSampler::new();
        let mut batch = SpinBatch::default();
        let mut log_psi = Vector::default();
        bs.sample_requests(&wf, &reqs, &mut batch, &mut log_psi);

        let mut offset = 0;
        for req in &reqs {
            let mut solo_b = SpinBatch::default();
            let mut solo_lp = Vector::default();
            MadeBatchSampler::new().sample_stream(
                &wf,
                req.count,
                &mut StdRng::seed_from_u64(req.seed),
                &mut solo_b,
                &mut solo_lp,
            );
            for s in 0..req.count {
                prop_assert_eq!(batch.sample(offset + s), solo_b.sample(s));
                prop_assert_eq!(log_psi[offset + s].to_bits(), solo_lp[s].to_bits());
            }
            offset += req.count;
        }
    }

    /// Deep MADE stacks: configurations and `logψ` are bit-identical
    /// at every thread count, like the depth-1 cols path.
    #[test]
    fn deep_made_sampling_bit_identical_across_thread_counts(
        n in 3usize..12,
        h1 in 3usize..14,
        h2 in 2usize..10,
        model_seed in 0u64..500,
        count in 16usize..120,
        seed in 0u64..10_000,
    ) {
        let wf = Made::with_hidden(n, &[h1, h2], model_seed);
        let run = |threads: usize| {
            par::with_threads(threads, || {
                let mut sampler = MadeBatchSampler::new();
                let mut b = SpinBatch::default();
                let mut lp = Vector::default();
                sampler.sample_stream(
                    &wf,
                    count,
                    &mut StdRng::seed_from_u64(seed),
                    &mut b,
                    &mut lp,
                );
                (b, lp)
            })
        };
        let seq = run(1);
        for threads in [2usize, 4, 8] {
            let par_out = run(threads);
            prop_assert_eq!(par_out.0.as_bytes(), seq.0.as_bytes(), "bits at {} threads", threads);
            for s in 0..count {
                prop_assert_eq!(par_out.1[s].to_bits(), seq.1[s].to_bits());
            }
        }
    }
}

/// The acceptance training shape (rows = 16384): one deterministic pass
/// through the cols path at 1/2/4/8 threads must agree bit-for-bit.
/// Moderate hidden size keeps the debug-mode runtime reasonable; the
/// stripe arithmetic being exercised is identical at any `h`.
#[test]
fn training_shape_sampling_bit_identical_across_thread_counts() {
    let n = 16;
    let wf = Made::new(n, 24, 41);
    let count = 16_384;
    let run = |threads: usize| {
        par::with_threads(threads, || {
            let mut sampler = MadeBatchSampler::new();
            sampler.force_layout(PanelLayout::Cols);
            let mut b = SpinBatch::default();
            let mut lp = Vector::default();
            sampler.sample_stream(
                &wf,
                count,
                &mut StdRng::seed_from_u64(2021),
                &mut b,
                &mut lp,
            );
            (b, lp)
        })
    };
    let seq = run(1);
    for threads in [2usize, 4, 8] {
        let par_out = run(threads);
        assert_eq!(par_out.0.as_bytes(), seq.0.as_bytes(), "bits at {threads} threads");
        assert!(
            par_out
                .1
                .as_slice()
                .iter()
                .zip(seq.1.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "logψ differs at {threads} threads"
        );
    }
}
