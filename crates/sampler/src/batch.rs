//! The unified batched sampling layer: **one** incremental AUTO engine
//! shared by the training hot path (`Trainer` / `DistributedTrainer`
//! via [`IncrementalAutoSampler`](crate::IncrementalAutoSampler)), the
//! serving engine (`vqmc-serve` coalesces concurrent client requests
//! into one pass here), and the CLI's `evaluate`/`sample` commands.
//!
//! ```text
//! Trainer ─────────┐
//! DistributedTrainer ├─▶ BatchedSampling ─▶ BatchSampler ─┬▶ MadeBatchSampler (fused panel)
//! serve::Engine ───┤       (vqmc-nn)                      ├▶ NadeBatchSampler (native recursion)
//! CLI evaluate/sample ┘                                   └▶ McmcSampler      (RBM fallback)
//! ```
//!
//! Two call shapes, same arithmetic:
//!
//! * **coalesced requests** ([`BatchSampler::sample_requests`]) — every
//!   request's rows are drawn inside one combined pass, but from that
//!   request's *own* seeded RNG stream, so the result is bit-identical
//!   to sampling each request alone (property-tested);
//! * **single stream** ([`BatchSampler::sample_stream_into`]) — one
//!   caller-owned RNG drives the whole batch: the training path.  It is
//!   the one-request special case of the coalesced pass, so every
//!   kernel-level optimisation lands on training and serving at once.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vqmc_nn::{BatchedSampling, Made, MadeF32, Nade, Rbm, SamplingEngine, WaveFunction};
use vqmc_tensor::{ops, par, Matrix, Precision, SpinBatch, Vector};

use crate::{McmcSampler, SampleOutput, SampleStats};

/// A `Sample` request normalised for execution: callers (the serve
/// admission layer, tests) resolve seedless requests to a concrete seed
/// before reaching this layer, so execution is deterministic from here
/// on.
#[derive(Clone, Copy, Debug)]
pub struct SampleRequest {
    /// Number of configurations to draw.
    pub count: usize,
    /// RNG seed for this request's private stream.
    pub seed: u64,
}

/// Which activation layout the MADE panel sampler uses.
///
/// `Auto` (the default) picks by combined row count; the forced
/// variants exist for the cross-layout bit-identity tests and the
/// before/after kernel benchmarks — both layouts compute the same
/// arithmetic in the same per-row accumulation order, so forcing is
/// observationally invisible apart from speed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PanelLayout {
    /// Dispatch on the combined shape: cols at ≥ 8 rows, unless the
    /// transposed panel would overflow L2 (see `COLS_PANEL_CAP_BYTES`).
    #[default]
    Auto,
    /// Always the row-major path (the pre-unification training layout).
    Rows,
    /// Always the transposed fused-kernel panel path.
    Cols,
}

/// Below this combined row count the row path wins: the fused kernel
/// vectorises along the batch, so tiny batches would run scalar.
const COLS_THRESHOLD: usize = 8;

/// Above this transposed-panel footprint (`h · rows · 8` bytes **per
/// pool worker**) the cols path loses its edge: the fused kernel writes
/// the whole panel back every bit, and once a worker's panel outgrows
/// L2 that full writeback costs more than the row path's half-the-rows
/// `axpy` traffic.  Auto falls back to the row path there (forced
/// layouts are unaffected — both compute bit-identical results, so the
/// thread-count-dependent dispatch cannot change any output bit).
const COLS_PANEL_CAP_BYTES: usize = 512 * 1024;

/// Row-stripe granularity of the parallel cols path: stripes are
/// multiples of 8 rows so the fused kernel's widest (8-row) register
/// blocks stay saturated on every worker but the last.
const PAR_ROW_UNIT: usize = 8;

/// Below this combined row count the cols path stays on one thread:
/// a pool dispatch per bit cannot amortise over fewer than two stripes.
const PAR_ROWS_MIN: usize = 16;

/// The coalesced MADE sampler: the incremental AUTO pass, generalised
/// to draw each row-range of the combined batch from its own
/// request-seeded RNG — or the whole batch from one external stream
/// (the training path).
///
/// Invariant (property-tested): for every request `r`, rows
/// `[offset_r, offset_r + count_r)` of the output are bit-identical —
/// configurations *and* `logψ` — to a solo
/// `sample_stream(wf, count_r, StdRng::seed_from_u64(seed_r))`.
///
/// Two layouts, same arithmetic (dispatch on the combined row count):
///
/// * **row path** (small batches) — one `rows·h` row-major activation
///   buffer, per-row `relu_dot` + `axpy`, vectorised along `h`;
/// * **cols path** (`rows ≥ 8`) — a *transposed* `h·rows` panel driven
///   by the fused `sample_step_cols` kernel: the deferred `W₁` column
///   update and the logit reduction happen in **one** memory pass over
///   the panel, vectorised along the batch, so the per-bit weight rows
///   (`W₁ᵀ` and `W₂`) are streamed once per *batch* instead of once per
///   *row*.  That amortisation is where the batched throughput comes
///   from once the weights outgrow cache — and since the unification it
///   is the training hot path's layout too (training batches are far
///   above the threshold).
///
/// The kernel reproduces `relu_dot`'s per-row accumulation order
/// exactly (property-tested in `vqmc-tensor`), so both paths produce
/// bit-identical output and the solo-identity invariant holds
/// regardless of which one dispatched.
#[derive(Debug, Default)]
pub struct MadeBatchSampler {
    /// Layout override (tests / benchmarks only).
    layout: PanelLayout,
    /// Execution precision (DESIGN.md §4.1.1).  `F32` runs the cols
    /// path on the `f32` kernel twins — `f32` panel and weights, `f64`
    /// logit accumulation, so the RNG draw loop and `logπ` pipeline are
    /// *shared verbatim* with the f64 arm; the row path (tiny batches)
    /// stays f64, as do NADE/RBM (no f32 twins — documented fallback).
    precision: Precision,
    /// Per-row hidden pre-activations (`rows · h`, row path).
    z1: Vec<f64>,
    /// Transposed pre-activation panel (`h · rows`, cols path).
    z1t: Vec<f64>,
    /// Which rows drew the previous bit as 1 (`1.0`/`0.0`, cols path —
    /// the deferred update mask for `sample_step_cols`).
    prev_mask: Vec<f64>,
    /// Drawn bits in transposed `n · rows` layout (cols path): the
    /// per-bit draw loop stores sequentially here instead of striding
    /// across the row-major output (64 pages touched per bit);
    /// transposed into the output in one tiled pass at the end.
    bits_t: Vec<u8>,
    /// Sign-flipped logits for a chunk of bits (cols path): `log σ` is
    /// applied to `LS_CHUNK·rows` elements at a time so the
    /// transcendental kernel runs at vector-friendly slice lengths
    /// instead of once per bit.  Elementwise results and the ascending
    /// bit-order accumulation into `log_prob` are unchanged, so this
    /// stays bit-identical to the per-bit path.
    ls_buf: Vec<f64>,
    /// Accumulator stripes plus per-bit mask stash for
    /// `sample_step_cols` (`6 · rows`; each pool stripe uses its own
    /// contiguous `6 · bw` slice, honouring the kernel's scratch
    /// contract per stripe).
    cols_scratch: Vec<f64>,
    /// Pre-drawn uniform variates for one bit (`rows`): the RNG streams
    /// are advanced *sequentially* in the exact (stream, row) order of
    /// the draw loop before the parallel region consumes them, so the
    /// variate sequence — and hence every drawn bit — is independent of
    /// the thread count.
    u_buf: Vec<f64>,
    /// Per-row accumulated `log π`.
    log_prob: Vec<f64>,
    /// Per-row logits of the current output bit.
    logits: Vec<f64>,
    /// `σ(logits)` scratch.
    probs: Vec<f64>,
    /// Per-request RNG streams (rebuilt each coalesced call; capacity
    /// reused).
    rngs: Vec<StdRng>,
    /// Per-request row counts (pooled mirror of the request list).
    counts: Vec<usize>,
    /// Cached `W₁ᵀ`, invalidated via [`Made::params_version`].
    w1_t: Matrix,
    cached_version: Option<u64>,
    /// f32 transposed pre-activation panel (`h · rows`, f32 cols path).
    z1t32: Vec<f32>,
    /// f32 deferred-update mask (f32 cols path).
    prev_mask32: Vec<f32>,
    /// f32 kernel scratch (`10 · rows` per the f32 kernel's contract:
    /// 9 accumulator stripes + the mask stash stripe).
    cols_scratch32: Vec<f32>,
    /// Cached narrowed sampler weights (`W₁ᵀ`, `W₂`, biases as f32),
    /// invalidated via [`MadeF32::version`] against
    /// [`Made::params_version`].
    m32: Option<MadeF32>,
    /// Deeper-layer pre-activation panels (deep stacks only): one flat
    /// buffer holding a stripe-blocked `h_l · rows` transposed panel
    /// per hidden layer `l ≥ 2`, laid out layer-major (offsets are a
    /// pure function of the widths, computed on the stack per call).
    zdeep: Vec<f64>,
    /// f32 twin of [`MadeBatchSampler::zdeep`].
    zdeep32: Vec<f32>,
    /// Per-unit f64 logit staging for the f32 deep path (`rows`): the
    /// f32 kernel accumulates each unit's pre-activation in f64, which
    /// lands here before being narrowed into the f32 panel row.
    dlog: Vec<f64>,
}

impl MadeBatchSampler {
    /// A fresh sampler (scratch buffers grow on first use).
    pub fn new() -> Self {
        MadeBatchSampler::default()
    }

    /// Overrides the layout dispatch (cross-layout identity tests and
    /// before/after benchmarks).
    pub fn force_layout(&mut self, layout: PanelLayout) {
        self.layout = layout;
    }

    /// Selects the execution precision for subsequent passes.  `F32`
    /// affects the cols path only (see the `precision` field docs);
    /// results within the f32 arm remain bit-identical across SIMD
    /// arms, thread counts and coalescing, but are only *bound*-close
    /// to the f64 arm.
    pub fn set_precision(&mut self, precision: Precision) {
        self.precision = precision;
    }

    /// Draws every request inside one combined incremental pass, each
    /// request's rows from its own seeded RNG stream.
    pub fn sample_coalesced(
        &mut self,
        wf: &Made,
        reqs: &[SampleRequest],
        out_batch: &mut SpinBatch,
        out_log_psi: &mut Vector,
    ) {
        self.rngs.clear();
        let mut counts = std::mem::take(&mut self.counts);
        counts.clear();
        for req in reqs {
            self.rngs.push(StdRng::seed_from_u64(req.seed));
            counts.push(req.count);
        }
        self.sample_core(wf, &counts, None, out_batch, out_log_psi);
        self.counts = counts;
    }

    /// Draws one batch from a caller-owned RNG stream — the training
    /// path (`IncrementalAutoSampler` is a thin wrapper over this).
    pub fn sample_stream(
        &mut self,
        wf: &Made,
        count: usize,
        rng: &mut StdRng,
        out_batch: &mut SpinBatch,
        out_log_psi: &mut Vector,
    ) {
        self.sample_core(wf, &[count], Some(rng), out_batch, out_log_psi);
    }

    /// The shared pass.  `counts[q]` rows are drawn for stream `q`; the
    /// RNG of a stream is `external` when given (single caller-owned
    /// stream), else `self.rngs[q]` (seeded per request).  The draw
    /// order within a stream is always bit-major then
    /// row-within-stream, so a stream sees the exact variate sequence
    /// it would see alone.
    fn sample_core(
        &mut self,
        wf: &Made,
        counts: &[usize],
        mut external: Option<&mut StdRng>,
        out_batch: &mut SpinBatch,
        out_log_psi: &mut Vector,
    ) {
        if wf.depth() > 1 {
            // Deep stacks take the dedicated panel pipeline below; the
            // depth-1 arms stay verbatim (their bit-for-bit output is
            // pinned by the golden trace).
            self.sample_deep(wf, counts, external, out_batch, out_log_psi);
            return;
        }
        let n = wf.num_spins();
        let h = wf.hidden_size();
        let rows: usize = counts.iter().sum();
        out_batch.resize(rows, n);
        out_batch.fill(0);

        let b1 = wf.b1();
        let w2 = wf.w2();
        let b2 = wf.b2();
        self.log_prob.clear();
        self.log_prob.resize(rows, 0.0);
        self.logits.resize(rows, 0.0);
        self.probs.resize(rows, 0.0);
        let kern = vqmc_tensor::simd::kernels();

        // The f32 arm rides the cols path *unconditionally* under
        // Auto.  The f64 Auto heuristics must not apply: the L2 panel
        // cap depends on the thread count and the small-batch
        // threshold on the *combined* row count, and in the f32 arm a
        // layout flip changes precision (the row path is f64), not
        // just speed — which would break bit-identity across thread
        // counts and the coalesced≡solo invariant.  Forcing `Rows`
        // still means the f64 row path (documented fallback).
        let use_cols_f32 = self.precision == Precision::F32
            && self.layout != PanelLayout::Rows
            && rows > 0;
        let use_cols = !use_cols_f32
            && match self.layout {
                PanelLayout::Auto => {
                    rows >= COLS_THRESHOLD
                        && h * rows * 8 <= COLS_PANEL_CAP_BYTES * par::active_threads()
                }
                PanelLayout::Rows => false,
                PanelLayout::Cols => true,
            };
        if use_cols_f32 {
            if self.m32.as_ref().map(|m| m.version()) != Some(wf.params_version()) {
                self.m32 = Some(MadeF32::for_sampling(wf));
            }
        } else if self.cached_version != Some(wf.params_version()) {
            wf.w1().transpose_into(&mut self.w1_t);
            self.cached_version = Some(wf.params_version());
        }
        if use_cols_f32 {
            // f32 cols path: same structure as the f64 cols path below
            // — transposed panel, deferred prev-bit update, fused
            // per-bit kernel — with the panel, weights and mask in f32
            // (half the streamed bytes, twice the lanes).  The kernel
            // still returns **f64 logits** (f64-widened combine), and
            // everything downstream of the logits — `σ`, the RNG draw
            // loop, the `log σ` chunks, `logπ` accumulation — is the
            // f64 pipeline *verbatim*, so draw order and stream
            // semantics are shared with the f64 arm and output is
            // bit-identical at any thread count within the f32 arm.
            let MadeBatchSampler {
                z1t32,
                prev_mask32,
                bits_t,
                cols_scratch32,
                ls_buf,
                u_buf,
                log_prob,
                logits,
                probs,
                rngs,
                m32,
                ..
            } = self;
            let m32 = m32.as_ref().expect("f32 weights cached above");
            let kern32 = vqmc_tensor::simd::kernels_f32();
            bits_t.resize(n * rows, 0);
            bits_t.truncate(n * rows);
            let units = rows.div_ceil(PAR_ROW_UNIT);
            let parts = if rows >= PAR_ROWS_MIN {
                par::active_threads().min(units.max(1))
            } else {
                1
            };
            let stripe = |w: usize| {
                let u = par::stripe(units, parts, w);
                (
                    (u.start * PAR_ROW_UNIT).min(rows),
                    (u.end * PAR_ROW_UNIT).min(rows),
                )
            };
            z1t32.clear();
            z1t32.reserve(h * rows);
            for w in 0..parts {
                let (start, end) = stripe(w);
                for &bj in m32.b1() {
                    z1t32.extend(std::iter::repeat_n(bj, end - start));
                }
            }
            prev_mask32.clear();
            prev_mask32.resize(rows, 0.0);
            cols_scratch32.resize(10 * rows, 0.0);
            const LS_CHUNK: usize = 512;
            ls_buf.clear();
            ls_buf.resize(LS_CHUNK.min(n.max(1)) * rows, 0.0);
            u_buf.clear();
            u_buf.resize(rows, 0.0);
            for i in 0..n {
                // Pre-draw sequentially — identical to the f64 path.
                let mut s = 0;
                for (q, &count) in counts.iter().enumerate() {
                    let rng: &mut StdRng = match external.as_deref_mut() {
                        Some(r) => r,
                        None => &mut rngs[q],
                    };
                    for _ in 0..count {
                        u_buf[s] = rng.gen::<f64>();
                        s += 1;
                    }
                }
                let w_prev = (i > 0).then(|| m32.w1t_row(i - 1));
                let w2_row = m32.w2_row(i);
                let b2_i = m32.b2()[i] as f64;
                let c = i % LS_CHUNK;
                let pz = par::SendPtr(z1t32.as_mut_ptr());
                let pscratch = par::SendPtr(cols_scratch32.as_mut_ptr());
                let plogits = par::SendPtr(logits.as_mut_ptr());
                let pprobs = par::SendPtr(probs.as_mut_ptr());
                let pmask = par::SendPtr(prev_mask32.as_mut_ptr());
                let pbits = par::SendPtr(bits_t[i * rows..(i + 1) * rows].as_mut_ptr());
                let psigned = par::SendPtr(ls_buf[c * rows..(c + 1) * rows].as_mut_ptr());
                let u_ref: &[f64] = u_buf;
                par::run(parts, &|w| {
                    let (start, end) = stripe(w);
                    if start >= end {
                        return;
                    }
                    let bw = end - start;
                    // SAFETY: same disjoint-stripe argument as the f64
                    // path; the f32 scratch is 10 elements per row.
                    unsafe {
                        use std::slice::from_raw_parts_mut;
                        let zt = from_raw_parts_mut(pz.get().add(h * start), h * bw);
                        let scratch =
                            from_raw_parts_mut(pscratch.get().add(10 * start), 10 * bw);
                        let logits_s = from_raw_parts_mut(plogits.get().add(start), bw);
                        let probs_s = from_raw_parts_mut(pprobs.get().add(start), bw);
                        let mask_s = from_raw_parts_mut(pmask.get().add(start), bw);
                        let bits_s = from_raw_parts_mut(pbits.get().add(start), bw);
                        let signed_s = from_raw_parts_mut(psigned.get().add(start), bw);
                        (kern32.sample_step_cols)(
                            zt, bw, w_prev, &*mask_s, w2_row, b2_i, scratch, logits_s,
                        );
                        probs_s.copy_from_slice(logits_s);
                        (kern.sigmoid_slice)(probs_s);
                        for s in 0..bw {
                            let u = u_ref[start + s];
                            let p = probs_s[s];
                            debug_assert!(
                                (0.0..=1.0).contains(&p),
                                "conditional out of range"
                            );
                            let bit = (u < p) as u8;
                            bits_s[s] = bit;
                            mask_s[s] = bit as f32;
                            signed_s[s] = if bit == 1 { logits_s[s] } else { -logits_s[s] };
                        }
                    }
                });
                if c + 1 == LS_CHUNK || i + 1 == n {
                    let filled = (c + 1) * rows;
                    ops::log_sigmoid_slice(&mut ls_buf[..filled]);
                    for chunk in ls_buf[..filled].chunks_exact(rows) {
                        for (lp, &v) in log_prob.iter_mut().zip(chunk) {
                            *lp += v;
                        }
                    }
                }
            }
            // Tiled transpose into the row-major output, as in f64.
            const TILE: usize = 64;
            let pout = par::SendPtr(out_batch.as_bytes_mut().as_mut_ptr());
            let bits_ref: &[u8] = bits_t;
            par::run(parts, &|w| {
                let (start, end) = stripe(w);
                let mut i0 = 0;
                while i0 < n {
                    let iend = (i0 + TILE).min(n);
                    for s in start..end {
                        // SAFETY: rows [start, end) belong to this
                        // worker alone.
                        let row = unsafe {
                            std::slice::from_raw_parts_mut(pout.get().add(s * n), n)
                        };
                        for i in i0..iend {
                            row[i] = bits_ref[i * rows + s];
                        }
                    }
                    i0 = iend;
                }
            });
        } else if use_cols {
            // Cols path: transposed activation panels; bit i−1's column
            // update is deferred into bit i's fused kernel call via
            // prev_mask.
            //
            // Parallelism: the batch is split into at most one
            // contiguous, 8-row-aligned stripe per pool worker (a pure
            // function of (rows, parts) — no stealing).  Each stripe
            // owns its own contiguous transposed panel (`h·bw` at
            // element offset `h·start`) plus its slices of every
            // per-row buffer, so the fused kernel simply sees a
            // narrower panel.  Per-row results are independent of the
            // panel width (the kernel reproduces the row path's per-row
            // accumulation order at any width — property-tested), and
            // the RNG variates are pre-drawn sequentially, so output is
            // **bit-identical at every thread count**.
            let MadeBatchSampler {
                z1t,
                prev_mask,
                bits_t,
                cols_scratch,
                ls_buf,
                u_buf,
                log_prob,
                logits,
                probs,
                rngs,
                w1_t,
                ..
            } = self;
            // No clear first: every byte is overwritten in the bit loop,
            // so only grow (and zero) when the geometry changes.
            bits_t.resize(n * rows, 0);
            bits_t.truncate(n * rows);
            let units = rows.div_ceil(PAR_ROW_UNIT);
            let parts = if rows >= PAR_ROWS_MIN {
                par::active_threads().min(units.max(1))
            } else {
                1
            };
            let stripe = |w: usize| {
                let u = par::stripe(units, parts, w);
                (
                    (u.start * PAR_ROW_UNIT).min(rows),
                    (u.end * PAR_ROW_UNIT).min(rows),
                )
            };
            // Stripe-blocked panel init: stripe w's panel rows start at
            // b1 (layout `[j·bw + local_s]`), panels back to back.
            z1t.clear();
            z1t.reserve(h * rows);
            for w in 0..parts {
                let (start, end) = stripe(w);
                for &bj in b1.as_slice() {
                    z1t.extend(std::iter::repeat_n(bj, end - start));
                }
            }
            prev_mask.clear();
            prev_mask.resize(rows, 0.0);
            cols_scratch.resize(6 * rows, 0.0);
            const LS_CHUNK: usize = 512;
            ls_buf.clear();
            ls_buf.resize(LS_CHUNK.min(n.max(1)) * rows, 0.0);
            u_buf.clear();
            u_buf.resize(rows, 0.0);
            for i in 0..n {
                // Pre-draw this bit's variates sequentially, in the
                // exact (stream, row-within-stream) order the fused
                // draw used before parallelisation: every RNG stream
                // advances identically at any thread count.
                let mut s = 0;
                for (q, &count) in counts.iter().enumerate() {
                    let rng: &mut StdRng = match external.as_deref_mut() {
                        Some(r) => r,
                        None => &mut rngs[q],
                    };
                    for _ in 0..count {
                        u_buf[s] = rng.gen::<f64>();
                        s += 1;
                    }
                }
                let w_prev = if i > 0 { Some(w1_t.row(i - 1)) } else { None };
                let w2_row = w2.row(i);
                let b2_i = b2[i];
                let c = i % LS_CHUNK;
                let pz = par::SendPtr(z1t.as_mut_ptr());
                let pscratch = par::SendPtr(cols_scratch.as_mut_ptr());
                let plogits = par::SendPtr(logits.as_mut_ptr());
                let pprobs = par::SendPtr(probs.as_mut_ptr());
                let pmask = par::SendPtr(prev_mask.as_mut_ptr());
                let pbits = par::SendPtr(bits_t[i * rows..(i + 1) * rows].as_mut_ptr());
                let psigned = par::SendPtr(ls_buf[c * rows..(c + 1) * rows].as_mut_ptr());
                let u_ref: &[f64] = u_buf;
                par::run(parts, &|w| {
                    let (start, end) = stripe(w);
                    if start >= end {
                        return;
                    }
                    let bw = end - start;
                    // SAFETY: stripes are disjoint row ranges; every
                    // pointer below is offset into its stripe's slice
                    // of a buffer sized above, and the region joins
                    // before any of the borrows end.
                    unsafe {
                        use std::slice::from_raw_parts_mut;
                        let zt = from_raw_parts_mut(pz.get().add(h * start), h * bw);
                        let scratch = from_raw_parts_mut(pscratch.get().add(6 * start), 6 * bw);
                        let logits_s = from_raw_parts_mut(plogits.get().add(start), bw);
                        let probs_s = from_raw_parts_mut(pprobs.get().add(start), bw);
                        let mask_s = from_raw_parts_mut(pmask.get().add(start), bw);
                        let bits_s = from_raw_parts_mut(pbits.get().add(start), bw);
                        let signed_s = from_raw_parts_mut(psigned.get().add(start), bw);
                        (kern.sample_step_cols)(
                            zt, bw, w_prev, &*mask_s, w2_row, b2_i, scratch, logits_s,
                        );
                        probs_s.copy_from_slice(logits_s);
                        (kern.sigmoid_slice)(probs_s);
                        // Same draw order as the row path; the update is
                        // recorded in prev_mask instead of applied
                        // eagerly.  Branchless: the drawn bit is data,
                        // not control flow, so the 50/50 outcome can't
                        // mispredict.  `-x` and the select are exact, so
                        // this stays bit-identical to the row path's
                        // `if`.
                        for s in 0..bw {
                            let u = u_ref[start + s];
                            let p = probs_s[s];
                            debug_assert!(
                                (0.0..=1.0).contains(&p),
                                "conditional out of range"
                            );
                            let bit = (u < p) as u8;
                            bits_s[s] = bit;
                            mask_s[s] = bit as f64;
                            signed_s[s] = if bit == 1 { logits_s[s] } else { -logits_s[s] };
                        }
                    }
                });
                if c + 1 == LS_CHUNK || i + 1 == n {
                    let filled = (c + 1) * rows;
                    ops::log_sigmoid_slice(&mut ls_buf[..filled]);
                    for chunk in ls_buf[..filled].chunks_exact(rows) {
                        for (lp, &v) in log_prob.iter_mut().zip(chunk) {
                            *lp += v;
                        }
                    }
                }
            }
            // Tiled transpose of the drawn bits into the row-major
            // output (64-bit tiles keep both sides L1-resident),
            // striped over the same row partition — each worker writes
            // only its own output rows.
            const TILE: usize = 64;
            let pout = par::SendPtr(out_batch.as_bytes_mut().as_mut_ptr());
            let bits_ref: &[u8] = bits_t;
            par::run(parts, &|w| {
                let (start, end) = stripe(w);
                let mut i0 = 0;
                while i0 < n {
                    let iend = (i0 + TILE).min(n);
                    for s in start..end {
                        // SAFETY: rows [start, end) belong to this
                        // worker alone.
                        let row = unsafe {
                            std::slice::from_raw_parts_mut(pout.get().add(s * n), n)
                        };
                        for i in i0..iend {
                            row[i] = bits_ref[i * rows + s];
                        }
                    }
                    i0 = iend;
                }
            });
        } else {
            // Row path: z1[s] starts at b1 and absorbs W₁'s column i
            // when bit i is drawn 1.
            self.z1.clear();
            self.z1.reserve(rows * h);
            for _ in 0..rows {
                self.z1.extend_from_slice(b1);
            }
            for i in 0..n {
                let w2_row = w2.row(i);
                let w1_col = self.w1_t.row(i);
                for s in 0..rows {
                    let z_row = &self.z1[s * h..(s + 1) * h];
                    self.logits[s] = b2[i] + (kern.relu_dot)(w2_row, z_row);
                }
                self.probs.copy_from_slice(&self.logits);
                ops::sigmoid_slice(&mut self.probs);
                // Draw order per stream matches the coalesced path
                // exactly: bit-major, then row-within-stream.
                let mut s = 0;
                for (q, &count) in counts.iter().enumerate() {
                    let rng: &mut StdRng = match external.as_deref_mut() {
                        Some(r) => r,
                        None => &mut self.rngs[q],
                    };
                    for _ in 0..count {
                        let p = self.probs[s];
                        debug_assert!((0.0..=1.0).contains(&p), "conditional out of range");
                        if rng.gen::<f64>() < p {
                            out_batch.set(s, i, 1);
                            vqmc_tensor::vector::axpy(
                                &mut self.z1[s * h..(s + 1) * h],
                                1.0,
                                w1_col,
                            );
                        } else {
                            self.logits[s] = -self.logits[s];
                        }
                        s += 1;
                    }
                }
                ops::log_sigmoid_slice(&mut self.logits);
                vqmc_tensor::vector::axpy(&mut self.log_prob, 1.0, &self.logits);
            }
        }
        out_log_psi.resize(rows);
        for (o, &lp) in out_log_psi.iter_mut().zip(&self.log_prob) {
            *o = 0.5 * lp;
        }
    }

    /// Deep-stack (depth ≥ 2) incremental pass.  Layer 1 is the same
    /// deferred-update transposed panel as the depth-1 cols path; every
    /// deeper layer is recomputed per bit as one fused
    /// [`sample_step_cols`](vqmc_tensor::simd) reduction per unit over
    /// the previous layer's panel (`w_prev = None` makes the kernel a
    /// pure `bias + Σⱼ w[j]·relu(panel[j])` per-row reduction; bit
    /// `i−1`'s deferred `W₁`-column update rides the first layer-2
    /// unit's call).  Per-row results are independent of the stripe
    /// width and the RNG variates are pre-drawn sequentially, so the
    /// depth-1 guarantees carry over verbatim: bit-identical output at
    /// every thread count, and coalesced ≡ solo per request.
    ///
    /// There is no row/cols layout choice at depth ≥ 2 — the panel
    /// pipeline is the only implementation, so `force_layout` is inert
    /// here except that `Rows` under f32 still selects the f64
    /// arithmetic (mirroring the depth-1 precision fallback).
    fn sample_deep(
        &mut self,
        wf: &Made,
        counts: &[usize],
        external: Option<&mut StdRng>,
        out_batch: &mut SpinBatch,
        out_log_psi: &mut Vector,
    ) {
        if self.precision == Precision::F32 && self.layout != PanelLayout::Rows {
            self.sample_deep_f32(wf, counts, external, out_batch, out_log_psi);
        } else {
            self.sample_deep_f64(wf, counts, external, out_batch, out_log_psi);
        }
    }

    fn sample_deep_f64(
        &mut self,
        wf: &Made,
        counts: &[usize],
        mut external: Option<&mut StdRng>,
        out_batch: &mut SpinBatch,
        out_log_psi: &mut Vector,
    ) {
        let n = wf.num_spins();
        let rows: usize = counts.iter().sum();
        out_batch.resize(rows, n);
        out_batch.fill(0);
        self.log_prob.clear();
        self.log_prob.resize(rows, 0.0);
        self.logits.resize(rows, 0.0);
        self.probs.resize(rows, 0.0);
        let kern = vqmc_tensor::simd::kernels();
        if self.cached_version != Some(wf.params_version()) {
            wf.w1().transpose_into(&mut self.w1_t);
            self.cached_version = Some(wf.params_version());
        }
        let layers = wf.layers();
        let depth = wf.depth();
        let hidden = wf.hidden_sizes();
        let h1 = hidden[0];
        // Panel offsets, on the stack (no per-call allocation): hidden
        // layer `l ≥ 2` (index `l−1 ≥ 1`) owns `hidden[l−1]·rows`
        // elements of `zdeep`, stripe-blocked like `z1t`.
        let mut doff = [0usize; vqmc_nn::MAX_LAYERS];
        let mut total = 0usize;
        for l in 1..depth {
            doff[l] = total;
            total += hidden[l] * rows;
        }
        let MadeBatchSampler {
            z1t,
            zdeep,
            prev_mask,
            bits_t,
            cols_scratch,
            ls_buf,
            u_buf,
            log_prob,
            logits,
            probs,
            rngs,
            w1_t,
            ..
        } = self;
        bits_t.resize(n * rows, 0);
        bits_t.truncate(n * rows);
        let units = rows.div_ceil(PAR_ROW_UNIT);
        let parts = if rows >= PAR_ROWS_MIN {
            par::active_threads().min(units.max(1))
        } else {
            1
        };
        let stripe = |w: usize| {
            let u = par::stripe(units, parts, w);
            (
                (u.start * PAR_ROW_UNIT).min(rows),
                (u.end * PAR_ROW_UNIT).min(rows),
            )
        };
        z1t.clear();
        z1t.reserve(h1 * rows);
        for w in 0..parts {
            let (start, end) = stripe(w);
            for &bj in layers[0].b().as_slice() {
                z1t.extend(std::iter::repeat_n(bj, end - start));
            }
        }
        // Deep panel contents are fully overwritten every bit, so the
        // resize fill value is never read.
        zdeep.resize(total, 0.0);
        prev_mask.clear();
        prev_mask.resize(rows, 0.0);
        cols_scratch.resize(6 * rows, 0.0);
        const LS_CHUNK: usize = 512;
        ls_buf.clear();
        ls_buf.resize(LS_CHUNK.min(n.max(1)) * rows, 0.0);
        u_buf.clear();
        u_buf.resize(rows, 0.0);
        for i in 0..n {
            // Pre-draw sequentially — identical to the depth-1 paths.
            let mut s = 0;
            for (q, &count) in counts.iter().enumerate() {
                let rng: &mut StdRng = match external.as_deref_mut() {
                    Some(r) => r,
                    None => &mut rngs[q],
                };
                for _ in 0..count {
                    u_buf[s] = rng.gen::<f64>();
                    s += 1;
                }
            }
            let c = i % LS_CHUNK;
            let pz = par::SendPtr(z1t.as_mut_ptr());
            let pzd = par::SendPtr(zdeep.as_mut_ptr());
            let pscratch = par::SendPtr(cols_scratch.as_mut_ptr());
            let plogits = par::SendPtr(logits.as_mut_ptr());
            let pprobs = par::SendPtr(probs.as_mut_ptr());
            let pmask = par::SendPtr(prev_mask.as_mut_ptr());
            let pbits = par::SendPtr(bits_t[i * rows..(i + 1) * rows].as_mut_ptr());
            let psigned = par::SendPtr(ls_buf[c * rows..(c + 1) * rows].as_mut_ptr());
            let u_ref: &[f64] = u_buf;
            let w_prev = if i > 0 { Some(w1_t.row(i - 1)) } else { None };
            par::run(parts, &|w| {
                let (start, end) = stripe(w);
                if start >= end {
                    return;
                }
                let bw = end - start;
                // SAFETY: same disjoint-stripe argument as the depth-1
                // cols path; deep panel regions are additionally
                // disjoint per (layer, stripe) by the offset
                // arithmetic above.
                unsafe {
                    use std::slice::from_raw_parts_mut;
                    let scratch = from_raw_parts_mut(pscratch.get().add(6 * start), 6 * bw);
                    let logits_s = from_raw_parts_mut(plogits.get().add(start), bw);
                    let probs_s = from_raw_parts_mut(pprobs.get().add(start), bw);
                    let mask_s = from_raw_parts_mut(pmask.get().add(start), bw);
                    let bits_s = from_raw_parts_mut(pbits.get().add(start), bw);
                    let signed_s = from_raw_parts_mut(psigned.get().add(start), bw);
                    let z1s = from_raw_parts_mut(pz.get().add(h1 * start), h1 * bw);
                    // Hidden layer 2: one fused reduction per unit over
                    // the layer-1 panel; call k == 0 applies bit i−1's
                    // deferred W₁-column update in the same pass.
                    for k in 0..hidden[1] {
                        let out_row = from_raw_parts_mut(
                            pzd.get().add(doff[1] + hidden[1] * start + k * bw),
                            bw,
                        );
                        let wp = if k == 0 { w_prev } else { None };
                        (kern.sample_step_cols)(
                            z1s,
                            bw,
                            wp,
                            &*mask_s,
                            layers[1].w().row(k),
                            layers[1].b()[k],
                            scratch,
                            out_row,
                        );
                    }
                    // Hidden layers 3…: pure per-unit reductions over
                    // the previous layer's panel.
                    for l in 2..depth {
                        let src = from_raw_parts_mut(
                            pzd.get().add(doff[l - 1] + hidden[l - 1] * start),
                            hidden[l - 1] * bw,
                        );
                        for k in 0..hidden[l] {
                            let out_row = from_raw_parts_mut(
                                pzd.get().add(doff[l] + hidden[l] * start + k * bw),
                                bw,
                            );
                            (kern.sample_step_cols)(
                                src,
                                bw,
                                None,
                                &*mask_s,
                                layers[l].w().row(k),
                                layers[l].b()[k],
                                scratch,
                                out_row,
                            );
                        }
                    }
                    // Output bit i's logit over the last hidden panel.
                    let src = from_raw_parts_mut(
                        pzd.get().add(doff[depth - 1] + hidden[depth - 1] * start),
                        hidden[depth - 1] * bw,
                    );
                    (kern.sample_step_cols)(
                        src,
                        bw,
                        None,
                        &*mask_s,
                        layers[depth].w().row(i),
                        layers[depth].b()[i],
                        scratch,
                        logits_s,
                    );
                    probs_s.copy_from_slice(logits_s);
                    (kern.sigmoid_slice)(probs_s);
                    for s in 0..bw {
                        let u = u_ref[start + s];
                        let p = probs_s[s];
                        debug_assert!((0.0..=1.0).contains(&p), "conditional out of range");
                        let bit = (u < p) as u8;
                        bits_s[s] = bit;
                        mask_s[s] = bit as f64;
                        signed_s[s] = if bit == 1 { logits_s[s] } else { -logits_s[s] };
                    }
                }
            });
            if c + 1 == LS_CHUNK || i + 1 == n {
                let filled = (c + 1) * rows;
                ops::log_sigmoid_slice(&mut ls_buf[..filled]);
                for chunk in ls_buf[..filled].chunks_exact(rows) {
                    for (lp, &v) in log_prob.iter_mut().zip(chunk) {
                        *lp += v;
                    }
                }
            }
        }
        const TILE: usize = 64;
        let pout = par::SendPtr(out_batch.as_bytes_mut().as_mut_ptr());
        let bits_ref: &[u8] = bits_t;
        par::run(parts, &|w| {
            let (start, end) = stripe(w);
            let mut i0 = 0;
            while i0 < n {
                let iend = (i0 + TILE).min(n);
                for s in start..end {
                    // SAFETY: rows [start, end) belong to this worker
                    // alone.
                    let row =
                        unsafe { std::slice::from_raw_parts_mut(pout.get().add(s * n), n) };
                    for i in i0..iend {
                        row[i] = bits_ref[i * rows + s];
                    }
                }
                i0 = iend;
            }
        });
        out_log_psi.resize(rows);
        for (o, &lp) in out_log_psi.iter_mut().zip(log_prob.iter()) {
            *o = 0.5 * lp;
        }
    }

    fn sample_deep_f32(
        &mut self,
        wf: &Made,
        counts: &[usize],
        mut external: Option<&mut StdRng>,
        out_batch: &mut SpinBatch,
        out_log_psi: &mut Vector,
    ) {
        let n = wf.num_spins();
        let rows: usize = counts.iter().sum();
        out_batch.resize(rows, n);
        out_batch.fill(0);
        self.log_prob.clear();
        self.log_prob.resize(rows, 0.0);
        self.logits.resize(rows, 0.0);
        self.probs.resize(rows, 0.0);
        let kern = vqmc_tensor::simd::kernels();
        let kern32 = vqmc_tensor::simd::kernels_f32();
        if self.m32.as_ref().map(|m| m.version()) != Some(wf.params_version()) {
            self.m32 = Some(MadeF32::for_sampling(wf));
        }
        let depth = wf.depth();
        let hidden = wf.hidden_sizes();
        let h1 = hidden[0];
        let mut doff = [0usize; vqmc_nn::MAX_LAYERS];
        let mut total = 0usize;
        for l in 1..depth {
            doff[l] = total;
            total += hidden[l] * rows;
        }
        let MadeBatchSampler {
            z1t32,
            zdeep32,
            prev_mask32,
            bits_t,
            cols_scratch32,
            dlog,
            ls_buf,
            u_buf,
            log_prob,
            logits,
            probs,
            rngs,
            m32,
            ..
        } = self;
        let m32 = m32.as_ref().expect("f32 weights cached above");
        bits_t.resize(n * rows, 0);
        bits_t.truncate(n * rows);
        let units = rows.div_ceil(PAR_ROW_UNIT);
        let parts = if rows >= PAR_ROWS_MIN {
            par::active_threads().min(units.max(1))
        } else {
            1
        };
        let stripe = |w: usize| {
            let u = par::stripe(units, parts, w);
            (
                (u.start * PAR_ROW_UNIT).min(rows),
                (u.end * PAR_ROW_UNIT).min(rows),
            )
        };
        z1t32.clear();
        z1t32.reserve(h1 * rows);
        for w in 0..parts {
            let (start, end) = stripe(w);
            for &bj in m32.b1() {
                z1t32.extend(std::iter::repeat_n(bj, end - start));
            }
        }
        zdeep32.resize(total, 0.0);
        prev_mask32.clear();
        prev_mask32.resize(rows, 0.0);
        cols_scratch32.resize(10 * rows, 0.0);
        dlog.resize(rows, 0.0);
        const LS_CHUNK: usize = 512;
        ls_buf.clear();
        ls_buf.resize(LS_CHUNK.min(n.max(1)) * rows, 0.0);
        u_buf.clear();
        u_buf.resize(rows, 0.0);
        for i in 0..n {
            let mut s = 0;
            for (q, &count) in counts.iter().enumerate() {
                let rng: &mut StdRng = match external.as_deref_mut() {
                    Some(r) => r,
                    None => &mut rngs[q],
                };
                for _ in 0..count {
                    u_buf[s] = rng.gen::<f64>();
                    s += 1;
                }
            }
            let c = i % LS_CHUNK;
            let pz = par::SendPtr(z1t32.as_mut_ptr());
            let pzd = par::SendPtr(zdeep32.as_mut_ptr());
            let pscratch = par::SendPtr(cols_scratch32.as_mut_ptr());
            let pdlog = par::SendPtr(dlog.as_mut_ptr());
            let plogits = par::SendPtr(logits.as_mut_ptr());
            let pprobs = par::SendPtr(probs.as_mut_ptr());
            let pmask = par::SendPtr(prev_mask32.as_mut_ptr());
            let pbits = par::SendPtr(bits_t[i * rows..(i + 1) * rows].as_mut_ptr());
            let psigned = par::SendPtr(ls_buf[c * rows..(c + 1) * rows].as_mut_ptr());
            let u_ref: &[f64] = u_buf;
            let w_prev = if i > 0 { Some(m32.w1t_row(i - 1)) } else { None };
            par::run(parts, &|w| {
                let (start, end) = stripe(w);
                if start >= end {
                    return;
                }
                let bw = end - start;
                // SAFETY: same disjoint-stripe argument as the f64
                // deep path; the f32 scratch is 10 elements per row and
                // `dlog` one per row.
                unsafe {
                    use std::slice::from_raw_parts_mut;
                    let scratch = from_raw_parts_mut(pscratch.get().add(10 * start), 10 * bw);
                    let dlog_s = from_raw_parts_mut(pdlog.get().add(start), bw);
                    let logits_s = from_raw_parts_mut(plogits.get().add(start), bw);
                    let probs_s = from_raw_parts_mut(pprobs.get().add(start), bw);
                    let mask_s = from_raw_parts_mut(pmask.get().add(start), bw);
                    let bits_s = from_raw_parts_mut(pbits.get().add(start), bw);
                    let signed_s = from_raw_parts_mut(psigned.get().add(start), bw);
                    let z1s = from_raw_parts_mut(pz.get().add(h1 * start), h1 * bw);
                    // The f32 kernel accumulates each unit's value in
                    // f64 (`dlog`); the panel stores the narrowed f32.
                    for k in 0..hidden[1] {
                        let out_row = from_raw_parts_mut(
                            pzd.get().add(doff[1] + hidden[1] * start + k * bw),
                            bw,
                        );
                        let wp = if k == 0 { w_prev } else { None };
                        (kern32.sample_step_cols)(
                            z1s,
                            bw,
                            wp,
                            &*mask_s,
                            m32.layer_w_row(1, k),
                            m32.layer_b(1)[k] as f64,
                            scratch,
                            dlog_s,
                        );
                        for (dst, &v) in out_row.iter_mut().zip(&*dlog_s) {
                            *dst = v as f32;
                        }
                    }
                    for l in 2..depth {
                        let src = from_raw_parts_mut(
                            pzd.get().add(doff[l - 1] + hidden[l - 1] * start),
                            hidden[l - 1] * bw,
                        );
                        for k in 0..hidden[l] {
                            let out_row = from_raw_parts_mut(
                                pzd.get().add(doff[l] + hidden[l] * start + k * bw),
                                bw,
                            );
                            (kern32.sample_step_cols)(
                                src,
                                bw,
                                None,
                                &*mask_s,
                                m32.layer_w_row(l, k),
                                m32.layer_b(l)[k] as f64,
                                scratch,
                                dlog_s,
                            );
                            for (dst, &v) in out_row.iter_mut().zip(&*dlog_s) {
                                *dst = v as f32;
                            }
                        }
                    }
                    let src = from_raw_parts_mut(
                        pzd.get().add(doff[depth - 1] + hidden[depth - 1] * start),
                        hidden[depth - 1] * bw,
                    );
                    (kern32.sample_step_cols)(
                        src,
                        bw,
                        None,
                        &*mask_s,
                        m32.layer_w_row(depth, i),
                        m32.b2()[i] as f64,
                        scratch,
                        logits_s,
                    );
                    probs_s.copy_from_slice(logits_s);
                    (kern.sigmoid_slice)(probs_s);
                    for s in 0..bw {
                        let u = u_ref[start + s];
                        let p = probs_s[s];
                        debug_assert!((0.0..=1.0).contains(&p), "conditional out of range");
                        let bit = (u < p) as u8;
                        bits_s[s] = bit;
                        mask_s[s] = bit as f32;
                        signed_s[s] = if bit == 1 { logits_s[s] } else { -logits_s[s] };
                    }
                }
            });
            if c + 1 == LS_CHUNK || i + 1 == n {
                let filled = (c + 1) * rows;
                ops::log_sigmoid_slice(&mut ls_buf[..filled]);
                for chunk in ls_buf[..filled].chunks_exact(rows) {
                    for (lp, &v) in log_prob.iter_mut().zip(chunk) {
                        *lp += v;
                    }
                }
            }
        }
        const TILE: usize = 64;
        let pout = par::SendPtr(out_batch.as_bytes_mut().as_mut_ptr());
        let bits_ref: &[u8] = bits_t;
        par::run(parts, &|w| {
            let (start, end) = stripe(w);
            let mut i0 = 0;
            while i0 < n {
                let iend = (i0 + TILE).min(n);
                for s in start..end {
                    // SAFETY: rows [start, end) belong to this worker
                    // alone.
                    let row =
                        unsafe { std::slice::from_raw_parts_mut(pout.get().add(s * n), n) };
                    for i in i0..iend {
                        row[i] = bits_ref[i * rows + s];
                    }
                }
                i0 = iend;
            }
        });
        out_log_psi.resize(rows);
        for (o, &lp) in out_log_psi.iter_mut().zip(log_prob.iter()) {
            *o = 0.5 * lp;
        }
    }
}

/// The coalesced NADE sampler: the model's native `O(h)`-per-site
/// recursion over the combined batch, each request's rows drawn from
/// its own seeded RNG stream.
///
/// Invariant (property-tested): rows `[offset_r, offset_r + count_r)`
/// are bit-identical — configurations *and* `logψ` — to a solo
/// `Nade::sample_native(count_r, StdRng::seed_from_u64(seed_r))`.  The
/// recursion reuses `sample_native`'s exact scalar `σ` / `ln σ` ops in
/// the same `(site, row-within-request)` order, so the identity is
/// bitwise, not just numerical (the vectorised slice kernels are only
/// ≤ 2 ULP-equal to the scalar ops and would break it).
#[derive(Debug, Default)]
pub struct NadeBatchSampler {
    /// Per-row shared hidden pre-activations (`rows · h`).
    a: Vec<f64>,
    /// `σ(a)` scratch for one row.
    hidden: Vec<f64>,
    /// Per-row accumulated `log π`.
    log_prob: Vec<f64>,
    /// Per-request RNG streams (rebuilt each coalesced call).
    rngs: Vec<StdRng>,
    /// Per-request row counts (pooled mirror of the request list).
    counts: Vec<usize>,
}

impl NadeBatchSampler {
    /// A fresh sampler (scratch buffers grow on first use).
    pub fn new() -> Self {
        NadeBatchSampler::default()
    }

    /// Draws every request inside one combined native recursion, each
    /// request's rows from its own seeded RNG stream.
    pub fn sample_coalesced(
        &mut self,
        wf: &Nade,
        reqs: &[SampleRequest],
        out_batch: &mut SpinBatch,
        out_log_psi: &mut Vector,
    ) {
        self.rngs.clear();
        let mut counts = std::mem::take(&mut self.counts);
        counts.clear();
        for req in reqs {
            self.rngs.push(StdRng::seed_from_u64(req.seed));
            counts.push(req.count);
        }
        self.sample_core(wf, &counts, None, out_batch, out_log_psi);
        self.counts = counts;
    }

    /// Draws one batch from a caller-owned RNG stream (the training
    /// path — pooled-scratch equivalent of [`Nade::sample_native`]).
    pub fn sample_stream(
        &mut self,
        wf: &Nade,
        count: usize,
        rng: &mut StdRng,
        out_batch: &mut SpinBatch,
        out_log_psi: &mut Vector,
    ) {
        self.sample_core(wf, &[count], Some(rng), out_batch, out_log_psi);
    }

    fn sample_core(
        &mut self,
        wf: &Nade,
        counts: &[usize],
        mut external: Option<&mut StdRng>,
        out_batch: &mut SpinBatch,
        out_log_psi: &mut Vector,
    ) {
        let n = wf.num_spins();
        let h = wf.hidden_size();
        let rows: usize = counts.iter().sum();
        out_batch.resize(rows, n);
        out_batch.fill(0);
        let b = wf.b().as_slice();
        self.a.clear();
        self.a.reserve(rows * h);
        for _ in 0..rows {
            self.a.extend_from_slice(b);
        }
        self.hidden.clear();
        self.hidden.resize(h, 0.0);
        self.log_prob.clear();
        self.log_prob.resize(rows, 0.0);
        let (v, c, w_t) = (wf.v(), wf.c(), wf.w_t());
        for i in 0..n {
            let v_row = v.row(i);
            let w_col = w_t.row(i);
            let mut s = 0;
            for (q, &count) in counts.iter().enumerate() {
                let rng: &mut StdRng = match external.as_deref_mut() {
                    Some(r) => r,
                    None => &mut self.rngs[q],
                };
                for _ in 0..count {
                    let a_row = &mut self.a[s * h..(s + 1) * h];
                    for (hk, &ak) in self.hidden.iter_mut().zip(a_row.iter()) {
                        *hk = ops::sigmoid(ak);
                    }
                    let logit = vqmc_tensor::vector::dot(v_row, &self.hidden) + c[i];
                    if rng.gen::<f64>() < ops::sigmoid(logit) {
                        out_batch.set(s, i, 1);
                        self.log_prob[s] += ops::log_sigmoid(logit);
                        vqmc_tensor::vector::axpy(a_row, 1.0, w_col);
                    } else {
                        self.log_prob[s] += ops::log_one_minus_sigmoid(logit);
                    }
                    s += 1;
                }
            }
        }
        out_log_psi.resize(rows);
        for (o, &lp) in out_log_psi.iter_mut().zip(&self.log_prob) {
            *o = 0.5 * lp;
        }
    }
}

/// Exact-AUTO accounting in the paper's Algorithm-1 unit: the
/// equivalent work of one logical forward pass per bit.
fn auto_stats(n: usize, rows: usize) -> SampleStats {
    SampleStats {
        forward_passes: n,
        configurations_evaluated: rows * n,
        proposals: 0,
        accepted: 0,
    }
}

/// The architecture-dispatching batch sampler: owns one engine per
/// model family and routes a [`BatchedSampling`] model to the right one
/// via double dispatch — no `AnyModel` match anywhere in the consumers.
#[derive(Debug, Default)]
pub struct BatchSampler {
    made: MadeBatchSampler,
    nade: NadeBatchSampler,
    mcmc: McmcSampler,
}

impl BatchSampler {
    /// A fresh sampler (per-architecture scratch grows on first use).
    pub fn new() -> Self {
        BatchSampler::default()
    }

    /// A sampler whose RBM fallback uses a custom MCMC configuration.
    pub fn with_mcmc(mcmc: McmcSampler) -> Self {
        BatchSampler {
            mcmc,
            ..BatchSampler::default()
        }
    }

    /// Selects the execution precision for subsequent passes.  Only
    /// the MADE panel sampler has an f32 arm; NADE and RBM have no f32
    /// twins and silently run f64 (the serving layer documents this
    /// fallback).
    pub fn set_precision(&mut self, precision: Precision) {
        self.made.set_precision(precision);
    }

    /// Draws every request into one coalesced output batch (request
    /// `r`'s rows at `[Σ_{q<r} count_q, …)`), bit-identical per request
    /// to a solo call with that request's seed.  Exact-AUTO models run
    /// as one combined pass; RBM falls back to per-request MCMC chains
    /// (inherently sequential per chain).
    pub fn sample_requests(
        &mut self,
        model: &dyn BatchedSampling,
        reqs: &[SampleRequest],
        out_batch: &mut SpinBatch,
        out_log_psi: &mut Vector,
    ) -> SampleStats {
        let mut call = RequestCall {
            made: &mut self.made,
            nade: &mut self.nade,
            mcmc: &self.mcmc,
            reqs,
            out_batch,
            out_log_psi,
            stats: SampleStats::default(),
        };
        model.sample_via(&mut call);
        call.stats
    }

    /// Draws one batch from a caller-owned RNG stream into a
    /// caller-owned output — the single-stream shape the CLI's
    /// `evaluate`/`sample` commands use on a loaded checkpoint.
    pub fn sample_stream_into(
        &mut self,
        model: &dyn BatchedSampling,
        count: usize,
        rng: &mut StdRng,
        out: &mut SampleOutput,
    ) {
        let mut call = StreamCall {
            made: &mut self.made,
            nade: &mut self.nade,
            mcmc: &self.mcmc,
            count,
            rng,
            out,
        };
        model.sample_via(&mut call);
    }

    /// Allocating convenience form of [`BatchSampler::sample_stream_into`].
    pub fn sample_stream(
        &mut self,
        model: &dyn BatchedSampling,
        count: usize,
        rng: &mut StdRng,
    ) -> SampleOutput {
        let mut out = SampleOutput::default();
        self.sample_stream_into(model, count, rng, &mut out);
        out
    }
}

/// [`SamplingEngine`] arms for a coalesced multi-request call.
struct RequestCall<'a> {
    made: &'a mut MadeBatchSampler,
    nade: &'a mut NadeBatchSampler,
    mcmc: &'a McmcSampler,
    reqs: &'a [SampleRequest],
    out_batch: &'a mut SpinBatch,
    out_log_psi: &'a mut Vector,
    stats: SampleStats,
}

impl RequestCall<'_> {
    fn rows(&self) -> usize {
        self.reqs.iter().map(|r| r.count).sum()
    }
}

impl SamplingEngine for RequestCall<'_> {
    fn sample_made(&mut self, wf: &Made) {
        self.made
            .sample_coalesced(wf, self.reqs, self.out_batch, self.out_log_psi);
        self.stats = auto_stats(wf.num_spins(), self.rows());
    }

    fn sample_nade(&mut self, wf: &Nade) {
        self.nade
            .sample_coalesced(wf, self.reqs, self.out_batch, self.out_log_psi);
        self.stats = auto_stats(wf.num_spins(), self.rows());
    }

    fn sample_rbm(&mut self, wf: &Rbm) {
        let n = wf.num_spins();
        let rows = self.rows();
        self.out_batch.resize(rows, n);
        self.out_log_psi.resize(rows);
        let mut stats = SampleStats::default();
        let mut offset = 0;
        for req in self.reqs {
            let mut rng = StdRng::seed_from_u64(req.seed);
            let out = self.mcmc.sample_rbm(wf, req.count, &mut rng);
            for s in 0..req.count {
                self.out_batch
                    .sample_mut(offset + s)
                    .copy_from_slice(out.batch.sample(s));
            }
            self.out_log_psi.as_mut_slice()[offset..offset + req.count]
                .copy_from_slice(out.log_psi.as_slice());
            offset += req.count;
            stats.forward_passes += out.stats.forward_passes;
            stats.configurations_evaluated += out.stats.configurations_evaluated;
            stats.proposals += out.stats.proposals;
            stats.accepted += out.stats.accepted;
        }
        self.stats = stats;
    }
}

/// [`SamplingEngine`] arms for a single caller-owned RNG stream.
struct StreamCall<'a> {
    made: &'a mut MadeBatchSampler,
    nade: &'a mut NadeBatchSampler,
    mcmc: &'a McmcSampler,
    count: usize,
    rng: &'a mut StdRng,
    out: &'a mut SampleOutput,
}

impl SamplingEngine for StreamCall<'_> {
    fn sample_made(&mut self, wf: &Made) {
        self.made
            .sample_stream(wf, self.count, self.rng, &mut self.out.batch, &mut self.out.log_psi);
        self.out.stats = auto_stats(wf.num_spins(), self.count);
    }

    fn sample_nade(&mut self, wf: &Nade) {
        self.nade
            .sample_stream(wf, self.count, self.rng, &mut self.out.batch, &mut self.out.log_psi);
        self.out.stats = auto_stats(wf.num_spins(), self.count);
    }

    fn sample_rbm(&mut self, wf: &Rbm) {
        // The `O(h)`-per-proposal RBM fast path, same as the trainer's
        // `RbmFastMcmc` adapter.
        *self.out = self.mcmc.sample_rbm(wf, self.count, self.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sampler;

    #[test]
    fn coalesced_rows_land_at_request_offsets() {
        let wf = Made::new(7, 11, 5);
        let reqs = [
            SampleRequest { count: 3, seed: 1 },
            SampleRequest { count: 9, seed: 2 },
        ];
        let mut bs = BatchSampler::new();
        let mut batch = SpinBatch::default();
        let mut log_psi = Vector::default();
        let stats = bs.sample_requests(&wf, &reqs, &mut batch, &mut log_psi);
        assert_eq!(batch.batch_size(), 12);
        assert_eq!(log_psi.len(), 12);
        assert_eq!(stats.forward_passes, 7);
        assert_eq!(stats.configurations_evaluated, 12 * 7);
        // Solo redraw of the second request lands exactly at offset 3.
        let mut solo_b = SpinBatch::default();
        let mut solo_lp = Vector::default();
        MadeBatchSampler::new().sample_stream(
            &wf,
            9,
            &mut StdRng::seed_from_u64(2),
            &mut solo_b,
            &mut solo_lp,
        );
        for s in 0..9 {
            assert_eq!(batch.sample(3 + s), solo_b.sample(s));
            assert_eq!(log_psi[3 + s].to_bits(), solo_lp[s].to_bits());
        }
    }

    #[test]
    fn stream_call_dispatches_every_architecture() {
        let mut bs = BatchSampler::new();
        let mut rng = StdRng::seed_from_u64(3);
        let made = Made::new(6, 9, 1);
        let out = bs.sample_stream(&made, 10, &mut rng);
        assert_eq!(out.batch.batch_size(), 10);
        assert_eq!(out.stats.forward_passes, 6);

        let nade = Nade::new(6, 5, 1);
        let out = bs.sample_stream(&nade, 10, &mut StdRng::seed_from_u64(3));
        assert_eq!(out.batch.batch_size(), 10);
        // Bit-identical to the model's own native sampler.
        let (nb, nlp) = nade.sample_native(10, &mut StdRng::seed_from_u64(3));
        assert_eq!(out.batch.as_bytes(), nb.as_bytes());
        for s in 0..10 {
            assert_eq!(out.log_psi[s].to_bits(), nlp[s].to_bits());
        }

        let rbm = Rbm::new(6, 6, 1);
        let out = bs.sample_stream(&rbm, 10, &mut StdRng::seed_from_u64(3));
        assert_eq!(out.batch.batch_size(), 10);
        assert!(out.stats.proposals > 0, "RBM must go through MCMC");
    }

    #[test]
    fn rbm_requests_match_solo_mcmc_per_seed() {
        let wf = Rbm::new(5, 5, 7);
        let reqs = [
            SampleRequest { count: 4, seed: 21 },
            SampleRequest { count: 6, seed: 22 },
        ];
        let mut bs = BatchSampler::new();
        let mut batch = SpinBatch::default();
        let mut log_psi = Vector::default();
        let stats = bs.sample_requests(&wf, &reqs, &mut batch, &mut log_psi);
        assert!(stats.proposals > 0);
        let mut offset = 0;
        for req in &reqs {
            let solo = McmcSampler::default().sample_rbm(
                &wf,
                req.count,
                &mut StdRng::seed_from_u64(req.seed),
            );
            for s in 0..req.count {
                assert_eq!(batch.sample(offset + s), solo.batch.sample(s));
                assert_eq!(log_psi[offset + s].to_bits(), solo.log_psi[s].to_bits());
            }
            offset += req.count;
        }
    }

    #[test]
    fn forced_layouts_are_bit_identical() {
        let wf = Made::new(11, 15, 42);
        for count in [1usize, 4, 8, 33] {
            let mut row_b = SpinBatch::default();
            let mut row_lp = Vector::default();
            let mut sampler = MadeBatchSampler::new();
            sampler.force_layout(PanelLayout::Rows);
            sampler.sample_stream(
                &wf,
                count,
                &mut StdRng::seed_from_u64(9),
                &mut row_b,
                &mut row_lp,
            );
            let mut col_b = SpinBatch::default();
            let mut col_lp = Vector::default();
            let mut sampler = MadeBatchSampler::new();
            sampler.force_layout(PanelLayout::Cols);
            sampler.sample_stream(
                &wf,
                count,
                &mut StdRng::seed_from_u64(9),
                &mut col_b,
                &mut col_lp,
            );
            assert_eq!(row_b.as_bytes(), col_b.as_bytes(), "count {count}");
            for s in 0..count {
                assert_eq!(row_lp[s].to_bits(), col_lp[s].to_bits(), "count {count} row {s}");
            }
        }
    }

    /// The coalesced≡solo invariant holds inside the f32 arm too —
    /// including a request small enough that the f64 Auto dispatch
    /// would have sent it down the row path solo.
    #[test]
    fn f32_coalesced_rows_match_solo_f32_stream() {
        let wf = Made::new(9, 14, 6);
        let reqs = [
            SampleRequest { count: 3, seed: 5 },
            SampleRequest { count: 13, seed: 9 },
        ];
        let mut bs = BatchSampler::new();
        bs.set_precision(Precision::F32);
        let mut batch = SpinBatch::default();
        let mut lp = Vector::default();
        bs.sample_requests(&wf, &reqs, &mut batch, &mut lp);
        assert_eq!(batch.batch_size(), 16);
        let mut offset = 0;
        for req in &reqs {
            let mut sampler = MadeBatchSampler::new();
            sampler.set_precision(Precision::F32);
            let mut sb = SpinBatch::default();
            let mut slp = Vector::default();
            sampler.sample_stream(
                &wf,
                req.count,
                &mut StdRng::seed_from_u64(req.seed),
                &mut sb,
                &mut slp,
            );
            for s in 0..req.count {
                assert_eq!(batch.sample(offset + s), sb.sample(s), "seed {}", req.seed);
                assert_eq!(lp[offset + s].to_bits(), slp[s].to_bits(), "seed {}", req.seed);
            }
            offset += req.count;
        }
    }

    /// The f32 arm draws a valid, deterministic batch whose `logψ`
    /// tracks the f64 arm within the documented serving bound (the two
    /// arms see identical logits up to `O(h·ε₃₂)` per bit, so with the
    /// same seed the drawn bits *almost always* agree; we assert only
    /// determinism and shape, never cross-precision bits).
    #[test]
    fn f32_stream_is_deterministic_and_well_formed() {
        let wf = Made::new(12, 17, 11);
        let draw = || {
            let mut sampler = MadeBatchSampler::new();
            sampler.set_precision(Precision::F32);
            let mut b = SpinBatch::default();
            let mut lp = Vector::default();
            sampler.sample_stream(&wf, 20, &mut StdRng::seed_from_u64(3), &mut b, &mut lp);
            (b, lp)
        };
        let (b1, lp1) = draw();
        let (b2, lp2) = draw();
        assert_eq!(b1.as_bytes(), b2.as_bytes());
        assert_eq!(b1.batch_size(), 20);
        for s in 0..20 {
            assert_eq!(lp1[s].to_bits(), lp2[s].to_bits());
            assert!(lp1[s] < 0.0, "logψ of a normalised π must be negative");
        }
        // Warm (cached-weights) redraws stay identical after the first
        // pass built the f32 weight cache.
        let mut sampler = MadeBatchSampler::new();
        sampler.set_precision(Precision::F32);
        for _ in 0..2 {
            let mut b = SpinBatch::default();
            let mut lp = Vector::default();
            sampler.sample_stream(&wf, 20, &mut StdRng::seed_from_u64(3), &mut b, &mut lp);
            assert_eq!(b.as_bytes(), b1.as_bytes());
            for s in 0..20 {
                assert_eq!(lp[s].to_bits(), lp1[s].to_bits());
            }
        }
    }

    #[test]
    fn training_wrapper_equals_engine_stream() {
        // IncrementalAutoSampler is a thin wrapper over MadeBatchSampler:
        // same output, same stats.
        let wf = Made::new(8, 12, 3);
        let via_wrapper =
            crate::IncrementalAutoSampler::new().sample(&wf, 20, &mut StdRng::seed_from_u64(4));
        let mut batch = SpinBatch::default();
        let mut log_psi = Vector::default();
        MadeBatchSampler::new().sample_stream(
            &wf,
            20,
            &mut StdRng::seed_from_u64(4),
            &mut batch,
            &mut log_psi,
        );
        assert_eq!(via_wrapper.batch.as_bytes(), batch.as_bytes());
        for s in 0..20 {
            assert_eq!(via_wrapper.log_psi[s].to_bits(), log_psi[s].to_bits());
        }
    }

    /// Deep stacks: the incremental panel pipeline draws the same
    /// configurations as the naive full-recompute AUTO sampler and its
    /// `logψ` agrees within the incremental-vs-naive contract (same
    /// arithmetic, different accumulation order) — at depths 2 and 3,
    /// across batch sizes that land on either side of the striping
    /// minimum.
    #[test]
    fn deep_stream_matches_naive_auto_sampler() {
        for hidden in [vec![11usize, 6], vec![9, 7, 5]] {
            for seed in 0..4u64 {
                let wf = Made::with_hidden(7, &hidden, 100 + seed);
                for count in [3usize, 16, 40] {
                    let naive = crate::AutoSampler::new().sample(
                        &wf,
                        count,
                        &mut StdRng::seed_from_u64(seed),
                    );
                    let mut b = SpinBatch::default();
                    let mut lp = Vector::default();
                    MadeBatchSampler::new().sample_stream(
                        &wf,
                        count,
                        &mut StdRng::seed_from_u64(seed),
                        &mut b,
                        &mut lp,
                    );
                    assert_eq!(
                        naive.batch.as_bytes(),
                        b.as_bytes(),
                        "depth {} seed {seed} count {count}: batches differ",
                        hidden.len()
                    );
                    for s in 0..count {
                        assert!(
                            (naive.log_psi[s] - lp[s]).abs() < 1e-10,
                            "depth {} seed {seed} count {count} row {s}: logψ differs",
                            hidden.len()
                        );
                    }
                }
            }
        }
    }

    /// Deep stacks keep the coalesced≡solo invariant in both
    /// precisions: every request's rows in a combined pass are
    /// bit-identical to a solo stream with that request's seed.
    #[test]
    fn deep_coalesced_rows_match_solo_streams() {
        let wf = Made::with_hidden(8, &[12, 7], 19);
        let reqs = [
            SampleRequest { count: 3, seed: 5 },
            SampleRequest { count: 13, seed: 9 },
            SampleRequest { count: 6, seed: 31 },
        ];
        for precision in [Precision::F64, Precision::F32] {
            let mut bs = BatchSampler::new();
            bs.set_precision(precision);
            let mut batch = SpinBatch::default();
            let mut lp = Vector::default();
            bs.sample_requests(&wf, &reqs, &mut batch, &mut lp);
            assert_eq!(batch.batch_size(), 22);
            let mut offset = 0;
            for req in &reqs {
                let mut sampler = MadeBatchSampler::new();
                sampler.set_precision(precision);
                let mut sb = SpinBatch::default();
                let mut slp = Vector::default();
                sampler.sample_stream(
                    &wf,
                    req.count,
                    &mut StdRng::seed_from_u64(req.seed),
                    &mut sb,
                    &mut slp,
                );
                for s in 0..req.count {
                    assert_eq!(
                        batch.sample(offset + s),
                        sb.sample(s),
                        "{precision:?} seed {}",
                        req.seed
                    );
                    assert_eq!(
                        lp[offset + s].to_bits(),
                        slp[s].to_bits(),
                        "{precision:?} seed {}",
                        req.seed
                    );
                }
                offset += req.count;
            }
        }
    }

    /// The f32 deep arm is deterministic, well-formed, and tracks the
    /// f64 deep arm's `logψ` within the documented serving bound.
    #[test]
    fn deep_f32_stream_tracks_f64_within_bound() {
        let n = 10;
        let wf = Made::with_hidden(n, &[16, 9], 7);
        let draw = |precision: Precision| {
            let mut sampler = MadeBatchSampler::new();
            sampler.set_precision(precision);
            let mut b = SpinBatch::default();
            let mut lp = Vector::default();
            sampler.sample_stream(&wf, 24, &mut StdRng::seed_from_u64(3), &mut b, &mut lp);
            (b, lp)
        };
        let (b32a, lp32a) = draw(Precision::F32);
        let (b32b, lp32b) = draw(Precision::F32);
        assert_eq!(b32a.as_bytes(), b32b.as_bytes());
        for s in 0..24 {
            assert_eq!(lp32a[s].to_bits(), lp32b[s].to_bits());
            assert!(lp32a[s] < 0.0, "logψ of a normalised π must be negative");
        }
        // Same drawn bits imply logψ within the f32 drift bound.
        let (b64, lp64) = draw(Precision::F64);
        if b64.as_bytes() == b32a.as_bytes() {
            for s in 0..24 {
                assert!(
                    (lp64[s] - lp32a[s]).abs() <= 1e-5 * n as f64,
                    "row {s}: f32 logψ drifted {} vs {}",
                    lp32a[s],
                    lp64[s]
                );
            }
        }
    }

    /// A warm deep sampler tracks parameter updates (the cached `W₁ᵀ`
    /// and f32 weight copies invalidate on `params_version`).
    #[test]
    fn deep_warm_sampler_survives_parameter_updates() {
        let mut wf = Made::with_hidden(6, &[9, 5], 3);
        let mut warm = MadeBatchSampler::new();
        for round in 0..3u64 {
            let mut wb = SpinBatch::default();
            let mut wlp = Vector::default();
            warm.sample_stream(&wf, 12, &mut StdRng::seed_from_u64(round), &mut wb, &mut wlp);
            let mut fresh_b = SpinBatch::default();
            let mut fresh_lp = Vector::default();
            MadeBatchSampler::new().sample_stream(
                &wf,
                12,
                &mut StdRng::seed_from_u64(round),
                &mut fresh_b,
                &mut fresh_lp,
            );
            assert_eq!(wb.as_bytes(), fresh_b.as_bytes(), "round {round}");
            for s in 0..12 {
                assert_eq!(wlp[s].to_bits(), fresh_lp[s].to_bits(), "round {round}");
            }
            let mut p = wf.params();
            for v in p.iter_mut() {
                *v += 0.01;
            }
            wf.set_params(&p);
        }
    }
}
