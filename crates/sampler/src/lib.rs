//! # vqmc-sampler
//!
//! The two sampling engines whose contrast is the subject of the paper:
//!
//! * [`AutoSampler`] — **exact** autoregressive sampling (the paper's
//!   AUTO, Algorithm 1): `n` sequential forward passes transform
//!   i.i.d. uniform randomness into exact samples of `πθ`.  Embarrassingly
//!   parallel over the batch; no burn-in, no correlation, no convergence
//!   question.  An [`auto::IncrementalAutoSampler`] variant caches hidden
//!   pre-activations to cut the per-bit cost from `O(n·h)` to `O(h)` per
//!   sample — a distribution-identical optimisation, property-tested
//!   bit-for-bit against the naive path.
//! * [`McmcSampler`] — random-walk Metropolis–Hastings on single-spin
//!   flips (the paper's MCMC baseline): `c` parallel chains, `k` burn-in
//!   sweeps that are *inherently sequential per chain*, thinning every
//!   `j`-th state.  Asymptotically unbiased, but with undetermined
//!   convergence time — the bottleneck the paper quantifies.
//!
//! The [`efficiency`] module carries the paper's closed-form parallel
//! efficiency models (Eq. 14 for MCMC, Eq. 15 for AUTO).

#![warn(missing_docs)]

pub mod auto;
pub mod batch;
pub mod diagnostics;
pub mod efficiency;
pub mod gibbs;
pub mod mcmc;
pub mod tempering;

use rand::rngs::StdRng;
use vqmc_nn::WaveFunction;
use vqmc_tensor::{SpinBatch, Vector};

pub use auto::{AutoSampler, IncrementalAutoSampler, NadeNativeSampler};
pub use batch::{
    BatchSampler, MadeBatchSampler, NadeBatchSampler, PanelLayout, SampleRequest,
};
pub use gibbs::{GibbsConfig, GibbsSampler};
pub use mcmc::{BurnIn, McmcConfig, McmcSampler, RbmFastMcmc, Thinning};
pub use tempering::{TemperingConfig, TemperingSampler};

/// The product of one sampling call.
///
/// `Default` yields empty buffers: the natural initial state for a
/// caller-owned output that [`Sampler::sample_into`] resizes in place.
#[derive(Clone, Debug, Default)]
pub struct SampleOutput {
    /// The sampled configurations.
    pub batch: SpinBatch,
    /// `logψ` of every sample (already available from the sampling
    /// computation — callers must not pay another forward pass for it).
    pub log_psi: Vector,
    /// Cost accounting for the run.
    pub stats: SampleStats,
}

/// Cost and health accounting for a sampling run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SampleStats {
    /// Number of wavefunction forward passes executed (a *pass* is one
    /// batched evaluation, whatever its batch size — the unit of the
    /// paper's Figure 1 cost comparison).
    pub forward_passes: usize,
    /// Total configurations pushed through those passes.
    pub configurations_evaluated: usize,
    /// Metropolis proposals made (0 for exact samplers).
    pub proposals: usize,
    /// Metropolis proposals accepted (0 for exact samplers).
    pub accepted: usize,
}

impl SampleStats {
    /// Acceptance rate of the Metropolis walk, `NaN` when no proposals
    /// were made.
    pub fn acceptance_rate(&self) -> f64 {
        self.accepted as f64 / self.proposals as f64
    }
}

/// A strategy for drawing a batch of configurations from `|ψθ|²`.
///
/// Samplers take `&mut self`: the exact (AUTO) samplers carry scratch
/// state — activation workspaces, cached weight transposes — so that the
/// steady-state training loop performs no heap allocation per batch.
/// The stateless MCMC samplers simply ignore the mutability.
pub trait Sampler<W: WaveFunction + ?Sized>: Send + Sync {
    /// Draws `batch_size` configurations into a caller-owned output
    /// (buffers resized in place; allocation-free at steady state for
    /// the AUTO samplers).
    fn sample_into(
        &mut self,
        wf: &W,
        batch_size: usize,
        rng: &mut StdRng,
        out: &mut SampleOutput,
    );

    /// Draws `batch_size` configurations (allocating convenience form of
    /// [`Sampler::sample_into`]).
    fn sample(&mut self, wf: &W, batch_size: usize, rng: &mut StdRng) -> SampleOutput {
        let mut out = SampleOutput::default();
        self.sample_into(wf, batch_size, rng, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_rate_math() {
        let stats = SampleStats {
            proposals: 200,
            accepted: 50,
            ..Default::default()
        };
        assert_eq!(stats.acceptance_rate(), 0.25);
    }

    #[test]
    fn acceptance_rate_nan_when_exact() {
        let stats = SampleStats::default();
        assert!(stats.acceptance_rate().is_nan());
    }
}
