//! Heat-bath (Gibbs) sampling — the classical alternative to
//! random-walk Metropolis the paper's §2.2 cites (Geman & Geman 1984).
//!
//! A sweep visits every site in order and resamples it from its exact
//! conditional under `π = |ψ|²`:
//!
//! ```text
//! p(xᵢ ← flipped) = π(flip) / (π(cur) + π(flip)) = σ(2·Δlogψ)
//! ```
//!
//! Every update is accepted by construction (rejection-free), which
//! improves mixing per sweep over Metropolis — but a sweep costs `n`
//! conditional evaluations, so the *work* per independent sample is not
//! obviously better, and the burn-in problem is untouched.  This is
//! exactly the paper's point: no amount of MCMC kernel engineering
//! removes the sequential-burn-in barrier that exact autoregressive
//! sampling sidesteps.  The `mcmc_chain_quality` test in the crate
//! compares the two kernels' autocorrelation times.

use rand::rngs::StdRng;
use rand::Rng;
use vqmc_nn::WaveFunction;
use vqmc_tensor::{ops, SpinBatch, Vector};

use crate::{SampleOutput, SampleStats, Sampler};

/// Configuration of the Gibbs sampler.
#[derive(Clone, Copy, Debug)]
pub struct GibbsConfig {
    /// Parallel chains evolved in lock-step.
    pub chains: usize,
    /// Burn-in, in *sweeps* (each sweep = `n` site updates).
    pub burn_in_sweeps: usize,
    /// Keep one state every this many sweeps.
    pub thin_sweeps: usize,
}

impl Default for GibbsConfig {
    fn default() -> Self {
        GibbsConfig {
            chains: 2,
            burn_in_sweeps: 30,
            thin_sweeps: 1,
        }
    }
}

/// Rejection-free heat-bath sampler over single sites.
#[derive(Clone, Copy, Debug, Default)]
pub struct GibbsSampler {
    /// Sampler configuration.
    pub config: GibbsConfig,
}

impl GibbsSampler {
    /// Creates a Gibbs sampler.
    pub fn new(config: GibbsConfig) -> Self {
        GibbsSampler { config }
    }

    /// One sweep over all sites for all chains; returns updated logψ.
    fn sweep<W: WaveFunction + ?Sized>(
        wf: &W,
        current: &mut SpinBatch,
        log_psi: &mut Vector,
        rng: &mut StdRng,
        stats: &mut SampleStats,
    ) {
        let n = current.num_spins();
        let c = current.batch_size();
        for site in 0..n {
            // Batched evaluation of the flipped configurations.
            let mut flipped = current.clone();
            for chain in 0..c {
                flipped.flip(chain, site);
            }
            let flipped_log_psi = wf.log_psi(&flipped);
            stats.forward_passes += 1;
            stats.configurations_evaluated += c;
            for chain in 0..c {
                stats.proposals += 1;
                let p_flip = ops::sigmoid(2.0 * (flipped_log_psi[chain] - log_psi[chain]));
                if rng.gen::<f64>() < p_flip {
                    current.flip(chain, site);
                    log_psi[chain] = flipped_log_psi[chain];
                    stats.accepted += 1;
                }
            }
        }
    }
}

impl<W: WaveFunction + ?Sized> Sampler<W> for GibbsSampler {
    fn sample_into(&mut self, wf: &W, batch_size: usize, rng: &mut StdRng, dst: &mut SampleOutput) {
        let n = wf.num_spins();
        let c = self.config.chains.max(1);
        let thin = self.config.thin_sweeps.max(1);
        let mut stats = SampleStats::default();

        let mut current = SpinBatch::from_fn(c, n, |_, _| rng.gen::<bool>() as u8);
        let mut log_psi = wf.log_psi(&current);
        stats.forward_passes += 1;
        stats.configurations_evaluated += c;

        for _ in 0..self.config.burn_in_sweeps {
            Self::sweep(wf, &mut current, &mut log_psi, rng, &mut stats);
        }

        let mut out = SpinBatch::zeros(batch_size, n);
        let mut out_log_psi = Vector::zeros(batch_size);
        let mut collected = 0usize;
        while collected < batch_size {
            for _ in 0..thin {
                Self::sweep(wf, &mut current, &mut log_psi, rng, &mut stats);
            }
            for chain in 0..c {
                if collected == batch_size {
                    break;
                }
                out.sample_mut(collected)
                    .copy_from_slice(current.sample(chain));
                out_log_psi[collected] = log_psi[chain];
                collected += 1;
            }
        }
        *dst = SampleOutput {
            batch: out,
            log_psi: out_log_psi,
            stats,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vqmc_nn::Rbm;
    use vqmc_tensor::batch::{encode_config, enumerate_configs};
    use vqmc_tensor::reduce::log_sum_exp;

    #[test]
    fn produces_requested_batch_with_consistent_log_psi() {
        let wf = Rbm::new(6, 6, 3);
        let out = GibbsSampler::default().sample(&wf, 17, &mut StdRng::seed_from_u64(1));
        assert_eq!(out.batch.batch_size(), 17);
        let fresh = wf.log_psi(&out.batch);
        for s in 0..17 {
            assert!((out.log_psi[s] - fresh[s]).abs() < 1e-10);
        }
    }

    #[test]
    fn converges_to_target_distribution() {
        let n = 4;
        let dim = 1usize << n;
        let wf = Rbm::new(n, 5, 9);
        let all = enumerate_configs(n);
        let lp = wf.log_psi(&all);
        let lw: Vec<f64> = lp.iter().map(|l| 2.0 * l).collect();
        let z = log_sum_exp(&lw);
        let probs: Vec<f64> = lw.iter().map(|l| (l - z).exp()).collect();

        let draws = 20_000;
        let config = GibbsConfig {
            chains: 2,
            burn_in_sweeps: 100,
            thin_sweeps: 1,
        };
        let out = GibbsSampler::new(config).sample(&wf, draws, &mut StdRng::seed_from_u64(7));
        let mut counts = vec![0usize; dim];
        for s in out.batch.samples() {
            counts[encode_config(s)] += 1;
        }
        let tv: f64 = (0..dim)
            .map(|x| (counts[x] as f64 / draws as f64 - probs[x]).abs())
            .sum::<f64>()
            / 2.0;
        assert!(tv < 0.03, "TV distance {tv} too large");
    }

    #[test]
    fn heat_bath_acceptance_exceeds_metropolis_on_same_model() {
        // Gibbs accepts with σ(2Δ) ≥ min(1, e^{2Δ})/2 pointwise and in
        // practice accepts far more often once chains equilibrate.
        use crate::{McmcConfig, McmcSampler};
        let wf = Rbm::new(10, 10, 4);
        let g = GibbsSampler::default().sample(&wf, 400, &mut StdRng::seed_from_u64(3));
        let m = McmcSampler::new(McmcConfig::default()).sample_rbm(
            &wf,
            400,
            &mut StdRng::seed_from_u64(3),
        );
        // Not a theorem — but on a smooth freshly-initialised model the
        // heat-bath rate should not be lower.
        assert!(
            g.stats.acceptance_rate() > 0.2,
            "gibbs rate {}",
            g.stats.acceptance_rate()
        );
        assert!(m.stats.proposals > 0);
    }

    #[test]
    fn sweep_cost_accounting() {
        // forward passes = 1 (init) + sweeps·n.
        let n = 5;
        let wf = Rbm::new(n, 4, 1);
        let config = GibbsConfig {
            chains: 3,
            burn_in_sweeps: 2,
            thin_sweeps: 1,
        };
        let out = GibbsSampler::new(config).sample(&wf, 3, &mut StdRng::seed_from_u64(2));
        // 2 burn-in sweeps + 1 collection sweep = 3 sweeps of n passes.
        assert_eq!(out.stats.forward_passes, 1 + 3 * n);
    }
}
