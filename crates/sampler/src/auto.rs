//! Exact autoregressive sampling (the paper's AUTO, Algorithm 1).
//!
//! Starting from the all-zero state, bit `i` is drawn from the model's
//! conditional `p(xᵢ = 1 | x_{<i})`; because the network's output `i`
//! provably cannot see bits `≥ i` (the MADE mask invariant), the
//! garbage suffix never influences the draw.  After `n` rounds the batch
//! is an exact i.i.d. sample of `πθ` — the property that removes every
//! MCMC pathology (burn-in, thinning, undetermined convergence).
//!
//! Two implementations:
//!
//! * [`AutoSampler`] — the literal Algorithm 1: one **full forward
//!   pass** per bit (`n` passes of `O(bs·n·h)` work each).  This is the
//!   cost the paper's Figure 1 and Table 1 account.
//! * [`IncrementalAutoSampler`] — caches the hidden pre-activations
//!   `z₁ = W₁x + b₁` and folds in each newly revealed bit with one
//!   `O(h)` column update, then evaluates a single output row per bit:
//!   `O(bs·h)` per bit, an `O(n)`-fold saving.  Given the same RNG it
//!   produces **bit-identical** batches (property-tested), so it is a
//!   pure implementation optimisation — the ablation bench
//!   `bench_auto_incremental` quantifies the win.

use rand::rngs::StdRng;
use rand::Rng;
use vqmc_nn::{Autoregressive, Made, WaveFunction};
use vqmc_tensor::{Matrix, Workspace};

use crate::{SampleOutput, SampleStats, Sampler};

/// Naive exact sampler: `n` full forward passes (paper Algorithm 1).
///
/// Carries a scratch workspace and a conditionals buffer so the per-bit
/// forward passes are allocation-free once warm.
#[derive(Debug, Default)]
pub struct AutoSampler {
    ws: Workspace,
    cond: Matrix,
}

impl AutoSampler {
    /// A fresh sampler (scratch buffers grow on first use).
    pub fn new() -> Self {
        AutoSampler::default()
    }
}

impl Clone for AutoSampler {
    /// Clones start cold: scratch state is per-instance, not shared.
    fn clone(&self) -> Self {
        AutoSampler::new()
    }
}

impl<W: Autoregressive + ?Sized> Sampler<W> for AutoSampler {
    fn sample_into(
        &mut self,
        wf: &W,
        batch_size: usize,
        rng: &mut StdRng,
        out: &mut SampleOutput,
    ) {
        let n = wf.num_spins();
        let batch = &mut out.batch;
        batch.resize(batch_size, n);
        batch.fill(0);
        let mut stats = SampleStats::default();
        for i in 0..n {
            // One full forward pass; only column i of the conditionals
            // is consumed this round (the naive algorithm's redundancy).
            wf.conditionals_into(batch, &mut self.ws, &mut self.cond);
            stats.forward_passes += 1;
            stats.configurations_evaluated += batch_size;
            for s in 0..batch_size {
                let p = self.cond.get(s, i);
                debug_assert!((0.0..=1.0).contains(&p), "conditional out of range");
                if rng.gen::<f64>() < p {
                    batch.set(s, i, 1);
                }
            }
        }
        // One more pass for logψ of the final configurations.
        wf.log_psi_into(batch, &mut self.ws, &mut out.log_psi);
        stats.forward_passes += 1;
        stats.configurations_evaluated += batch_size;
        out.stats = stats;
    }
}

/// Incremental exact sampler specialised to [`Made`] — a thin wrapper
/// over the unified [`MadeBatchSampler`] panel engine
/// ([`crate::batch`]), run as one caller-owned RNG stream.
///
/// Draws the same `bs × n` uniform variates in the same order as
/// [`AutoSampler`], so outputs are bit-identical for a given RNG state
/// (property-tested) — and since the engine unification, the training
/// hot path dispatches into the same fused `sample_step_cols` SIMD
/// kernel that powers coalesced serving, instead of a private row-major
/// pass.
///
/// The engine's scratch (activation panel, cached `W₁ᵀ` invalidated via
/// [`Made::params_version`]) is pooled across calls: at steady state
/// each `sample_into` call is allocation-free and skips the `O(n·h)`
/// transpose whenever parameters are unchanged.
#[derive(Debug, Default)]
pub struct IncrementalAutoSampler {
    engine: crate::batch::MadeBatchSampler,
}

impl IncrementalAutoSampler {
    /// A fresh sampler (scratch buffers grow on first use).
    pub fn new() -> Self {
        IncrementalAutoSampler::default()
    }
}

impl Clone for IncrementalAutoSampler {
    /// Clones start cold: scratch and cache are per-instance.
    fn clone(&self) -> Self {
        IncrementalAutoSampler::new()
    }
}

impl Sampler<Made> for IncrementalAutoSampler {
    fn sample_into(
        &mut self,
        wf: &Made,
        batch_size: usize,
        rng: &mut StdRng,
        out: &mut SampleOutput,
    ) {
        self.engine
            .sample_stream(wf, batch_size, rng, &mut out.batch, &mut out.log_psi);
        out.stats = SampleStats {
            // Equivalent *work* of one full forward pass per bit is
            // avoided; we report the n logical passes of Algorithm 1
            // so cost comparisons stay in the paper's unit.
            forward_passes: wf.num_spins(),
            configurations_evaluated: batch_size * wf.num_spins(),
            proposals: 0,
            accepted: 0,
        };
    }
}

/// Exact sampler using NADE's native `O(bs·n·h)` recursion — the
/// architecture-specific analogue of [`IncrementalAutoSampler`], and
/// like it a thin wrapper over the unified batch engine
/// ([`crate::batch::NadeBatchSampler`]), whose pooled scratch keeps the
/// steady-state training loop allocation-free.  Bit-identical to
/// [`vqmc_nn::Nade::sample_native`] given the same RNG.
#[derive(Debug, Default)]
pub struct NadeNativeSampler {
    engine: crate::batch::NadeBatchSampler,
}

impl NadeNativeSampler {
    /// A fresh sampler (scratch buffers grow on first use).
    pub fn new() -> Self {
        NadeNativeSampler::default()
    }
}

impl Clone for NadeNativeSampler {
    /// Clones start cold: scratch is per-instance.
    fn clone(&self) -> Self {
        NadeNativeSampler::new()
    }
}

impl Sampler<vqmc_nn::Nade> for NadeNativeSampler {
    fn sample_into(
        &mut self,
        wf: &vqmc_nn::Nade,
        batch_size: usize,
        rng: &mut StdRng,
        out: &mut SampleOutput,
    ) {
        self.engine
            .sample_stream(wf, batch_size, rng, &mut out.batch, &mut out.log_psi);
        out.stats = SampleStats {
            forward_passes: wf.num_spins(),
            configurations_evaluated: batch_size * wf.num_spins(),
            proposals: 0,
            accepted: 0,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vqmc_nn::Autoregressive;
    use vqmc_tensor::batch::{encode_config, enumerate_configs};

    fn model(n: usize, seed: u64) -> Made {
        Made::new(n, 2 * n + 1, seed)
    }

    #[test]
    fn incremental_is_bit_identical_to_naive() {
        for seed in 0..5u64 {
            let m = model(7, 100 + seed);
            let naive = AutoSampler::new().sample(&m, 16, &mut StdRng::seed_from_u64(seed));
            let fast =
                IncrementalAutoSampler::new().sample(&m, 16, &mut StdRng::seed_from_u64(seed));
            assert_eq!(
                naive.batch.as_bytes(),
                fast.batch.as_bytes(),
                "seed {seed}: sample batches differ"
            );
            for s in 0..16 {
                assert!(
                    (naive.log_psi[s] - fast.log_psi[s]).abs() < 1e-10,
                    "seed {seed} sample {s}: logψ differs"
                );
            }
        }
    }

    #[test]
    fn cached_transpose_survives_parameter_updates() {
        // One long-lived incremental sampler (warm W₁ᵀ cache) must stay
        // bit-identical to a fresh naive sampler across set_params calls
        // — i.e. the cache invalidation on params_version is correct.
        let mut m = model(6, 50);
        let mut fast = IncrementalAutoSampler::new();
        let mut naive = AutoSampler::new();
        for round in 0..4u64 {
            let a = naive.sample(&m, 12, &mut StdRng::seed_from_u64(round));
            let b = fast.sample(&m, 12, &mut StdRng::seed_from_u64(round));
            assert_eq!(
                a.batch.as_bytes(),
                b.batch.as_bytes(),
                "round {round}: batches diverged after set_params"
            );
            for s in 0..12 {
                assert!((a.log_psi[s] - b.log_psi[s]).abs() < 1e-10);
            }
            // Perturb the parameters (masked entries are re-zeroed by
            // set_params) and go again with the SAME sampler instances.
            let mut p = m.params();
            for (k, v) in p.iter_mut().enumerate() {
                *v += 0.01 * ((k + round as usize) % 7) as f64;
            }
            m.set_params(&p);
        }
    }

    #[test]
    fn stale_cache_would_be_detected() {
        // Same sampler, same RNG seed, before and after set_params: the
        // outputs must differ (guards against a cache that never
        // invalidates) yet stay equal to the naive path (guards against
        // one that invalidates wrongly).
        let mut m = model(6, 51);
        let mut fast = IncrementalAutoSampler::new();
        let before = fast.sample(&m, 32, &mut StdRng::seed_from_u64(9));
        let mut p = m.params();
        p.scale(1.5);
        m.set_params(&p);
        let after = fast.sample(&m, 32, &mut StdRng::seed_from_u64(9));
        assert_ne!(
            before.batch.as_bytes(),
            after.batch.as_bytes(),
            "parameter change did not alter samples — stale W₁ᵀ cache?"
        );
        let reference = AutoSampler::new().sample(&m, 32, &mut StdRng::seed_from_u64(9));
        assert_eq!(after.batch.as_bytes(), reference.batch.as_bytes());
    }

    #[test]
    fn sample_into_reuses_buffers_across_calls() {
        let m = model(8, 60);
        let mut sampler = AutoSampler::new();
        let mut out = SampleOutput::default();
        let mut rng = StdRng::seed_from_u64(3);
        sampler.sample_into(&m, 16, &mut rng, &mut out);
        let batch_ptr = out.batch.as_bytes().as_ptr();
        let lp_ptr = out.log_psi.as_slice().as_ptr();
        sampler.sample_into(&m, 16, &mut rng, &mut out);
        assert_eq!(out.batch.as_bytes().as_ptr(), batch_ptr);
        assert_eq!(out.log_psi.as_slice().as_ptr(), lp_ptr);
    }

    #[test]
    fn log_psi_matches_model_evaluation() {
        let m = model(6, 3);
        let out = AutoSampler::new().sample(&m, 32, &mut StdRng::seed_from_u64(9));
        let recomputed = m.log_psi(&out.batch);
        for s in 0..32 {
            assert!((out.log_psi[s] - recomputed[s]).abs() < 1e-10);
        }
    }

    #[test]
    fn forward_pass_accounting_matches_algorithm1() {
        let m = model(5, 1);
        let out = AutoSampler::new().sample(&m, 8, &mut StdRng::seed_from_u64(0));
        // n passes for sampling + 1 for logψ.
        assert_eq!(out.stats.forward_passes, 6);
        assert_eq!(out.stats.proposals, 0);
    }

    /// Chi-square goodness of fit of empirical AUTO samples against the
    /// exact model distribution — the "exactness" headline claim.
    #[test]
    fn samples_follow_exact_distribution() {
        let n = 4;
        let m = model(n, 77);
        let dim = 1 << n;
        // Exact probabilities.
        let all = enumerate_configs(n);
        let log_probs = m.log_prob(&all);
        let probs: Vec<f64> = log_probs.iter().map(|lp| lp.exp()).collect();

        let draws = 40_000usize;
        let mut rng = StdRng::seed_from_u64(5);
        let out = AutoSampler::new().sample(&m, draws, &mut rng);
        let mut counts = vec![0usize; dim];
        for s in out.batch.samples() {
            counts[encode_config(s)] += 1;
        }
        // Pearson chi-square; dof = dim − 1 = 15; the 0.999 quantile is
        // ≈ 37.7 — a seeded test comfortably below it when exact.
        let chi2: f64 = (0..dim)
            .map(|x| {
                let expected = probs[x] * draws as f64;
                let diff = counts[x] as f64 - expected;
                diff * diff / expected.max(1e-9)
            })
            .sum();
        assert!(chi2 < 37.7, "chi-square {chi2} rejects exactness");
    }

    #[test]
    fn empirical_mean_log_psi_is_finite_and_sane() {
        let m = model(10, 21);
        let out =
            IncrementalAutoSampler::new().sample(&m, 64, &mut StdRng::seed_from_u64(33));
        assert!(out.log_psi.all_finite());
        // logψ = ½ logπ ≤ 0 for a normalised distribution... not strictly
        // (individual π(x) can exceed... no: π(x) ≤ 1 always). So:
        assert!(out.log_psi.iter().all(|&lp| lp <= 1e-12));
    }

    #[test]
    fn deterministic_given_seed() {
        let m = model(6, 2);
        let a = AutoSampler::new().sample(&m, 10, &mut StdRng::seed_from_u64(4));
        let b = AutoSampler::new().sample(&m, 10, &mut StdRng::seed_from_u64(4));
        assert_eq!(a.batch.as_bytes(), b.batch.as_bytes());
    }
}
