//! Sample-quality diagnostics for MCMC chains.
//!
//! The paper's §2.2 argues that random-walk Metropolis–Hastings degrades
//! in high dimension because samples stay *correlated* and convergence
//! time is *undetermined*.  This module makes those claims measurable:
//!
//! * [`autocorrelation`] — the normalised autocorrelation function of a
//!   scalar chain observable;
//! * [`integrated_autocorrelation_time`] — `τ_int = 1 + 2Σ ρ(t)` with
//!   the standard adaptive truncation (Sokal's window `t < c·τ`);
//! * [`effective_sample_size`] — `ESS = N / τ_int`, the number of
//!   *independent-equivalent* samples a chain actually delivered.
//!
//! Exact AUTO samples are i.i.d. by construction (`τ_int = 1`,
//! `ESS = N`); the tests verify both directions.

/// Normalised autocorrelation `ρ(t)` of a scalar series for lags
/// `0..max_lag` (ρ(0) = 1).  Returns an empty vector for constant
/// series (zero variance — autocorrelation undefined).
pub fn autocorrelation(series: &[f64], max_lag: usize) -> Vec<f64> {
    let n = series.len();
    assert!(n >= 2, "autocorrelation: need at least 2 points");
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    if var == 0.0 {
        return Vec::new();
    }
    let max_lag = max_lag.min(n - 1);
    (0..=max_lag)
        .map(|t| {
            let cov: f64 = (0..n - t)
                .map(|i| (series[i] - mean) * (series[i + t] - mean))
                .sum::<f64>()
                / (n - t) as f64;
            cov / var
        })
        .collect()
}

/// Integrated autocorrelation time `τ_int = 1 + 2 Σ_{t≥1} ρ(t)`,
/// truncated by Sokal's adaptive window (stop at the first `t ≥ c·τ(t)`
/// with `c = 5`), and clamped to `≥ 1`.
///
/// Returns 1.0 for constant or near-i.i.d. series.
pub fn integrated_autocorrelation_time(series: &[f64]) -> f64 {
    let max_lag = (series.len() / 4).max(1);
    let rho = autocorrelation(series, max_lag);
    if rho.is_empty() {
        return 1.0;
    }
    let c = 5.0;
    let mut tau = 1.0;
    for (t, &r) in rho.iter().enumerate().skip(1) {
        tau += 2.0 * r;
        if (t as f64) >= c * tau {
            break;
        }
    }
    tau.max(1.0)
}

/// Effective sample size `N / τ_int`.
pub fn effective_sample_size(series: &[f64]) -> f64 {
    series.len() as f64 / integrated_autocorrelation_time(series)
}

/// Gelman–Rubin potential scale reduction factor `R̂` across chains of
/// equal length: values near 1 indicate the chains agree (converged);
/// values well above 1 indicate the burn-in was insufficient.
pub fn gelman_rubin(chains: &[Vec<f64>]) -> f64 {
    let m = chains.len();
    assert!(m >= 2, "gelman_rubin: need at least 2 chains");
    let n = chains[0].len();
    assert!(n >= 2, "gelman_rubin: chains too short");
    assert!(
        chains.iter().all(|c| c.len() == n),
        "gelman_rubin: ragged chains"
    );
    let chain_means: Vec<f64> = chains
        .iter()
        .map(|c| c.iter().sum::<f64>() / n as f64)
        .collect();
    let grand = chain_means.iter().sum::<f64>() / m as f64;
    // Between-chain variance B/n and within-chain variance W.
    let b_over_n: f64 = chain_means
        .iter()
        .map(|mu| (mu - grand) * (mu - grand))
        .sum::<f64>()
        / (m - 1) as f64;
    let w: f64 = chains
        .iter()
        .zip(&chain_means)
        .map(|(c, mu)| c.iter().map(|x| (x - mu) * (x - mu)).sum::<f64>() / (n - 1) as f64)
        .sum::<f64>()
        / m as f64;
    if w == 0.0 {
        return 1.0;
    }
    let var_plus = (n - 1) as f64 / n as f64 * w + b_over_n;
    (var_plus / w).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn iid_series(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| rng.gen::<f64>()).collect()
    }

    /// AR(1) process with coefficient `phi`: known τ_int = (1+φ)/(1−φ).
    fn ar1_series(n: usize, phi: f64, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = 0.0f64;
        (0..n)
            .map(|_| {
                x = phi * x + (rng.gen::<f64>() - 0.5);
                x
            })
            .collect()
    }

    #[test]
    fn rho_zero_is_one() {
        let s = iid_series(500, 1);
        let rho = autocorrelation(&s, 10);
        assert!((rho[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iid_series_has_tau_near_one() {
        let s = iid_series(20_000, 2);
        let tau = integrated_autocorrelation_time(&s);
        assert!((0.8..1.3).contains(&tau), "τ = {tau}");
        let ess = effective_sample_size(&s);
        assert!(ess > 15_000.0, "ESS = {ess}");
    }

    #[test]
    fn correlated_series_has_large_tau() {
        let phi = 0.9;
        let s = ar1_series(50_000, phi, 3);
        let tau = integrated_autocorrelation_time(&s);
        let expected = (1.0 + phi) / (1.0 - phi); // 19
        assert!(
            (tau - expected).abs() < expected * 0.3,
            "τ = {tau}, AR(1) theory {expected}"
        );
    }

    #[test]
    fn stronger_correlation_means_smaller_ess() {
        let weak = effective_sample_size(&ar1_series(20_000, 0.2, 5));
        let strong = effective_sample_size(&ar1_series(20_000, 0.95, 5));
        assert!(strong < weak / 3.0, "{strong} !< {weak}/3");
    }

    #[test]
    fn constant_series_degenerates_gracefully() {
        let s = vec![2.0; 100];
        assert_eq!(integrated_autocorrelation_time(&s), 1.0);
        assert_eq!(effective_sample_size(&s), 100.0);
    }

    #[test]
    fn gelman_rubin_near_one_for_same_distribution() {
        let chains: Vec<Vec<f64>> = (0..4).map(|i| iid_series(5000, 10 + i)).collect();
        let r = gelman_rubin(&chains);
        assert!((0.99..1.02).contains(&r), "R̂ = {r}");
    }

    #[test]
    fn gelman_rubin_flags_disagreeing_chains() {
        let mut chains: Vec<Vec<f64>> = (0..3).map(|i| iid_series(2000, 20 + i)).collect();
        // One chain stuck in a different mode.
        chains.push(iid_series(2000, 23).iter().map(|x| x + 10.0).collect());
        let r = gelman_rubin(&chains);
        assert!(r > 2.0, "R̂ = {r} should flag divergence");
    }

    /// The headline diagnostic claim, measured on the real samplers: an
    /// MCMC chain's energy series has τ_int >> 1, AUTO's is ~1.
    #[test]
    fn mcmc_chain_is_correlated_auto_is_not() {
        use crate::{AutoSampler, McmcConfig, McmcSampler, Sampler, Thinning};
        use vqmc_nn::{Made, Rbm, WaveFunction};

        let n = 10;
        // MCMC chain trace: use logψ as the scalar observable, 1 chain,
        // no thinning so raw correlation is visible.
        let rbm = Rbm::new(n, n, 3);
        let config = McmcConfig {
            chains: 1,
            burn_in: crate::BurnIn::Fixed(100),
            thinning: Thinning(1),
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let out = McmcSampler::new(config).sample_rbm(&rbm, 4000, &mut rng);
        let tau_mcmc = integrated_autocorrelation_time(out.log_psi.as_slice());

        let made = Made::new(n, 16, 3);
        let out = AutoSampler::new().sample(&made, 4000, &mut rand::rngs::StdRng::seed_from_u64(1));
        let _ = made.num_params();
        let tau_auto = integrated_autocorrelation_time(out.log_psi.as_slice());

        assert!(tau_auto < 1.5, "AUTO τ = {tau_auto} should be ~1");
        assert!(
            tau_mcmc > 3.0 * tau_auto,
            "MCMC τ = {tau_mcmc} vs AUTO τ = {tau_auto}: correlation gap missing"
        );
    }
}
