//! Parallel tempering (replica-exchange MCMC) — the strongest classical
//! fix for the slow mixing the paper attributes to random-walk
//! Metropolis.  `K` replicas sample the *flattened* targets
//! `π^{βₖ}` at inverse temperatures `1 = β₁ > β₂ > … > β_K`, and
//! adjacent replicas periodically propose to swap states with the
//! detailed-balance probability
//!
//! ```text
//! p(swap k, k+1) = min(1, exp((βₖ − βₖ₊₁)(log π(x_{k+1}) − log π(x_k))))
//! ```
//!
//! Hot replicas cross probability barriers easily and feed diverse
//! states down to the cold (`β = 1`) replica, whose states are the
//! output.  Even so, burn-in remains sequential and the output remains
//! correlated — tempering narrows, but does not close, the gap to
//! exact autoregressive sampling (measured in the tests).

use rand::rngs::StdRng;
use rand::Rng;
use vqmc_nn::WaveFunction;
use vqmc_tensor::{SpinBatch, Vector};

use crate::{SampleOutput, SampleStats, Sampler};

/// Configuration of the parallel-tempering sampler.
#[derive(Clone, Debug)]
pub struct TemperingConfig {
    /// Inverse temperatures, strictly decreasing, starting at 1.0
    /// (the physical replica).
    pub betas: Vec<f64>,
    /// Burn-in sweeps (one Metropolis step per replica per sweep).
    pub burn_in: usize,
    /// Propose replica swaps every this many sweeps.
    pub swap_interval: usize,
    /// Keep one cold-replica state every this many sweeps.
    pub thin: usize,
}

impl Default for TemperingConfig {
    fn default() -> Self {
        TemperingConfig {
            betas: vec![1.0, 0.7, 0.45, 0.25],
            burn_in: 200,
            swap_interval: 5,
            thin: 1,
        }
    }
}

impl TemperingConfig {
    /// Geometric temperature ladder `βₖ = ratio^k` with `k = 0..K`.
    pub fn geometric(replicas: usize, ratio: f64) -> Self {
        assert!(replicas >= 2, "tempering needs at least 2 replicas");
        assert!((0.0..1.0).contains(&ratio), "ratio must be in (0,1)");
        TemperingConfig {
            betas: (0..replicas).map(|k| ratio.powi(k as i32)).collect(),
            ..TemperingConfig::default()
        }
    }

    fn validate(&self) {
        assert!(!self.betas.is_empty(), "tempering: empty ladder");
        assert!(
            (self.betas[0] - 1.0).abs() < 1e-12,
            "tempering: the first replica must be at β = 1"
        );
        assert!(
            self.betas.windows(2).all(|w| w[0] > w[1] && w[1] > 0.0),
            "tempering: betas must be strictly decreasing and positive"
        );
    }
}

/// Replica-exchange Metropolis sampler.
#[derive(Clone, Debug, Default)]
pub struct TemperingSampler {
    /// Sampler configuration.
    pub config: TemperingConfig,
}

impl TemperingSampler {
    /// Creates a sampler.
    pub fn new(config: TemperingConfig) -> Self {
        config.validate();
        TemperingSampler { config }
    }

    /// Per-run swap statistics of the last call (for diagnostics the
    /// trait interface can't carry, swap counts are also folded into
    /// `SampleStats::proposals/accepted`).
    fn metropolis_step<W: WaveFunction + ?Sized>(
        wf: &W,
        replicas: &mut SpinBatch,
        log_psi: &mut Vector,
        betas: &[f64],
        rng: &mut StdRng,
        stats: &mut SampleStats,
    ) {
        let n = replicas.num_spins();
        let k = betas.len();
        // One proposed flip per replica, evaluated in a single batched
        // pass.
        let sites: Vec<usize> = (0..k).map(|_| rng.gen_range(0..n)).collect();
        let mut proposal = replicas.clone();
        for (r, &site) in sites.iter().enumerate() {
            proposal.flip(r, site);
        }
        let proposal_log_psi = wf.log_psi(&proposal);
        stats.forward_passes += 1;
        stats.configurations_evaluated += k;
        for r in 0..k {
            stats.proposals += 1;
            // Target at replica r is π^βᵣ = exp(2 βᵣ logψ).
            let log_ratio = 2.0 * betas[r] * (proposal_log_psi[r] - log_psi[r]);
            if log_ratio >= 0.0 || rng.gen::<f64>() < log_ratio.exp() {
                let row: Vec<u8> = proposal.sample(r).to_vec();
                replicas.sample_mut(r).copy_from_slice(&row);
                log_psi[r] = proposal_log_psi[r];
                stats.accepted += 1;
            }
        }
    }

    fn swap_step(
        replicas: &mut SpinBatch,
        log_psi: &mut Vector,
        betas: &[f64],
        rng: &mut StdRng,
        swap_attempts: &mut usize,
        swap_accepts: &mut usize,
    ) {
        let n = replicas.num_spins();
        for r in 0..betas.len() - 1 {
            *swap_attempts += 1;
            let log_pi_r = 2.0 * log_psi[r];
            let log_pi_s = 2.0 * log_psi[r + 1];
            let log_ratio = (betas[r] - betas[r + 1]) * (log_pi_s - log_pi_r);
            if log_ratio >= 0.0 || rng.gen::<f64>() < log_ratio.exp() {
                for i in 0..n {
                    let a = replicas.get(r, i);
                    let b = replicas.get(r + 1, i);
                    replicas.set(r, i, b);
                    replicas.set(r + 1, i, a);
                }
                log_psi.as_mut_slice().swap(r, r + 1);
                *swap_accepts += 1;
            }
        }
    }
}

impl<W: WaveFunction + ?Sized> Sampler<W> for TemperingSampler {
    fn sample_into(&mut self, wf: &W, batch_size: usize, rng: &mut StdRng, dst: &mut SampleOutput) {
        self.config.validate();
        let betas = &self.config.betas;
        let k = betas.len();
        let n = wf.num_spins();
        let mut stats = SampleStats::default();

        let mut replicas = SpinBatch::from_fn(k, n, |_, _| rng.gen::<bool>() as u8);
        let mut log_psi = wf.log_psi(&replicas);
        stats.forward_passes += 1;
        stats.configurations_evaluated += k;

        let mut swap_attempts = 0;
        let mut swap_accepts = 0;
        let mut sweep = 0usize;
        let mut run_sweep = |replicas: &mut SpinBatch,
                             log_psi: &mut Vector,
                             rng: &mut StdRng,
                             stats: &mut SampleStats,
                             sweep: &mut usize| {
            Self::metropolis_step(wf, replicas, log_psi, betas, rng, stats);
            *sweep += 1;
            if sweep.is_multiple_of(self.config.swap_interval) {
                Self::swap_step(
                    replicas,
                    log_psi,
                    betas,
                    rng,
                    &mut swap_attempts,
                    &mut swap_accepts,
                );
            }
        };

        for _ in 0..self.config.burn_in {
            run_sweep(&mut replicas, &mut log_psi, rng, &mut stats, &mut sweep);
        }

        let mut out = SpinBatch::zeros(batch_size, n);
        let mut out_log_psi = Vector::zeros(batch_size);
        let thin = self.config.thin.max(1);
        for slot in 0..batch_size {
            for _ in 0..thin {
                run_sweep(&mut replicas, &mut log_psi, rng, &mut stats, &mut sweep);
            }
            // Output only the cold (β = 1) replica.
            out.sample_mut(slot).copy_from_slice(replicas.sample(0));
            out_log_psi[slot] = log_psi[0];
        }
        *dst = SampleOutput {
            batch: out,
            log_psi: out_log_psi,
            stats,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vqmc_nn::Rbm;
    use vqmc_tensor::batch::{encode_config, enumerate_configs};
    use vqmc_tensor::reduce::log_sum_exp;

    #[test]
    fn geometric_ladder_shape() {
        let c = TemperingConfig::geometric(4, 0.5);
        assert_eq!(c.betas, vec![1.0, 0.5, 0.25, 0.125]);
    }

    #[test]
    #[should_panic(expected = "decreasing")]
    fn non_monotone_ladder_rejected() {
        let c = TemperingConfig {
            betas: vec![1.0, 0.5, 0.7],
            ..Default::default()
        };
        let _ = TemperingSampler::new(c);
    }

    #[test]
    fn cold_replica_converges_to_target() {
        let n = 4;
        let dim = 1usize << n;
        let wf = Rbm::new(n, 5, 9);
        let all = enumerate_configs(n);
        let lw: Vec<f64> = wf.log_psi(&all).iter().map(|l| 2.0 * l).collect();
        let z = log_sum_exp(&lw);
        let probs: Vec<f64> = lw.iter().map(|l| (l - z).exp()).collect();

        let draws = 20_000;
        let mut sampler = TemperingSampler::new(TemperingConfig {
            burn_in: 300,
            ..Default::default()
        });
        let out = sampler.sample(&wf, draws, &mut StdRng::seed_from_u64(11));
        let mut counts = vec![0usize; dim];
        for s in out.batch.samples() {
            counts[encode_config(s)] += 1;
        }
        let tv: f64 = (0..dim)
            .map(|x| (counts[x] as f64 / draws as f64 - probs[x]).abs())
            .sum::<f64>()
            / 2.0;
        assert!(tv < 0.05, "TV distance {tv}");
    }

    #[test]
    fn log_psi_output_consistent() {
        let wf = Rbm::new(6, 6, 3);
        let out = TemperingSampler::default().sample(&wf, 20, &mut StdRng::seed_from_u64(1));
        let fresh = wf.log_psi(&out.batch);
        for s in 0..20 {
            assert!((out.log_psi[s] - fresh[s]).abs() < 1e-10);
        }
    }

    #[test]
    fn tempering_mixes_better_than_plain_metropolis_on_peaked_target() {
        // Sharpen an RBM (scale its parameters) so the landscape has
        // deep modes; compare integrated autocorrelation times.
        use crate::diagnostics::integrated_autocorrelation_time;
        use crate::{BurnIn, McmcConfig, McmcSampler, Thinning};
        let n = 8;
        let mut wf = Rbm::new(n, n, 21);
        let mut p = wf.params();
        p.scale(3.0);
        wf.set_params(&p);

        let draws = 4000;
        let plain_cfg = McmcConfig {
            chains: 1,
            burn_in: BurnIn::Fixed(300),
            thinning: Thinning(1),
        };
        let plain =
            McmcSampler::new(plain_cfg).sample_rbm(&wf, draws, &mut StdRng::seed_from_u64(2));
        let tau_plain = integrated_autocorrelation_time(plain.log_psi.as_slice());

        let tempered = TemperingSampler::new(TemperingConfig {
            burn_in: 300,
            ..Default::default()
        })
        .sample(&wf, draws, &mut StdRng::seed_from_u64(2));
        let tau_temp = integrated_autocorrelation_time(tempered.log_psi.as_slice());

        assert!(
            tau_temp < tau_plain,
            "tempering τ = {tau_temp} should beat plain Metropolis τ = {tau_plain}"
        );
        // ... but it still cannot reach the i.i.d. τ = 1 of exact
        // sampling for free: the cost is k-fold replicas per sweep.
        assert!(tempered.stats.configurations_evaluated > draws);
    }
}
