//! Closed-form parallel-efficiency models from the paper's §4.
//!
//! These are the *analytical* scaling claims; the `repro_efficiency`
//! bench regenerates the numbers, and the unit tests here pin the
//! qualitative behaviour (the burn-in term throttles MCMC speedup, AUTO
//! speedup is asymptotically ideal).

/// The paper's Eq. 14: speedup of MCMC sampling when `n_samples` are
/// drawn on each of `l` independent units, with `k` burn-in steps and
/// thinning interval `j` per unit.
///
/// ```text
/// speedup(L) = (k + (nL − 1)j + 1) / (k + (n − 1)j + 1) = a + bL
/// ```
///
/// The slope `b = nj / (k + (n−1)j + 1)` decays from 1 toward 0 as the
/// (non-parallelisable) burn-in `k` grows.
pub fn mcmc_speedup(k: usize, j: usize, n_samples: usize, l: usize) -> f64 {
    let (k, j, n, l) = (k as f64, j as f64, n_samples as f64, l as f64);
    (k + (n * l - 1.0) * j + 1.0) / (k + (n - 1.0) * j + 1.0)
}

/// The slope `b` of the affine speedup law `a + bL` (Eq. 14).
pub fn mcmc_speedup_slope(k: usize, j: usize, n_samples: usize) -> f64 {
    let (k, j, n) = (k as f64, j as f64, n_samples as f64);
    n * j / (k + (n - 1.0) * j + 1.0)
}

/// The paper's Eq. 15: speedup of AUTO sampling across `l` units when
/// each unit draws `mbs` samples of an `n`-spin model with hidden width
/// `h`.  Compute is `O(h·n²·mbs)` per unit; the only serial term is the
/// `O(h·n)` gradient allreduce.
///
/// ```text
/// speedup(L) = L · (h n² mbs) / (h n² mbs + h n)
///            = L · (n·mbs) / (n·mbs + 1)
/// ```
pub fn auto_speedup(h: usize, n: usize, mbs: usize, l: usize) -> f64 {
    let compute = (h * n * n * mbs) as f64;
    let comm = (h * n) as f64;
    l as f64 * compute / (compute + comm)
}

/// Parallel efficiency (speedup / L) of the AUTO scheme — approaches 1
/// for large `n` or `mbs` (the paper's "approximately L" claim).
pub fn auto_efficiency(h: usize, n: usize, mbs: usize, l: usize) -> f64 {
    auto_speedup(h, n, mbs, l) / l as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mcmc_speedup_is_affine_in_l() {
        let (k, j, n) = (300, 2, 64);
        let s1 = mcmc_speedup(k, j, n, 1);
        let s2 = mcmc_speedup(k, j, n, 2);
        let s3 = mcmc_speedup(k, j, n, 3);
        // Equal increments.
        assert!(((s2 - s1) - (s3 - s2)).abs() < 1e-12);
        // Increment equals the closed-form slope.
        assert!(((s2 - s1) - mcmc_speedup_slope(k, j, n)).abs() < 1e-12);
        // L = 1 is exactly 1.
        assert!((s1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn burn_in_kills_mcmc_scaling() {
        // Slope decays monotonically toward 0 as k grows; without
        // burn-in or thinning overhead it is near-ideal.
        let n = 128;
        let no_burn = mcmc_speedup_slope(0, 1, n);
        assert!(no_burn > 0.99);
        let mut prev = no_burn;
        for k in [100, 1000, 10_000, 100_000] {
            let b = mcmc_speedup_slope(k, 1, n);
            assert!(b < prev, "slope must decay with k");
            prev = b;
        }
        assert!(prev < 0.01, "huge burn-in should flatten speedup");
    }

    #[test]
    fn auto_efficiency_near_one() {
        // Paper's regime: any realistic n/mbs gives efficiency ≈ 1.
        let eff = auto_efficiency(424, 10_000, 4, 24);
        assert!(eff > 0.999, "efficiency {eff}");
        // Degenerate tiny case still below 1 but positive.
        let eff_tiny = auto_efficiency(4, 2, 1, 8);
        assert!(eff_tiny > 0.5 && eff_tiny < 1.0);
    }

    #[test]
    fn auto_speedup_scales_linearly() {
        let s8 = auto_speedup(100, 500, 16, 8);
        let s16 = auto_speedup(100, 500, 16, 16);
        assert!((s16 / s8 - 2.0).abs() < 1e-9);
    }
}
