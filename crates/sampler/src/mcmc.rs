//! Random-walk Metropolis–Hastings sampling (the paper's MCMC baseline,
//! §2.2 / §5.1).
//!
//! `c` chains evolve in lock-step; a step proposes one uniformly random
//! single-spin flip per chain and accepts with probability
//! `min(1, π(y)/π(x)) = min(1, exp(2·(logψ(y) − logψ(x))))`.  All `c`
//! proposals are evaluated in **one batched forward pass** — exactly how
//! a GPU implementation amortises the network cost, and the unit in
//! which the paper's Figure 1 counts `k + bs·j/c` passes.
//!
//! The knobs mirror the paper's ablations:
//!
//! * burn-in `k` — [`BurnIn::Linear`] gives the paper's default
//!   `k = 3n + 100`; [`BurnIn::Fixed`] covers the Table 4 Scheme 1
//!   presets (`n`, `10n`).
//! * thinning `j` — [`Thinning`] covers Scheme 2 (`×2`, `×5`, `×10`).
//!
//! For RBM wavefunctions a cached `O(h)`-per-proposal fast path
//! ([`McmcSampler::sample_rbm`]) exploits single-flip structure; it
//! draws the same decisions as the generic path given the same RNG and
//! is property-tested equivalent.

use rand::rngs::StdRng;
use rand::Rng;
use vqmc_nn::{Rbm, WaveFunction};
use vqmc_tensor::{SpinBatch, Vector};

use crate::{SampleOutput, SampleStats, Sampler};

/// Burn-in schedule: how many initial sweeps each chain discards.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BurnIn {
    /// A fixed number of steps (Table 4 Scheme 1: `n`, `10n`).
    Fixed(usize),
    /// `k = mult·n + offset` (the paper's default is `3n + 100`).
    Linear {
        /// Multiplier on the spin count.
        mult: usize,
        /// Additive offset.
        offset: usize,
    },
}

impl BurnIn {
    /// The paper's §5.1 default, `k = 3n + 100`.
    pub fn paper_default() -> Self {
        BurnIn::Linear { mult: 3, offset: 100 }
    }

    /// Resolves the schedule for an `n`-spin problem.
    pub fn steps(&self, n: usize) -> usize {
        match *self {
            BurnIn::Fixed(k) => k,
            BurnIn::Linear { mult, offset } => mult * n + offset,
        }
    }
}

/// Thinning: keep every `j`-th post-burn-in state (Table 4 Scheme 2).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Thinning(pub usize);

impl Default for Thinning {
    fn default() -> Self {
        Thinning(1)
    }
}

/// Configuration of the Metropolis–Hastings sampler.
#[derive(Clone, Copy, Debug)]
pub struct McmcConfig {
    /// Number of parallel chains `c` (the paper uses 2).
    pub chains: usize,
    /// Burn-in schedule.
    pub burn_in: BurnIn,
    /// Thinning interval `j ≥ 1`.
    pub thinning: Thinning,
}

impl Default for McmcConfig {
    fn default() -> Self {
        McmcConfig {
            chains: 2,
            burn_in: BurnIn::paper_default(),
            thinning: Thinning::default(),
        }
    }
}

/// Random-walk Metropolis–Hastings sampler.
#[derive(Clone, Copy, Debug, Default)]
pub struct McmcSampler {
    /// Sampler configuration.
    pub config: McmcConfig,
}

impl McmcSampler {
    /// Creates a sampler with the paper's defaults (2 chains,
    /// `k = 3n + 100`, no thinning).
    pub fn new(config: McmcConfig) -> Self {
        McmcSampler { config }
    }

    /// RBM fast path: identical Markov kernel, but each proposal costs
    /// `O(h)` via the cached hidden pre-activations instead of a full
    /// `O(n·h)` forward pass.
    pub fn sample_rbm(&self, wf: &Rbm, batch_size: usize, rng: &mut StdRng) -> SampleOutput {
        let n = wf.num_spins();
        let c = self.config.chains.max(1);
        let k = self.config.burn_in.steps(n);
        let j = self.config.thinning.0.max(1);
        let mut stats = SampleStats::default();

        // Chain state: configuration, cached z = Wx + b, cached logψ.
        let mut configs: Vec<Vec<u8>> = (0..c)
            .map(|_| (0..n).map(|_| rng.gen::<bool>() as u8).collect())
            .collect();
        let mut hidden: Vec<Vector> = configs
            .iter()
            .map(|x| wf.hidden_preactivations(x))
            .collect();

        let mut out = SpinBatch::zeros(batch_size, n);
        let mut out_log_psi = Vector::zeros(batch_size);
        let mut collected = 0usize;
        let mut step = 0usize;

        while collected < batch_size {
            // One lock-step sweep over the chains = one batched pass.
            for chain in 0..c {
                let site = rng.gen_range(0..n);
                let delta = wf.flip_delta_log_psi(&configs[chain], &hidden[chain], site);
                stats.proposals += 1;
                // Accept with min(1, exp(2Δ)).
                if 2.0 * delta >= 0.0 || rng.gen::<f64>() < (2.0 * delta).exp() {
                    wf.update_hidden_after_flip(&configs[chain], &mut hidden[chain], site);
                    configs[chain][site] ^= 1;
                    stats.accepted += 1;
                }
            }
            stats.forward_passes += 1;
            stats.configurations_evaluated += c;
            step += 1;

            if step > k && (step - k).is_multiple_of(j) {
                for chain in 0..c {
                    if collected == batch_size {
                        break;
                    }
                    out.sample_mut(collected).copy_from_slice(&configs[chain]);
                    out_log_psi[collected] =
                        wf.log_psi_from_hidden(&configs[chain], &hidden[chain]);
                    collected += 1;
                }
            }
        }
        SampleOutput {
            batch: out,
            log_psi: out_log_psi,
            stats,
        }
    }
}

impl<W: WaveFunction + ?Sized> Sampler<W> for McmcSampler {
    fn sample_into(&mut self, wf: &W, batch_size: usize, rng: &mut StdRng, dst: &mut SampleOutput) {
        let n = wf.num_spins();
        let c = self.config.chains.max(1);
        let k = self.config.burn_in.steps(n);
        let j = self.config.thinning.0.max(1);
        let mut stats = SampleStats::default();

        // Initialise chains uniformly at random.
        let mut current = SpinBatch::from_fn(c, n, |_, _| rng.gen::<bool>() as u8);
        let mut log_psi = wf.log_psi(&current);
        stats.forward_passes += 1;
        stats.configurations_evaluated += c;

        let mut out = SpinBatch::zeros(batch_size, n);
        let mut out_log_psi = Vector::zeros(batch_size);
        let mut collected = 0usize;
        let mut step = 0usize;

        while collected < batch_size {
            // Propose one flip per chain; evaluate all proposals in one
            // batched forward pass (the GPU amortisation).
            let sites: Vec<usize> = (0..c).map(|_| rng.gen_range(0..n)).collect();
            let mut proposal = current.clone();
            for (chain, &site) in sites.iter().enumerate() {
                proposal.flip(chain, site);
            }
            let proposal_log_psi = wf.log_psi(&proposal);
            stats.forward_passes += 1;
            stats.configurations_evaluated += c;

            for chain in 0..c {
                stats.proposals += 1;
                let log_ratio = 2.0 * (proposal_log_psi[chain] - log_psi[chain]);
                if log_ratio >= 0.0 || rng.gen::<f64>() < log_ratio.exp() {
                    // Adopt the proposed row.
                    let row: Vec<u8> = proposal.sample(chain).to_vec();
                    current.sample_mut(chain).copy_from_slice(&row);
                    log_psi[chain] = proposal_log_psi[chain];
                    stats.accepted += 1;
                }
            }
            step += 1;

            if step > k && (step - k).is_multiple_of(j) {
                for chain in 0..c {
                    if collected == batch_size {
                        break;
                    }
                    out.sample_mut(collected)
                        .copy_from_slice(current.sample(chain));
                    out_log_psi[collected] = log_psi[chain];
                    collected += 1;
                }
            }
        }
        *dst = SampleOutput {
            batch: out,
            log_psi: out_log_psi,
            stats,
        };
    }
}

/// [`Sampler`] adapter that routes RBM sampling through the `O(h)`
/// cached fast path — what the trainer uses for the paper's RBM&MCMC
/// configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct RbmFastMcmc(pub McmcSampler);

impl Sampler<Rbm> for RbmFastMcmc {
    fn sample_into(&mut self, wf: &Rbm, batch_size: usize, rng: &mut StdRng, dst: &mut SampleOutput) {
        *dst = self.0.sample_rbm(wf, batch_size, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vqmc_nn::{Made, Rbm, WaveFunction};
    use vqmc_tensor::batch::{encode_config, enumerate_configs};
    use vqmc_tensor::reduce::log_sum_exp;

    #[test]
    fn burn_in_schedules() {
        assert_eq!(BurnIn::paper_default().steps(100), 400);
        assert_eq!(BurnIn::Fixed(50).steps(100), 50);
        assert_eq!(BurnIn::Linear { mult: 10, offset: 0 }.steps(7), 70);
    }

    #[test]
    fn produces_requested_batch() {
        let wf = Rbm::new(6, 6, 3);
        let mut sampler = McmcSampler::default();
        let out = sampler.sample(&wf, 37, &mut StdRng::seed_from_u64(1));
        assert_eq!(out.batch.batch_size(), 37);
        assert_eq!(out.log_psi.len(), 37);
        assert!(out.stats.proposals > 0);
        assert!(out.stats.accepted <= out.stats.proposals);
    }

    #[test]
    fn forward_pass_cost_matches_figure1_model() {
        // k + ceil(bs/c)·j passes after burn-in (plus 1 init pass).
        let wf = Rbm::new(5, 5, 9);
        let config = McmcConfig {
            chains: 2,
            burn_in: BurnIn::Fixed(20),
            thinning: Thinning(3),
        };
        let out = McmcSampler::new(config).sample(&wf, 10, &mut StdRng::seed_from_u64(2));
        // 20 burn-in sweeps + 5 collection points 3 sweeps apart = 35
        // sweeps, + 1 initial logψ pass.
        assert_eq!(out.stats.forward_passes, 36);
    }

    #[test]
    fn log_psi_output_is_consistent() {
        let wf = Rbm::new(5, 7, 13);
        let out = McmcSampler::default().sample(&wf, 8, &mut StdRng::seed_from_u64(3));
        let recomputed = wf.log_psi(&out.batch);
        for s in 0..8 {
            assert!((out.log_psi[s] - recomputed[s]).abs() < 1e-10);
        }
    }

    #[test]
    fn rbm_fast_path_log_psi_consistent() {
        let wf = Rbm::new(6, 8, 5);
        let out = McmcSampler::default().sample_rbm(&wf, 12, &mut StdRng::seed_from_u64(7));
        let recomputed = wf.log_psi(&out.batch);
        for s in 0..12 {
            assert!((out.log_psi[s] - recomputed[s]).abs() < 1e-9);
        }
    }

    /// Long-chain MCMC must converge to |ψ|²: total-variation distance
    /// against the exact distribution shrinks well below that of a
    /// uniform reference.
    #[test]
    fn long_chain_approaches_target_distribution() {
        let n = 4;
        let dim = 1usize << n;
        let wf = Rbm::new(n, 6, 11);

        // Exact π from enumeration.
        let all = enumerate_configs(n);
        let log_psi = wf.log_psi(&all);
        let log_weights: Vec<f64> = log_psi.iter().map(|lp| 2.0 * lp).collect();
        let log_z = log_sum_exp(&log_weights);
        let probs: Vec<f64> = log_weights.iter().map(|lw| (lw - log_z).exp()).collect();

        let draws = 30_000;
        let config = McmcConfig {
            chains: 2,
            burn_in: BurnIn::Fixed(500),
            thinning: Thinning(2),
        };
        let out = McmcSampler::new(config).sample_rbm(&wf, draws, &mut StdRng::seed_from_u64(17));
        let mut counts = vec![0usize; dim];
        for s in out.batch.samples() {
            counts[encode_config(s)] += 1;
        }
        let tv: f64 = (0..dim)
            .map(|x| (counts[x] as f64 / draws as f64 - probs[x]).abs())
            .sum::<f64>()
            / 2.0;
        let tv_uniform: f64 = (0..dim)
            .map(|x| (1.0 / dim as f64 - probs[x]).abs())
            .sum::<f64>()
            / 2.0;
        assert!(
            tv < 0.05 && tv < tv_uniform / 2.0,
            "TV {tv} too large (uniform reference {tv_uniform})"
        );
    }

    #[test]
    fn generic_path_works_for_made_too() {
        // MCMC is model-agnostic; pairing it with MADE is legal (just
        // pointless given AUTO exists) — the paper's framing, tested.
        let wf = Made::new(5, 8, 2);
        let out = McmcSampler::default().sample(&wf, 6, &mut StdRng::seed_from_u64(8));
        assert_eq!(out.batch.batch_size(), 6);
        let recomputed = wf.log_psi(&out.batch);
        for s in 0..6 {
            assert!((out.log_psi[s] - recomputed[s]).abs() < 1e-10);
        }
    }

    #[test]
    fn acceptance_rate_reasonable_for_smooth_model() {
        let wf = Rbm::new(8, 8, 21);
        let out = McmcSampler::default().sample_rbm(&wf, 200, &mut StdRng::seed_from_u64(9));
        let rate = out.stats.acceptance_rate();
        // A near-uniform freshly initialised RBM accepts most flips.
        assert!(rate > 0.3, "acceptance rate {rate} suspiciously low");
    }
}
