//! Cache-blocked packed GEMM over **f32** slices — the mixed-precision
//! twin of the `nt` variant in [`crate::gemm`], used by the f32
//! inference arm (`MadeF32`).
//!
//! Only `nt` exists here (`C[m,n] = A[m,k] * B[n,k]^T`): inference is
//! forward passes only, and a fully-connected forward streams both
//! operands row-major in exactly this layout.  The driver is the same
//! BLIS-style loop nest as the f64 one — operands repacked into
//! contiguous `kc×8` / `kc×4` micro-panels, inner loop the 8×4 FMA
//! microkernel from the [`crate::simd::KernelsF32`] table — with `f32`
//! elements throughout the panels and tile.  The per-element `k`-block
//! accumulation order matches the f64 driver, so the f32-vs-f64 error
//! is pure rounding, bounded by the usual `O(k·ε₃₂)` dot-product bound
//! (property-tested in `tests/simd_f32_proptests.rs`).
//!
//! Unlike the f64 driver this one is **sequential**: the serving hot
//! path parallelises one level up (the batcher shards requests across
//! engine calls), and the crate's `par` pool is already saturated by
//! the f64 kernels the f32 arm shares the process with.  Bit-identity
//! across thread counts is therefore trivial; bit-identity across SIMD
//! arms holds because the three `micro_8x4` twins share their FMA
//! chain structure.
//!
//! Pack buffers come from a thread-local `f32` pool with the same
//! zero-fill contract as the f64 `PACK_POOL` (padded panel tails read
//! as zero), so the steady state allocates nothing.

use std::cell::RefCell;

use crate::simd::{self, MicroKernelF32};

/// `k`-dimension block depth of the packed panels (matches the f64
/// driver's `KC`; an 8-row f32 A panel is then 8 KiB — half the f64
/// footprint at the same depth).
pub const KC: usize = 256;
/// Packed A-block rows per sweep (matches the f64 driver's `MC`).
const MC: usize = 256;
/// Packed B-panel columns per sweep.
const NC: usize = 2048;
/// Microkernel tile height.
pub const MR: usize = 8;
/// Microkernel tile width.
pub const NR: usize = 4;

thread_local! {
    /// Pool of zero-filled `f32` pack buffers (same contract as the f64
    /// `PACK_POOL`: `take` returns exactly-`len` zeroed storage, growing
    /// capacity to the high-water mark so the steady state allocates
    /// nothing).
    static PACK_POOL32: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

fn take_pack(len: usize) -> Vec<f32> {
    PACK_POOL32.with(|p| {
        let mut pool = p.borrow_mut();
        let mut buf = pool.pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    })
}

fn give_pack(buf: Vec<f32>) {
    PACK_POOL32.with(|p| p.borrow_mut().push(buf));
}

/// Gathers rows `[r0, r0+rc)` (k-slice `[l0, l0+lc)`) of a row-major
/// `stride`-wide operand into `ph`-high micro-panels:
/// `buf[panel*ph*lc + p*ph + r] = src[(r0 + panel*ph + r)*stride + l0 + p]`.
/// Panel tails beyond `rc` stay at the pool's zero fill.
#[allow(clippy::too_many_arguments)]
fn pack_rows(
    src: &[f32],
    stride: usize,
    r0: usize,
    rc: usize,
    l0: usize,
    lc: usize,
    ph: usize,
    buf: &mut [f32],
) {
    for (ip, panel) in buf.chunks_mut(ph * lc).enumerate() {
        let rows_here = ph.min(rc.saturating_sub(ip * ph));
        for r in 0..rows_here {
            let row_base = (r0 + ip * ph + r) * stride + l0;
            let row = &src[row_base..row_base + lc];
            for (p, &v) in row.iter().enumerate() {
                panel[p * ph + r] = v;
            }
        }
    }
}

/// `C[m,n] = A[m,k] * B[n,k]^T` over row-major `f32` slices, `C`
/// overwritten.  Runs the packed loop nest with the dispatched f32
/// microkernel (vector arms after feature detection, the portable twin
/// otherwise — one code path for every arm).
pub fn gemm_nt_f32(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_nt_f32_with(m, n, k, a, b, c, simd::kernels_f32().micro_8x4)
}

/// [`gemm_nt_f32`] with an explicit microkernel.  Hidden: the property
/// tests use it to pit the vector microkernels against the portable
/// twin on one machine.
#[doc(hidden)]
#[allow(clippy::too_many_arguments)]
pub fn gemm_nt_f32_with(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    micro: MicroKernelF32,
) {
    assert_eq!(a.len(), m * k, "gemm_nt_f32: A is not {m}x{k}");
    assert_eq!(b.len(), n * k, "gemm_nt_f32: B^T is not {n}x{k}");
    assert_eq!(c.len(), m * n, "gemm_nt_f32: C is not {m}x{n}");
    c.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let mut tile = [0.0f32; MR * NR];
    let mut l0 = 0;
    while l0 < k {
        let lc = KC.min(k - l0);
        let mut j0 = 0;
        while j0 < n {
            let jc = NC.min(n - j0);
            let jpanels = jc.div_ceil(NR);
            let mut bbuf = take_pack(jpanels * NR * lc);
            pack_rows(b, k, j0, jc, l0, lc, NR, &mut bbuf);
            let mut i0 = 0;
            while i0 < m {
                let ic = MC.min(m - i0);
                let ipanels = ic.div_ceil(MR);
                let mut abuf = take_pack(ipanels * MR * lc);
                pack_rows(a, k, i0, ic, l0, lc, MR, &mut abuf);
                for jp in 0..jpanels {
                    let j = j0 + jp * NR;
                    let jv = NR.min(j0 + jc - j);
                    let bp = bbuf[jp * NR * lc..].as_ptr();
                    for ip in 0..ipanels {
                        let i = i0 + ip * MR;
                        let iv = MR.min(i0 + ic - i);
                        let ap = abuf[ip * MR * lc..].as_ptr();
                        // SAFETY: the packed panels hold `lc` groups of
                        // MR/NR elements, `tile` has 32, and vector
                        // microkernels are only installed in the table
                        // after runtime feature detection.
                        unsafe { micro(lc, ap, bp, tile.as_mut_ptr()) };
                        for r in 0..iv {
                            let base = (i + r) * n + j;
                            for (cv, tv) in c[base..base + jv].iter_mut().zip(&tile[r * NR..]) {
                                *cv += tv;
                            }
                        }
                    }
                }
                give_pack(abuf);
                i0 += ic;
            }
            give_pack(bbuf);
            j0 += jc;
        }
        l0 += lc;
    }
}

/// Naive triple-loop f64-accumulated reference for the tests: the
/// "infinitely precise" answer the f32 kernel is bounded against.
pub fn gemm_nt_f32_reference(m: usize, n: usize, k: usize, a: &[f32], b: &[f32]) -> Vec<f64> {
    let mut c = vec![0.0f64; m * n];
    for r in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for l in 0..k {
                acc += a[r * k + l] as f64 * b[j * k + l] as f64;
            }
            c[r * n + j] = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 1000) as f32 / 500.0 - 1.0
            })
            .collect()
    }

    /// `|C - C_ref| ≤ 2k²·ε₃₂` — the standard `γ_k·Σ|aᵢbᵢ|` dot bound
    /// with operands in [-1, 1] (so `Σ|aᵢbᵢ| ≤ k`), doubled for slack.
    fn check_bound(m: usize, n: usize, k: usize, c: &[f32], c_ref: &[f64]) {
        let kf = k.max(1) as f64;
        let bound = 2.0 * kf * kf * f32::EPSILON as f64;
        for (i, (&cv, &rv)) in c.iter().zip(c_ref).enumerate() {
            assert!(
                (cv as f64 - rv).abs() <= bound.max(1e-6),
                "({m},{n},{k}) element {i}: {cv} vs {rv}"
            );
        }
    }

    #[test]
    fn nt_matches_reference_across_tile_remainders() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 3, 3),
            (8, 4, 8),
            (5, 7, 9),
            (9, 11, KC + 5),
            (MR * 3 + 2, NR * 5 + 1, 17),
            (64, 33, 300),
        ] {
            let a = fill(m * k, m as u64 + 1);
            let b = fill(n * k, n as u64 + 100);
            let mut c = vec![0.0f32; m * n];
            gemm_nt_f32(m, n, k, &a, &b, &mut c);
            let c_ref = gemm_nt_f32_reference(m, n, k, &a, &b);
            check_bound(m, n, k, &c, &c_ref);
        }
    }

    #[test]
    fn arms_are_bit_identical() {
        let (m, n, k) = (37, 29, KC + 13);
        let a = fill(m * k, 5);
        let b = fill(n * k, 6);
        let mut c_port = vec![0.0f32; m * n];
        gemm_nt_f32_with(
            m,
            n,
            k,
            &a,
            &b,
            &mut c_port,
            simd::portable_kernels_f32().micro_8x4,
        );
        if let Some(t) = simd::avx2_kernels_f32() {
            let mut c_vec = vec![0.0f32; m * n];
            gemm_nt_f32_with(m, n, k, &a, &b, &mut c_vec, t.micro_8x4);
            assert!(c_port
                .iter()
                .zip(&c_vec)
                .all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }

    #[test]
    fn degenerate_shapes() {
        let mut c = vec![7.0f32; 6];
        gemm_nt_f32(2, 3, 0, &[], &[], &mut c);
        assert!(c.iter().all(|&v| v == 0.0));
        let mut empty: Vec<f32> = Vec::new();
        gemm_nt_f32(0, 3, 4, &[], &fill(12, 1), &mut empty);
    }
}
