//! AVX2+FMA arm of the dispatch table (x86_64 only, compiled out under
//! `--features force-scalar`).
//!
//! Every kernel is the vector mirror of a function in
//! `simd::portable`: identical operation sequence (blends for the
//! scalar branches, `vfmadd` for every `mul_add`) and, for the
//! reductions, the identical lane-striped accumulator layout and
//! horizontal-sum order.  Lanes outside the vector-safe input range of
//! the vendored `exp` (`|·| ≥ 708`, or NaN) are detected with one
//! compare+movemask per 4-pack and routed through the *same* portable
//! per-element functions, so exceptional inputs cost a branch, not a
//! wrong answer — and both arms stay bit-identical everywhere.
//!
//! # Safety
//! Every `fn` here is `unsafe` with `#[target_feature(enable = "avx2",
//! enable = "fma")]`: callers must have verified
//! `is_x86_feature_detected!` for both features.  The dispatch table in
//! `simd` is the only production caller and installs these pointers
//! strictly after detection.

#![allow(clippy::missing_safety_doc)]

use core::arch::x86_64::*;

use super::exp;
use super::portable;

#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn abs_pd(x: __m256d) -> __m256d {
    _mm256_andnot_pd(_mm256_set1_pd(-0.0), x)
}

#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn neg_pd(x: __m256d) -> __m256d {
    _mm256_xor_pd(x, _mm256_set1_pd(-0.0))
}

/// Vector `e^x` for lanes with `|x| ≤ EXP_SAFE_BOUND` — the exact
/// mirror of `exp::exp_bounded` (same reduction, same Horner chain,
/// same exact power-of-two scaling; the rounded integer `n` is read
/// straight out of the magic-constant sum's bit pattern).
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn exp_pd(x: __m256d) -> __m256d {
    let magic = _mm256_set1_pd(exp::ROUND_MAGIC);
    let t = _mm256_mul_pd(x, _mm256_set1_pd(exp::LOG2E));
    let m = _mm256_add_pd(t, magic);
    let nf = _mm256_sub_pd(m, magic);
    let mut r = _mm256_fnmadd_pd(nf, _mm256_set1_pd(exp::LN2_HI), x);
    r = _mm256_fnmadd_pd(nf, _mm256_set1_pd(exp::LN2_LO), r);
    let mut p = _mm256_set1_pd(exp::EXP_POLY[13]);
    let mut k = 13;
    while k > 0 {
        k -= 1;
        p = _mm256_fmadd_pd(p, r, _mm256_set1_pd(exp::EXP_POLY[k]));
    }
    // m and ROUND_MAGIC share a binade, so their bit patterns differ by
    // exactly the integer n; build 2^n in the exponent field.
    let ni = _mm256_sub_epi64(_mm256_castpd_si256(m), _mm256_castpd_si256(magic));
    let scale = _mm256_castsi256_pd(_mm256_slli_epi64::<52>(_mm256_add_epi64(
        ni,
        _mm256_set1_epi64x(1023),
    )));
    _mm256_mul_pd(p, scale)
}

/// Vector `ln(1+z)` for `z ∈ [0, 1]` — mirror of `exp::log1p01`: both
/// the `f = z` and the halved-with-correction arms are evaluated and
/// blended on the `z > √2−1` mask.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn log1p01_pd(z: __m256d) -> __m256d {
    let one = _mm256_set1_pd(1.0);
    let big = _mm256_cmp_pd::<_CMP_GT_OQ>(z, _mm256_set1_pd(exp::SQRT2M1));
    let u = _mm256_add_pd(one, z);
    let c_full = _mm256_div_pd(_mm256_sub_pd(z, _mm256_sub_pd(u, one)), u);
    let c = _mm256_and_pd(big, c_full);
    let f = _mm256_blendv_pd(
        z,
        _mm256_sub_pd(_mm256_mul_pd(_mm256_set1_pd(0.5), u), one),
        big,
    );
    let kf = _mm256_and_pd(big, one);
    let s = _mm256_div_pd(f, _mm256_add_pd(_mm256_set1_pd(2.0), f));
    let s2 = _mm256_mul_pd(s, s);
    let mut rp = _mm256_set1_pd(exp::LOG_POLY[6]);
    let mut i = 6;
    while i > 0 {
        i -= 1;
        rp = _mm256_fmadd_pd(rp, s2, _mm256_set1_pd(exp::LOG_POLY[i]));
    }
    let r = _mm256_mul_pd(s2, rp);
    let hfsq = _mm256_mul_pd(_mm256_mul_pd(_mm256_set1_pd(0.5), f), f);
    let main = _mm256_sub_pd(
        f,
        _mm256_sub_pd(hfsq, _mm256_mul_pd(s, _mm256_add_pd(hfsq, r))),
    );
    _mm256_fmadd_pd(
        kf,
        _mm256_set1_pd(exp::LN2_HI),
        _mm256_add_pd(main, _mm256_fmadd_pd(kf, _mm256_set1_pd(exp::LN2_LO), c)),
    )
}

/// True (all-ones) in lanes where the `exp` fast path does not apply:
/// `|scaled| ≥ bound` or NaN (`NLT_UQ` catches unordered).
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn exceptional_mask(ax: __m256d, bound: f64) -> i32 {
    _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_NLT_UQ>(ax, _mm256_set1_pd(bound)))
}

macro_rules! slice_kernel {
    ($name:ident, $bound:expr, $scalar:path, |$x:ident, $ax:ident| $vector:expr) => {
        /// See the portable twin of the same name for semantics.
        #[target_feature(enable = "avx2", enable = "fma")]
        pub unsafe fn $name(xs: &mut [f64]) {
            let n = xs.len();
            let p = xs.as_mut_ptr();
            let mut i = 0;
            while i + 4 <= n {
                let $x = _mm256_loadu_pd(p.add(i));
                let $ax = abs_pd($x);
                if exceptional_mask($ax, $bound) != 0 {
                    for j in i..i + 4 {
                        *p.add(j) = $scalar(*p.add(j));
                    }
                } else {
                    _mm256_storeu_pd(p.add(i), $vector);
                }
                i += 4;
            }
            while i < n {
                *p.add(i) = $scalar(*p.add(i));
                i += 1;
            }
        }
    };
}

slice_kernel!(
    sigmoid_slice,
    exp::EXP_SAFE_BOUND,
    portable::sigmoid,
    |x, ax| {
        let one = _mm256_set1_pd(1.0);
        let t = exp_pd(neg_pd(ax));
        let ge0 = _mm256_cmp_pd::<_CMP_GE_OQ>(x, _mm256_setzero_pd());
        let num = _mm256_blendv_pd(t, one, ge0);
        _mm256_div_pd(num, _mm256_add_pd(one, t))
    }
);

slice_kernel!(
    log_sigmoid_slice,
    exp::EXP_SAFE_BOUND,
    portable::log_sigmoid,
    |x, ax| {
        let t = exp_pd(neg_pd(ax));
        let lt0 = _mm256_cmp_pd::<_CMP_LT_OQ>(x, _mm256_setzero_pd());
        let neg = _mm256_blendv_pd(_mm256_setzero_pd(), x, lt0);
        _mm256_sub_pd(neg, log1p01_pd(t))
    }
);

slice_kernel!(ln_cosh_slice, 354.0, portable::ln_cosh, |x, ax| {
    let _ = x;
    let t = exp_pd(_mm256_mul_pd(_mm256_set1_pd(-2.0), ax));
    let am = _mm256_sub_pd(ax, _mm256_set1_pd(exp::LN2));
    _mm256_add_pd(am, log1p01_pd(t))
});

slice_kernel!(tanh_slice, 354.0, portable::tanh, |x, ax| {
    let one = _mm256_set1_pd(1.0);
    let t = exp_pd(_mm256_mul_pd(_mm256_set1_pd(-2.0), ax));
    let r = _mm256_div_pd(_mm256_sub_pd(one, t), _mm256_add_pd(one, t));
    let lt0 = _mm256_cmp_pd::<_CMP_LT_OQ>(x, _mm256_setzero_pd());
    _mm256_blendv_pd(r, neg_pd(r), lt0)
});

slice_kernel!(exp_slice, exp::EXP_SAFE_BOUND, exp::exp, |x, ax| {
    let _ = ax;
    exp_pd(x)
});

/// Lane-striped sum; same combine order as `portable::sum_slice`.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn sum_slice(xs: &[f64]) -> f64 {
    let n = xs.len();
    let p = xs.as_ptr();
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        acc = _mm256_add_pd(acc, _mm256_loadu_pd(p.add(i)));
        i += 4;
    }
    let mut tail = 0.0;
    while i < n {
        tail += *p.add(i);
        i += 1;
    }
    hsum(acc) + tail
}

/// `((c0+c1)+(c2+c3))` — the shared horizontal-sum order.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn hsum(acc: __m256d) -> f64 {
    let mut c = [0.0f64; 4];
    _mm256_storeu_pd(c.as_mut_ptr(), acc);
    (c[0] + c[1]) + (c[2] + c[3])
}

/// Lane-striped `Σ (x−m)²`; twin of `portable::sq_dev_sum`.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn sq_dev_sum(xs: &[f64], m: f64) -> f64 {
    let n = xs.len();
    let p = xs.as_ptr();
    let mv = _mm256_set1_pd(m);
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        let d = _mm256_sub_pd(_mm256_loadu_pd(p.add(i)), mv);
        acc = _mm256_fmadd_pd(d, d, acc);
        i += 4;
    }
    let mut tail = 0.0;
    while i < n {
        let d = *p.add(i) - m;
        tail = d.mul_add(d, tail);
        i += 1;
    }
    hsum(acc) + tail
}

/// Lane-striped `Σ e^{x−m}`; twin of `portable::sum_exp_shifted`.
/// Exceptional 4-packs (shift below −708, or NaN) take the scalar
/// `exp` per lane but keep the lane-striped accumulation.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn sum_exp_shifted(xs: &[f64], m: f64) -> f64 {
    let n = xs.len();
    let p = xs.as_ptr();
    let mv = _mm256_set1_pd(m);
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        let d = _mm256_sub_pd(_mm256_loadu_pd(p.add(i)), mv);
        let e = if exceptional_mask(abs_pd(d), exp::EXP_SAFE_BOUND) != 0 {
            let mut lanes = [0.0f64; 4];
            for (j, l) in lanes.iter_mut().enumerate() {
                *l = exp::exp(*p.add(i + j) - m);
            }
            _mm256_loadu_pd(lanes.as_ptr())
        } else {
            exp_pd(d)
        };
        acc = _mm256_add_pd(acc, e);
        i += 4;
    }
    let mut tail = 0.0;
    while i < n {
        tail += exp::exp(*p.add(i) - m);
        i += 1;
    }
    hsum(acc) + tail
}

/// Four-register FMA dot product; twin of `portable::dot` (16-lane
/// stripes, pairwise register combine, then `hsum`, then tail).
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut y0 = _mm256_setzero_pd();
    let mut y1 = _mm256_setzero_pd();
    let mut y2 = _mm256_setzero_pd();
    let mut y3 = _mm256_setzero_pd();
    let mut i = 0;
    while i + 16 <= n {
        y0 = _mm256_fmadd_pd(_mm256_loadu_pd(pa.add(i)), _mm256_loadu_pd(pb.add(i)), y0);
        y1 = _mm256_fmadd_pd(
            _mm256_loadu_pd(pa.add(i + 4)),
            _mm256_loadu_pd(pb.add(i + 4)),
            y1,
        );
        y2 = _mm256_fmadd_pd(
            _mm256_loadu_pd(pa.add(i + 8)),
            _mm256_loadu_pd(pb.add(i + 8)),
            y2,
        );
        y3 = _mm256_fmadd_pd(
            _mm256_loadu_pd(pa.add(i + 12)),
            _mm256_loadu_pd(pb.add(i + 12)),
            y3,
        );
        i += 16;
    }
    let mut tail = 0.0;
    while i < n {
        tail = (*pa.add(i)).mul_add(*pb.add(i), tail);
        i += 1;
    }
    let c = _mm256_add_pd(_mm256_add_pd(y0, y1), _mm256_add_pd(y2, y3));
    hsum(c) + tail
}

/// Lane-striped `Σ w·max(z, 0)`; twin of `portable::relu_dot`.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn relu_dot(w: &[f64], z: &[f64]) -> f64 {
    debug_assert_eq!(w.len(), z.len());
    let n = w.len();
    let (pw, pz) = (w.as_ptr(), z.as_ptr());
    let zero = _mm256_setzero_pd();
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    while i + 4 <= n {
        let zp = _mm256_max_pd(_mm256_loadu_pd(pz.add(i)), zero);
        acc = _mm256_fmadd_pd(_mm256_loadu_pd(pw.add(i)), zp, acc);
        i += 4;
    }
    let mut tail = 0.0;
    while i < n {
        let zv = *pz.add(i);
        let zp = if zv > 0.0 { zv } else { 0.0 };
        tail = (*pw.add(i)).mul_add(zp, tail);
        i += 1;
    }
    hsum(acc) + tail
}

/// `y ← y + α·x`; elementwise FMA (bit-identical to the portable arm
/// by construction).
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    debug_assert_eq!(y.len(), x.len());
    let n = y.len();
    let py = y.as_mut_ptr();
    let px = x.as_ptr();
    let av = _mm256_set1_pd(alpha);
    let mut i = 0;
    while i + 4 <= n {
        let r = _mm256_fmadd_pd(av, _mm256_loadu_pd(px.add(i)), _mm256_loadu_pd(py.add(i)));
        _mm256_storeu_pd(py.add(i), r);
        i += 4;
    }
    while i < n {
        *py.add(i) = alpha.mul_add(*px.add(i), *py.add(i));
        i += 1;
    }
}

/// `y ← x + β·y`; elementwise FMA.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn xpby(y: &mut [f64], beta: f64, x: &[f64]) {
    debug_assert_eq!(y.len(), x.len());
    let n = y.len();
    let py = y.as_mut_ptr();
    let px = x.as_ptr();
    let bv = _mm256_set1_pd(beta);
    let mut i = 0;
    while i + 4 <= n {
        let r = _mm256_fmadd_pd(bv, _mm256_loadu_pd(py.add(i)), _mm256_loadu_pd(px.add(i)));
        _mm256_storeu_pd(py.add(i), r);
        i += 4;
    }
    while i < n {
        *py.add(i) = beta.mul_add(*py.add(i), *px.add(i));
        i += 1;
    }
}

/// The 8×4 FMA GEMM microkernel over packed panels: per `k`-step one
/// 4-wide B load, eight A broadcasts, eight `vfmaddpd` into eight
/// independent `ymm` accumulator chains (enough ILP to saturate both
/// FMA ports at 4-cycle latency).  Same contract as
/// `portable::micro_8x4`, to which it is bit-identical.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn micro_8x4(kc: usize, ap: *const f64, bp: *const f64, tile: *mut f64) {
    let mut c0 = _mm256_setzero_pd();
    let mut c1 = _mm256_setzero_pd();
    let mut c2 = _mm256_setzero_pd();
    let mut c3 = _mm256_setzero_pd();
    let mut c4 = _mm256_setzero_pd();
    let mut c5 = _mm256_setzero_pd();
    let mut c6 = _mm256_setzero_pd();
    let mut c7 = _mm256_setzero_pd();
    for p in 0..kc {
        let b = _mm256_loadu_pd(bp.add(p * 4));
        let a = ap.add(p * 8);
        c0 = _mm256_fmadd_pd(_mm256_broadcast_sd(&*a), b, c0);
        c1 = _mm256_fmadd_pd(_mm256_broadcast_sd(&*a.add(1)), b, c1);
        c2 = _mm256_fmadd_pd(_mm256_broadcast_sd(&*a.add(2)), b, c2);
        c3 = _mm256_fmadd_pd(_mm256_broadcast_sd(&*a.add(3)), b, c3);
        c4 = _mm256_fmadd_pd(_mm256_broadcast_sd(&*a.add(4)), b, c4);
        c5 = _mm256_fmadd_pd(_mm256_broadcast_sd(&*a.add(5)), b, c5);
        c6 = _mm256_fmadd_pd(_mm256_broadcast_sd(&*a.add(6)), b, c6);
        c7 = _mm256_fmadd_pd(_mm256_broadcast_sd(&*a.add(7)), b, c7);
    }
    _mm256_storeu_pd(tile, c0);
    _mm256_storeu_pd(tile.add(4), c1);
    _mm256_storeu_pd(tile.add(8), c2);
    _mm256_storeu_pd(tile.add(12), c3);
    _mm256_storeu_pd(tile.add(16), c4);
    _mm256_storeu_pd(tile.add(20), c5);
    _mm256_storeu_pd(tile.add(24), c6);
    _mm256_storeu_pd(tile.add(28), c7);
}

/// Fused batched AUTO bit step over a transposed `h × b` activation
/// panel; twin of `portable::sample_step_cols`. Vectorised across the
/// **batch** dimension (4 rows per register) with all five per-row
/// accumulator stripes held in registers, so the panel is streamed
/// exactly once per bit. Per row the operation sequence — select-based
/// `+w_prev[j]` update, `max(z,0)`, lane-striped fused
/// multiply-accumulate, `((a0+a1)+(a2+a3))+tail` combine — is the same
/// as the portable arm's, so results are bit-identical.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn sample_step_cols(
    zt: &mut [f64],
    b: usize,
    w_prev: Option<&[f64]>,
    prev_mask: &[f64],
    w_out: &[f64],
    bias: f64,
    scratch: &mut [f64],
    logits: &mut [f64],
) {
    let h = w_out.len();
    debug_assert_eq!(zt.len(), h * b);
    debug_assert_eq!(prev_mask.len(), b);
    debug_assert_eq!(logits.len(), b);
    if h * b * 8 > HIDDEN_MAJOR_BYTES {
        return sample_step_cols_hidden_major(
            zt, b, w_prev, prev_mask, w_out, bias, scratch, logits,
        );
    }
    let _ = scratch; // register accumulators; scratch is a portable-arm concern
    let n4 = h - h % 4;
    let pz = zt.as_mut_ptr();
    let pm = prev_mask.as_ptr();
    let po = w_out.as_ptr();
    let wp = w_prev.map(|w| w.as_ptr());
    let zero = _mm256_setzero_pd();
    let half = _mm256_set1_pd(0.5);
    let mut r = 0;
    // 8-row blocks: two 4-row register groups share each per-j weight
    // broadcast, cutting load-port pressure ~25% versus the 4-row loop.
    // Each row group keeps its own five accumulator stripes, so the
    // per-row operation order (and hence the result bits) is unchanged.
    // The masked update uses `z + (w AND mask)` rather than a blend:
    // masked-off lanes add `+0.0`, which at worst flips a stored `-0.0`
    // panel entry to `+0.0`.  That sign is unobservable downstream —
    // `max(±0.0, 0.0)` is `+0.0` either way and `±0.0 + w'` agree for
    // every `w'` — so logits, bits and `==`-comparisons are unchanged,
    // while the blend's extra µops disappear from the critical loop.
    while r + 8 <= b {
        let m0 = _mm256_cmp_pd(_mm256_loadu_pd(pm.add(r)), half, _CMP_GT_OQ);
        let m1 = _mm256_cmp_pd(_mm256_loadu_pd(pm.add(r + 4)), half, _CMP_GT_OQ);
        let (mut a00, mut a01, mut a02, mut a03, mut at0) = (zero, zero, zero, zero, zero);
        let (mut a10, mut a11, mut a12, mut a13, mut at1) = (zero, zero, zero, zero, zero);
        macro_rules! step2 {
            ($accA:ident, $accB:ident, $j:expr) => {{
                let j = $j;
                let p0 = pz.add(j * b + r);
                let p1 = pz.add(j * b + r + 4);
                let mut z0 = _mm256_loadu_pd(p0);
                let mut z1 = _mm256_loadu_pd(p1);
                if let Some(w) = wp {
                    let wv = _mm256_set1_pd(*w.add(j));
                    z0 = _mm256_add_pd(z0, _mm256_and_pd(wv, m0));
                    z1 = _mm256_add_pd(z1, _mm256_and_pd(wv, m1));
                    _mm256_storeu_pd(p0, z0);
                    _mm256_storeu_pd(p1, z1);
                }
                let wo = _mm256_set1_pd(*po.add(j));
                $accA = _mm256_fmadd_pd(wo, _mm256_max_pd(z0, zero), $accA);
                $accB = _mm256_fmadd_pd(wo, _mm256_max_pd(z1, zero), $accB);
            }};
        }
        // First row block only: stage the *next* bit's weight rows
        // (rows are contiguous in both matrices, so they live at
        // `base + h`) into L2 while this bit computes.  Prefetches past
        // the final row are harmless hints to out-of-bounds addresses,
        // reached via wrapping pointer arithmetic only.
        let mut j = 0;
        if r == 0 {
            while j + 4 <= n4 {
                if j % 8 == 0 {
                    let line = (h + j) as isize * 8;
                    _mm_prefetch(po.cast::<i8>().wrapping_offset(line), _MM_HINT_T1);
                    if let Some(w) = wp {
                        _mm_prefetch(w.cast::<i8>().wrapping_offset(line), _MM_HINT_T1);
                    }
                }
                step2!(a00, a10, j);
                step2!(a01, a11, j + 1);
                step2!(a02, a12, j + 2);
                step2!(a03, a13, j + 3);
                j += 4;
            }
        }
        while j + 4 <= n4 {
            step2!(a00, a10, j);
            step2!(a01, a11, j + 1);
            step2!(a02, a12, j + 2);
            step2!(a03, a13, j + 3);
            j += 4;
        }
        while j < h {
            step2!(at0, at1, j);
            j += 1;
        }
        let s0 = _mm256_add_pd(_mm256_add_pd(a00, a01), _mm256_add_pd(a02, a03));
        let s1 = _mm256_add_pd(_mm256_add_pd(a10, a11), _mm256_add_pd(a12, a13));
        let bias_v = _mm256_set1_pd(bias);
        _mm256_storeu_pd(
            logits.as_mut_ptr().add(r),
            _mm256_add_pd(bias_v, _mm256_add_pd(s0, at0)),
        );
        _mm256_storeu_pd(
            logits.as_mut_ptr().add(r + 4),
            _mm256_add_pd(bias_v, _mm256_add_pd(s1, at1)),
        );
        r += 8;
    }
    while r + 4 <= b {
        let mask = _mm256_cmp_pd(_mm256_loadu_pd(pm.add(r)), half, _CMP_GT_OQ);
        let (mut a0, mut a1, mut a2, mut a3, mut at) = (zero, zero, zero, zero, zero);
        // One hidden unit: masked update + striped fused accumulate.
        macro_rules! step {
            ($acc:ident, $j:expr) => {{
                let j = $j;
                let p = pz.add(j * b + r);
                let mut z = _mm256_loadu_pd(p);
                if let Some(w) = wp {
                    z = _mm256_add_pd(z, _mm256_and_pd(_mm256_set1_pd(*w.add(j)), mask));
                    _mm256_storeu_pd(p, z);
                }
                let zp = _mm256_max_pd(z, zero);
                $acc = _mm256_fmadd_pd(_mm256_set1_pd(*po.add(j)), zp, $acc);
            }};
        }
        // Aligned blocks of 4: the stripe assignment is static, so the
        // four accumulator chains interleave without per-j dispatch.
        let mut j = 0;
        while j + 4 <= n4 {
            step!(a0, j);
            step!(a1, j + 1);
            step!(a2, j + 2);
            step!(a3, j + 3);
            j += 4;
        }
        while j < h {
            step!(at, j);
            j += 1;
        }
        let s = _mm256_add_pd(_mm256_add_pd(a0, a1), _mm256_add_pd(a2, a3));
        let sum = _mm256_add_pd(s, at);
        _mm256_storeu_pd(
            logits.as_mut_ptr().add(r),
            _mm256_add_pd(_mm256_set1_pd(bias), sum),
        );
        r += 4;
    }
    // Remaining rows (b % 4): scalar, same per-row order.
    while r < b {
        let take = wp.is_some() && prev_mask[r] > 0.5;
        let mut acc = [0.0f64; 4];
        let mut tail = 0.0;
        for j in 0..h {
            let p = pz.add(j * b + r);
            let mut z = *p;
            if take {
                z += *wp.unwrap_unchecked().add(j);
                *p = z;
            }
            let zp = if z > 0.0 { z } else { 0.0 };
            let wo = *po.add(j);
            if j < n4 {
                acc[j % 4] = wo.mul_add(zp, acc[j % 4]);
            } else {
                tail = wo.mul_add(zp, tail);
            }
        }
        logits[r] = bias + (((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail);
        r += 1;
    }
}

/// Above this panel size the row-block traversal's stride-`b` loads
/// outrun the dTLB and the stride prefetcher; see the AVX-512 arm for
/// the full analysis.  Both SIMD arms use the same constant so the
/// traversal switch happens at the same shape.
const HIDDEN_MAJOR_BYTES: usize = 64 * 1024;

/// Hidden-major twin of the row-block traversal in
/// [`sample_step_cols`], used for panels too large for it: the hidden
/// loop is outermost, so the panel row, the mask stash and the stripe
/// accumulators are all walked contiguously.  Per row the operation
/// sequence — `z + (w AND mask)` select-free update, `max(z,0)`,
/// lane-striped fused multiply-accumulate, `((a0+a1)+(a2+a3))+tail`
/// combine — matches the row-block traversal exactly, so results are
/// bit-identical; partial sums round-tripping through the `f64`
/// scratch stripes is exact.
///
/// The `prev_mask > 0.5` compares are hoisted into a per-bit mask
/// stash (the sixth scratch stripe), and aligned blocks of 4 hidden
/// units — one per accumulator stripe — share each mask load.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn sample_step_cols_hidden_major(
    zt: &mut [f64],
    b: usize,
    w_prev: Option<&[f64]>,
    prev_mask: &[f64],
    w_out: &[f64],
    bias: f64,
    scratch: &mut [f64],
    logits: &mut [f64],
) {
    let h = w_out.len();
    debug_assert!(scratch.len() >= 6 * b);
    let n4 = h - h % 4;
    let (acc, mask_stash) = scratch.split_at_mut(5 * b);
    acc.fill(0.0);
    let pa = acc.as_mut_ptr();
    let pz = zt.as_mut_ptr();
    let pm = prev_mask.as_ptr();
    let pk = mask_stash.as_mut_ptr();
    let zero = _mm256_setzero_pd();
    let half = _mm256_set1_pd(0.5);
    let bv = b - b % 4;
    if w_prev.is_some() {
        let mut r = 0;
        while r < bv {
            let m = _mm256_cmp_pd(_mm256_loadu_pd(pm.add(r)), half, _CMP_GT_OQ);
            _mm256_storeu_pd(pk.add(r), m);
            r += 4;
        }
    }
    match w_prev {
        Some(w) => {
            let mut j = 0;
            // Aligned blocks of 4 hidden units: unit `j+t` feeds stripe
            // `t`, so the four FMA chains are independent and the mask
            // load is shared.
            while j + 4 <= n4 {
                let w0 = _mm256_set1_pd(*w.get_unchecked(j));
                let w1 = _mm256_set1_pd(*w.get_unchecked(j + 1));
                let w2 = _mm256_set1_pd(*w.get_unchecked(j + 2));
                let w3 = _mm256_set1_pd(*w.get_unchecked(j + 3));
                let o0 = _mm256_set1_pd(*w_out.get_unchecked(j));
                let o1 = _mm256_set1_pd(*w_out.get_unchecked(j + 1));
                let o2 = _mm256_set1_pd(*w_out.get_unchecked(j + 2));
                let o3 = _mm256_set1_pd(*w_out.get_unchecked(j + 3));
                let row0 = pz.add(j * b);
                let row1 = pz.add((j + 1) * b);
                let row2 = pz.add((j + 2) * b);
                let row3 = pz.add((j + 3) * b);
                let mut r = 0;
                while r < bv {
                    let m = _mm256_loadu_pd(pk.add(r));
                    macro_rules! unit {
                        ($row:ident, $wv:ident, $ov:ident, $stripe:expr) => {{
                            let p = $row.add(r);
                            let z = _mm256_loadu_pd(p);
                            let z = _mm256_add_pd(z, _mm256_and_pd($wv, m));
                            _mm256_storeu_pd(p, z);
                            let a = pa.add($stripe * b + r);
                            _mm256_storeu_pd(
                                a,
                                _mm256_fmadd_pd($ov, _mm256_max_pd(z, zero), _mm256_loadu_pd(a)),
                            );
                        }};
                    }
                    unit!(row0, w0, o0, 0);
                    unit!(row1, w1, o1, 1);
                    unit!(row2, w2, o2, 2);
                    unit!(row3, w3, o3, 3);
                    r += 4;
                }
                while r < b {
                    let take = *pm.add(r) > 0.5;
                    macro_rules! unit {
                        ($row:ident, $jt:expr, $stripe:expr) => {{
                            let p = $row.add(r);
                            let mut z = *p;
                            if take {
                                z += *w.get_unchecked($jt);
                                *p = z;
                            }
                            let zp = if z > 0.0 { z } else { 0.0 };
                            let a = pa.add($stripe * b + r);
                            *a = (*w_out.get_unchecked($jt)).mul_add(zp, *a);
                        }};
                    }
                    unit!(row0, j, 0);
                    unit!(row1, j + 1, 1);
                    unit!(row2, j + 2, 2);
                    unit!(row3, j + 3, 3);
                    r += 1;
                }
                j += 4;
            }
            // Sequential tail units feed stripe 4.
            while j < h {
                let wj = *w.get_unchecked(j);
                let wv = _mm256_set1_pd(wj);
                let wo = *w_out.get_unchecked(j);
                let wov = _mm256_set1_pd(wo);
                let row = pz.add(j * b);
                let accs = pa.add(4 * b);
                let mut r = 0;
                while r < bv {
                    let m = _mm256_loadu_pd(pk.add(r));
                    let p = row.add(r);
                    let z = _mm256_loadu_pd(p);
                    let z = _mm256_add_pd(z, _mm256_and_pd(wv, m));
                    _mm256_storeu_pd(p, z);
                    let a = accs.add(r);
                    _mm256_storeu_pd(
                        a,
                        _mm256_fmadd_pd(wov, _mm256_max_pd(z, zero), _mm256_loadu_pd(a)),
                    );
                    r += 4;
                }
                while r < b {
                    let p = row.add(r);
                    let mut z = *p;
                    if *pm.add(r) > 0.5 {
                        z += wj;
                        *p = z;
                    }
                    let zp = if z > 0.0 { z } else { 0.0 };
                    let a = accs.add(r);
                    *a = wo.mul_add(zp, *a);
                    r += 1;
                }
                j += 1;
            }
        }
        None => {
            for j in 0..h {
                let stripe = if j < n4 { j % 4 } else { 4 };
                let accs = pa.add(stripe * b);
                let row = pz.add(j * b);
                let wo = *w_out.get_unchecked(j);
                let wov = _mm256_set1_pd(wo);
                let mut r = 0;
                while r < bv {
                    let z = _mm256_loadu_pd(row.add(r));
                    let a = accs.add(r);
                    _mm256_storeu_pd(
                        a,
                        _mm256_fmadd_pd(wov, _mm256_max_pd(z, zero), _mm256_loadu_pd(a)),
                    );
                    r += 4;
                }
                while r < b {
                    let z = *row.add(r);
                    let zp = if z > 0.0 { z } else { 0.0 };
                    let a = accs.add(r);
                    *a = wo.mul_add(zp, *a);
                    r += 1;
                }
            }
        }
    }
    let (a0, rest) = acc.split_at(b);
    let (a1, rest) = rest.split_at(b);
    let (a2, rest) = rest.split_at(b);
    let (a3, a4) = rest.split_at(b);
    let bias_v = _mm256_set1_pd(bias);
    let mut r = 0;
    while r < bv {
        let s = _mm256_add_pd(
            _mm256_add_pd(
                _mm256_loadu_pd(a0.as_ptr().add(r)),
                _mm256_loadu_pd(a1.as_ptr().add(r)),
            ),
            _mm256_add_pd(
                _mm256_loadu_pd(a2.as_ptr().add(r)),
                _mm256_loadu_pd(a3.as_ptr().add(r)),
            ),
        );
        let sum = _mm256_add_pd(s, _mm256_loadu_pd(a4.as_ptr().add(r)));
        _mm256_storeu_pd(logits.as_mut_ptr().add(r), _mm256_add_pd(bias_v, sum));
        r += 4;
    }
    while r < b {
        logits[r] = bias + (((a0[r] + a1[r]) + (a2[r] + a3[r])) + a4[r]);
        r += 1;
    }
}
