//! Vendored scalar `exp` and `log1p` cores shared by both dispatch arms.
//!
//! These are the transcendental building blocks of the SIMD slice
//! kernels.  They are *vendored* (written here, not pulled from a libm
//! crate) so that the portable-scalar arm and the AVX2 arm can share
//! the **identical operation sequence**: every fused step is an
//! explicit [`f64::mul_add`], which lowers to the same correctly
//! rounded FMA the vector kernels issue, so the two arms agree
//! bit-for-bit on every lane (property-tested in
//! `tests/simd_proptests.rs`).
//!
//! ## `exp` algorithm
//!
//! Standard argument reduction plus a Taylor polynomial:
//!
//! 1. `n = round(x · log2 e)` via the add/subtract-magic-constant
//!    trick (round-to-nearest, ties to even — the same rounding
//!    `vroundpd` performs).
//! 2. Cody–Waite reduction `r = x − n·ln2` with a two-part `ln2`
//!    (`LN2_HI` carries 33 mantissa bits, so `n·LN2_HI` is exact for
//!    `|n| ≤ 2^19`), leaving `|r| ≤ ln2/2 + ε ≈ 0.3466`.
//! 3. Degree-13 Taylor polynomial in Horner form (truncation error
//!    `r^14/14! < 2^-57`, below the rounding noise).
//! 4. Scale by `2^n` through exponent-bit construction — exact for
//!    normal results, two exact steps plus one final rounding for
//!    subnormal results.
//!
//! Measured accuracy versus `f64::exp` (see the full-range ULP sweep
//! in `tests/simd_proptests.rs`): ≤ 2 ULP over the normal range and
//! the overflow/underflow edges.
//!
//! ## `log1p01` — `ln(1+z)` restricted to `z ∈ [0, 1]`
//!
//! The composite kernels (`log_sigmoid`, `ln_cosh`) only ever need
//! `log1p` of `t = e^{-|·|} ∈ (0, 1]`, so this is a restricted-domain
//! port of the musl/fdlibm `log1p` (`s = f/(2+f)` atanh-style series
//! with the published `Lg1..Lg7` coefficients), with a direct
//! power-series branch below `2^-16` where forming `1+z` would shave
//! input bits.

// The published fdlibm/musl coefficients carry guard digits past f64
// precision; keeping them verbatim documents their provenance.
#![allow(clippy::excessive_precision)]

/// Inputs above this overflow `exp` to `+inf`.
pub const EXP_OVERFLOW: f64 = 709.782712893384;
/// Inputs below this underflow `exp` to `0.0`.
pub const EXP_UNDERFLOW: f64 = -745.1332191019412;
/// `|x|` below this bound keeps the scale factor `2^n` a *normal*
/// number, which is the precondition of the vector fast path; lanes
/// outside it fall back to the scalar [`exp`] (which handles the
/// subnormal/overflow edges).
pub const EXP_SAFE_BOUND: f64 = 708.0;

/// `log2(e)`.
pub const LOG2E: f64 = std::f64::consts::LOG2_E;
/// High part of `ln 2` (33 significant bits; `n·LN2_HI` is exact for
/// the `|n| ≤ 1075` this module produces).
pub const LN2_HI: f64 = 6.931_471_803_691_238_164_9e-1;
/// Low part of `ln 2` (`LN2_HI + LN2_LO` ≈ `ln 2` to ~107 bits).
pub const LN2_LO: f64 = 1.908_214_929_270_587_700_02e-10;
/// `1.5 · 2^52`: adding then subtracting rounds a `|t| < 2^51` double
/// to the nearest integer (ties to even), and the low bits of the
/// intermediate's bit pattern hold that integer — one constant serves
/// both the rounding and the float→int extraction in the vector code.
pub const ROUND_MAGIC: f64 = 6_755_399_441_055_744.0;

/// Taylor coefficients `1/k!` for `e^r`, `k = 0..=13`.
pub const EXP_POLY: [f64; 14] = [
    1.0,
    1.0,
    0.5,
    1.666_666_666_666_666_6e-1,
    4.166_666_666_666_666_4e-2,
    8.333_333_333_333_333e-3,
    1.388_888_888_888_889e-3,
    1.984_126_984_126_984e-4,
    2.480_158_730_158_73e-5,
    2.755_731_922_398_589_3e-6,
    2.755_731_922_398_589e-7,
    2.505_210_838_544_172e-8,
    2.087_675_698_786_81e-9,
    1.605_904_383_682_161_3e-10,
];

/// Horner evaluation of the `exp` Taylor polynomial — the shared
/// association order of both dispatch arms (each step one FMA).
#[inline]
pub fn exp_poly(r: f64) -> f64 {
    let mut p = EXP_POLY[13];
    let mut k = 13;
    while k > 0 {
        k -= 1;
        p = p.mul_add(r, EXP_POLY[k]);
    }
    p
}

/// `p · 2^n` with `n ∈ [-1075, 1024]`, exact except for the single
/// final rounding into the subnormal range.
#[inline]
fn scale2(p: f64, n: i64) -> f64 {
    if n >= -1021 {
        if n <= 1023 {
            p * f64::from_bits(((n + 1023) as u64) << 52)
        } else {
            // 2^n = 2^1023 · 2^(n-1023); n ≤ 1024 here.
            p * f64::from_bits(2046u64 << 52) * f64::from_bits((n as u64) << 52)
        }
    } else {
        // Subnormal result: 2^n = 2^(n+537) · 2^-537, both factors
        // normal, so only the last multiply rounds (once).
        p * f64::from_bits(((n + 537 + 1023) as u64) << 52) * f64::from_bits((486u64) << 52)
    }
}

/// Vendored `e^x` for all finite and non-finite `f64` inputs.
///
/// This is the scalar arm of the dispatched `exp_slice` kernel and the
/// per-lane fallback of the vector arm outside [`EXP_SAFE_BOUND`].
#[inline]
pub fn exp(x: f64) -> f64 {
    if x.is_nan() {
        return x;
    }
    if x > EXP_OVERFLOW {
        return f64::INFINITY;
    }
    if x < EXP_UNDERFLOW {
        return 0.0;
    }
    let t = x * LOG2E;
    let nf = (t + ROUND_MAGIC) - ROUND_MAGIC;
    let r = (-nf).mul_add(LN2_HI, x);
    let r = (-nf).mul_add(LN2_LO, r);
    scale2(exp_poly(r), nf as i64)
}

/// `e^x` restricted to `|x| ≤` [`EXP_SAFE_BOUND`] — the exact scalar
/// mirror of the vector fast path (single-step `2^n` scaling, no edge
/// branches).  Callers must guarantee the bound.
#[inline]
pub fn exp_bounded(x: f64) -> f64 {
    debug_assert!(x.abs() <= EXP_SAFE_BOUND);
    let t = x * LOG2E;
    let nf = (t + ROUND_MAGIC) - ROUND_MAGIC;
    let r = (-nf).mul_add(LN2_HI, x);
    let r = (-nf).mul_add(LN2_LO, r);
    // |n| ≤ 1022: the scale is a normal power of two, so this multiply
    // is exact and bit-identical to the vector arm's exponent-bit add.
    exp_poly(r) * f64::from_bits(((nf as i64 + 1023) as u64) << 52)
}

/// `√2 − 1`: above this `1+z` exceeds `√2` and the argument is halved
/// with a `k=1` exponent rescale.
pub const SQRT2M1: f64 = 0.414_213_562_373_095_03;

/// musl/fdlibm `log` series coefficients (`Lg1..Lg7`).
pub const LOG_POLY: [f64; 7] = [
    6.666_666_666_666_735_1e-1,
    3.999_999_999_940_941_9e-1,
    2.857_142_874_366_239_1e-1,
    2.222_219_843_214_978_4e-1,
    1.818_357_216_161_805e-1,
    1.531_383_769_920_937_3e-1,
    1.479_819_860_511_658_6e-1,
];

/// `ln 2` as a single double.
pub const LN2: f64 = std::f64::consts::LN_2;

/// `ln(1 + z)` for `z ∈ [0, 1]` — the domain produced by
/// `t = e^{-|·|}` inside the composite kernels.
///
/// For `z ≤ √2−1` the reduced argument is `f = z` itself — `1+z` is
/// never formed, so no input bits are lost.  Above `√2−1` the argument
/// is halved (`m = (1+z)/2`, `k = 1`): `u−1` and `0.5·u−1` are exact
/// by Sterbenz, and the one rounding `u = 1+z` does make is recovered
/// exactly as `c = z − (u−1)` and added back as `c/u`.  The `k·ln 2`
/// rescale uses the hi/lo split so its error stays below the final
/// rounding.
#[inline]
pub fn log1p01(z: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&z) || z.is_nan());
    let big = z > SQRT2M1;
    let u = 1.0 + z;
    let c = if big { (z - (u - 1.0)) / u } else { 0.0 };
    let f = if big { 0.5 * u - 1.0 } else { z };
    let kf: f64 = if big { 1.0 } else { 0.0 };
    let s = f / (2.0 + f);
    let s2 = s * s;
    let mut rp = LOG_POLY[6];
    let mut i = 6;
    while i > 0 {
        i -= 1;
        rp = rp.mul_add(s2, LOG_POLY[i]);
    }
    let r = s2 * rp;
    let hfsq = 0.5 * f * f;
    kf.mul_add(
        LN2_HI,
        (f - (hfsq - s * (hfsq + r))) + kf.mul_add(LN2_LO, c),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ulp_diff(a: f64, b: f64) -> u64 {
        if a == b {
            return 0;
        }
        if a.is_nan() || b.is_nan() {
            return if a.is_nan() && b.is_nan() { 0 } else { u64::MAX };
        }
        let to_ordered = |x: f64| {
            let bits = x.to_bits() as i64;
            if bits < 0 {
                i64::MIN.wrapping_sub(bits) as u64
            } else {
                (bits as u64).wrapping_add(1 << 63)
            }
        };
        to_ordered(a).abs_diff(to_ordered(b))
    }

    #[test]
    fn exp_edges() {
        assert_eq!(exp(f64::INFINITY), f64::INFINITY);
        assert_eq!(exp(f64::NEG_INFINITY), 0.0);
        assert!(exp(f64::NAN).is_nan());
        assert_eq!(exp(0.0), 1.0);
        assert_eq!(exp(-0.0), 1.0);
        assert_eq!(exp(710.0), f64::INFINITY);
        assert_eq!(exp(-746.0), 0.0);
        // Just inside the overflow edge: finite and close to MAX.
        assert!(exp(709.78).is_finite());
        // Subnormal regime.
        let sub = exp(-744.0);
        assert!(sub > 0.0 && !sub.is_normal());
    }

    #[test]
    fn exp_close_to_std_on_grid() {
        let mut max_ulp = 0;
        let mut x = -708.0;
        while x <= 708.0 {
            max_ulp = max_ulp.max(ulp_diff(exp(x), x.exp()));
            x += 0.37;
        }
        assert!(max_ulp <= 2, "max ulp {max_ulp}");
    }

    #[test]
    fn exp_bounded_matches_exp() {
        let mut x = -708.0;
        while x <= 708.0 {
            assert_eq!(exp_bounded(x), exp(x), "x={x}");
            x += 1.7;
        }
    }

    #[test]
    fn log1p_close_to_std() {
        let mut max_ulp = 0;
        let mut z = 0.0f64;
        while z <= 1.0 {
            max_ulp = max_ulp.max(ulp_diff(log1p01(z), z.ln_1p()));
            z += 1e-3;
        }
        for &z in &[0.0, 1e-18, 1e-9, 2e-5, SQRT2M1, 0.42, 0.5, 1.0] {
            max_ulp = max_ulp.max(ulp_diff(log1p01(z), z.ln_1p()));
        }
        assert!(max_ulp <= 2, "max ulp {max_ulp}");
        assert_eq!(log1p01(1.0), LN2);
    }
}
