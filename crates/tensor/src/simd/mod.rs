//! Runtime-dispatched SIMD kernel table.
//!
//! One-time runtime feature detection
//! (`is_x86_feature_detected!("avx2")` + `"fma"`) resolves into a
//! [`OnceLock`]-cached table of plain function pointers — the
//! [`Kernels`] struct — that every hot-path consumer reads through
//! [`kernels()`].  Two arms exist:
//!
//! * **AVX2+FMA** ([`avx2`]): 4-wide vector kernels and the 8×4 packed
//!   GEMM microkernel.  Installed only after both features are
//!   detected, so the `unsafe` `target_feature` functions are sound to
//!   call through the table.
//! * **Portable scalar** ([`portable`]): the operation-for-operation
//!   scalar twin of every vector kernel.  This is the production arm
//!   on non-x86_64 targets and the fallback everywhere else.
//!
//! Fallback policy (first match wins):
//!
//! 1. `--features force-scalar`, or a non-x86_64 target → portable arm
//!    (the AVX2 module is not even compiled).
//! 2. `VQMC_SIMD` set to `off`/`0`/`scalar`/`false` (case-insensitive)
//!    → portable arm (runtime kill-switch, read once); `VQMC_SIMD=avx2`
//!    caps the dispatch at the AVX2 table.
//! 3. `avx512f` (with `avx2`+`fma`) detected → AVX-512 table: the AVX2
//!    kernels plus 512-bit overrides where they pay ([`avx512`]).
//! 4. `avx2` **and** `fma` detected → AVX2 arm.
//! 5. Otherwise → portable arm.
//!
//! The resolution runs once per process; the `OnceLock` initialisation
//! (including the `env::var` read) happens on the first kernel call,
//! which in the training loop lands inside the warm-up iterations the
//! zero-allocation invariant already excludes.
//!
//! **ULP contract** (property-tested in `tests/simd_proptests.rs`):
//! both arms agree within ≤2 ULP on every kernel; in practice they are
//! bit-identical because they share operation order and fused steps.
//! Accuracy versus libm is a separate contract: the vendored
//! [`exp`](exp::exp) is within 2 ULP of `f64::exp` over the full input
//! range, while the composite kernels (`ln_cosh`, `tanh`) carry an
//! *absolute* error bound of a few 1e-16 (see DESIGN.md).

use std::sync::OnceLock;

pub mod exp;
pub mod portable;
pub mod portable32;

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
pub mod avx2;

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
pub mod avx2f32;

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
pub mod avx512;

/// Which kernel arm the dispatch resolved to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// AVX2+FMA table with AVX-512 overrides where they pay
    /// (runtime-detected; requires `avx512f` on top of `avx2`+`fma`).
    Avx512,
    /// AVX2+FMA vector kernels (runtime-detected).
    Avx2Fma,
    /// Portable scalar kernels (fallback / `force-scalar` / `VQMC_SIMD=off`).
    Scalar,
}

/// The packed-GEMM microkernel signature: multiply a `kc×8` packed A
/// micro-panel by a `kc×4` packed B micro-panel, **overwriting** the
/// row-major 8×4 `tile`.
///
/// # Safety
/// `ap`, `bp` and `tile` must be valid for `kc*8`, `kc*4` and 32
/// elements respectively; AVX2 implementations additionally require
/// the caller to have verified CPU support.
pub type MicroKernel = unsafe fn(kc: usize, ap: *const f64, bp: *const f64, tile: *mut f64);

/// Fused batched AUTO bit-step over a transposed f64 activation panel:
/// `(zt, b, w_prev, prev_mask, w_out, bias, scratch, logits)`.
pub type SampleStepCols =
    fn(&mut [f64], usize, Option<&[f64]>, &[f64], &[f64], f64, &mut [f64], &mut [f64]);

/// The resolved kernel table: one function pointer per hot-path
/// primitive.  `Copy` — consumers hold `&'static Kernels`.
#[derive(Clone, Copy)]
pub struct Kernels {
    /// Which arm this table belongs to.
    pub backend: Backend,
    /// In-place sigmoid over a slice.
    pub sigmoid_slice: fn(&mut [f64]),
    /// In-place `log σ` over a slice.
    pub log_sigmoid_slice: fn(&mut [f64]),
    /// In-place `ln cosh` over a slice.
    pub ln_cosh_slice: fn(&mut [f64]),
    /// In-place `tanh` over a slice.
    pub tanh_slice: fn(&mut [f64]),
    /// In-place `e^x` over a slice (full input range).
    pub exp_slice: fn(&mut [f64]),
    /// Fused dot product.
    pub dot: fn(&[f64], &[f64]) -> f64,
    /// `y ← y + α·x`.
    pub axpy: fn(&mut [f64], f64, &[f64]),
    /// `y ← x + β·y` (CG direction update).
    pub xpby: fn(&mut [f64], f64, &[f64]),
    /// `Σ w·max(z, 0)` (incremental-sampler logit).
    pub relu_dot: fn(&[f64], &[f64]) -> f64,
    /// Fused batched AUTO bit step over a transposed `h×b` activation
    /// panel: masked `+w_prev[j]` column update + per-row
    /// `Σⱼ w_out[j]·max(z,0)` in one memory pass.  Per-row results are
    /// bit-identical to `axpy` + `relu_dot` on that row alone.
    /// `(zt, b, w_prev, prev_mask, w_out, bias, scratch ≥ 6·b, logits)`;
    /// `logits[r] = bias + Σ` matches the row path's `b2[i] + relu_dot`.
    /// (The portable arm needs 5·b of scratch for accumulator stripes;
    /// the SIMD arms' hidden-major traversal for panels over 64 KiB
    /// stashes per-bit masks in a sixth stripe — callers must size for
    /// 6·b.)
    pub sample_step_cols: SampleStepCols,
    /// Plain lane-striped sum (pairwise-summation base block).
    pub sum: fn(&[f64]) -> f64,
    /// `Σ (x−m)²` (variance base block).
    pub sq_dev_sum: fn(&[f64], f64) -> f64,
    /// `Σ e^{x−m}` (`log_sum_exp` base block).
    pub sum_exp_shifted: fn(&[f64], f64) -> f64,
    /// The packed-GEMM 8×4 microkernel.
    pub micro_8x4: MicroKernel,
}

/// The portable arm as a constant table.
static PORTABLE: Kernels = Kernels {
    backend: Backend::Scalar,
    sigmoid_slice: portable::sigmoid_slice,
    log_sigmoid_slice: portable::log_sigmoid_slice,
    ln_cosh_slice: portable::ln_cosh_slice,
    tanh_slice: portable::tanh_slice,
    exp_slice: portable::exp_slice,
    dot: portable::dot,
    axpy: portable::axpy,
    xpby: portable::xpby,
    relu_dot: portable::relu_dot,
    sample_step_cols: portable::sample_step_cols,
    sum: portable::sum_slice,
    sq_dev_sum: portable::sq_dev_sum,
    sum_exp_shifted: portable::sum_exp_shifted,
    micro_8x4: portable::micro_8x4 as MicroKernel,
};

/// The portable-scalar table, regardless of what the production
/// dispatch resolved to.  Used by property tests and benches to
/// compare arms on one machine.
pub fn portable_kernels() -> &'static Kernels {
    &PORTABLE
}

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
mod avx2_table {
    use super::*;

    // Safe shims: these are only ever installed in the table after
    // `is_x86_feature_detected!` confirmed avx2+fma, which makes the
    // inner calls sound.
    fn sigmoid_slice(xs: &mut [f64]) {
        unsafe { avx2::sigmoid_slice(xs) }
    }
    fn log_sigmoid_slice(xs: &mut [f64]) {
        unsafe { avx2::log_sigmoid_slice(xs) }
    }
    fn ln_cosh_slice(xs: &mut [f64]) {
        unsafe { avx2::ln_cosh_slice(xs) }
    }
    fn tanh_slice(xs: &mut [f64]) {
        unsafe { avx2::tanh_slice(xs) }
    }
    fn exp_slice(xs: &mut [f64]) {
        unsafe { avx2::exp_slice(xs) }
    }
    fn dot(a: &[f64], b: &[f64]) -> f64 {
        unsafe { avx2::dot(a, b) }
    }
    fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
        unsafe { avx2::axpy(y, alpha, x) }
    }
    fn xpby(y: &mut [f64], beta: f64, x: &[f64]) {
        unsafe { avx2::xpby(y, beta, x) }
    }
    fn relu_dot(w: &[f64], z: &[f64]) -> f64 {
        unsafe { avx2::relu_dot(w, z) }
    }
    #[allow(clippy::too_many_arguments)]
    fn sample_step_cols(
        zt: &mut [f64],
        b: usize,
        w_prev: Option<&[f64]>,
        prev_mask: &[f64],
        w_out: &[f64],
        bias: f64,
        scratch: &mut [f64],
        logits: &mut [f64],
    ) {
        unsafe { avx2::sample_step_cols(zt, b, w_prev, prev_mask, w_out, bias, scratch, logits) }
    }
    fn sum(xs: &[f64]) -> f64 {
        unsafe { avx2::sum_slice(xs) }
    }
    fn sq_dev_sum(xs: &[f64], m: f64) -> f64 {
        unsafe { avx2::sq_dev_sum(xs, m) }
    }
    fn sum_exp_shifted(xs: &[f64], m: f64) -> f64 {
        unsafe { avx2::sum_exp_shifted(xs, m) }
    }

    pub(super) static AVX2: Kernels = Kernels {
        backend: Backend::Avx2Fma,
        sigmoid_slice,
        log_sigmoid_slice,
        ln_cosh_slice,
        tanh_slice,
        exp_slice,
        dot,
        axpy,
        xpby,
        relu_dot,
        sample_step_cols,
        sum,
        sq_dev_sum,
        sum_exp_shifted,
        micro_8x4: avx2::micro_8x4 as MicroKernel,
    };
}

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
mod avx512_table {
    use super::*;

    // Safe shim: only installed after `is_x86_feature_detected!`
    // confirmed avx512f (and avx2+fma for the inherited entries).
    #[allow(clippy::too_many_arguments)]
    fn sample_step_cols(
        zt: &mut [f64],
        b: usize,
        w_prev: Option<&[f64]>,
        prev_mask: &[f64],
        w_out: &[f64],
        bias: f64,
        scratch: &mut [f64],
        logits: &mut [f64],
    ) {
        unsafe { avx512::sample_step_cols(zt, b, w_prev, prev_mask, w_out, bias, scratch, logits) }
    }

    /// The AVX2 table with AVX-512 overrides.
    pub(super) static AVX512: Kernels = Kernels {
        backend: Backend::Avx512,
        sample_step_cols,
        ..avx2_table::AVX2
    };
}

/// The AVX2 table when the CPU supports it, `None` otherwise (always
/// `None` on non-x86_64 or under `force-scalar`).  Detection runs
/// once.  Property tests use this to pit the two arms against each
/// other on the same inputs.
#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
pub fn avx2_kernels() -> Option<&'static Kernels> {
    static DETECTED: OnceLock<bool> = OnceLock::new();
    let ok = *DETECTED
        .get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"));
    ok.then_some(&avx2_table::AVX2)
}

/// The AVX-512 table (AVX2 kernels plus 512-bit overrides) when the
/// CPU supports `avx512f` on top of `avx2`+`fma`, `None` otherwise.
#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
pub fn avx512_kernels() -> Option<&'static Kernels> {
    static DETECTED: OnceLock<bool> = OnceLock::new();
    let ok = *DETECTED.get_or_init(|| {
        is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx2")
            && is_x86_feature_detected!("fma")
    });
    ok.then_some(&avx512_table::AVX512)
}

/// See the x86_64 variant; on this target the AVX-512 arm does not exist.
#[cfg(not(all(target_arch = "x86_64", not(feature = "force-scalar"))))]
pub fn avx512_kernels() -> Option<&'static Kernels> {
    None
}

/// See the x86_64 variant; on this target the AVX2 arm does not exist.
#[cfg(not(all(target_arch = "x86_64", not(feature = "force-scalar"))))]
pub fn avx2_kernels() -> Option<&'static Kernels> {
    None
}

/// `VQMC_SIMD` runtime switch (read once at first dispatch):
/// `off`/`0`/`scalar`/`false` force the portable arm, `avx2` caps the
/// dispatch at the AVX2 table (no 512-bit kernels).
fn env_simd_cap() -> Option<Backend> {
    match std::env::var("VQMC_SIMD") {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "off" | "0" | "scalar" | "false" => Some(Backend::Scalar),
            "avx2" => Some(Backend::Avx2Fma),
            _ => None,
        },
        Err(_) => None,
    }
}

/// The production kernel table, resolved once per process (see the
/// module docs for the fallback policy).
pub fn kernels() -> &'static Kernels {
    static ACTIVE: OnceLock<&'static Kernels> = OnceLock::new();
    ACTIVE.get_or_init(|| match env_simd_cap() {
        Some(Backend::Scalar) => &PORTABLE,
        Some(_) => avx2_kernels().unwrap_or(&PORTABLE),
        None => avx512_kernels()
            .or_else(avx2_kernels)
            .unwrap_or(&PORTABLE),
    })
}

/// The arm the production dispatch resolved to.
pub fn backend() -> Backend {
    kernels().backend
}

/// The packed-GEMM microkernel signature of the **f32** arm: multiply a
/// `kc×8` packed A micro-panel by a `kc×4` packed B micro-panel,
/// **overwriting** the row-major 8×4 `tile`.
///
/// # Safety
/// Same contract as [`MicroKernel`], with `f32` elements.
pub type MicroKernelF32 = unsafe fn(kc: usize, ap: *const f32, bp: *const f32, tile: *mut f32);

/// f32 variant of [`SampleStepCols`] (f32 panel, `f64` logits).
pub type SampleStepColsF32 =
    fn(&mut [f32], usize, Option<&[f32]>, &[f32], &[f32], f64, &mut [f32], &mut [f64]);

/// The resolved **f32** kernel table — the mixed-precision twin of
/// [`Kernels`], covering the inference hot path only (no trainer-side
/// kernels: no `xpby`, `sq_dev_sum`, `sum_exp_shifted`, `tanh`).
///
/// Reduction results (`dot`, `relu_dot`, `sum`, logits) are `f64`:
/// stripe accumulators stay `f32` in registers, the cross-stripe
/// combine widens (see [`portable32`]).  The transcendental slice
/// entries route each chunk through the *same arm's* f64 kernel
/// (widen → apply → narrow), inheriting the f64 cross-arm
/// bit-identity.
#[derive(Clone, Copy)]
pub struct KernelsF32 {
    /// Which arm this table belongs to.
    pub backend: Backend,
    /// In-place sigmoid over an `f32` slice.
    pub sigmoid_slice: fn(&mut [f32]),
    /// In-place `log σ` over an `f32` slice.
    pub log_sigmoid_slice: fn(&mut [f32]),
    /// In-place `ln cosh` over an `f32` slice.
    pub ln_cosh_slice: fn(&mut [f32]),
    /// In-place `e^x` over an `f32` slice.
    pub exp_slice: fn(&mut [f32]),
    /// Fused dot product, `f64` result.
    pub dot: fn(&[f32], &[f32]) -> f64,
    /// `y ← y + α·x` over `f32`.
    pub axpy: fn(&mut [f32], f32, &[f32]),
    /// `Σ w·max(z, 0)` over `f32` operands, `f64` result.
    pub relu_dot: fn(&[f32], &[f32]) -> f64,
    /// Lane-striped sum with `f64` combine.
    pub sum: fn(&[f32]) -> f64,
    /// Fused batched AUTO bit step over a transposed `h×b` **f32**
    /// activation panel; logits land in `f64` so the downstream draw
    /// machinery is shared with the f64 path.
    /// `(zt, b, w_prev, prev_mask, w_out, bias, scratch ≥ 10·b, logits)`
    /// — 9 `f32` accumulator stripes plus one stripe the SIMD arms use
    /// to stash per-bit compare masks.
    pub sample_step_cols: SampleStepColsF32,
    /// The packed-GEMM 8×4 `f32` microkernel.
    pub micro_8x4: MicroKernelF32,
}

/// The portable f32 arm as a constant table.
static PORTABLE_F32: KernelsF32 = KernelsF32 {
    backend: Backend::Scalar,
    sigmoid_slice: portable32::sigmoid_slice,
    log_sigmoid_slice: portable32::log_sigmoid_slice,
    ln_cosh_slice: portable32::ln_cosh_slice,
    exp_slice: portable32::exp_slice,
    dot: portable32::dot,
    axpy: portable32::axpy,
    relu_dot: portable32::relu_dot,
    sum: portable32::sum,
    sample_step_cols: portable32::sample_step_cols,
    micro_8x4: portable32::micro_8x4 as MicroKernelF32,
};

/// The portable-scalar f32 table, regardless of what the production
/// dispatch resolved to (property tests / benches).
pub fn portable_kernels_f32() -> &'static KernelsF32 {
    &PORTABLE_F32
}

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
mod avx2_table_f32 {
    use super::*;

    // Safe shims: only installed after `is_x86_feature_detected!`
    // confirmed avx2+fma (same gate as the f64 AVX2 table).  The
    // transcendental entries widen each chunk through *this arm's* f64
    // kernel — the non-capturing closures coerce to `fn(&mut [f64])`.
    fn sigmoid_slice(xs: &mut [f32]) {
        portable32::map_via_f64(xs, |s| unsafe { avx2::sigmoid_slice(s) })
    }
    fn log_sigmoid_slice(xs: &mut [f32]) {
        portable32::map_via_f64(xs, |s| unsafe { avx2::log_sigmoid_slice(s) })
    }
    fn ln_cosh_slice(xs: &mut [f32]) {
        portable32::map_via_f64(xs, |s| unsafe { avx2::ln_cosh_slice(s) })
    }
    fn exp_slice(xs: &mut [f32]) {
        portable32::map_via_f64(xs, |s| unsafe { avx2::exp_slice(s) })
    }
    fn dot(a: &[f32], b: &[f32]) -> f64 {
        unsafe { avx2f32::dot(a, b) }
    }
    fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
        unsafe { avx2f32::axpy(y, alpha, x) }
    }
    fn relu_dot(w: &[f32], z: &[f32]) -> f64 {
        unsafe { avx2f32::relu_dot(w, z) }
    }
    fn sum(xs: &[f32]) -> f64 {
        unsafe { avx2f32::sum(xs) }
    }
    #[allow(clippy::too_many_arguments)]
    fn sample_step_cols(
        zt: &mut [f32],
        b: usize,
        w_prev: Option<&[f32]>,
        prev_mask: &[f32],
        w_out: &[f32],
        bias: f64,
        scratch: &mut [f32],
        logits: &mut [f64],
    ) {
        unsafe { avx2f32::sample_step_cols(zt, b, w_prev, prev_mask, w_out, bias, scratch, logits) }
    }

    pub(super) static AVX2_F32: KernelsF32 = KernelsF32 {
        backend: Backend::Avx2Fma,
        sigmoid_slice,
        log_sigmoid_slice,
        ln_cosh_slice,
        exp_slice,
        dot,
        axpy,
        relu_dot,
        sum,
        sample_step_cols,
        micro_8x4: avx2f32::micro_8x4 as MicroKernelF32,
    };
}

#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
mod avx512_table_f32 {
    use super::*;

    // Safe shim: only installed after `avx512f` (plus avx2+fma) was
    // confirmed.
    #[allow(clippy::too_many_arguments)]
    fn sample_step_cols(
        zt: &mut [f32],
        b: usize,
        w_prev: Option<&[f32]>,
        prev_mask: &[f32],
        w_out: &[f32],
        bias: f64,
        scratch: &mut [f32],
        logits: &mut [f64],
    ) {
        unsafe {
            avx512::sample_step_cols_f32(zt, b, w_prev, prev_mask, w_out, bias, scratch, logits)
        }
    }

    /// The AVX2 f32 table with the 16-wide panel-step override.
    pub(super) static AVX512_F32: KernelsF32 = KernelsF32 {
        backend: Backend::Avx512,
        sample_step_cols,
        ..avx2_table_f32::AVX2_F32
    };
}

/// The AVX2 f32 table when the CPU supports avx2+fma, `None` otherwise.
/// Shares the detection gate with [`avx2_kernels`].
#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
pub fn avx2_kernels_f32() -> Option<&'static KernelsF32> {
    avx2_kernels().map(|_| &avx2_table_f32::AVX2_F32)
}

/// The AVX-512 f32 table when `avx512f` (plus avx2+fma) is available,
/// `None` otherwise.  Shares the detection gate with [`avx512_kernels`].
#[cfg(all(target_arch = "x86_64", not(feature = "force-scalar")))]
pub fn avx512_kernels_f32() -> Option<&'static KernelsF32> {
    avx512_kernels().map(|_| &avx512_table_f32::AVX512_F32)
}

/// See the x86_64 variant; on this target the AVX2 f32 arm does not exist.
#[cfg(not(all(target_arch = "x86_64", not(feature = "force-scalar"))))]
pub fn avx2_kernels_f32() -> Option<&'static KernelsF32> {
    None
}

/// See the x86_64 variant; on this target the AVX-512 f32 arm does not exist.
#[cfg(not(all(target_arch = "x86_64", not(feature = "force-scalar"))))]
pub fn avx512_kernels_f32() -> Option<&'static KernelsF32> {
    None
}

/// The production **f32** kernel table, resolved once per process with
/// the same fallback policy (and the same `VQMC_SIMD` cap) as
/// [`kernels`].
pub fn kernels_f32() -> &'static KernelsF32 {
    static ACTIVE: OnceLock<&'static KernelsF32> = OnceLock::new();
    ACTIVE.get_or_init(|| match env_simd_cap() {
        Some(Backend::Scalar) => &PORTABLE_F32,
        Some(_) => avx2_kernels_f32().unwrap_or(&PORTABLE_F32),
        None => avx512_kernels_f32()
            .or_else(avx2_kernels_f32)
            .unwrap_or(&PORTABLE_F32),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_table_is_scalar() {
        assert_eq!(portable_kernels().backend, Backend::Scalar);
    }

    #[test]
    fn dispatch_is_stable() {
        assert_eq!(backend(), backend());
        assert!(std::ptr::eq(kernels(), kernels()));
    }

    #[cfg(feature = "force-scalar")]
    #[test]
    fn force_scalar_feature_pins_scalar() {
        assert_eq!(backend(), Backend::Scalar);
        assert!(avx2_kernels().is_none());
    }

    #[test]
    fn slice_kernels_agree_across_arms_smoke() {
        // The exhaustive sweep lives in tests/simd_proptests.rs; this
        // is a cheap always-on sanity check.
        if let Some(v) = avx2_kernels() {
            let xs: Vec<f64> = (0..37).map(|i| (i as f64 - 18.0) * 0.7).collect();
            let mut a = xs.clone();
            let mut b = xs.clone();
            (v.sigmoid_slice)(&mut a);
            (portable_kernels().sigmoid_slice)(&mut b);
            assert_eq!(a, b);
        }
    }
}
