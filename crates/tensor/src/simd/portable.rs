//! Portable scalar arm of the dispatch table.
//!
//! Every function here is the **operation-for-operation twin** of an
//! AVX2 kernel in `simd::avx2`: the same branch structure (vector
//! blends become scalar `if`s), the same fused steps (`f64::mul_add`
//! where the vector code issues `vfmadd`), and — for the reductions —
//! the same lane-striped accumulator layout and horizontal-sum order.
//! That discipline is what makes the two arms bit-identical, which the
//! `tests/simd_proptests.rs` suite asserts (the ≤2 ULP contract is met
//! with 0 ULP to spare).
//!
//! This arm is also the *production* backend on non-x86_64 targets,
//! under `--features force-scalar`, and under `VQMC_SIMD=off`.
//!
//! `f64::mul_add` without compile-time FMA lowers to libm's `fma()`,
//! which is correctly rounded (and uses the hardware instruction where
//! present), so the twin relationship holds on any IEEE-754 target.

// `!(x < BOUND)` routes NaN into the slow branch with one comparison;
// the `>=` clippy suggests would send NaN down the fast path instead.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

use super::exp::{self, EXP_SAFE_BOUND, LN2};

/// Per-element sigmoid `1/(1+e^{-x})`, computed via `t = e^{-|x|}` so
/// the exponential never overflows: `x ≥ 0 → 1/(1+t)`, `x < 0 → t/(1+t)`.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    let ax = x.abs();
    if !(ax < EXP_SAFE_BOUND) {
        // NaN or saturated: e^{-708} ≈ 3e-308 is below one ULP of 1.
        if x.is_nan() {
            return x;
        }
        return if x > 0.0 { 1.0 } else { 0.0 };
    }
    let t = exp::exp_bounded(-ax);
    let num = if x >= 0.0 { 1.0 } else { t };
    num / (1.0 + t)
}

/// Per-element `log σ(x) = min(x, 0) − log1p(e^{-|x|})`.
#[inline]
pub fn log_sigmoid(x: f64) -> f64 {
    let ax = x.abs();
    if !(ax < EXP_SAFE_BOUND) {
        if x.is_nan() {
            return x;
        }
        // log1p(e^{-708}) < 1e-307: invisible next to 0 or x.
        return if x > 0.0 { 0.0 } else { x };
    }
    let t = exp::exp_bounded(-ax);
    let neg = if x < 0.0 { x } else { 0.0 };
    neg - exp::log1p01(t)
}

/// `|x|` bound for the `t = e^{-2|x|}` kernels (`2·354 ≤ 708`).
const HALF_BOUND: f64 = 354.0;

/// Per-element `ln cosh x = (|x| − ln 2) + log1p(e^{-2|x|})`.
///
/// Absolute error ~1e-16 (the `|x| − ln 2` cancellation); relative
/// error degrades for `|x| → 0` where `ln cosh x → x²/2`.  All
/// consumers bound *absolute* error — see DESIGN.md's ULP contract.
#[inline]
pub fn ln_cosh(x: f64) -> f64 {
    let a = x.abs();
    if !(a < HALF_BOUND) {
        if x.is_nan() {
            return x;
        }
        return a - LN2;
    }
    let t = exp::exp_bounded(-2.0 * a);
    (a - LN2) + exp::log1p01(t)
}

/// Per-element `tanh x = sign(x)·(1 − t)/(1 + t)`, `t = e^{-2|x|}`.
///
/// Same absolute-error contract as [`ln_cosh`] (the `1 − t`
/// cancellation near 0).
#[inline]
pub fn tanh(x: f64) -> f64 {
    let a = x.abs();
    if !(a < HALF_BOUND) {
        if x.is_nan() {
            return x;
        }
        return if x > 0.0 { 1.0 } else { -1.0 };
    }
    let t = exp::exp_bounded(-2.0 * a);
    let r = (1.0 - t) / (1.0 + t);
    if x < 0.0 {
        -r
    } else {
        r
    }
}

// ---------------------------------------------------------------------------
// Slice kernels (the dispatch-table entries).
// ---------------------------------------------------------------------------

/// In-place sigmoid over a slice.
pub fn sigmoid_slice(xs: &mut [f64]) {
    for x in xs {
        *x = sigmoid(*x);
    }
}

/// In-place `log σ` over a slice.
pub fn log_sigmoid_slice(xs: &mut [f64]) {
    for x in xs {
        *x = log_sigmoid(*x);
    }
}

/// In-place `ln cosh` over a slice.
pub fn ln_cosh_slice(xs: &mut [f64]) {
    for x in xs {
        *x = ln_cosh(*x);
    }
}

/// In-place `tanh` over a slice.
pub fn tanh_slice(xs: &mut [f64]) {
    for x in xs {
        *x = tanh(*x);
    }
}

/// In-place `e^x` over a slice (full input range).
pub fn exp_slice(xs: &mut [f64]) {
    for x in xs {
        *x = exp::exp(*x);
    }
}

// ---------------------------------------------------------------------------
// Reductions — lane-striped exactly like the 4-wide vector arm.
// ---------------------------------------------------------------------------

/// Number of interleaved accumulator lanes in the reduction kernels:
/// one AVX2 `ymm` register of `f64`.
pub const LANES: usize = 4;

/// Lane-striped sum: lane `l` accumulates elements `l, l+4, …`; the
/// horizontal combine is `((c0+c1)+(c2+c3)) + tail`.
pub fn sum_slice(xs: &[f64]) -> f64 {
    let mut acc = [0.0f64; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for c in &mut chunks {
        for l in 0..LANES {
            acc[l] += c[l];
        }
    }
    let mut tail = 0.0;
    for &x in chunks.remainder() {
        tail += x;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

/// Lane-striped `Σ (x−m)²` (the variance inner block), FMA per step.
pub fn sq_dev_sum(xs: &[f64], m: f64) -> f64 {
    let mut acc = [0.0f64; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for c in &mut chunks {
        for l in 0..LANES {
            let d = c[l] - m;
            acc[l] = d.mul_add(d, acc[l]);
        }
    }
    let mut tail = 0.0;
    for &x in chunks.remainder() {
        let d = x - m;
        tail = d.mul_add(d, tail);
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

/// Lane-striped `Σ e^{x−m}` (the `log_sum_exp` inner block).
pub fn sum_exp_shifted(xs: &[f64], m: f64) -> f64 {
    let mut acc = [0.0f64; LANES];
    let mut chunks = xs.chunks_exact(LANES);
    for c in &mut chunks {
        for l in 0..LANES {
            acc[l] += exp::exp(c[l] - m);
        }
    }
    let mut tail = 0.0;
    for &x in chunks.remainder() {
        tail += exp::exp(x - m);
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

/// Number of interleaved lanes in [`dot`]: four `ymm` accumulators
/// (16 elements per unrolled step) to cover the FMA latency.
pub const DOT_LANES: usize = 16;

/// Lane-striped dot product, FMA per step.  Vector-arm combine order:
/// the four `ymm` accumulators reduce pairwise lane-wise
/// (`(y0+y1)+(y2+y3)`), then the surviving register horizontally as
/// `(c0+c1)+(c2+c3)`, then `+ tail`.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f64; DOT_LANES];
    let n16 = a.len() - a.len() % DOT_LANES;
    let mut i = 0;
    while i < n16 {
        for l in 0..DOT_LANES {
            acc[l] = a[i + l].mul_add(b[i + l], acc[l]);
        }
        i += DOT_LANES;
    }
    let mut tail = 0.0;
    while i < a.len() {
        tail = a[i].mul_add(b[i], tail);
        i += 1;
    }
    let mut c = [0.0f64; 4];
    for (l, cv) in c.iter_mut().enumerate() {
        *cv = (acc[l] + acc[4 + l]) + (acc[8 + l] + acc[12 + l]);
    }
    ((c[0] + c[1]) + (c[2] + c[3])) + tail
}

/// Lane-striped `Σ w·max(z, 0)` — the incremental sampler's masked
/// logit dot product.
pub fn relu_dot(w: &[f64], z: &[f64]) -> f64 {
    debug_assert_eq!(w.len(), z.len());
    let mut acc = [0.0f64; LANES];
    let n4 = w.len() - w.len() % LANES;
    let mut i = 0;
    while i < n4 {
        for l in 0..LANES {
            let zp = if z[i + l] > 0.0 { z[i + l] } else { 0.0 };
            acc[l] = w[i + l].mul_add(zp, acc[l]);
        }
        i += LANES;
    }
    let mut tail = 0.0;
    while i < w.len() {
        let zp = if z[i] > 0.0 { z[i] } else { 0.0 };
        tail = w[i].mul_add(zp, tail);
        i += 1;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail
}

/// `y ← y + α·x`, one FMA per element (elementwise, so bit-identity
/// across arms is structural).
pub fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    debug_assert_eq!(y.len(), x.len());
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv = alpha.mul_add(xv, *yv);
    }
}

/// `y ← x + β·y`, one FMA per element (the CG direction update).
pub fn xpby(y: &mut [f64], beta: f64, x: &[f64]) {
    debug_assert_eq!(y.len(), x.len());
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv = beta.mul_add(*yv, xv);
    }
}

// ---------------------------------------------------------------------------
// Packed GEMM reference microkernel.
// ---------------------------------------------------------------------------

/// The scalar twin of the AVX2 8×4 GEMM microkernel: identical
/// per-element FMA chain over the packed panels, so the two are
/// bit-identical (each `C[r,q]` accumulates `a[p,r]·b[p,q]` in the
/// same `p` order through fused steps).
///
/// Contract (shared with the AVX2 kernel): `ap` holds `kc` groups of
/// `MR_SIMD` A-values, `bp` holds `kc` groups of `NR_SIMD` B-values,
/// and the `MR_SIMD×NR_SIMD` row-major `tile` is **overwritten** with
/// the product over this `kc` block.
///
/// # Safety
/// `ap`/`bp`/`tile` must be valid for `kc*8`, `kc*4` and 32 reads/
/// writes respectively.
pub unsafe fn micro_8x4(kc: usize, ap: *const f64, bp: *const f64, tile: *mut f64) {
    let mut acc = [0.0f64; 32];
    for p in 0..kc {
        for r in 0..8 {
            let a = *ap.add(p * 8 + r);
            for q in 0..4 {
                acc[r * 4 + q] = a.mul_add(*bp.add(p * 4 + q), acc[r * 4 + q]);
            }
        }
    }
    for (i, v) in acc.iter().enumerate() {
        *tile.add(i) = *v;
    }
}

/// Fused incremental-AUTO batched bit step over a **transposed**
/// `h × b` activation panel `zt` (hidden unit `j` occupies the
/// contiguous slice `zt[j·b .. (j+1)·b]`, one lane per batch row):
///
/// 1. apply the *previous* bit's `W₁` column — `zt[j·b + r] += w_prev[j]`
///    exactly for rows whose previous bit was drawn 1 (`prev_mask[r] > 0.5`);
/// 2. accumulate the current bit's logit — `Σⱼ w_out[j]·max(zt[j·b+r], 0)`
///    per row, written to `logits`.
///
/// Per row `r` the reduction reproduces [`relu_dot`]'s accumulation
/// order exactly (four lane accumulators over `j` in aligned blocks of
/// [`LANES`], a sequential tail, then `((a₀+a₁)+(a₂+a₃))+tail`), and
/// the update is applied with a select (not arithmetic masking), so a
/// row's logit is **bit-identical** to running the row-major
/// update-then-`relu_dot` path on that row alone.  That invariance is
/// what lets the serving engine batch K requests in one pass and still
/// return byte-identical replies to the single-request path.
///
/// `scratch` provides the 5 accumulator stripes (`≥ 5·b`); `logits`
/// (`b`) is overwritten with `bias + Σ` (the `b2[i] + relu_dot` shape
/// of the row path).  `w_prev = None` skips the update (first bit).
#[allow(clippy::too_many_arguments)]
pub fn sample_step_cols(
    zt: &mut [f64],
    b: usize,
    w_prev: Option<&[f64]>,
    prev_mask: &[f64],
    w_out: &[f64],
    bias: f64,
    scratch: &mut [f64],
    logits: &mut [f64],
) {
    let h = w_out.len();
    debug_assert_eq!(zt.len(), h * b);
    debug_assert_eq!(prev_mask.len(), b);
    debug_assert!(scratch.len() >= 5 * b);
    debug_assert_eq!(logits.len(), b);
    let acc = &mut scratch[..5 * b];
    acc.fill(0.0);
    let n4 = h - h % LANES;
    for j in 0..h {
        let wo = w_out[j];
        // Lane stripe j%4 inside aligned blocks, stripe 4 = sequential
        // tail — relu_dot's exact assignment.
        let stripe = if j < n4 { j % LANES } else { LANES };
        let (head, rest) = acc.split_at_mut(stripe * b);
        let _ = head;
        let accs = &mut rest[..b];
        let row = &mut zt[j * b..(j + 1) * b];
        match w_prev {
            Some(w) => {
                let wj = w[j];
                for r in 0..b {
                    let z = if prev_mask[r] > 0.5 { row[r] + wj } else { row[r] };
                    row[r] = z;
                    let zp = if z > 0.0 { z } else { 0.0 };
                    accs[r] = wo.mul_add(zp, accs[r]);
                }
            }
            None => {
                for r in 0..b {
                    let z = row[r];
                    let zp = if z > 0.0 { z } else { 0.0 };
                    accs[r] = wo.mul_add(zp, accs[r]);
                }
            }
        }
    }
    let (a0, rest) = acc.split_at(b);
    let (a1, rest) = rest.split_at(b);
    let (a2, rest) = rest.split_at(b);
    let (a3, a4) = rest.split_at(b);
    for r in 0..b {
        logits[r] = bias + (((a0[r] + a1[r]) + (a2[r] + a3[r])) + a4[r]);
    }
}
