//! AVX-512 kernels (runtime-detected, x86_64 only).
//!
//! Only the kernels where 512-bit vectors pay for themselves live
//! here; the rest of the AVX-512 table reuses the AVX2+FMA
//! implementations (detection of `avx512f` is gated on `avx2`+`fma`
//! also being present, so that reuse is sound).  Today that is the
//! batched-sampling panel kernel [`sample_step_cols`], whose inner
//! loop is pure FP µop pressure: eight rows per vector halve the op
//! count per element versus the AVX2 arm.
//!
//! # Safety
//! Every function is `unsafe` and must only be called after
//! `is_x86_feature_detected!` has confirmed `avx512f` (plus `avx2` and
//! `fma` for the shared table entries).

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// Fused batched AUTO bit step over a transposed `h×b` activation
/// panel; twin of `portable::sample_step_cols` and
/// `avx2::sample_step_cols`, vectorised eight rows wide.
///
/// The masked `+w_prev[j]` update uses `_mm512_mask_add_pd` with the
/// panel value as pass-through, so masked-off rows keep their stored
/// bits exactly (including `-0.0`, matching the row path's skipped
/// `axpy`).  Per row the accumulation order — four lane stripes over
/// aligned blocks of 4 hidden units, a sequential tail, the
/// `((a0+a1)+(a2+a3))+tail` combine, then `bias + Σ` — is the same as
/// both other arms', so results are bit-identical.
#[target_feature(enable = "avx512f")]
pub unsafe fn sample_step_cols(
    zt: &mut [f64],
    b: usize,
    w_prev: Option<&[f64]>,
    prev_mask: &[f64],
    w_out: &[f64],
    bias: f64,
    scratch: &mut [f64],
    logits: &mut [f64],
) {
    let h = w_out.len();
    debug_assert_eq!(zt.len(), h * b);
    debug_assert_eq!(prev_mask.len(), b);
    debug_assert_eq!(logits.len(), b);
    let _ = scratch; // register accumulators; scratch is a portable-arm concern
    let n4 = h - h % 4;
    let pz = zt.as_mut_ptr();
    let pm = prev_mask.as_ptr();
    let po = w_out.as_ptr();
    let wp = w_prev.map(|w| w.as_ptr());
    let zero = _mm512_setzero_pd();
    let half = _mm512_set1_pd(0.5);
    let mut r = 0;
    while r + 8 <= b {
        let k: __mmask8 = _mm512_cmp_pd_mask(_mm512_loadu_pd(pm.add(r)), half, _CMP_GT_OQ);
        let (mut a0, mut a1, mut a2, mut a3, mut at) = (zero, zero, zero, zero, zero);
        // One hidden unit: masked update + striped fused accumulate.
        macro_rules! step {
            ($acc:ident, $j:expr) => {{
                let j = $j;
                let p = pz.add(j * b + r);
                let mut z = _mm512_loadu_pd(p);
                if let Some(w) = wp {
                    z = _mm512_mask_add_pd(z, k, z, _mm512_set1_pd(*w.add(j)));
                    _mm512_storeu_pd(p, z);
                }
                let zp = _mm512_max_pd(z, zero);
                $acc = _mm512_fmadd_pd(_mm512_set1_pd(*po.add(j)), zp, $acc);
            }};
        }
        // First row block only: stage the *next* bit's weight rows
        // (contiguous at `base + h` in both matrices) into L2 while
        // this bit computes.  Prefetches past the final row are
        // harmless hints, formed with wrapping pointer arithmetic.
        let mut j = 0;
        if r == 0 {
            while j + 4 <= n4 {
                if j % 8 == 0 {
                    let line = (h + j) as isize * 8;
                    _mm_prefetch(po.cast::<i8>().wrapping_offset(line), _MM_HINT_T1);
                    if let Some(w) = wp {
                        _mm_prefetch(w.cast::<i8>().wrapping_offset(line), _MM_HINT_T1);
                    }
                }
                step!(a0, j);
                step!(a1, j + 1);
                step!(a2, j + 2);
                step!(a3, j + 3);
                j += 4;
            }
        }
        while j + 4 <= n4 {
            step!(a0, j);
            step!(a1, j + 1);
            step!(a2, j + 2);
            step!(a3, j + 3);
            j += 4;
        }
        while j < h {
            step!(at, j);
            j += 1;
        }
        let s = _mm512_add_pd(_mm512_add_pd(a0, a1), _mm512_add_pd(a2, a3));
        let sum = _mm512_add_pd(s, at);
        _mm512_storeu_pd(
            logits.as_mut_ptr().add(r),
            _mm512_add_pd(_mm512_set1_pd(bias), sum),
        );
        r += 8;
    }
    // Remaining rows (b % 8): scalar, same per-row order.
    while r < b {
        let take = wp.is_some() && prev_mask[r] > 0.5;
        let mut acc = [0.0f64; 4];
        let mut tail = 0.0;
        for j in 0..h {
            let p = pz.add(j * b + r);
            let mut z = *p;
            if take {
                z += *wp.unwrap_unchecked().add(j);
                *p = z;
            }
            let zp = if z > 0.0 { z } else { 0.0 };
            let wo = *po.add(j);
            if j < n4 {
                acc[j % 4] = wo.mul_add(zp, acc[j % 4]);
            } else {
                tail = wo.mul_add(zp, tail);
            }
        }
        logits[r] = bias + (((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail);
        r += 1;
    }
}
