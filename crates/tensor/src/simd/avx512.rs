//! AVX-512 kernels (runtime-detected, x86_64 only).
//!
//! Only the kernels where 512-bit vectors pay for themselves live
//! here; the rest of the AVX-512 table reuses the AVX2+FMA
//! implementations (detection of `avx512f` is gated on `avx2`+`fma`
//! also being present, so that reuse is sound).  Today that is the
//! batched-sampling panel kernel [`sample_step_cols`], whose inner
//! loop is pure FP µop pressure: eight rows per vector halve the op
//! count per element versus the AVX2 arm.
//!
//! # Safety
//! Every function is `unsafe` and must only be called after
//! `is_x86_feature_detected!` has confirmed `avx512f` (plus `avx2` and
//! `fma` for the shared table entries).

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

use super::portable32::{self, LANES_F32};

/// Fused batched AUTO bit step over a transposed `h×b` activation
/// panel; twin of `portable::sample_step_cols` and
/// `avx2::sample_step_cols`, vectorised eight rows wide.
///
/// The masked `+w_prev[j]` update uses `_mm512_mask_add_pd` with the
/// panel value as pass-through, so masked-off rows keep their stored
/// bits exactly (including `-0.0`, matching the row path's skipped
/// `axpy`).  Per row the accumulation order — four lane stripes over
/// aligned blocks of 4 hidden units, a sequential tail, the
/// `((a0+a1)+(a2+a3))+tail` combine, then `bias + Σ` — is the same as
/// both other arms', so results are bit-identical.
///
/// # Safety
///
/// The CPU must support AVX-512F (callers go through the dispatch
/// table, which verifies this at startup); slice lengths must satisfy
/// the panel contract above (`zt` ≥ `h·b`, `scratch` ≥ `6·b`).
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f")]
pub unsafe fn sample_step_cols(
    zt: &mut [f64],
    b: usize,
    w_prev: Option<&[f64]>,
    prev_mask: &[f64],
    w_out: &[f64],
    bias: f64,
    scratch: &mut [f64],
    logits: &mut [f64],
) {
    let h = w_out.len();
    debug_assert_eq!(zt.len(), h * b);
    debug_assert_eq!(prev_mask.len(), b);
    debug_assert_eq!(logits.len(), b);
    if h * b * 8 > HIDDEN_MAJOR_BYTES {
        return sample_step_cols_hidden_major(
            zt, b, w_prev, prev_mask, w_out, bias, scratch, logits,
        );
    }
    let _ = scratch; // register accumulators; scratch is a portable-arm concern
    let n4 = h - h % 4;
    let pz = zt.as_mut_ptr();
    let pm = prev_mask.as_ptr();
    let po = w_out.as_ptr();
    let wp = w_prev.map(|w| w.as_ptr());
    let zero = _mm512_setzero_pd();
    let half = _mm512_set1_pd(0.5);
    let mut r = 0;
    while r + 8 <= b {
        let k: __mmask8 = _mm512_cmp_pd_mask(_mm512_loadu_pd(pm.add(r)), half, _CMP_GT_OQ);
        let (mut a0, mut a1, mut a2, mut a3, mut at) = (zero, zero, zero, zero, zero);
        // One hidden unit: masked update + striped fused accumulate.
        macro_rules! step {
            ($acc:ident, $j:expr) => {{
                let j = $j;
                let p = pz.add(j * b + r);
                let mut z = _mm512_loadu_pd(p);
                if let Some(w) = wp {
                    z = _mm512_mask_add_pd(z, k, z, _mm512_set1_pd(*w.add(j)));
                    _mm512_storeu_pd(p, z);
                }
                let zp = _mm512_max_pd(z, zero);
                $acc = _mm512_fmadd_pd(_mm512_set1_pd(*po.add(j)), zp, $acc);
            }};
        }
        // First row block only: stage the *next* bit's weight rows
        // (contiguous at `base + h` in both matrices) into L2 while
        // this bit computes.  Prefetches past the final row are
        // harmless hints, formed with wrapping pointer arithmetic.
        let mut j = 0;
        if r == 0 {
            while j + 4 <= n4 {
                if j % 8 == 0 {
                    let line = (h + j) as isize * 8;
                    _mm_prefetch(po.cast::<i8>().wrapping_offset(line), _MM_HINT_T1);
                    if let Some(w) = wp {
                        _mm_prefetch(w.cast::<i8>().wrapping_offset(line), _MM_HINT_T1);
                    }
                }
                step!(a0, j);
                step!(a1, j + 1);
                step!(a2, j + 2);
                step!(a3, j + 3);
                j += 4;
            }
        }
        while j + 4 <= n4 {
            step!(a0, j);
            step!(a1, j + 1);
            step!(a2, j + 2);
            step!(a3, j + 3);
            j += 4;
        }
        while j < h {
            step!(at, j);
            j += 1;
        }
        let s = _mm512_add_pd(_mm512_add_pd(a0, a1), _mm512_add_pd(a2, a3));
        let sum = _mm512_add_pd(s, at);
        _mm512_storeu_pd(
            logits.as_mut_ptr().add(r),
            _mm512_add_pd(_mm512_set1_pd(bias), sum),
        );
        r += 8;
    }
    // Remaining rows (b % 8): scalar, same per-row order.
    while r < b {
        let take = wp.is_some() && prev_mask[r] > 0.5;
        let mut acc = [0.0f64; 4];
        let mut tail = 0.0;
        for j in 0..h {
            let p = pz.add(j * b + r);
            let mut z = *p;
            if take {
                z += *wp.unwrap_unchecked().add(j);
                *p = z;
            }
            let zp = if z > 0.0 { z } else { 0.0 };
            let wo = *po.add(j);
            if j < n4 {
                acc[j % 4] = wo.mul_add(zp, acc[j % 4]);
            } else {
                tail = wo.mul_add(zp, tail);
            }
        }
        logits[r] = bias + (((acc[0] + acc[1]) + (acc[2] + acc[3])) + tail);
        r += 1;
    }
}

/// Above this panel size the row-block traversal's stride-`b` loads
/// (one line every `8·b` bytes) outrun the dTLB and the stride
/// prefetcher, and the kernel goes latency-bound; the hidden-major
/// traversal below streams everything sequentially instead.  Below it
/// the panel is small enough that every stride lands in cache and the
/// register traversal's freedom from stripe-accumulator traffic wins.
const HIDDEN_MAJOR_BYTES: usize = 64 * 1024;

/// Hidden-major twin of the row-block traversal in
/// [`sample_step_cols`], used for panels too large for it: the `j`
/// loop is outermost, so the panel row `zt[j·b..]`, the mask and the
/// stripe accumulator are all walked contiguously — pure sequential
/// streams the prefetcher can run ahead of, at the cost of keeping the
/// five accumulator stripes in `scratch` (L1-resident: `5·b` doubles)
/// instead of registers.
///
/// Bit-identity with the row-block traversal: the stripe assignment
/// (`j % 4` inside aligned blocks of 4, sequential tail), the masked
/// `_mm512_mask_add_pd` update with the panel value as pass-through,
/// the `max(z,0)` + fused multiply-add per element, and the final
/// `bias + (((a0+a1)+(a2+a3))+tail)` combine are all identical per
/// row; the only difference is that partial sums round-trip through
/// memory, which is exact for `f64`.
///
/// Two µop savers keep this competitive with the register traversal's
/// 5-µop element loop: the `prev_mask > 0.5` compares are hoisted out
/// of the hidden loop into a per-bit `__mmask8` array (stashed in the
/// sixth scratch stripe), and aligned blocks of 4 hidden units — one
/// per accumulator stripe — share each mask load, giving four
/// independent FMA chains per pass over the rows.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f")]
unsafe fn sample_step_cols_hidden_major(
    zt: &mut [f64],
    b: usize,
    w_prev: Option<&[f64]>,
    prev_mask: &[f64],
    w_out: &[f64],
    bias: f64,
    scratch: &mut [f64],
    logits: &mut [f64],
) {
    let h = w_out.len();
    debug_assert!(scratch.len() >= 6 * b);
    let n4 = h - h % 4;
    let (acc, mask_stash) = scratch.split_at_mut(5 * b);
    acc.fill(0.0);
    let pa = acc.as_mut_ptr();
    let pz = zt.as_mut_ptr();
    let pm = prev_mask.as_ptr();
    let zero = _mm512_setzero_pd();
    let half = _mm512_set1_pd(0.5);
    let bv = b - b % 8;
    // Per-bit mask precompute: one compare per 8 rows for the whole
    // bit, instead of one per (hidden unit, 8 rows).
    let pk = mask_stash.as_mut_ptr().cast::<u8>();
    if w_prev.is_some() {
        let mut r = 0;
        while r < bv {
            let k: __mmask8 = _mm512_cmp_pd_mask(_mm512_loadu_pd(pm.add(r)), half, _CMP_GT_OQ);
            *pk.add(r / 8) = k;
            r += 8;
        }
    }
    match w_prev {
        Some(w) => {
            let mut j = 0;
            // Aligned blocks of 4 hidden units: unit `j+t` feeds stripe
            // `t`, so the four chains are independent and the mask load
            // is shared.
            while j + 4 <= n4 {
                let w0 = _mm512_set1_pd(*w.get_unchecked(j));
                let w1 = _mm512_set1_pd(*w.get_unchecked(j + 1));
                let w2 = _mm512_set1_pd(*w.get_unchecked(j + 2));
                let w3 = _mm512_set1_pd(*w.get_unchecked(j + 3));
                let o0 = _mm512_set1_pd(*w_out.get_unchecked(j));
                let o1 = _mm512_set1_pd(*w_out.get_unchecked(j + 1));
                let o2 = _mm512_set1_pd(*w_out.get_unchecked(j + 2));
                let o3 = _mm512_set1_pd(*w_out.get_unchecked(j + 3));
                let row0 = pz.add(j * b);
                let row1 = pz.add((j + 1) * b);
                let row2 = pz.add((j + 2) * b);
                let row3 = pz.add((j + 3) * b);
                let mut r = 0;
                while r < bv {
                    let k: __mmask8 = *pk.add(r / 8);
                    macro_rules! unit {
                        ($row:ident, $wv:ident, $ov:ident, $stripe:expr) => {{
                            let p = $row.add(r);
                            let z = _mm512_loadu_pd(p);
                            let z = _mm512_mask_add_pd(z, k, z, $wv);
                            _mm512_storeu_pd(p, z);
                            let a = pa.add($stripe * b + r);
                            _mm512_storeu_pd(
                                a,
                                _mm512_fmadd_pd($ov, _mm512_max_pd(z, zero), _mm512_loadu_pd(a)),
                            );
                        }};
                    }
                    unit!(row0, w0, o0, 0);
                    unit!(row1, w1, o1, 1);
                    unit!(row2, w2, o2, 2);
                    unit!(row3, w3, o3, 3);
                    r += 8;
                }
                while r < b {
                    let take = *pm.add(r) > 0.5;
                    macro_rules! unit {
                        ($row:ident, $jt:expr, $stripe:expr) => {{
                            let p = $row.add(r);
                            let mut z = *p;
                            if take {
                                z += *w.get_unchecked($jt);
                                *p = z;
                            }
                            let zp = if z > 0.0 { z } else { 0.0 };
                            let a = pa.add($stripe * b + r);
                            *a = (*w_out.get_unchecked($jt)).mul_add(zp, *a);
                        }};
                    }
                    unit!(row0, j, 0);
                    unit!(row1, j + 1, 1);
                    unit!(row2, j + 2, 2);
                    unit!(row3, j + 3, 3);
                    r += 1;
                }
                j += 4;
            }
            // Sequential tail units feed stripe 4.
            while j < h {
                let wj = *w.get_unchecked(j);
                let wv = _mm512_set1_pd(wj);
                let wo = *w_out.get_unchecked(j);
                let wov = _mm512_set1_pd(wo);
                let row = pz.add(j * b);
                let accs = pa.add(4 * b);
                let mut r = 0;
                while r < bv {
                    let k: __mmask8 = *pk.add(r / 8);
                    let p = row.add(r);
                    let z = _mm512_loadu_pd(p);
                    let z = _mm512_mask_add_pd(z, k, z, wv);
                    _mm512_storeu_pd(p, z);
                    let a = accs.add(r);
                    _mm512_storeu_pd(
                        a,
                        _mm512_fmadd_pd(wov, _mm512_max_pd(z, zero), _mm512_loadu_pd(a)),
                    );
                    r += 8;
                }
                while r < b {
                    let p = row.add(r);
                    let mut z = *p;
                    if *pm.add(r) > 0.5 {
                        z += wj;
                        *p = z;
                    }
                    let zp = if z > 0.0 { z } else { 0.0 };
                    let a = accs.add(r);
                    *a = wo.mul_add(zp, *a);
                    r += 1;
                }
                j += 1;
            }
        }
        None => {
            for j in 0..h {
                let stripe = if j < n4 { j % 4 } else { 4 };
                let accs = pa.add(stripe * b);
                let row = pz.add(j * b);
                let wo = *w_out.get_unchecked(j);
                let wov = _mm512_set1_pd(wo);
                let mut r = 0;
                while r < bv {
                    let z = _mm512_loadu_pd(row.add(r));
                    let a = accs.add(r);
                    _mm512_storeu_pd(
                        a,
                        _mm512_fmadd_pd(wov, _mm512_max_pd(z, zero), _mm512_loadu_pd(a)),
                    );
                    r += 8;
                }
                while r < b {
                    let z = *row.add(r);
                    let zp = if z > 0.0 { z } else { 0.0 };
                    let a = accs.add(r);
                    *a = wo.mul_add(zp, *a);
                    r += 1;
                }
            }
        }
    }
    let (a0, rest) = acc.split_at(b);
    let (a1, rest) = rest.split_at(b);
    let (a2, rest) = rest.split_at(b);
    let (a3, a4) = rest.split_at(b);
    let bias_v = _mm512_set1_pd(bias);
    let mut r = 0;
    while r < bv {
        let s = _mm512_add_pd(
            _mm512_add_pd(
                _mm512_loadu_pd(a0.as_ptr().add(r)),
                _mm512_loadu_pd(a1.as_ptr().add(r)),
            ),
            _mm512_add_pd(
                _mm512_loadu_pd(a2.as_ptr().add(r)),
                _mm512_loadu_pd(a3.as_ptr().add(r)),
            ),
        );
        let sum = _mm512_add_pd(s, _mm512_loadu_pd(a4.as_ptr().add(r)));
        _mm512_storeu_pd(logits.as_mut_ptr().add(r), _mm512_add_pd(bias_v, sum));
        r += 8;
    }
    while r < b {
        logits[r] = bias + (((a0[r] + a1[r]) + (a2[r] + a3[r])) + a4[r]);
        r += 1;
    }
}

/// Fused batched AUTO bit step over a transposed `h×b` **f32** panel;
/// twin of `portable32::sample_step_cols` and
/// `avx2f32::sample_step_cols`, vectorised **sixteen** rows wide.
///
/// Mirrors the f64 kernel's two-traversal split: panels that fit the
/// [`HIDDEN_MAJOR_BYTES`] window (`h·b·4` here — f32 panels hold twice
/// the elements per byte) run a register row-block traversal — sixteen
/// rows per `__m512`, the nine `j%8` stripe accumulators held in
/// registers across the whole hidden loop, so the per-element cost is
/// load/mask-add/store/max/FMA with **no accumulator memory traffic**.
/// Larger panels fall back to the hidden-major traversal
/// ([`sample_step_cols_f32_hidden_major`]), whose sequential streams
/// the prefetcher can run ahead of.
///
/// Bit-identity across traversals and arms is structural: both
/// traversals produce the *same nine `f32` stripe partial sums* (same
/// `j%8` assignment, same per-stripe FMA order in `j`; an f32 register
/// spilled to the scratch stripe is exact), and both finish through the
/// shared scalar `f64`-widened [`portable32::combine_stripes`].
///
/// # Safety
///
/// The CPU must support AVX-512F (callers go through the dispatch
/// table, which verifies this at startup); slice lengths must satisfy
/// the f32 panel contract above (`scratch` ≥ `10·b`).
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f")]
pub unsafe fn sample_step_cols_f32(
    zt: &mut [f32],
    b: usize,
    w_prev: Option<&[f32]>,
    prev_mask: &[f32],
    w_out: &[f32],
    bias: f64,
    scratch: &mut [f32],
    logits: &mut [f64],
) {
    let h = w_out.len();
    debug_assert_eq!(zt.len(), h * b);
    debug_assert_eq!(prev_mask.len(), b);
    debug_assert!(scratch.len() >= 10 * b);
    debug_assert_eq!(logits.len(), b);
    if h * b * 4 > HIDDEN_MAJOR_BYTES {
        return sample_step_cols_f32_hidden_major(
            zt, b, w_prev, prev_mask, w_out, bias, scratch, logits,
        );
    }
    let _ = scratch; // register accumulators; scratch is a hidden-major concern
    let h8 = h - h % LANES_F32;
    let pz = zt.as_mut_ptr();
    let pm = prev_mask.as_ptr();
    let po = w_out.as_ptr();
    let wp = w_prev.map(|w| w.as_ptr());
    let zero = _mm512_setzero_ps();
    let half = _mm512_set1_ps(0.5);
    let mut r = 0;
    while r + 16 <= b {
        let k: __mmask16 =
            _mm512_cmp_ps_mask::<_CMP_GT_OQ>(_mm512_loadu_ps(pm.add(r)), half);
        let (mut a0, mut a1, mut a2, mut a3) = (zero, zero, zero, zero);
        let (mut a4, mut a5, mut a6, mut a7, mut a8) = (zero, zero, zero, zero, zero);
        // One hidden unit: masked update + striped fused accumulate.
        macro_rules! step {
            ($acc:ident, $j:expr) => {{
                let j = $j;
                let p = pz.add(j * b + r);
                let mut z = _mm512_loadu_ps(p);
                if let Some(w) = wp {
                    z = _mm512_mask_add_ps(z, k, z, _mm512_set1_ps(*w.add(j)));
                    _mm512_storeu_ps(p, z);
                }
                let zp = _mm512_max_ps(z, zero);
                $acc = _mm512_fmadd_ps(_mm512_set1_ps(*po.add(j)), zp, $acc);
            }};
        }
        // First row block only: stage the *next* bit's weight rows
        // (contiguous at `base + h` in both matrices, 4-byte elements)
        // into L2 while this bit computes.  Prefetches past the final
        // row are harmless hints, formed with wrapping arithmetic.
        let mut j = 0;
        if r == 0 {
            while j + 8 <= h8 {
                if j % 16 == 0 {
                    let line = (h + j) as isize * 4;
                    _mm_prefetch(po.cast::<i8>().wrapping_offset(line), _MM_HINT_T1);
                    if let Some(w) = wp {
                        _mm_prefetch(w.cast::<i8>().wrapping_offset(line), _MM_HINT_T1);
                    }
                }
                step!(a0, j);
                step!(a1, j + 1);
                step!(a2, j + 2);
                step!(a3, j + 3);
                step!(a4, j + 4);
                step!(a5, j + 5);
                step!(a6, j + 6);
                step!(a7, j + 7);
                j += 8;
            }
        }
        while j + 8 <= h8 {
            step!(a0, j);
            step!(a1, j + 1);
            step!(a2, j + 2);
            step!(a3, j + 3);
            step!(a4, j + 4);
            step!(a5, j + 5);
            step!(a6, j + 6);
            step!(a7, j + 7);
            j += 8;
        }
        while j < h {
            step!(a8, j);
            j += 1;
        }
        // In-register combine, `f64`-widened per 8-lane half: the same
        // `bias + ((((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7))) + s8)` tree
        // as `portable32::combine_stripes`, per lane (`cvtps_pd` is
        // exact, f64 vector adds are lane-wise — bit-identical).
        let bv = _mm512_set1_pd(bias);
        macro_rules! half_combine {
            ($lane:expr, $off:expr) => {{
                let w = |a: __m512| -> __m512d {
                    if $lane == 0 {
                        _mm512_cvtps_pd(_mm512_castps512_ps256(a))
                    } else {
                        _mm512_cvtps_pd(_mm256_castpd_ps(_mm512_extractf64x4_pd::<1>(
                            _mm512_castps_pd(a),
                        )))
                    }
                };
                let s01 = _mm512_add_pd(w(a0), w(a1));
                let s23 = _mm512_add_pd(w(a2), w(a3));
                let s45 = _mm512_add_pd(w(a4), w(a5));
                let s67 = _mm512_add_pd(w(a6), w(a7));
                let s = _mm512_add_pd(
                    _mm512_add_pd(_mm512_add_pd(s01, s23), _mm512_add_pd(s45, s67)),
                    w(a8),
                );
                _mm512_storeu_pd(logits.as_mut_ptr().add(r + $off), _mm512_add_pd(bv, s));
            }};
        }
        half_combine!(0, 0);
        half_combine!(1, 8);
        r += 16;
    }
    // Remaining rows (b % 16): scalar, same stripe assignment and
    // combine tree, with the nine stripes in a local array.
    while r < b {
        let take = wp.is_some() && *pm.add(r) > 0.5;
        let mut acc = [0.0f32; 9];
        for j in 0..h {
            let p = pz.add(j * b + r);
            let mut z = *p;
            if take {
                z += *wp.unwrap_unchecked().add(j);
                *p = z;
            }
            let zp = if z > 0.0 { z } else { 0.0 };
            let stripe = if j < h8 { j % LANES_F32 } else { LANES_F32 };
            acc[stripe] = (*po.add(j)).mul_add(zp, acc[stripe]);
        }
        let s = |k: usize| acc[k] as f64;
        logits[r] =
            bias + ((((s(0) + s(1)) + (s(2) + s(3))) + ((s(4) + s(5)) + (s(6) + s(7)))) + s(8));
        r += 1;
    }
}

/// Hidden-major twin of the register row-block traversal in
/// [`sample_step_cols_f32`], used for panels too large for it: `j`
/// outermost, panel rows / mask / stripe accumulators all walked
/// contiguously, with the nine stripes resident in `scratch` instead of
/// registers.  The masked `+w_prev[j]` update uses `_mm512_mask_add_ps`
/// with the panel value as pass-through (masked rows keep their stored
/// bits exactly, matching the portable select), and the `prev_mask >
/// 0.5` compares are hoisted into a per-bit `__mmask16` stash in the
/// 10th scratch stripe.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f")]
unsafe fn sample_step_cols_f32_hidden_major(
    zt: &mut [f32],
    b: usize,
    w_prev: Option<&[f32]>,
    prev_mask: &[f32],
    w_out: &[f32],
    bias: f64,
    scratch: &mut [f32],
    logits: &mut [f64],
) {
    let h = w_out.len();
    let h8 = h - h % LANES_F32;
    let (acc, mask_stash) = scratch.split_at_mut(9 * b);
    acc.fill(0.0);
    let pa = acc.as_mut_ptr();
    let pz = zt.as_mut_ptr();
    let pm = prev_mask.as_ptr();
    let pk = mask_stash.as_mut_ptr().cast::<u16>();
    let zero = _mm512_setzero_ps();
    let half = _mm512_set1_ps(0.5);
    let bv = b - b % 16;
    if w_prev.is_some() {
        let mut r = 0;
        while r < bv {
            let k: __mmask16 =
                _mm512_cmp_ps_mask::<_CMP_GT_OQ>(_mm512_loadu_ps(pm.add(r)), half);
            *pk.add(r / 16) = k;
            r += 16;
        }
    }
    match w_prev {
        Some(w) => {
            for j in 0..h {
                let wj = *w.get_unchecked(j);
                let wv = _mm512_set1_ps(wj);
                let wo = *w_out.get_unchecked(j);
                let wov = _mm512_set1_ps(wo);
                let stripe = if j < h8 { j % LANES_F32 } else { LANES_F32 };
                let accs = pa.add(stripe * b);
                let row = pz.add(j * b);
                let mut r = 0;
                while r < bv {
                    let k: __mmask16 = *pk.add(r / 16);
                    let p = row.add(r);
                    let z = _mm512_loadu_ps(p);
                    let z = _mm512_mask_add_ps(z, k, z, wv);
                    _mm512_storeu_ps(p, z);
                    let a = accs.add(r);
                    _mm512_storeu_ps(
                        a,
                        _mm512_fmadd_ps(wov, _mm512_max_ps(z, zero), _mm512_loadu_ps(a)),
                    );
                    r += 16;
                }
                while r < b {
                    let p = row.add(r);
                    let mut z = *p;
                    if *pm.add(r) > 0.5 {
                        z += wj;
                        *p = z;
                    }
                    let zp = if z > 0.0 { z } else { 0.0 };
                    let a = accs.add(r);
                    *a = wo.mul_add(zp, *a);
                    r += 1;
                }
            }
        }
        None => {
            for j in 0..h {
                let wo = *w_out.get_unchecked(j);
                let wov = _mm512_set1_ps(wo);
                let stripe = if j < h8 { j % LANES_F32 } else { LANES_F32 };
                let accs = pa.add(stripe * b);
                let row = pz.add(j * b);
                let mut r = 0;
                while r < bv {
                    let z = _mm512_loadu_ps(row.add(r));
                    let a = accs.add(r);
                    _mm512_storeu_ps(
                        a,
                        _mm512_fmadd_ps(wov, _mm512_max_ps(z, zero), _mm512_loadu_ps(a)),
                    );
                    r += 16;
                }
                while r < b {
                    let z = *row.add(r);
                    let zp = if z > 0.0 { z } else { 0.0 };
                    let a = accs.add(r);
                    *a = wo.mul_add(zp, *a);
                    r += 1;
                }
            }
        }
    }
    portable32::combine_stripes(acc, b, bias, logits);
}
