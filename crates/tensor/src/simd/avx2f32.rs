//! AVX2+FMA arm of the **f32** dispatch table (x86_64 only, compiled
//! out under `--features force-scalar`).
//!
//! Every kernel is the vector mirror of a function in
//! `simd::portable32`: identical stripe layout (8 `f32` lanes = one
//! `ymm`), identical fused steps (`vfmaddps` for every `f32::mul_add`),
//! and the identical `f64`-widened cross-stripe combine — so the two
//! arms are bit-identical (property-tested in
//! `tests/simd_f32_proptests.rs`).  The transcendental slices reuse the
//! widen → **this arm's f64 kernel** → narrow route from `portable32`,
//! inheriting the f64 arms' proven cross-arm bit-identity.
//!
//! # Safety
//! Every `fn` here is `unsafe` with `#[target_feature(enable = "avx2",
//! enable = "fma")]`: callers must have verified
//! `is_x86_feature_detected!` for both features.  The dispatch table in
//! `simd` is the only production caller and installs these pointers
//! strictly after detection.

#![allow(clippy::missing_safety_doc)]

use core::arch::x86_64::*;

use super::portable32::{self, combine8, LANES_F32};

/// `(((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7)))` over the widened lanes —
/// the shared horizontal-sum order of the f32 arms.
#[inline]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn hsum8(acc: __m256) -> f64 {
    let mut c = [0.0f32; 8];
    _mm256_storeu_ps(c.as_mut_ptr(), acc);
    combine8(&c)
}

/// Lane-striped sum; same stripe layout and combine as
/// `portable32::sum`.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn sum(xs: &[f32]) -> f64 {
    let n = xs.len();
    let p = xs.as_ptr();
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= n {
        acc = _mm256_add_ps(acc, _mm256_loadu_ps(p.add(i)));
        i += 8;
    }
    let mut tail = 0.0f32;
    while i < n {
        tail += *p.add(i);
        i += 1;
    }
    hsum8(acc) + tail as f64
}

/// Four-register FMA dot product; twin of `portable32::dot` (32-lane
/// stripes, pairwise register combine in `f32`, widened `hsum8`, tail).
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn dot(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut y0 = _mm256_setzero_ps();
    let mut y1 = _mm256_setzero_ps();
    let mut y2 = _mm256_setzero_ps();
    let mut y3 = _mm256_setzero_ps();
    let mut i = 0;
    while i + 32 <= n {
        y0 = _mm256_fmadd_ps(_mm256_loadu_ps(pa.add(i)), _mm256_loadu_ps(pb.add(i)), y0);
        y1 = _mm256_fmadd_ps(
            _mm256_loadu_ps(pa.add(i + 8)),
            _mm256_loadu_ps(pb.add(i + 8)),
            y1,
        );
        y2 = _mm256_fmadd_ps(
            _mm256_loadu_ps(pa.add(i + 16)),
            _mm256_loadu_ps(pb.add(i + 16)),
            y2,
        );
        y3 = _mm256_fmadd_ps(
            _mm256_loadu_ps(pa.add(i + 24)),
            _mm256_loadu_ps(pb.add(i + 24)),
            y3,
        );
        i += 32;
    }
    let mut tail = 0.0f32;
    while i < n {
        tail = (*pa.add(i)).mul_add(*pb.add(i), tail);
        i += 1;
    }
    let c = _mm256_add_ps(_mm256_add_ps(y0, y1), _mm256_add_ps(y2, y3));
    hsum8(c) + tail as f64
}

/// Lane-striped `Σ w·max(z, 0)`; twin of `portable32::relu_dot`.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn relu_dot(w: &[f32], z: &[f32]) -> f64 {
    debug_assert_eq!(w.len(), z.len());
    let n = w.len();
    let (pw, pz) = (w.as_ptr(), z.as_ptr());
    let zero = _mm256_setzero_ps();
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i + 8 <= n {
        let zp = _mm256_max_ps(_mm256_loadu_ps(pz.add(i)), zero);
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(pw.add(i)), zp, acc);
        i += 8;
    }
    let mut tail = 0.0f32;
    while i < n {
        let zv = *pz.add(i);
        let zp = if zv > 0.0 { zv } else { 0.0 };
        tail = (*pw.add(i)).mul_add(zp, tail);
        i += 1;
    }
    hsum8(acc) + tail as f64
}

/// `y ← y + α·x` over `f32`; elementwise FMA (bit-identical to the
/// portable arm by construction).
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    debug_assert_eq!(y.len(), x.len());
    let n = y.len();
    let py = y.as_mut_ptr();
    let px = x.as_ptr();
    let av = _mm256_set1_ps(alpha);
    let mut i = 0;
    while i + 8 <= n {
        let r = _mm256_fmadd_ps(av, _mm256_loadu_ps(px.add(i)), _mm256_loadu_ps(py.add(i)));
        _mm256_storeu_ps(py.add(i), r);
        i += 8;
    }
    while i < n {
        *py.add(i) = alpha.mul_add(*px.add(i), *py.add(i));
        i += 1;
    }
}

/// The 8×4 FMA **f32** GEMM microkernel over packed panels: per
/// `k`-step one 4-wide B load (`xmm`), eight A broadcasts, eight
/// `vfmaddps` into eight independent `xmm` accumulator chains.  Same
/// contract as `portable32::micro_8x4`, to which it is bit-identical.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn micro_8x4(kc: usize, ap: *const f32, bp: *const f32, tile: *mut f32) {
    let mut c0 = _mm_setzero_ps();
    let mut c1 = _mm_setzero_ps();
    let mut c2 = _mm_setzero_ps();
    let mut c3 = _mm_setzero_ps();
    let mut c4 = _mm_setzero_ps();
    let mut c5 = _mm_setzero_ps();
    let mut c6 = _mm_setzero_ps();
    let mut c7 = _mm_setzero_ps();
    for p in 0..kc {
        let b = _mm_loadu_ps(bp.add(p * 4));
        let a = ap.add(p * 8);
        c0 = _mm_fmadd_ps(_mm_set1_ps(*a), b, c0);
        c1 = _mm_fmadd_ps(_mm_set1_ps(*a.add(1)), b, c1);
        c2 = _mm_fmadd_ps(_mm_set1_ps(*a.add(2)), b, c2);
        c3 = _mm_fmadd_ps(_mm_set1_ps(*a.add(3)), b, c3);
        c4 = _mm_fmadd_ps(_mm_set1_ps(*a.add(4)), b, c4);
        c5 = _mm_fmadd_ps(_mm_set1_ps(*a.add(5)), b, c5);
        c6 = _mm_fmadd_ps(_mm_set1_ps(*a.add(6)), b, c6);
        c7 = _mm_fmadd_ps(_mm_set1_ps(*a.add(7)), b, c7);
    }
    _mm_storeu_ps(tile, c0);
    _mm_storeu_ps(tile.add(4), c1);
    _mm_storeu_ps(tile.add(8), c2);
    _mm_storeu_ps(tile.add(12), c3);
    _mm_storeu_ps(tile.add(16), c4);
    _mm_storeu_ps(tile.add(20), c5);
    _mm_storeu_ps(tile.add(24), c6);
    _mm_storeu_ps(tile.add(28), c7);
}

/// Fused batched AUTO bit step over a transposed `h×b` **f32** panel;
/// twin of `portable32::sample_step_cols`, vectorised eight rows wide.
///
/// Like the f64 AVX-512 kernel, panels that fit a 64 KiB window
/// (`h·b·4` bytes) run a register row-block traversal — eight rows per
/// `__m256`, the nine `j%8` stripe accumulators in registers across
/// the hidden loop, no accumulator memory traffic — and larger panels
/// fall back to the hidden-major traversal.  Both produce the same
/// nine `f32` stripe partial sums (same stripe assignment, same
/// per-stripe FMA order) and the same `f64`-widened combine tree, so
/// logits are bit-identical to the portable arm either way.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn sample_step_cols(
    zt: &mut [f32],
    b: usize,
    w_prev: Option<&[f32]>,
    prev_mask: &[f32],
    w_out: &[f32],
    bias: f64,
    scratch: &mut [f32],
    logits: &mut [f64],
) {
    let h = w_out.len();
    debug_assert_eq!(zt.len(), h * b);
    debug_assert_eq!(prev_mask.len(), b);
    debug_assert!(scratch.len() >= 10 * b);
    debug_assert_eq!(logits.len(), b);
    if h * b * 4 > HIDDEN_MAJOR_BYTES_F32 {
        return sample_step_cols_hidden_major(
            zt, b, w_prev, prev_mask, w_out, bias, scratch, logits,
        );
    }
    let _ = scratch; // register accumulators; scratch is a hidden-major concern
    let h8 = h - h % LANES_F32;
    let pz = zt.as_mut_ptr();
    let pm = prev_mask.as_ptr();
    let po = w_out.as_ptr();
    let wp = w_prev.map(|w| w.as_ptr());
    let zero = _mm256_setzero_ps();
    let half = _mm256_set1_ps(0.5);
    let mut r = 0;
    while r + 8 <= b {
        let m = _mm256_cmp_ps::<_CMP_GT_OQ>(_mm256_loadu_ps(pm.add(r)), half);
        let (mut a0, mut a1, mut a2, mut a3) = (zero, zero, zero, zero);
        let (mut a4, mut a5, mut a6, mut a7, mut a8) = (zero, zero, zero, zero, zero);
        // One hidden unit: select-based masked update + striped fused
        // accumulate (blendv with the panel value as pass-through, so
        // masked-off rows keep their stored bits exactly).
        macro_rules! step {
            ($acc:ident, $j:expr) => {{
                let j = $j;
                let p = pz.add(j * b + r);
                let mut z = _mm256_loadu_ps(p);
                if let Some(w) = wp {
                    z = _mm256_blendv_ps(z, _mm256_add_ps(z, _mm256_set1_ps(*w.add(j))), m);
                    _mm256_storeu_ps(p, z);
                }
                let zp = _mm256_max_ps(z, zero);
                $acc = _mm256_fmadd_ps(_mm256_set1_ps(*po.add(j)), zp, $acc);
            }};
        }
        let mut j = 0;
        while j + 8 <= h8 {
            step!(a0, j);
            step!(a1, j + 1);
            step!(a2, j + 2);
            step!(a3, j + 3);
            step!(a4, j + 4);
            step!(a5, j + 5);
            step!(a6, j + 6);
            step!(a7, j + 7);
            j += 8;
        }
        while j < h {
            step!(a8, j);
            j += 1;
        }
        // In-register combine, `f64`-widened per 4-lane half: the same
        // tree as `portable32::combine_stripes`, per lane (`cvtps_pd`
        // is exact, f64 vector adds are lane-wise — bit-identical).
        let bv = _mm256_set1_pd(bias);
        macro_rules! half_combine {
            ($lane:expr, $off:expr) => {{
                let w = |a: __m256| -> __m256d {
                    if $lane == 0 {
                        _mm256_cvtps_pd(_mm256_castps256_ps128(a))
                    } else {
                        _mm256_cvtps_pd(_mm256_extractf128_ps::<1>(a))
                    }
                };
                let s01 = _mm256_add_pd(w(a0), w(a1));
                let s23 = _mm256_add_pd(w(a2), w(a3));
                let s45 = _mm256_add_pd(w(a4), w(a5));
                let s67 = _mm256_add_pd(w(a6), w(a7));
                let s = _mm256_add_pd(
                    _mm256_add_pd(_mm256_add_pd(s01, s23), _mm256_add_pd(s45, s67)),
                    w(a8),
                );
                _mm256_storeu_pd(logits.as_mut_ptr().add(r + $off), _mm256_add_pd(bv, s));
            }};
        }
        half_combine!(0, 0);
        half_combine!(1, 4);
        r += 8;
    }
    // Remaining rows (b % 8): scalar, same stripe assignment and
    // combine tree, with the nine stripes in a local array.
    while r < b {
        let take = wp.is_some() && *pm.add(r) > 0.5;
        let mut acc = [0.0f32; 9];
        for j in 0..h {
            let p = pz.add(j * b + r);
            let mut z = *p;
            if take {
                z += *wp.unwrap_unchecked().add(j);
                *p = z;
            }
            let zp = if z > 0.0 { z } else { 0.0 };
            let stripe = if j < h8 { j % LANES_F32 } else { LANES_F32 };
            acc[stripe] = (*po.add(j)).mul_add(zp, acc[stripe]);
        }
        let s = |k: usize| acc[k] as f64;
        logits[r] =
            bias + ((((s(0) + s(1)) + (s(2) + s(3))) + ((s(4) + s(5)) + (s(6) + s(7)))) + s(8));
        r += 1;
    }
}

/// Above this f32 panel size (`h·b·4` bytes) the register row-block
/// traversal's stride-`b` column loads outrun the dTLB and the stride
/// prefetcher; the hidden-major traversal below streams sequentially
/// instead.  Same 64 KiB window as the f64 kernel's split (f32 panels
/// hold twice the elements per byte).
const HIDDEN_MAJOR_BYTES_F32: usize = 64 * 1024;

/// Hidden-major twin of the register traversal in [`sample_step_cols`]
/// for panels too large for it: per hidden unit, 8-row vectors run the
/// select-based masked update, `max(z,0)` and the `j%8`-striped fused
/// accumulate with the nine stripes resident in `scratch`; the
/// `prev_mask > 0.5` compares are hoisted into a per-bit mask stash
/// (the 10th scratch stripe).  The final per-row combine is the shared
/// scalar `f64`-widened tree.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn sample_step_cols_hidden_major(
    zt: &mut [f32],
    b: usize,
    w_prev: Option<&[f32]>,
    prev_mask: &[f32],
    w_out: &[f32],
    bias: f64,
    scratch: &mut [f32],
    logits: &mut [f64],
) {
    let h = w_out.len();
    let h8 = h - h % LANES_F32;
    let (acc, mask_stash) = scratch.split_at_mut(9 * b);
    acc.fill(0.0);
    let pa = acc.as_mut_ptr();
    let pz = zt.as_mut_ptr();
    let pm = prev_mask.as_ptr();
    let pk = mask_stash.as_mut_ptr();
    let zero = _mm256_setzero_ps();
    let half = _mm256_set1_ps(0.5);
    let bv = b - b % 8;
    if w_prev.is_some() {
        let mut r = 0;
        while r < bv {
            let m = _mm256_cmp_ps::<_CMP_GT_OQ>(_mm256_loadu_ps(pm.add(r)), half);
            _mm256_storeu_ps(pk.add(r), m);
            r += 8;
        }
    }
    match w_prev {
        Some(w) => {
            for j in 0..h {
                let wj = *w.get_unchecked(j);
                let wv = _mm256_set1_ps(wj);
                let wo = *w_out.get_unchecked(j);
                let wov = _mm256_set1_ps(wo);
                let stripe = if j < h8 { j % LANES_F32 } else { LANES_F32 };
                let accs = pa.add(stripe * b);
                let row = pz.add(j * b);
                let mut r = 0;
                while r < bv {
                    let m = _mm256_loadu_ps(pk.add(r));
                    let p = row.add(r);
                    let z = _mm256_loadu_ps(p);
                    let z = _mm256_blendv_ps(z, _mm256_add_ps(z, wv), m);
                    _mm256_storeu_ps(p, z);
                    let a = accs.add(r);
                    _mm256_storeu_ps(
                        a,
                        _mm256_fmadd_ps(wov, _mm256_max_ps(z, zero), _mm256_loadu_ps(a)),
                    );
                    r += 8;
                }
                while r < b {
                    let p = row.add(r);
                    let mut z = *p;
                    if *pm.add(r) > 0.5 {
                        z += wj;
                        *p = z;
                    }
                    let zp = if z > 0.0 { z } else { 0.0 };
                    let a = accs.add(r);
                    *a = wo.mul_add(zp, *a);
                    r += 1;
                }
            }
        }
        None => {
            for j in 0..h {
                let wo = *w_out.get_unchecked(j);
                let wov = _mm256_set1_ps(wo);
                let stripe = if j < h8 { j % LANES_F32 } else { LANES_F32 };
                let accs = pa.add(stripe * b);
                let row = pz.add(j * b);
                let mut r = 0;
                while r < bv {
                    let z = _mm256_loadu_ps(row.add(r));
                    let a = accs.add(r);
                    _mm256_storeu_ps(
                        a,
                        _mm256_fmadd_ps(wov, _mm256_max_ps(z, zero), _mm256_loadu_ps(a)),
                    );
                    r += 8;
                }
                while r < b {
                    let z = *row.add(r);
                    let zp = if z > 0.0 { z } else { 0.0 };
                    let a = accs.add(r);
                    *a = wo.mul_add(zp, *a);
                    r += 1;
                }
            }
        }
    }
    portable32::combine_stripes(acc, b, bias, logits);
}
