//! Portable scalar arm of the **f32** dispatch table.
//!
//! Mixed-precision discipline (see DESIGN.md "Precision"): weights and
//! activations are `f32` — half the bytes streamed, twice the SIMD
//! lanes — while every *reduction boundary* (a value that sums many
//! elements: logits, dots, row sums) is widened to `f64` before the
//! final combine.  Stripe accumulators stay `f32` (they are what the
//! vector arms hold in registers); only the cross-stripe combine runs
//! in `f64`.
//!
//! Bit-identity contract: like the f64 arm, every function here is the
//! operation-for-operation twin of the AVX2/AVX-512 f32 kernels — the
//! same stripe layout ([`LANES_F32`] = 8, one `ymm` of `f32`), the same
//! fused steps (`f32::mul_add` ↔ `vfmaddps`), the same widened combine
//! tree — so the three f32 arms agree bit-for-bit with *each other*
//! (property-tested in `tests/simd_f32_proptests.rs`).  Agreement with
//! the f64 arm is bound-based, never bit-based.
//!
//! The transcendental slice kernels take a different route: each chunk
//! is widened into a stack buffer, run through the *same arm's* f64
//! slice kernel, and narrowed back with one rounding per element.  That
//! inherits the proven f64 cross-arm bit-identity (so the f32 arms
//! agree wherever the f64 arms do), halves the bytes streamed through
//! the caller's buffers, and is strictly more accurate than a native
//! f32 polynomial would be.

/// Number of interleaved accumulator lanes in the f32 reduction
/// kernels: one AVX2 `ymm` register of `f32`.
pub const LANES_F32: usize = 8;

/// Chunk size of the widen → f64 kernel → narrow transcendental route
/// (a 1 KiB stack buffer).
pub(super) const WIDEN_CHUNK: usize = 128;

/// Runs `kernel` (an f64 slice kernel) over `xs` chunk-wise through a
/// stack buffer: widen (exact), apply, narrow (one rounding).  Shared
/// by every arm's f32 transcendental entries; the arms differ only in
/// which f64 kernel they pass.
pub(super) fn map_via_f64(xs: &mut [f32], kernel: fn(&mut [f64])) {
    let mut buf = [0.0f64; WIDEN_CHUNK];
    for chunk in xs.chunks_mut(WIDEN_CHUNK) {
        let wide = &mut buf[..chunk.len()];
        for (d, &s) in wide.iter_mut().zip(chunk.iter()) {
            *d = s as f64;
        }
        kernel(wide);
        for (d, &w) in chunk.iter_mut().zip(wide.iter()) {
            *d = w as f32;
        }
    }
}

/// In-place sigmoid over an `f32` slice (widen → f64 kernel → narrow).
pub fn sigmoid_slice(xs: &mut [f32]) {
    map_via_f64(xs, super::portable::sigmoid_slice)
}

/// In-place `log σ` over an `f32` slice.
pub fn log_sigmoid_slice(xs: &mut [f32]) {
    map_via_f64(xs, super::portable::log_sigmoid_slice)
}

/// In-place `ln cosh` over an `f32` slice.
pub fn ln_cosh_slice(xs: &mut [f32]) {
    map_via_f64(xs, super::portable::ln_cosh_slice)
}

/// In-place `e^x` over an `f32` slice.
pub fn exp_slice(xs: &mut [f32]) {
    map_via_f64(xs, super::portable::exp_slice)
}

/// Lane-striped sum of an `f32` slice, widened to `f64` at the combine:
/// 8 `f32` stripe accumulators, then
/// `(((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7))) + tail` in `f64`.
pub fn sum(xs: &[f32]) -> f64 {
    let mut acc = [0.0f32; LANES_F32];
    let mut chunks = xs.chunks_exact(LANES_F32);
    for c in &mut chunks {
        for l in 0..LANES_F32 {
            acc[l] += c[l];
        }
    }
    let mut tail = 0.0f32;
    for &x in chunks.remainder() {
        tail += x;
    }
    combine8(&acc) + tail as f64
}

/// The shared cross-stripe combine: widen each `f32` stripe to `f64`,
/// then the fixed tree `((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7))`.
#[inline]
pub(super) fn combine8(acc: &[f32; LANES_F32]) -> f64 {
    let a: [f64; 8] = std::array::from_fn(|l| acc[l] as f64);
    ((a[0] + a[1]) + (a[2] + a[3])) + ((a[4] + a[5]) + (a[6] + a[7]))
}

/// Number of interleaved lanes in [`dot`]: four `ymm` accumulators of
/// `f32` (32 elements per unrolled step) to cover the FMA latency.
pub const DOT_LANES_F32: usize = 32;

/// Lane-striped `f32` dot product with an `f64` result.  Vector-arm
/// order: four `ymm` accumulators reduce pairwise lane-wise
/// (`(y0+y1)+(y2+y3)`, in `f32`), then the surviving 8 lanes widen and
/// combine through [`combine8`]'s tree, then `+ tail`.
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; DOT_LANES_F32];
    let n32 = a.len() - a.len() % DOT_LANES_F32;
    let mut i = 0;
    while i < n32 {
        for l in 0..DOT_LANES_F32 {
            acc[l] = a[i + l].mul_add(b[i + l], acc[l]);
        }
        i += DOT_LANES_F32;
    }
    let mut tail = 0.0f32;
    while i < a.len() {
        tail = a[i].mul_add(b[i], tail);
        i += 1;
    }
    let mut c = [0.0f32; LANES_F32];
    for (l, cv) in c.iter_mut().enumerate() {
        *cv = (acc[l] + acc[8 + l]) + (acc[16 + l] + acc[24 + l]);
    }
    combine8(&c) + tail as f64
}

/// Lane-striped `Σ w·max(z, 0)` over `f32` operands, `f64` result.
pub fn relu_dot(w: &[f32], z: &[f32]) -> f64 {
    debug_assert_eq!(w.len(), z.len());
    let mut acc = [0.0f32; LANES_F32];
    let n8 = w.len() - w.len() % LANES_F32;
    let mut i = 0;
    while i < n8 {
        for l in 0..LANES_F32 {
            let zp = if z[i + l] > 0.0 { z[i + l] } else { 0.0 };
            acc[l] = w[i + l].mul_add(zp, acc[l]);
        }
        i += LANES_F32;
    }
    let mut tail = 0.0f32;
    while i < w.len() {
        let zp = if z[i] > 0.0 { z[i] } else { 0.0 };
        tail = w[i].mul_add(zp, tail);
        i += 1;
    }
    combine8(&acc) + tail as f64
}

/// `y ← y + α·x` over `f32`, one FMA per element (elementwise, so
/// bit-identity across arms is structural).
pub fn axpy(y: &mut [f32], alpha: f32, x: &[f32]) {
    debug_assert_eq!(y.len(), x.len());
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv = alpha.mul_add(xv, *yv);
    }
}

/// The scalar twin of the AVX2 8×4 **f32** GEMM microkernel: identical
/// per-element FMA chain over the packed panels (each `C[r,q]`
/// accumulates `a[p,r]·b[p,q]` in the same `p` order through fused
/// `f32` steps), so the arms are bit-identical.
///
/// Contract: `ap` holds `kc` groups of 8 A-values, `bp` holds `kc`
/// groups of 4 B-values, and the row-major 8×4 `tile` is overwritten.
///
/// # Safety
/// `ap`/`bp`/`tile` must be valid for `kc*8`, `kc*4` and 32 reads/
/// writes respectively.
pub unsafe fn micro_8x4(kc: usize, ap: *const f32, bp: *const f32, tile: *mut f32) {
    let mut acc = [0.0f32; 32];
    for p in 0..kc {
        for r in 0..8 {
            let a = *ap.add(p * 8 + r);
            for q in 0..4 {
                acc[r * 4 + q] = a.mul_add(*bp.add(p * 4 + q), acc[r * 4 + q]);
            }
        }
    }
    for (i, v) in acc.iter().enumerate() {
        *tile.add(i) = *v;
    }
}

/// Fused incremental-AUTO batched bit step over a **transposed** `h×b`
/// `f32` activation panel — the mixed-precision twin of the f64
/// `sample_step_cols`.
///
/// Like the f64 kernel, the vector arms may pick between a register
/// row-block traversal (small panels) and this hidden-major traversal
/// (`j` outermost, vectorised over batch rows); the portable arm has
/// only the hidden-major shape.  Cross-arm and cross-traversal
/// bit-identity is structural — every traversal produces the same nine
/// `f32` stripe partial sums and finishes through the same
/// `f64`-widened combine tree:
///
/// 1. masked update: rows whose previous bit was 1
///    (`prev_mask[r] > 0.5`) get `zt[j·b+r] += w_prev[j]` (`f32` add,
///    select semantics — masked-off rows keep their stored bits
///    exactly);
/// 2. logit accumulate: stripe `j % 8` (tail units → stripe 8) gets
///    `w_out[j].mul_add(max(z,0), acc)` per row, in `f32`;
/// 3. combine: per row, each of the 9 stripes widens to `f64` and
///    `logits[r] = bias + ((((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7))) + s8)`.
///
/// `logits` is `f64` — the downstream Bernoulli draw, sigmoid and
/// `log σ` machinery is shared verbatim with the f64 sampling path, so
/// the f32 arm differs from f64 only in the panel arithmetic.
///
/// `scratch` must hold ≥ `10·b` `f32`: 9 accumulator stripes plus one
/// stripe the SIMD arms use to stash per-bit compare masks.
#[allow(clippy::too_many_arguments)]
pub fn sample_step_cols(
    zt: &mut [f32],
    b: usize,
    w_prev: Option<&[f32]>,
    prev_mask: &[f32],
    w_out: &[f32],
    bias: f64,
    scratch: &mut [f32],
    logits: &mut [f64],
) {
    let h = w_out.len();
    debug_assert_eq!(zt.len(), h * b);
    debug_assert_eq!(prev_mask.len(), b);
    debug_assert!(scratch.len() >= 10 * b);
    debug_assert_eq!(logits.len(), b);
    let acc = &mut scratch[..9 * b];
    acc.fill(0.0);
    let h8 = h - h % LANES_F32;
    for j in 0..h {
        let wo = w_out[j];
        let stripe = if j < h8 { j % LANES_F32 } else { LANES_F32 };
        let (_, rest) = acc.split_at_mut(stripe * b);
        let accs = &mut rest[..b];
        let row = &mut zt[j * b..(j + 1) * b];
        match w_prev {
            Some(w) => {
                let wj = w[j];
                for r in 0..b {
                    let mut z = row[r];
                    if prev_mask[r] > 0.5 {
                        z += wj;
                        row[r] = z;
                    }
                    let zp = if z > 0.0 { z } else { 0.0 };
                    accs[r] = wo.mul_add(zp, accs[r]);
                }
            }
            None => {
                for r in 0..b {
                    let z = row[r];
                    let zp = if z > 0.0 { z } else { 0.0 };
                    accs[r] = wo.mul_add(zp, accs[r]);
                }
            }
        }
    }
    combine_stripes(acc, b, bias, logits);
}

/// The shared 9-stripe → `f64` logit combine of [`sample_step_cols`];
/// scalar in every arm (it is `O(b)` next to the `O(h·b)` sweep).
pub(super) fn combine_stripes(acc: &[f32], b: usize, bias: f64, logits: &mut [f64]) {
    for r in 0..b {
        let s = |k: usize| acc[k * b + r] as f64;
        logits[r] =
            bias + ((((s(0) + s(1)) + (s(2) + s(3))) + ((s(4) + s(5)) + (s(6) + s(7)))) + s(8));
    }
}
