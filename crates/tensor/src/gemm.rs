//! Cache-blocked, pool-parallel GEMM kernels.
//!
//! Three layout variants cover every dense product in the workspace:
//!
//! * [`gemm_nt`] — `C[m,n] = A[m,k] * B[n,k]^T`.  The forward pass of a
//!   fully-connected layer (`Y = X W^T`): both operands stream row-major,
//!   so the kernel can register-block without packing.
//! * [`gemm_nn`] — `C[m,n] = A[m,k] * B[k,n]`.  Backprop's input gradient
//!   (`dX = dY W`); implemented as an axpy-accumulation over B's rows so
//!   B is still streamed contiguously.
//! * [`gemm_tn`] — `C[m,n] = A[k,m]^T * B[k,n]`.  Backprop's weight
//!   gradient (`dW = dY^T X`); an outer-product accumulation.
//!
//! Each kernel has an `_into` twin writing into a caller-owned matrix
//! (reshaped in place, so a warm buffer is never reallocated); the
//! allocating forms are thin wrappers over those.
//!
//! ## Packed SIMD path (the production path on AVX2+FMA hosts)
//!
//! When the [`crate::simd`] dispatch resolves to the AVX2 arm, all
//! three layout variants run one shared BLIS-style packed driver
//! ([`gemm_packed`]): operands are repacked into contiguous,
//! lane-ordered micro-panels (`kc×8` for A, `kc×4` for B) drawn from a
//! thread-local [`Workspace`] pool, and the inner loop is the 8×4 FMA
//! microkernel ([`crate::simd::Kernels::micro_8x4`]).  Packing is what
//! makes the layouts converge — `nn`/`tn` differ from `nt` only in
//! *which* strides the pack routines gather — and is also what keeps
//! the microkernel reading purely sequential, aligned memory.  Blocking:
//! `k` by [`KC`] (micro-panel depth), output rows by [`MC`]
//! (`MC×KC×8 B = 512 KiB`, half the L2), output columns by
//! [`NC_PACKED`] (the packed B panel, L3-resident).  The pack buffers
//! come from a thread-local pool, so steady-state training performs
//! zero heap allocations (the PR 1 invariant).
//!
//! ## Scalar path (fallback arm)
//!
//! `gemm_nt` otherwise runs the original blocked loop nest: a 4×4
//! register accumulator tile ([`MR`]×[`NR`]) in the innermost position,
//! `k` blocked by [`KC`] so a 4-row A-slab stays L1-resident, and B's
//! rows blocked by [`NC`] so the B-panel being swept is reused from L2
//! across the whole A row-panel sweep.  `nn`/`nt` keep their axpy /
//! outer-product formulations on this arm.
//!
//! ## Parallelisation (the [`crate::par`] pool)
//!
//! All three variants parallelise over **output-row slabs**: the packed
//! driver splits `m` into one [`MR_SIMD`]-aligned contiguous slab per
//! worker ([`packed_driver`]), each worker running the full BLIS loop
//! nest on its slab with its *own* thread-local pack buffers (workers
//! re-pack the shared B panel redundantly — an `O(1/slab_rows)`
//! overhead that buys the absence of any cross-worker handoff).  The
//! scalar arm stripes the same way at [`MR`] alignment.  Either way a
//! `C` element's value is a function of its row and column alone — the
//! per-element `k`-summation order (sequential within a `KC` block,
//! blocks ascending) does not depend on which slab the row landed in —
//! so the parallel results are **bit-identical** to the sequential
//! ones at every thread count (`tests/thread_identity.rs`).  `tn`
//! avoids a partial-`C` reduction by having each worker scan the whole
//! shared `k` dimension for its rows.

use std::cell::RefCell;

use crate::matrix::Matrix;
use crate::par;
use crate::simd::{self, MicroKernel};
use crate::vector::{axpy, dot};
use crate::workspace::Workspace;

/// Microkernel accumulator tile height (A rows per tile).
pub const MR: usize = 4;
/// Microkernel accumulator tile width (B rows per tile).
pub const NR: usize = 4;
/// `k`-dimension block: `MR` A-rows × `KC` f64 = 8 KiB, safely L1.
pub const KC: usize = 256;
/// B-row block: `NC` rows × `KC` f64 = 128 KiB, sized for L2 residency.
pub const NC: usize = 64;

/// Packed-path microkernel tile height (8 C rows, two `ymm` per column).
pub const MR_SIMD: usize = 8;
/// Packed-path microkernel tile width (one `ymm` of C columns).
pub const NR_SIMD: usize = 4;
/// Packed A-block rows: `MC`×[`KC`]×8 B = 512 KiB, half the L2.
const MC: usize = 256;
/// Packed B-panel columns: [`KC`]×`NC_PACKED`×8 B = 4 MiB, L3-resident.
const NC_PACKED: usize = 2048;

/// A panel-packing routine: `(block_start, block_len, k_start, k_len, dst)`
/// fills `dst` with the packed micro-panel layout the microkernel reads.
type PackPanel<'a> = dyn Fn(usize, usize, usize, usize, &mut [f64]) + Sync + 'a;

thread_local! {
    /// Pool for the packed A/B micro-panel buffers.  Private to this
    /// module and only borrowed transiently (`take`/`give` are single
    /// calls), so re-entrancy cannot observe an outstanding borrow.
    /// Being thread-local, every pool worker owns its own pack buffers
    /// — the parallel packed driver needs no buffer handoff and no
    /// locking.  Capacities grow to the high-water mark of the shapes
    /// seen on that thread, after which `take` allocates nothing — the
    /// zero-allocation steady-state invariant holds on the caller *and*
    /// on every warm worker (asserted by the pool counting-allocator
    /// test in `vqmc-core`).
    static PACK_POOL: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// A zeroed pool buffer of exactly `len` elements (zero-fill is what
/// lets the pack routines skip writing the padded panel tails).
fn take_pack(len: usize) -> Vec<f64> {
    PACK_POOL.with(|p| p.borrow_mut().take(len))
}

fn give_pack(buf: Vec<f64>) {
    PACK_POOL.with(|p| p.borrow_mut().give(buf))
}

/// The packed-path microkernel, when the production dispatch resolved
/// to a vector arm.
fn packed_micro() -> Option<MicroKernel> {
    let k = simd::kernels();
    (k.backend != simd::Backend::Scalar).then_some(k.micro_8x4)
}

/// Parallel front-end for [`gemm_packed`]: when the shape clears
/// [`par::should_parallelize_gemm`], the output rows are split into one
/// `MR_SIMD`-aligned contiguous slab per worker and each worker runs
/// the *full* packed loop nest on its slab (own thread-local pack
/// buffers, shared read-only operands).  Slab boundaries land on
/// microtile edges, so every `C` element sees exactly the `k`-block
/// accumulation order it sees in the sequential sweep — bit-identical
/// output at any thread count.  Below the gate (or at one thread) this
/// is exactly `gemm_packed`.
fn packed_driver(
    m: usize,
    n: usize,
    k: usize,
    pack_a: &PackPanel<'_>,
    pack_b: &PackPanel<'_>,
    c: &mut [f64],
    micro: MicroKernel,
) {
    let units = m.div_ceil(MR_SIMD);
    let parts = par::active_threads().min(units.max(1));
    if parts <= 1 || !par::should_parallelize_gemm(m * n * k) {
        gemm_packed(m, n, k, pack_a, pack_b, c, micro);
        return;
    }
    let base = par::SendPtr(c.as_mut_ptr());
    par::run(parts, &|w| {
        let u = par::stripe(units, parts, w);
        let r0 = (u.start * MR_SIMD).min(m);
        let r1 = (u.end * MR_SIMD).min(m);
        if r0 < r1 {
            // SAFETY: stripes are disjoint, contiguous row ranges of `c`,
            // and the region joins before `c`'s borrow ends.
            let slab =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(r0 * n), (r1 - r0) * n) };
            gemm_packed(
                r1 - r0,
                n,
                k,
                |i0, ic, l0, lc, buf| pack_a(r0 + i0, ic, l0, lc, buf),
                pack_b,
                slab,
                micro,
            );
        }
    });
}

/// Gathers *rows* `[r0, r0+rc)` (k-slice `[l0, l0+lc)`) of a row-major
/// operand into `ph`-high micro-panels:
/// `buf[panel*ph*lc + p*ph + r] = src[r0 + panel*ph + r, l0 + p]`.
/// Panel tails beyond `rc` stay at the pool's zero fill.
fn pack_rows(src: &Matrix, r0: usize, rc: usize, l0: usize, lc: usize, ph: usize, buf: &mut [f64]) {
    for (ip, panel) in buf.chunks_mut(ph * lc).enumerate() {
        let rows_here = ph.min(rc.saturating_sub(ip * ph));
        for r in 0..rows_here {
            let row = &src.row(r0 + ip * ph + r)[l0..l0 + lc];
            for (p, &v) in row.iter().enumerate() {
                panel[p * ph + r] = v;
            }
        }
    }
}

/// Gathers *columns* `[c0, c0+cc)` of rows `[l0, l0+lc)` into `ph`-wide
/// micro-panels: `buf[panel*ph*lc + p*ph + q] = src[l0 + p, c0 +
/// panel*ph + q]`.  Reads are contiguous runs of `ph`, so packing a
/// `k`-major operand streams it row-major exactly once.
fn pack_cols(src: &Matrix, c0: usize, cc: usize, l0: usize, lc: usize, ph: usize, buf: &mut [f64]) {
    let panels = cc.div_ceil(ph);
    for p in 0..lc {
        let row = &src.row(l0 + p)[c0..c0 + cc];
        for jp in 0..panels {
            let w = ph.min(cc - jp * ph);
            buf[jp * ph * lc + p * ph..][..w].copy_from_slice(&row[jp * ph..jp * ph + w]);
        }
    }
}

/// The shared BLIS-style packed driver: loop nest `l0 (KC) → j0
/// (NC_PACKED, pack B) → i0 (MC, pack A) → jp → ip (microkernel)`.
/// The microkernel overwrites an 8×4 tile with the product over the
/// current `k`-block; the valid `iv×jv` region is then accumulated into
/// `C`, which also handles the partial-tile edges (packed tails are
/// zero, so the extra lanes compute zeros).
///
/// The `k`-summation order per element is identical to the scalar
/// blocked path: sequential within a `KC` block, blocks in ascending
/// order — only the fused rounding of the FMA differs.
fn gemm_packed(
    m: usize,
    n: usize,
    k: usize,
    pack_a: impl Fn(usize, usize, usize, usize, &mut [f64]),
    pack_b: impl Fn(usize, usize, usize, usize, &mut [f64]),
    c: &mut [f64],
    micro: MicroKernel,
) {
    debug_assert_eq!(c.len(), m * n);
    c.fill(0.0);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let mut tile = [0.0f64; MR_SIMD * NR_SIMD];
    let mut l0 = 0;
    while l0 < k {
        let lc = KC.min(k - l0);
        let mut j0 = 0;
        while j0 < n {
            let jc = NC_PACKED.min(n - j0);
            let jpanels = jc.div_ceil(NR_SIMD);
            let mut bbuf = take_pack(jpanels * NR_SIMD * lc);
            pack_b(j0, jc, l0, lc, &mut bbuf);
            let mut i0 = 0;
            while i0 < m {
                let ic = MC.min(m - i0);
                let ipanels = ic.div_ceil(MR_SIMD);
                let mut abuf = take_pack(ipanels * MR_SIMD * lc);
                pack_a(i0, ic, l0, lc, &mut abuf);
                for jp in 0..jpanels {
                    let j = j0 + jp * NR_SIMD;
                    let jv = NR_SIMD.min(j0 + jc - j);
                    let bp = bbuf[jp * NR_SIMD * lc..].as_ptr();
                    for ip in 0..ipanels {
                        let i = i0 + ip * MR_SIMD;
                        let iv = MR_SIMD.min(i0 + ic - i);
                        let ap = abuf[ip * MR_SIMD * lc..].as_ptr();
                        // SAFETY: the packed panels hold `lc` groups of
                        // MR_SIMD/NR_SIMD elements, `tile` has 32, and
                        // vector microkernels are only installed after
                        // runtime feature detection.
                        unsafe { micro(lc, ap, bp, tile.as_mut_ptr()) };
                        for r in 0..iv {
                            let base = (i + r) * n + j;
                            for (cv, tv) in c[base..base + jv].iter_mut().zip(&tile[r * NR_SIMD..])
                            {
                                *cv += tv;
                            }
                        }
                    }
                }
                give_pack(abuf);
                i0 += ic;
            }
            give_pack(bbuf);
            j0 += jc;
        }
        l0 += lc;
    }
}

/// Packed `nt` with an explicit microkernel.  Hidden: the property
/// tests use it to pit the AVX2 microkernel against its scalar twin;
/// production code goes through [`gemm_nt_into`].
#[doc(hidden)]
pub fn gemm_nt_packed_with(a: &Matrix, b: &Matrix, c: &mut Matrix, micro: MicroKernel) {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(
        k, kb,
        "gemm_nt: inner dimensions disagree (A is {m}x{k}, B^T is {kb}x{n})"
    );
    c.resize(m, n);
    gemm_packed(
        m,
        n,
        k,
        |i0, ic, l0, lc, buf| pack_rows(a, i0, ic, l0, lc, MR_SIMD, buf),
        |j0, jc, l0, lc, buf| pack_rows(b, j0, jc, l0, lc, NR_SIMD, buf),
        c.as_mut_slice(),
        micro,
    );
}

/// Packed `nn` with an explicit microkernel (see [`gemm_nt_packed_with`]).
#[doc(hidden)]
pub fn gemm_nn_packed_with(a: &Matrix, b: &Matrix, c: &mut Matrix, micro: MicroKernel) {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(
        k, kb,
        "gemm_nn: inner dimensions disagree (A is {m}x{k}, B is {kb}x{n})"
    );
    c.resize(m, n);
    gemm_packed(
        m,
        n,
        k,
        |i0, ic, l0, lc, buf| pack_rows(a, i0, ic, l0, lc, MR_SIMD, buf),
        |j0, jc, l0, lc, buf| pack_cols(b, j0, jc, l0, lc, NR_SIMD, buf),
        c.as_mut_slice(),
        micro,
    );
}

/// Packed `tn` with an explicit microkernel (see [`gemm_nt_packed_with`]).
#[doc(hidden)]
pub fn gemm_tn_packed_with(a: &Matrix, b: &Matrix, c: &mut Matrix, micro: MicroKernel) {
    let (k, m) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(
        k, kb,
        "gemm_tn: outer dimensions disagree (A^T is {m}x{k}, B is {kb}x{n})"
    );
    c.resize(m, n);
    gemm_packed(
        m,
        n,
        k,
        |i0, ic, l0, lc, buf| pack_cols(a, i0, ic, l0, lc, MR_SIMD, buf),
        |j0, jc, l0, lc, buf| pack_cols(b, j0, jc, l0, lc, NR_SIMD, buf),
        c.as_mut_slice(),
        micro,
    );
}

/// `C[m,n] = A[m,k] * B[n,k]^T` (B transposed: both row-major streams).
pub fn gemm_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.rows());
    gemm_nt_into(a, b, &mut c);
    c
}

/// [`gemm_nt`] into a caller-owned output (reshaped in place).
pub fn gemm_nt_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(
        k, kb,
        "gemm_nt: inner dimensions disagree (A is {m}x{k}, B^T is {kb}x{n})"
    );
    c.resize(m, n);
    if let Some(micro) = packed_micro() {
        packed_driver(
            m,
            n,
            k,
            &|i0, ic, l0, lc, buf| pack_rows(a, i0, ic, l0, lc, MR_SIMD, buf),
            &|j0, jc, l0, lc, buf| pack_rows(b, j0, jc, l0, lc, NR_SIMD, buf),
            c.as_mut_slice(),
            micro,
        );
    } else {
        nt_striped(a, b, c.as_mut_slice());
    }
}

/// Scalar-arm `nt`: `MR`-aligned row stripes over the pool when the
/// shape clears the FLOP gate, one sequential [`nt_panel`] otherwise.
/// Stripe starts are multiples of `MR`, so each row keeps the
/// quad-tile/remainder classification it has in the sequential sweep
/// (quad rows hit [`micro_4x4`], remainder rows hit [`dot`]) — the
/// per-row value is partition-invariant, hence bit-identical.
fn nt_striped(a: &Matrix, b: &Matrix, c: &mut [f64]) {
    let (m, k) = a.shape();
    let n = b.rows();
    let units = m.div_ceil(MR);
    let parts = par::active_threads().min(units.max(1));
    if parts <= 1 || !par::should_parallelize_gemm(m * n * k) {
        nt_panel(a, b, c, 0);
        return;
    }
    let base = par::SendPtr(c.as_mut_ptr());
    par::run(parts, &|w| {
        let u = par::stripe(units, parts, w);
        let r0 = (u.start * MR).min(m);
        let r1 = (u.end * MR).min(m);
        if r0 < r1 {
            // SAFETY: disjoint contiguous row ranges; region joins before
            // the borrow of `c` ends.
            let slab =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(r0 * n), (r1 - r0) * n) };
            nt_panel(a, b, slab, r0);
        }
    });
}

/// The scalar blocked `nt` path, bypassing SIMD dispatch.  Hidden:
/// kept callable so the benches can report the pre-SIMD baseline.
#[doc(hidden)]
pub fn gemm_nt_blocked_scalar_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(
        k, kb,
        "gemm_nt: inner dimensions disagree (A is {m}x{k}, B^T is {kb}x{n})"
    );
    c.resize(m, n);
    nt_panel(a, b, c.as_mut_slice(), 0);
}

/// The 4×4 register-tile inner product: `acc[i][j] = aᵢ · bⱼ` over one
/// `k`-block.  All eight operand slices are trimmed to a common length
/// up front so the bounds checks vanish from the unrolled loop.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_4x4(
    a0: &[f64],
    a1: &[f64],
    a2: &[f64],
    a3: &[f64],
    b0: &[f64],
    b1: &[f64],
    b2: &[f64],
    b3: &[f64],
) -> [[f64; NR]; MR] {
    let lc = a0.len();
    let (a1, a2, a3) = (&a1[..lc], &a2[..lc], &a3[..lc]);
    let (b0, b1, b2, b3) = (&b0[..lc], &b1[..lc], &b2[..lc], &b3[..lc]);
    let (mut c00, mut c01, mut c02, mut c03) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let (mut c10, mut c11, mut c12, mut c13) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let (mut c20, mut c21, mut c22, mut c23) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let (mut c30, mut c31, mut c32, mut c33) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for i in 0..lc {
        let (x0, x1, x2, x3) = (a0[i], a1[i], a2[i], a3[i]);
        let (y0, y1, y2, y3) = (b0[i], b1[i], b2[i], b3[i]);
        c00 += x0 * y0;
        c01 += x0 * y1;
        c02 += x0 * y2;
        c03 += x0 * y3;
        c10 += x1 * y0;
        c11 += x1 * y1;
        c12 += x1 * y2;
        c13 += x1 * y3;
        c20 += x2 * y0;
        c21 += x2 * y1;
        c22 += x2 * y2;
        c23 += x2 * y3;
        c30 += x3 * y0;
        c31 += x3 * y1;
        c32 += x3 * y2;
        c33 += x3 * y3;
    }
    [
        [c00, c01, c02, c03],
        [c10, c11, c12, c13],
        [c20, c21, c22, c23],
        [c30, c31, c32, c33],
    ]
}

/// Blocked `nt` sweep writing output rows `[row0, row0 + c_panel.len()/n)`.
fn nt_panel(a: &Matrix, b: &Matrix, c_panel: &mut [f64], row0: usize) {
    let k = a.cols();
    let n = b.rows();
    if n == 0 || c_panel.is_empty() {
        return;
    }
    let rows_here = c_panel.len() / n;
    c_panel.fill(0.0);

    let mut l0 = 0;
    while l0 < k {
        let lc = KC.min(k - l0);
        let mut j0 = 0;
        while j0 < n {
            let j_end = j0 + NC.min(n - j0);
            let mut r = 0;
            while r + MR <= rows_here {
                let a0 = &a.row(row0 + r)[l0..l0 + lc];
                let a1 = &a.row(row0 + r + 1)[l0..l0 + lc];
                let a2 = &a.row(row0 + r + 2)[l0..l0 + lc];
                let a3 = &a.row(row0 + r + 3)[l0..l0 + lc];
                let mut j = j0;
                while j + NR <= j_end {
                    let b0 = &b.row(j)[l0..l0 + lc];
                    let b1 = &b.row(j + 1)[l0..l0 + lc];
                    let b2 = &b.row(j + 2)[l0..l0 + lc];
                    let b3 = &b.row(j + 3)[l0..l0 + lc];
                    let acc = micro_4x4(a0, a1, a2, a3, b0, b1, b2, b3);
                    for (ri, acc_row) in acc.iter().enumerate() {
                        let base = (r + ri) * n + j;
                        for (cv, av) in c_panel[base..base + NR].iter_mut().zip(acc_row) {
                            *cv += av;
                        }
                    }
                    j += NR;
                }
                // Column remainder: one B row against the four A rows.
                while j < j_end {
                    let b_row = &b.row(j)[l0..l0 + lc];
                    c_panel[r * n + j] += dot(a0, b_row);
                    c_panel[(r + 1) * n + j] += dot(a1, b_row);
                    c_panel[(r + 2) * n + j] += dot(a2, b_row);
                    c_panel[(r + 3) * n + j] += dot(a3, b_row);
                    j += 1;
                }
                r += MR;
            }
            // Row remainder: plain dots over the current block.
            while r < rows_here {
                let a_row = &a.row(row0 + r)[l0..l0 + lc];
                for j in j0..j_end {
                    c_panel[r * n + j] += dot(a_row, &b.row(j)[l0..l0 + lc]);
                }
                r += 1;
            }
            j0 = j_end;
        }
        l0 += lc;
    }
}

/// `C[m,n] = A[m,k] * B[k,n]`.
pub fn gemm_nn(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_nn_into(a, b, &mut c);
    c
}

/// [`gemm_nn`] into a caller-owned output (reshaped in place).
pub fn gemm_nn_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(
        k, kb,
        "gemm_nn: inner dimensions disagree (A is {m}x{k}, B is {kb}x{n})"
    );
    c.resize(m, n);
    if let Some(micro) = packed_micro() {
        packed_driver(
            m,
            n,
            k,
            &|i0, ic, l0, lc, buf| pack_rows(a, i0, ic, l0, lc, MR_SIMD, buf),
            &|j0, jc, l0, lc, buf| pack_cols(b, j0, jc, l0, lc, NR_SIMD, buf),
            c.as_mut_slice(),
            micro,
        );
        return;
    }
    c.fill(0.0);
    if n == 0 {
        return;
    }
    if par::should_parallelize_gemm(m * n * k) {
        // Row stripes: each output row is an independent axpy
        // accumulation over A's row, so the partition is bit-identical.
        par::for_each_stripe_mut(c.as_mut_slice(), n, |off, c_rows| {
            let row0 = off / n;
            for (local_r, c_row) in c_rows.chunks_exact_mut(n).enumerate() {
                accumulate_row_nn(a.row(row0 + local_r), b, c_row);
            }
        });
    } else {
        for r in 0..m {
            // Split borrows: read A's row, write C's row.
            let a_row: &[f64] = a.row(r);
            let c_row = c.row_mut(r);
            accumulate_row_nn(a_row, b, c_row);
        }
    }
}

/// One output row of `gemm_nn`: `c_row += sum_l a_row[l] * B[l, :]`,
/// streaming B row-major.
#[inline]
fn accumulate_row_nn(a_row: &[f64], b: &Matrix, c_row: &mut [f64]) {
    for (l, &a_val) in a_row.iter().enumerate() {
        if a_val != 0.0 {
            axpy(c_row, a_val, b.row(l));
        }
    }
}

/// `C[m,n] = A[k,m]^T * B[k,n]` (outer-product accumulation over `k`).
pub fn gemm_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.cols(), b.cols());
    gemm_tn_into(a, b, &mut c);
    c
}

/// [`gemm_tn`] into a caller-owned output (reshaped in place).
pub fn gemm_tn_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (k, m) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(
        k, kb,
        "gemm_tn: outer dimensions disagree (A^T is {m}x{k}, B is {kb}x{n})"
    );
    c.resize(m, n);
    if let Some(micro) = packed_micro() {
        packed_driver(
            m,
            n,
            k,
            &|i0, ic, l0, lc, buf| pack_cols(a, i0, ic, l0, lc, MR_SIMD, buf),
            &|j0, jc, l0, lc, buf| pack_cols(b, j0, jc, l0, lc, NR_SIMD, buf),
            c.as_mut_slice(),
            micro,
        );
        return;
    }
    c.fill(0.0);
    if n == 0 {
        return;
    }
    if par::should_parallelize_gemm(m * n * k) && m >= 2 {
        // Each worker owns a stripe of output rows and scans the full
        // shared k dimension for them: no partial-C reduction needed,
        // and each row's l-ascending axpy chain matches the sequential
        // sweep exactly — bit-identical at any thread count.
        par::for_each_stripe_mut(c.as_mut_slice(), n, |off, c_rows| {
            let row0 = off / n;
            for l in 0..k {
                let a_row = a.row(l);
                let b_row = b.row(l);
                for (local_r, c_row) in c_rows.chunks_exact_mut(n).enumerate() {
                    let coeff = a_row[row0 + local_r];
                    if coeff != 0.0 {
                        axpy(c_row, coeff, b_row);
                    }
                }
            }
        });
    } else {
        for l in 0..k {
            let a_row = a.row(l);
            let b_row = b.row(l);
            for (r, &coeff) in a_row.iter().take(m).enumerate() {
                if coeff != 0.0 {
                    axpy(c.row_mut(r), coeff, b_row);
                }
            }
        }
    }
}

/// Naive triple-loop reference used by the tests to validate the blocked
/// kernels. Public so downstream crates' tests can reuse it.
pub fn gemm_reference(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb);
    let mut c = Matrix::zeros(m, n);
    for r in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for l in 0..k {
                acc += a.get(r, l) * b.get(l, j);
            }
            c.set(r, j, acc);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Small deterministic pseudo-random fill without pulling in rand.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 500.0 - 1.0
        })
    }

    #[test]
    fn nt_matches_reference() {
        let a = mat(7, 5, 1);
        let b = mat(9, 5, 2);
        let c = gemm_nt(&a, &b);
        let c_ref = gemm_reference(&a, &b.transpose());
        assert!(c.max_abs_diff(&c_ref) < 1e-12);
    }

    #[test]
    fn nt_matches_reference_across_tile_remainders() {
        // Sweep shapes around the MR/NR/KC/NC boundaries so every
        // remainder path of the blocked loop nest is exercised.
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 3, 3),
            (4, 4, 4),
            (5, 7, 9),
            (8, 8, KC),
            (9, NC + 3, KC + 5),
            (MR * 3 + 2, NR * 5 + 1, 17),
        ] {
            let a = mat(m, k, m as u64 + 1);
            let b = mat(n, k, n as u64 + 100);
            let c = gemm_nt(&a, &b);
            let c_ref = gemm_reference(&a, &b.transpose());
            assert!(
                c.max_abs_diff(&c_ref) < 1e-10,
                "mismatch at shape ({m},{n},{k})"
            );
        }
    }

    #[test]
    fn into_variants_reuse_and_reshape_output() {
        let a = mat(6, 8, 3);
        let b_nt = mat(5, 8, 4);
        let b_nn = mat(8, 5, 5);
        let a_tn = mat(8, 6, 6);

        // Start from a wrong-shaped, dirty output buffer.
        let mut c = mat(2, 2, 9);
        gemm_nt_into(&a, &b_nt, &mut c);
        assert!(c.max_abs_diff(&gemm_nt(&a, &b_nt)) == 0.0);

        gemm_nn_into(&a, &b_nn, &mut c);
        assert!(c.max_abs_diff(&gemm_nn(&a, &b_nn)) == 0.0);

        gemm_tn_into(&a_tn, &b_nn, &mut c);
        assert!(c.max_abs_diff(&gemm_tn(&a_tn, &b_nn)) == 0.0);
    }

    #[test]
    fn nn_matches_reference() {
        let a = mat(6, 8, 3);
        let b = mat(8, 4, 4);
        let c = gemm_nn(&a, &b);
        let c_ref = gemm_reference(&a, &b);
        assert!(c.max_abs_diff(&c_ref) < 1e-12);
    }

    #[test]
    fn tn_matches_reference() {
        let a = mat(8, 6, 5);
        let b = mat(8, 3, 6);
        let c = gemm_tn(&a, &b);
        let c_ref = gemm_reference(&a.transpose(), &b);
        assert!(c.max_abs_diff(&c_ref) < 1e-12);
    }

    #[test]
    fn large_parallel_paths_match_reference() {
        // Big enough to cross PAR_GEMM_MIN_FLOPS (m*n*k >= 2^20) so the
        // pool branches of all three kernels actually fire under
        // with_threads.  Results must match the reference loosely and
        // the sequential sweep *bitwise* at every thread count.
        let a = mat(160, 96, 7);
        let b_nt = mat(112, 96, 8);
        let b_nn = mat(96, 112, 9);
        let a_tn = mat(96, 160, 10);
        assert!(160 * 112 * 96 >= par::PAR_GEMM_MIN_FLOPS);

        let seq_nt = par::with_threads(1, || gemm_nt(&a, &b_nt));
        let seq_nn = par::with_threads(1, || gemm_nn(&a, &b_nn));
        let seq_tn = par::with_threads(1, || gemm_tn(&a_tn, &b_nn));
        assert!(seq_nt.max_abs_diff(&gemm_reference(&a, &b_nt.transpose())) < 1e-10);
        assert!(seq_nn.max_abs_diff(&gemm_reference(&a, &b_nn)) < 1e-10);
        assert!(seq_tn.max_abs_diff(&gemm_reference(&a_tn.transpose(), &b_nn)) < 1e-10);

        for threads in [2, 3, 4, 8] {
            let (p_nt, p_nn, p_tn) = par::with_threads(threads, || {
                (gemm_nt(&a, &b_nt), gemm_nn(&a, &b_nn), gemm_tn(&a_tn, &b_nn))
            });
            for (seq, par_c, name) in [
                (&seq_nt, &p_nt, "nt"),
                (&seq_nn, &p_nn, "nn"),
                (&seq_tn, &p_tn, "tn"),
            ] {
                assert!(
                    seq.as_slice()
                        .iter()
                        .zip(par_c.as_slice())
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "{name} not bit-identical at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn degenerate_shapes() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(3, 5);
        let c = gemm_nt(&a, &b);
        assert_eq!(c.shape(), (0, 3));

        let a = Matrix::zeros(4, 0);
        let b = Matrix::zeros(3, 0);
        let c = gemm_nt(&a, &b);
        assert_eq!(c.shape(), (4, 3));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));

        let a = mat(1, 1, 11);
        let b = mat(1, 1, 12);
        let c = gemm_nt(&a, &b);
        assert!((c.get(0, 0) - a.get(0, 0) * b.get(0, 0)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn nt_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        let _ = gemm_nt(&a, &b);
    }
}
