//! Cache-blocked, rayon-parallel GEMM kernels.
//!
//! Three layout variants cover every dense product in the workspace:
//!
//! * [`gemm_nt`] — `C[m,n] = A[m,k] * B[n,k]^T`.  The forward pass of a
//!   fully-connected layer (`Y = X W^T`): both operands stream row-major,
//!   so the inner loop is a pure dot product over contiguous memory.
//! * [`gemm_nn`] — `C[m,n] = A[m,k] * B[k,n]`.  Backprop's input gradient
//!   (`dX = dY W`); implemented as an axpy-accumulation over B's rows so
//!   B is still streamed contiguously.
//! * [`gemm_tn`] — `C[m,n] = A[k,m]^T * B[k,n]`.  Backprop's weight
//!   gradient (`dW = dY^T X`); an outer-product accumulation.
//!
//! Parallelisation is over output rows (for `nt`/`nn`) in chunks sized by
//! [`crate::par::row_chunk_len`]; `tn` parallelises over *output* rows by
//! having each worker scan the shared `k` dimension, which avoids a
//! reduction over partial `C` buffers.

use rayon::prelude::*;

use crate::matrix::Matrix;
use crate::par;
use crate::vector::{axpy, dot};

/// `C[m,n] = A[m,k] * B[n,k]^T` (B transposed: both row-major streams).
pub fn gemm_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(
        k, kb,
        "gemm_nt: inner dimensions disagree (A is {m}x{k}, B^T is {kb}x{n})"
    );
    let mut c = Matrix::zeros(m, n);
    let work = m * n * k;
    if par::should_parallelize(work) {
        let chunk = par::row_chunk_len(m);
        c.as_mut_slice()
            .par_chunks_mut(chunk * n)
            .enumerate()
            .for_each(|(ci, c_rows)| {
                let row0 = ci * chunk;
                for (local_r, c_row) in c_rows.chunks_exact_mut(n).enumerate() {
                    let a_row = a.row(row0 + local_r);
                    for (j, c_val) in c_row.iter_mut().enumerate() {
                        *c_val = dot(a_row, b.row(j));
                    }
                }
            });
    } else {
        for r in 0..m {
            let a_row = a.row(r);
            let c_row = c.row_mut(r);
            for (j, c_val) in c_row.iter_mut().enumerate() {
                *c_val = dot(a_row, b.row(j));
            }
        }
    }
    c
}

/// `C[m,n] = A[m,k] * B[k,n]`.
pub fn gemm_nn(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(
        k, kb,
        "gemm_nn: inner dimensions disagree (A is {m}x{k}, B is {kb}x{n})"
    );
    let mut c = Matrix::zeros(m, n);
    let work = m * n * k;
    if par::should_parallelize(work) {
        let chunk = par::row_chunk_len(m);
        c.as_mut_slice()
            .par_chunks_mut(chunk * n)
            .enumerate()
            .for_each(|(ci, c_rows)| {
                let row0 = ci * chunk;
                for (local_r, c_row) in c_rows.chunks_exact_mut(n).enumerate() {
                    accumulate_row_nn(a.row(row0 + local_r), b, c_row);
                }
            });
    } else {
        for r in 0..m {
            // Split borrows: read A's row, write C's row.
            let a_row: &[f64] = a.row(r);
            let c_row = c.row_mut(r);
            accumulate_row_nn(a_row, b, c_row);
        }
    }
    c
}

/// One output row of `gemm_nn`: `c_row += sum_l a_row[l] * B[l, :]`,
/// streaming B row-major.
#[inline]
fn accumulate_row_nn(a_row: &[f64], b: &Matrix, c_row: &mut [f64]) {
    for (l, &a_val) in a_row.iter().enumerate() {
        if a_val != 0.0 {
            axpy(c_row, a_val, b.row(l));
        }
    }
}

/// `C[m,n] = A[k,m]^T * B[k,n]` (outer-product accumulation over `k`).
pub fn gemm_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let (k, m) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(
        k, kb,
        "gemm_tn: outer dimensions disagree (A^T is {m}x{k}, B is {kb}x{n})"
    );
    let mut c = Matrix::zeros(m, n);
    let work = m * n * k;
    if par::should_parallelize(work) && m >= 2 {
        let chunk = par::row_chunk_len(m);
        c.as_mut_slice()
            .par_chunks_mut(chunk * n)
            .enumerate()
            .for_each(|(ci, c_rows)| {
                let row0 = ci * chunk;
                // Each worker owns output rows [row0, row0+rows_here) and
                // scans the full k dimension: no partial-C reduction needed.
                for l in 0..k {
                    let a_row = a.row(l);
                    let b_row = b.row(l);
                    for (local_r, c_row) in c_rows.chunks_exact_mut(n).enumerate() {
                        let coeff = a_row[row0 + local_r];
                        if coeff != 0.0 {
                            axpy(c_row, coeff, b_row);
                        }
                    }
                }
            });
    } else {
        for l in 0..k {
            let a_row = a.row(l);
            let b_row = b.row(l);
            for r in 0..m {
                let coeff = a_row[r];
                if coeff != 0.0 {
                    axpy(c.row_mut(r), coeff, b_row);
                }
            }
        }
    }
    c
}

/// Naive triple-loop reference used by the tests to validate the blocked
/// kernels. Public so downstream crates' tests can reuse it.
pub fn gemm_reference(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb);
    let mut c = Matrix::zeros(m, n);
    for r in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for l in 0..k {
                acc += a.get(r, l) * b.get(l, j);
            }
            c.set(r, j, acc);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Small deterministic pseudo-random fill without pulling in rand.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 500.0 - 1.0
        })
    }

    #[test]
    fn nt_matches_reference() {
        let a = mat(7, 5, 1);
        let b = mat(9, 5, 2);
        let c = gemm_nt(&a, &b);
        let c_ref = gemm_reference(&a, &b.transpose());
        assert!(c.max_abs_diff(&c_ref) < 1e-12);
    }

    #[test]
    fn nn_matches_reference() {
        let a = mat(6, 8, 3);
        let b = mat(8, 4, 4);
        let c = gemm_nn(&a, &b);
        let c_ref = gemm_reference(&a, &b);
        assert!(c.max_abs_diff(&c_ref) < 1e-12);
    }

    #[test]
    fn tn_matches_reference() {
        let a = mat(8, 6, 5);
        let b = mat(8, 3, 6);
        let c = gemm_tn(&a, &b);
        let c_ref = gemm_reference(&a.transpose(), &b);
        assert!(c.max_abs_diff(&c_ref) < 1e-12);
    }

    #[test]
    fn large_parallel_paths_match_reference() {
        // Big enough to cross PAR_THRESHOLD_ELEMS and exercise the rayon
        // branches of all three kernels.
        let a = mat(70, 90, 7);
        let b_nt = mat(50, 90, 8);
        let b_nn = mat(90, 50, 9);
        let a_tn = mat(90, 70, 10);

        assert!(gemm_nt(&a, &b_nt)
            .max_abs_diff(&gemm_reference(&a, &b_nt.transpose()))
            < 1e-10);
        assert!(gemm_nn(&a, &b_nn).max_abs_diff(&gemm_reference(&a, &b_nn)) < 1e-10);
        assert!(gemm_tn(&a_tn, &b_nn)
            .max_abs_diff(&gemm_reference(&a_tn.transpose(), &b_nn))
            < 1e-10);
    }

    #[test]
    fn degenerate_shapes() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(3, 5);
        let c = gemm_nt(&a, &b);
        assert_eq!(c.shape(), (0, 3));

        let a = mat(1, 1, 11);
        let b = mat(1, 1, 12);
        let c = gemm_nt(&a, &b);
        assert!((c.get(0, 0) - a.get(0, 0) * b.get(0, 0)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn nt_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        let _ = gemm_nt(&a, &b);
    }
}
