//! Cache-blocked, rayon-parallel GEMM kernels.
//!
//! Three layout variants cover every dense product in the workspace:
//!
//! * [`gemm_nt`] — `C[m,n] = A[m,k] * B[n,k]^T`.  The forward pass of a
//!   fully-connected layer (`Y = X W^T`): both operands stream row-major,
//!   so the kernel can register-block without packing.
//! * [`gemm_nn`] — `C[m,n] = A[m,k] * B[k,n]`.  Backprop's input gradient
//!   (`dX = dY W`); implemented as an axpy-accumulation over B's rows so
//!   B is still streamed contiguously.
//! * [`gemm_tn`] — `C[m,n] = A[k,m]^T * B[k,n]`.  Backprop's weight
//!   gradient (`dW = dY^T X`); an outer-product accumulation.
//!
//! Each kernel has an `_into` twin writing into a caller-owned matrix
//! (reshaped in place, so a warm buffer is never reallocated); the
//! allocating forms are thin wrappers over those.
//!
//! `gemm_nt` is the hot kernel (it is both the sampling and the forward
//! bottleneck) and runs a genuinely blocked loop nest: a 4×4 register
//! accumulator tile ([`MR`]×[`NR`]) in the innermost position, `k`
//! blocked by [`KC`] so a 4-row A-slab stays L1-resident, and B's rows
//! blocked by [`NC`] so the B-panel being swept is reused from L2 across
//! the whole A row-panel sweep instead of being re-streamed from memory
//! for every output row.  Versus the previous dot-per-element loop this
//! cuts B traffic by `MR`× and A traffic by `NR`×.
//!
//! Parallelisation is over output-row panels (rounded to [`MR`]) in
//! chunks sized by [`crate::par::row_chunk_len`]; `tn` parallelises over
//! *output* rows by having each worker scan the shared `k` dimension,
//! which avoids a reduction over partial `C` buffers.

use rayon::prelude::*;

use crate::matrix::Matrix;
use crate::par;
use crate::vector::{axpy, dot};

/// Microkernel accumulator tile height (A rows per tile).
pub const MR: usize = 4;
/// Microkernel accumulator tile width (B rows per tile).
pub const NR: usize = 4;
/// `k`-dimension block: `MR` A-rows × `KC` f64 = 8 KiB, safely L1.
pub const KC: usize = 256;
/// B-row block: `NC` rows × `KC` f64 = 128 KiB, sized for L2 residency.
pub const NC: usize = 64;

/// `C[m,n] = A[m,k] * B[n,k]^T` (B transposed: both row-major streams).
pub fn gemm_nt(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.rows());
    gemm_nt_into(a, b, &mut c);
    c
}

/// [`gemm_nt`] into a caller-owned output (reshaped in place).
pub fn gemm_nt_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (n, kb) = b.shape();
    assert_eq!(
        k, kb,
        "gemm_nt: inner dimensions disagree (A is {m}x{k}, B^T is {kb}x{n})"
    );
    c.resize(m, n);
    let work = m * n * k;
    if par::should_parallelize(work) {
        let chunk = par::row_chunk_len(m).div_ceil(MR) * MR;
        c.as_mut_slice()
            .par_chunks_mut(chunk * n)
            .enumerate()
            .for_each(|(ci, c_rows)| nt_panel(a, b, c_rows, ci * chunk));
    } else {
        nt_panel(a, b, c.as_mut_slice(), 0);
    }
}

/// The 4×4 register-tile inner product: `acc[i][j] = aᵢ · bⱼ` over one
/// `k`-block.  All eight operand slices are trimmed to a common length
/// up front so the bounds checks vanish from the unrolled loop.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn micro_4x4(
    a0: &[f64],
    a1: &[f64],
    a2: &[f64],
    a3: &[f64],
    b0: &[f64],
    b1: &[f64],
    b2: &[f64],
    b3: &[f64],
) -> [[f64; NR]; MR] {
    let lc = a0.len();
    let (a1, a2, a3) = (&a1[..lc], &a2[..lc], &a3[..lc]);
    let (b0, b1, b2, b3) = (&b0[..lc], &b1[..lc], &b2[..lc], &b3[..lc]);
    let (mut c00, mut c01, mut c02, mut c03) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let (mut c10, mut c11, mut c12, mut c13) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let (mut c20, mut c21, mut c22, mut c23) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let (mut c30, mut c31, mut c32, mut c33) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for i in 0..lc {
        let (x0, x1, x2, x3) = (a0[i], a1[i], a2[i], a3[i]);
        let (y0, y1, y2, y3) = (b0[i], b1[i], b2[i], b3[i]);
        c00 += x0 * y0;
        c01 += x0 * y1;
        c02 += x0 * y2;
        c03 += x0 * y3;
        c10 += x1 * y0;
        c11 += x1 * y1;
        c12 += x1 * y2;
        c13 += x1 * y3;
        c20 += x2 * y0;
        c21 += x2 * y1;
        c22 += x2 * y2;
        c23 += x2 * y3;
        c30 += x3 * y0;
        c31 += x3 * y1;
        c32 += x3 * y2;
        c33 += x3 * y3;
    }
    [
        [c00, c01, c02, c03],
        [c10, c11, c12, c13],
        [c20, c21, c22, c23],
        [c30, c31, c32, c33],
    ]
}

/// Blocked `nt` sweep writing output rows `[row0, row0 + c_panel.len()/n)`.
fn nt_panel(a: &Matrix, b: &Matrix, c_panel: &mut [f64], row0: usize) {
    let k = a.cols();
    let n = b.rows();
    if n == 0 || c_panel.is_empty() {
        return;
    }
    let rows_here = c_panel.len() / n;
    c_panel.fill(0.0);

    let mut l0 = 0;
    while l0 < k {
        let lc = KC.min(k - l0);
        let mut j0 = 0;
        while j0 < n {
            let j_end = j0 + NC.min(n - j0);
            let mut r = 0;
            while r + MR <= rows_here {
                let a0 = &a.row(row0 + r)[l0..l0 + lc];
                let a1 = &a.row(row0 + r + 1)[l0..l0 + lc];
                let a2 = &a.row(row0 + r + 2)[l0..l0 + lc];
                let a3 = &a.row(row0 + r + 3)[l0..l0 + lc];
                let mut j = j0;
                while j + NR <= j_end {
                    let b0 = &b.row(j)[l0..l0 + lc];
                    let b1 = &b.row(j + 1)[l0..l0 + lc];
                    let b2 = &b.row(j + 2)[l0..l0 + lc];
                    let b3 = &b.row(j + 3)[l0..l0 + lc];
                    let acc = micro_4x4(a0, a1, a2, a3, b0, b1, b2, b3);
                    for (ri, acc_row) in acc.iter().enumerate() {
                        let base = (r + ri) * n + j;
                        for (cv, av) in c_panel[base..base + NR].iter_mut().zip(acc_row) {
                            *cv += av;
                        }
                    }
                    j += NR;
                }
                // Column remainder: one B row against the four A rows.
                while j < j_end {
                    let b_row = &b.row(j)[l0..l0 + lc];
                    c_panel[r * n + j] += dot(a0, b_row);
                    c_panel[(r + 1) * n + j] += dot(a1, b_row);
                    c_panel[(r + 2) * n + j] += dot(a2, b_row);
                    c_panel[(r + 3) * n + j] += dot(a3, b_row);
                    j += 1;
                }
                r += MR;
            }
            // Row remainder: plain dots over the current block.
            while r < rows_here {
                let a_row = &a.row(row0 + r)[l0..l0 + lc];
                for j in j0..j_end {
                    c_panel[r * n + j] += dot(a_row, &b.row(j)[l0..l0 + lc]);
                }
                r += 1;
            }
            j0 = j_end;
        }
        l0 += lc;
    }
}

/// `C[m,n] = A[m,k] * B[k,n]`.
pub fn gemm_nn(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.rows(), b.cols());
    gemm_nn_into(a, b, &mut c);
    c
}

/// [`gemm_nn`] into a caller-owned output (reshaped in place).
pub fn gemm_nn_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(
        k, kb,
        "gemm_nn: inner dimensions disagree (A is {m}x{k}, B is {kb}x{n})"
    );
    c.resize(m, n);
    c.fill(0.0);
    let work = m * n * k;
    if par::should_parallelize(work) {
        let chunk = par::row_chunk_len(m);
        c.as_mut_slice()
            .par_chunks_mut(chunk * n)
            .enumerate()
            .for_each(|(ci, c_rows)| {
                let row0 = ci * chunk;
                for (local_r, c_row) in c_rows.chunks_exact_mut(n).enumerate() {
                    accumulate_row_nn(a.row(row0 + local_r), b, c_row);
                }
            });
    } else {
        for r in 0..m {
            // Split borrows: read A's row, write C's row.
            let a_row: &[f64] = a.row(r);
            let c_row = c.row_mut(r);
            accumulate_row_nn(a_row, b, c_row);
        }
    }
}

/// One output row of `gemm_nn`: `c_row += sum_l a_row[l] * B[l, :]`,
/// streaming B row-major.
#[inline]
fn accumulate_row_nn(a_row: &[f64], b: &Matrix, c_row: &mut [f64]) {
    for (l, &a_val) in a_row.iter().enumerate() {
        if a_val != 0.0 {
            axpy(c_row, a_val, b.row(l));
        }
    }
}

/// `C[m,n] = A[k,m]^T * B[k,n]` (outer-product accumulation over `k`).
pub fn gemm_tn(a: &Matrix, b: &Matrix) -> Matrix {
    let mut c = Matrix::zeros(a.cols(), b.cols());
    gemm_tn_into(a, b, &mut c);
    c
}

/// [`gemm_tn`] into a caller-owned output (reshaped in place).
pub fn gemm_tn_into(a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let (k, m) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(
        k, kb,
        "gemm_tn: outer dimensions disagree (A^T is {m}x{k}, B is {kb}x{n})"
    );
    c.resize(m, n);
    c.fill(0.0);
    let work = m * n * k;
    if par::should_parallelize(work) && m >= 2 {
        let chunk = par::row_chunk_len(m);
        c.as_mut_slice()
            .par_chunks_mut(chunk * n)
            .enumerate()
            .for_each(|(ci, c_rows)| {
                let row0 = ci * chunk;
                // Each worker owns output rows [row0, row0+rows_here) and
                // scans the full k dimension: no partial-C reduction needed.
                for l in 0..k {
                    let a_row = a.row(l);
                    let b_row = b.row(l);
                    for (local_r, c_row) in c_rows.chunks_exact_mut(n).enumerate() {
                        let coeff = a_row[row0 + local_r];
                        if coeff != 0.0 {
                            axpy(c_row, coeff, b_row);
                        }
                    }
                }
            });
    } else {
        for l in 0..k {
            let a_row = a.row(l);
            let b_row = b.row(l);
            for r in 0..m {
                let coeff = a_row[r];
                if coeff != 0.0 {
                    axpy(c.row_mut(r), coeff, b_row);
                }
            }
        }
    }
}

/// Naive triple-loop reference used by the tests to validate the blocked
/// kernels. Public so downstream crates' tests can reuse it.
pub fn gemm_reference(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(k, kb);
    let mut c = Matrix::zeros(m, n);
    for r in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for l in 0..k {
                acc += a.get(r, l) * b.get(l, j);
            }
            c.set(r, j, acc);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        // Small deterministic pseudo-random fill without pulling in rand.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Matrix::from_fn(rows, cols, |_, _| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 500.0 - 1.0
        })
    }

    #[test]
    fn nt_matches_reference() {
        let a = mat(7, 5, 1);
        let b = mat(9, 5, 2);
        let c = gemm_nt(&a, &b);
        let c_ref = gemm_reference(&a, &b.transpose());
        assert!(c.max_abs_diff(&c_ref) < 1e-12);
    }

    #[test]
    fn nt_matches_reference_across_tile_remainders() {
        // Sweep shapes around the MR/NR/KC/NC boundaries so every
        // remainder path of the blocked loop nest is exercised.
        for &(m, n, k) in &[
            (1, 1, 1),
            (3, 3, 3),
            (4, 4, 4),
            (5, 7, 9),
            (8, 8, KC),
            (9, NC + 3, KC + 5),
            (MR * 3 + 2, NR * 5 + 1, 17),
        ] {
            let a = mat(m, k, m as u64 + 1);
            let b = mat(n, k, n as u64 + 100);
            let c = gemm_nt(&a, &b);
            let c_ref = gemm_reference(&a, &b.transpose());
            assert!(
                c.max_abs_diff(&c_ref) < 1e-10,
                "mismatch at shape ({m},{n},{k})"
            );
        }
    }

    #[test]
    fn into_variants_reuse_and_reshape_output() {
        let a = mat(6, 8, 3);
        let b_nt = mat(5, 8, 4);
        let b_nn = mat(8, 5, 5);
        let a_tn = mat(8, 6, 6);

        // Start from a wrong-shaped, dirty output buffer.
        let mut c = mat(2, 2, 9);
        gemm_nt_into(&a, &b_nt, &mut c);
        assert!(c.max_abs_diff(&gemm_nt(&a, &b_nt)) == 0.0);

        gemm_nn_into(&a, &b_nn, &mut c);
        assert!(c.max_abs_diff(&gemm_nn(&a, &b_nn)) == 0.0);

        gemm_tn_into(&a_tn, &b_nn, &mut c);
        assert!(c.max_abs_diff(&gemm_tn(&a_tn, &b_nn)) == 0.0);
    }

    #[test]
    fn nn_matches_reference() {
        let a = mat(6, 8, 3);
        let b = mat(8, 4, 4);
        let c = gemm_nn(&a, &b);
        let c_ref = gemm_reference(&a, &b);
        assert!(c.max_abs_diff(&c_ref) < 1e-12);
    }

    #[test]
    fn tn_matches_reference() {
        let a = mat(8, 6, 5);
        let b = mat(8, 3, 6);
        let c = gemm_tn(&a, &b);
        let c_ref = gemm_reference(&a.transpose(), &b);
        assert!(c.max_abs_diff(&c_ref) < 1e-12);
    }

    #[test]
    fn large_parallel_paths_match_reference() {
        // Big enough to cross PAR_THRESHOLD_ELEMS and exercise the rayon
        // branches of all three kernels.
        let a = mat(70, 90, 7);
        let b_nt = mat(50, 90, 8);
        let b_nn = mat(90, 50, 9);
        let a_tn = mat(90, 70, 10);

        assert!(gemm_nt(&a, &b_nt)
            .max_abs_diff(&gemm_reference(&a, &b_nt.transpose()))
            < 1e-10);
        assert!(gemm_nn(&a, &b_nn).max_abs_diff(&gemm_reference(&a, &b_nn)) < 1e-10);
        assert!(gemm_tn(&a_tn, &b_nn)
            .max_abs_diff(&gemm_reference(&a_tn.transpose(), &b_nn))
            < 1e-10);
    }

    #[test]
    fn degenerate_shapes() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(3, 5);
        let c = gemm_nt(&a, &b);
        assert_eq!(c.shape(), (0, 3));

        let a = Matrix::zeros(4, 0);
        let b = Matrix::zeros(3, 0);
        let c = gemm_nt(&a, &b);
        assert_eq!(c.shape(), (4, 3));
        assert!(c.as_slice().iter().all(|&v| v == 0.0));

        let a = mat(1, 1, 11);
        let b = mat(1, 1, 12);
        let c = gemm_nt(&a, &b);
        assert!((c.get(0, 0) - a.get(0, 0) * b.get(0, 0)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn nt_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        let _ = gemm_nt(&a, &b);
    }
}
