//! # vqmc-tensor
//!
//! Dense linear-algebra kernels used throughout the `vqmc-rs` workspace.
//!
//! The SC'21 paper this workspace reproduces ("Overcoming barriers to
//! scalability in variational quantum Monte Carlo") executes its neural
//! wavefunctions on NVIDIA V100 GPUs.  A GPU earns its speed by
//! parallelising the *batch* axis of every dense kernel; this crate plays
//! the same role on CPU by parallelising the identical axis over the
//! fixed worker pool in [`par`].  The flop counts per device and the bytes moved per
//! collective — the only quantities the paper's scaling analysis (its
//! Eq. 15) depends on — are therefore preserved exactly.
//!
//! ## Contents
//!
//! * [`Vector`] — a contiguous `f64` vector with the BLAS-1 operations the
//!   optimisers need (axpy, dot, scaling, norms).
//! * [`Matrix`] — a row-major `f64` matrix with cache-blocked,
//!   pool-parallel GEMM variants ([`Matrix::matmul_nt`] and friends).
//! * [`SpinBatch`] — a `bs x n` batch of binary spin configurations, the
//!   sample container shared by Hamiltonians, samplers and wavefunctions.
//! * [`ops`] — numerically stable elementwise activations (`sigmoid`,
//!   `ln_cosh`, `relu`, ...) and their derivatives.
//! * [`reduce`] — reductions (mean, variance, log-sum-exp, weighted dots),
//!   pairwise-compensated for batch-scale accumulations.
//! * [`simd`] — the runtime-dispatched kernel table: AVX2+FMA vector
//!   kernels (packed GEMM microkernel, vectorized transcendentals) with
//!   a portable scalar twin, selected once per process (see
//!   [`simd::kernels`]).  Disable with `--features force-scalar` or
//!   `VQMC_SIMD=off`.
//!
//! ## Shape discipline
//!
//! Kernels `assert!` on shape mismatches rather than returning `Result`:
//! a shape error in this workspace is always a programming bug, never a
//! runtime condition, and the branch predictor eats the cost.
//!
//! ## Parallelism policy
//!
//! Real threads live in [`par`]: a lazily-spawned fixed pool of workers
//! (sized by `VQMC_THREADS`, default one per core) that every parallel
//! kernel dispatches onto.  Every parallel kernel has a sequential twin,
//! and crossover thresholds ([`par::PAR_THRESHOLD_ELEMS`] for
//! memory-bound slices, [`par::PAR_GEMM_MIN_FLOPS`] for GEMM) below
//! which the entry points degrade to the sequential implementation; the
//! thresholds were calibrated by the `bench_tensor` criterion group in
//! `vqmc-bench`.  The binding contract is *bit-identical results at any
//! thread count* — see the [`par`] module docs for how each kernel
//! family earns that.

#![warn(missing_docs)]

pub mod batch;
pub mod gemm;
pub mod gemm32;
pub mod matrix;
pub mod ops;
pub mod par;
pub mod reduce;
pub mod simd;
pub mod vector;
pub mod workspace;

pub use batch::SpinBatch;
pub use matrix::Matrix;
pub use vector::Vector;
pub use workspace::Workspace;

/// Numeric precision of an inference pass.
///
/// `F64` is the reference arm: every kernel is bit-identical across
/// SIMD arms and thread counts.  `F32` stores weights and activations
/// in single precision (half the bytes streamed, twice the SIMD lanes)
/// and widens to `f64` at reduction boundaries; its correctness
/// contract is bound-based (documented error bounds against the f64
/// arm), not bit-based, but *within* the f32 arm results are still
/// bit-identical across SIMD arms and thread counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Precision {
    /// Double precision (the default and reference arm).
    #[default]
    F64,
    /// Single-precision weights/activations with f64 accumulation.
    F32,
}

impl Precision {
    /// Stable on-the-wire / on-disk tag (`0` = f64, `1` = f32).
    pub fn tag(self) -> u8 {
        match self {
            Precision::F64 => 0,
            Precision::F32 => 1,
        }
    }

    /// Inverse of [`Precision::tag`]; `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Precision::F64),
            1 => Some(Precision::F32),
            _ => None,
        }
    }

    /// Parses the CLI spelling (`"f64"` / `"f32"`, case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "f64" | "double" => Some(Precision::F64),
            "f32" | "single" => Some(Precision::F32),
            _ => None,
        }
    }

    /// The CLI / JSON spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Precision::F64 => "f64",
            Precision::F32 => "f32",
        }
    }
}

/// Absolute tolerance used by the test-suites of this workspace when
/// comparing two floating point computations that are algebraically equal
/// but may differ in association order (e.g. parallel reductions).
pub const TEST_EPS: f64 = 1e-9;

/// Relative comparison used across the workspace's tests: `a ~= b` up to
/// `tol` relative to the larger magnitude (falling back to absolute
/// comparison near zero).
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_near_zero() {
        assert!(approx_eq(0.0, 1e-12, 1e-9));
        assert!(!approx_eq(0.0, 1e-6, 1e-9));
    }

    #[test]
    fn approx_eq_relative_for_large() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.001e12, 1e-9));
    }
}
