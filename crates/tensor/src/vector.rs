//! A contiguous `f64` vector with the BLAS-1 style operations the
//! optimisers and estimators need.

use std::fmt;
use std::ops::{Deref, DerefMut, Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::par;

/// A dense, heap-allocated vector of `f64`.
///
/// `Vector` is a thin newtype over `Vec<f64>` (it `Deref`s to `[f64]`),
/// adding shape-checked arithmetic.  All binary operations `assert!`
/// equal lengths.
#[derive(Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Vector(pub Vec<f64>);

impl Vector {
    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        Vector(vec![0.0; n])
    }

    /// Creates a vector of length `n` filled with `value`.
    pub fn full(n: usize, value: f64) -> Self {
        Vector(vec![value; n])
    }

    /// Creates a vector from a generating function of the index.
    pub fn from_fn(n: usize, f: impl FnMut(usize) -> f64) -> Self {
        Vector((0..n).map(f).collect())
    }

    /// Length of the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrows the underlying slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Mutably borrows the underlying slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Consumes the vector, returning the underlying storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.0
    }

    /// Resizes in place (new elements zero), reusing capacity so a warm
    /// buffer is never reallocated.
    pub fn resize(&mut self, n: usize) {
        self.0.resize(n, 0.0);
    }

    /// Copies `other` into `self`, resizing as needed (allocation-free
    /// once the buffer is warm).
    pub fn copy_from(&mut self, other: &Vector) {
        self.0.resize(other.len(), 0.0);
        self.0.copy_from_slice(&other.0);
    }

    /// Dot product `self . other` (always sequential; see [`dot`]).
    pub fn dot(&self, other: &Vector) -> f64 {
        dot(&self.0, &other.0)
    }

    /// Euclidean norm.
    pub fn norm2(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// `self += alpha * x` (BLAS `axpy`).
    pub fn axpy(&mut self, alpha: f64, x: &Vector) {
        axpy(&mut self.0, alpha, &x.0);
    }

    /// Scales every element in place (striped over the pool above the
    /// size threshold; elementwise, so bit-identical at any width).
    pub fn scale(&mut self, alpha: f64) {
        par::par_apply(&mut self.0, |s| {
            for v in s {
                *v *= alpha;
            }
        });
    }

    /// Returns `self + other` as a new vector.
    pub fn add(&self, other: &Vector) -> Vector {
        assert_eq!(self.len(), other.len(), "Vector::add: length mismatch");
        Vector(self.0.iter().zip(&other.0).map(|(a, b)| a + b).collect())
    }

    /// Returns `self - other` as a new vector.
    pub fn sub(&self, other: &Vector) -> Vector {
        assert_eq!(self.len(), other.len(), "Vector::sub: length mismatch");
        Vector(self.0.iter().zip(&other.0).map(|(a, b)| a - b).collect())
    }

    /// Elementwise product (Hadamard) as a new vector.
    pub fn hadamard(&self, other: &Vector) -> Vector {
        assert_eq!(self.len(), other.len(), "Vector::hadamard: length mismatch");
        Vector(self.0.iter().zip(&other.0).map(|(a, b)| a * b).collect())
    }

    /// Applies `f` to every element in place (striped over the pool
    /// above the size threshold; bit-identical at any thread count).
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64 + Sync) {
        par::par_apply(&mut self.0, |s| {
            for v in s {
                *v = f(*v);
            }
        });
    }

    /// Returns a new vector with `f` applied elementwise.
    pub fn map(&self, f: impl Fn(f64) -> f64 + Sync) -> Vector {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        crate::reduce::sum(&self.0)
    }

    /// Arithmetic mean; panics on an empty vector.
    pub fn mean(&self) -> f64 {
        assert!(!self.is_empty(), "Vector::mean of empty vector");
        self.sum() / self.len() as f64
    }

    /// Population variance (biased, divides by `n`); panics when empty.
    pub fn variance(&self) -> f64 {
        crate::reduce::variance(&self.0)
    }

    /// Largest element; panics when empty.
    pub fn max(&self) -> f64 {
        crate::reduce::max(&self.0)
    }

    /// Smallest element; panics when empty.
    pub fn min(&self) -> f64 {
        crate::reduce::min(&self.0)
    }

    /// Fills the vector with a constant.
    pub fn fill(&mut self, value: f64) {
        self.0.fill(value);
    }

    /// True when every element is finite (no NaN / inf).
    pub fn all_finite(&self) -> bool {
        self.0.iter().all(|v| v.is_finite())
    }
}

/// Free-function dot product over slices (used by matrix kernels to avoid
/// constructing temporaries).
///
/// Deliberately **never parallelised**: the dispatched kernel
/// accumulates in lanes striped across the *whole* slice, so any
/// chunked partition changes the association order and the result's
/// low bits.  Keeping one canonical association is what lets the CG
/// solver and the trainer produce bit-identical traces at every
/// `VQMC_THREADS` (the determinism contract in [`crate::par`]).  The
/// hot dots (CG inner products) are far below memory-bandwidth sizes
/// where threads would pay off anyway.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    dot_seq(a, b)
}

/// Sequential dot product through the dispatched kernel: 16 FMA lanes
/// (four `ymm` accumulators) on the AVX2 arm, the bit-identical striped
/// scalar twin otherwise.
#[inline]
fn dot_seq(a: &[f64], b: &[f64]) -> f64 {
    (crate::simd::kernels().dot)(a, b)
}

/// Free-function axpy `y += alpha * x` over slices (dispatched kernel;
/// every step a fused multiply-add on both arms).  Striped over the
/// pool above the size threshold — each `y[i]` depends only on
/// `(y[i], x[i])`, so the partition is bit-identical at any width.
#[inline]
pub fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "axpy: length mismatch");
    let kern = crate::simd::kernels().axpy;
    if par::should_parallelize(y.len()) {
        par::for_each_stripe_mut(y, 8, |off, ys| kern(ys, alpha, &x[off..off + ys.len()]));
    } else {
        kern(y, alpha, x)
    }
}

/// Free-function `y = x + beta * y` over slices (dispatched kernel) —
/// the conjugate-gradient direction update `p = r + β p`, which axpy
/// cannot express without a scratch copy.  Striped like [`axpy`].
#[inline]
pub fn xpby(y: &mut [f64], x: &[f64], beta: f64) {
    assert_eq!(y.len(), x.len(), "xpby: length mismatch");
    let kern = crate::simd::kernels().xpby;
    if par::should_parallelize(y.len()) {
        par::for_each_stripe_mut(y, 8, |off, ys| kern(ys, beta, &x[off..off + ys.len()]));
    } else {
        kern(y, beta, x)
    }
}

impl Deref for Vector {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.0
    }
}

impl DerefMut for Vector {
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.0
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for Vector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.0[i]
    }
}

impl From<Vec<f64>> for Vector {
    fn from(v: Vec<f64>) -> Self {
        Vector(v)
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Vector(iter.into_iter().collect())
    }
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.len() <= 8 {
            write!(f, "Vector({:?})", self.0)
        } else {
            write!(
                f,
                "Vector(len={}, head={:?}, ...)",
                self.len(),
                &self.0[..4]
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_full() {
        let z = Vector::zeros(5);
        assert_eq!(z.len(), 5);
        assert!(z.iter().all(|&v| v == 0.0));
        let f = Vector::full(3, 2.5);
        assert_eq!(f.as_slice(), &[2.5, 2.5, 2.5]);
    }

    #[test]
    fn dot_matches_manual() {
        let a = Vector(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let b = Vector(vec![5.0, 4.0, 3.0, 2.0, 1.0]);
        assert_eq!(a.dot(&b), 5.0 + 8.0 + 9.0 + 8.0 + 5.0);
    }

    #[test]
    fn dot_parallel_matches_sequential() {
        let n = 100_000;
        let a = Vector::from_fn(n, |i| (i as f64 * 0.37).sin());
        let b = Vector::from_fn(n, |i| (i as f64 * 0.11).cos());
        let par = a.dot(&b);
        let seq = dot_seq(&a, &b);
        assert!(crate::approx_eq(par, seq, 1e-12), "{par} vs {seq}");
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = Vector(vec![1.0, 1.0]);
        let x = Vector(vec![2.0, 3.0]);
        y.axpy(0.5, &x);
        assert_eq!(y.as_slice(), &[2.0, 2.5]);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vector(vec![1.0, 2.0]);
        let b = Vector(vec![3.0, 5.0]);
        assert_eq!(a.add(&b).as_slice(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).as_slice(), &[2.0, 3.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[3.0, 10.0]);
    }

    #[test]
    fn stats() {
        let v = Vector(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(v.sum(), 10.0);
        assert_eq!(v.mean(), 2.5);
        assert!(crate::approx_eq(v.variance(), 1.25, 1e-12));
        assert_eq!(v.max(), 4.0);
        assert_eq!(v.min(), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_shape_mismatch_panics() {
        let a = Vector::zeros(3);
        let b = Vector::zeros(4);
        let _ = a.dot(&b);
    }

    #[test]
    fn map_and_scale() {
        let mut v = Vector(vec![1.0, -2.0, 3.0]);
        v.scale(2.0);
        assert_eq!(v.as_slice(), &[2.0, -4.0, 6.0]);
        let abs = v.map(f64::abs);
        assert_eq!(abs.as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut v = Vector::zeros(3);
        assert!(v.all_finite());
        v[1] = f64::NAN;
        assert!(!v.all_finite());
    }
}
