//! The deterministic fork-join thread pool under every parallel kernel
//! in this workspace.
//!
//! ## Design
//!
//! One process-global pool of `num_threads() - 1` worker threads
//! (lazily spawned on the first parallel region, reused for the life of
//! the process) plus the calling thread, which always participates as
//! part 0.  A parallel region is a **broadcast**: [`run`]`(parts, f)`
//! publishes one borrowed closure and every participant `w < parts`
//! executes `f(w)` exactly once.  There is no task queue and no
//! stealing — each part's work is fixed by its index — because the
//! determinism contract below is easier to state (and test) for a
//! static partition, and the kernels this pool serves are regular
//! enough that stealing buys nothing.
//!
//! The dispatch path allocates nothing: the job slot holds a borrowed
//! fat pointer to the caller's closure, workers are woken through one
//! `Condvar`, and completion is a counter plus a second `Condvar`.  The
//! caller blocks until every participant has finished, so the borrow
//! never escapes the region (the zero-allocation `Trainer::step`
//! invariant holds with the pool active — asserted by a
//! counting-allocator test in `vqmc-core`).
//!
//! ## Determinism contract
//!
//! Every kernel built on this pool must produce **bit-identical**
//! results at any thread count (`VQMC_THREADS ∈ {1, 2, 4, 8, …}`).
//! The pool supplies the two primitives that make that provable:
//!
//! * **fixed chunk→worker assignment** — [`stripe`] splits `0..len`
//!   into `parts` contiguous ranges by a pure function of
//!   `(len, parts, w)`; no stealing, no racing for chunks;
//! * **canonical reduction order** — reductions never combine partials
//!   in completion order.  `reduce::sum` and friends evaluate the
//!   *same* fixed pairwise tree the sequential path uses (leaves in
//!   parallel, combination sequential in tree order), so the float
//!   association is a function of the slice length alone.
//!
//! Kernels whose sequential association cannot be partitioned (the
//! lane-striped whole-slice `dot`) stay sequential rather than break
//! the contract.
//!
//! ## Concurrency and re-entrancy
//!
//! Concurrent callers (the serve engine's worker, trainer threads, the
//! cluster's device threads) serialize on a client lock — regions run
//! one at a time, each at full width.  A nested parallel call from
//! inside a worker (or from inside the caller's own part) runs inline,
//! sequentially over its parts in ascending order, which is
//! bit-identical to a dispatched run by the contract above.  A panic in
//! any part is caught, the region is drained, and the panic is re-raised
//! on the caller — workers never die, the pool stays usable.
//!
//! ## Sizing
//!
//! `VQMC_THREADS` pins the width; otherwise
//! `std::thread::available_parallelism()` decides.  [`with_threads`]
//! overrides the width for the current thread within a scope (growing
//! the pool if needed) — this is how the cross-thread-count
//! bit-identity tests run 1/2/4/8 inside one process.

use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// Minimum number of `f64` elements an **elementwise** kernel must
/// touch before the parallel path is worth one pool dispatch.
///
/// Calibrated against this pool (criterion group `par_dispatch` /
/// `par_threshold` in `vqmc-bench`): a broadcast wake-up costs a few
/// microseconds, and a thread needs ≳16 KiB of streamed data for the
/// memory system, not the dispatch, to dominate.  The old rayon-era
/// value (16 * 1024) assumed a work-stealing dispatch that was never
/// actually parallel; the real pool pays a full wake/join per region,
/// so the floor doubles.
pub const PAR_THRESHOLD_ELEMS: usize = 32 * 1024;

/// Minimum `m·n·k` flop-count before a GEMM takes the parallel driver.
/// A multiply-add is ~10× the cost of a streamed load, so the floor in
/// "elements" is correspondingly lower than [`PAR_THRESHOLD_ELEMS`]'s;
/// below ~1 Mflop the pack/dispatch overhead beats the win.
pub const PAR_GEMM_MIN_FLOPS: usize = 1 << 20;

/// Hard cap on pool width (worker ids, stack arrays in reductions).
pub const MAX_THREADS: usize = 64;

/// Returns `true` when an elementwise/reduction kernel over `elems`
/// elements should take the parallel path.
#[inline]
pub fn should_parallelize(elems: usize) -> bool {
    elems >= PAR_THRESHOLD_ELEMS && active_threads() > 1
}

/// Returns `true` when a GEMM of `flops = m·n·k` multiply-adds should
/// take the parallel driver.
#[inline]
pub fn should_parallelize_gemm(flops: usize) -> bool {
    flops >= PAR_GEMM_MIN_FLOPS && active_threads() > 1
}

/// The configured pool width: `VQMC_THREADS` when set (clamped to
/// `1..=`[`MAX_THREADS`]), else the machine's available parallelism.
/// Fixed for the life of the process; cached so the hot-loop
/// `should_parallelize` check never allocates (the cgroup lookup
/// inside `available_parallelism` does).
pub fn num_threads() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        match std::env::var("VQMC_THREADS") {
            Ok(v) => v.trim().parse::<usize>().unwrap_or(1).clamp(1, MAX_THREADS),
            Err(_) => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(MAX_THREADS),
        }
    })
}

thread_local! {
    /// Per-thread width override installed by [`with_threads`];
    /// 0 = no override.
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
    /// True while this thread is executing inside a parallel region
    /// (as a pool worker, or as the caller running part 0).  Nested
    /// regions run inline.
    static IN_REGION: Cell<bool> = const { Cell::new(false) };
}

/// The width parallel regions started by *this thread* will use:
/// the [`with_threads`] override when one is active, else
/// [`num_threads`].
#[inline]
pub fn active_threads() -> usize {
    let o = OVERRIDE.with(|c| c.get());
    if o > 0 {
        o
    } else {
        num_threads()
    }
}

/// Runs `f` with parallel regions on this thread capped/widened to
/// `threads`, restoring the previous width afterwards (also on panic).
///
/// Grows the pool if `threads` exceeds the configured width — this is
/// the in-process lever the cross-thread-count bit-identity tests use
/// to compare `VQMC_THREADS ∈ {1,2,4,8}` without re-execing.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let threads = threads.clamp(1, MAX_THREADS);
    let _restore = Restore(OVERRIDE.with(|c| c.replace(threads)));
    f()
}

/// Deterministic contiguous partition of `0..len` into `parts` ranges:
/// part `w` gets `[w·q + min(w, r), …)` with `q = len / parts`,
/// `r = len % parts` — the first `r` parts are one element longer.
/// A pure function of `(len, parts, w)`; this *is* the fixed
/// chunk→worker assignment of the determinism contract.
#[inline]
pub fn stripe(len: usize, parts: usize, w: usize) -> Range<usize> {
    debug_assert!(w < parts);
    let q = len / parts;
    let r = len % parts;
    let start = w * q + w.min(r);
    let end = start + q + usize::from(w < r);
    start..end
}

/// Splits `rows` into one contiguous chunk per active worker (the
/// static-assignment analogue of the old 4-chunks-per-worker rayon
/// heuristic, which existed to feed the work-stealing scheduler slack;
/// this pool has no stealing, so extra chunks would only multiply the
/// per-chunk overhead).  Returns a chunk length in rows, at least 1.
#[inline]
pub fn row_chunk_len(rows: usize) -> usize {
    rows.div_ceil(active_threads().max(1)).max(1)
}

// ---------------------------------------------------------------------
// The pool itself.
// ---------------------------------------------------------------------

/// A borrowed parallel job: a fat pointer to the caller's closure.
/// The caller blocks in [`run`] until every participant finishes, so
/// the pointee outlives every dereference.
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync` (shared calls from many threads are
// fine) and the raw pointer is only dereferenced while the owning
// stack frame is alive (see `Job` docs).
unsafe impl Send for Job {}

struct State {
    /// Bumped once per published region; workers use it to detect work.
    epoch: u64,
    /// The active region's job, cleared when the region completes.
    job: Option<Job>,
    /// Number of participants (`parts`) of the active region.
    parts: usize,
    /// Worker participants still running (`parts - 1` at publish).
    remaining: usize,
    /// Set when a worker's part panicked (re-raised on the caller).
    panicked: bool,
    /// Worker threads spawned so far (ids `1..=spawned`).
    spawned: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Workers sleep here between regions.
    work_cv: Condvar,
    /// The caller sleeps here until `remaining == 0`.
    done_cv: Condvar,
    /// Serializes whole regions across concurrent caller threads.
    client: Mutex<()>,
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| Shared {
        state: Mutex::new(State {
            epoch: 0,
            job: None,
            parts: 0,
            remaining: 0,
            panicked: false,
            spawned: 0,
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
        client: Mutex::new(()),
    })
}

/// Ignore mutex poisoning: workers catch panics before they can poison
/// anything, and the caller's own panic is caught in [`run`]; treating
/// a (theoretically unreachable) poisoned lock as live keeps the pool
/// usable across `should_panic` tests.
fn lock(m: &Mutex<State>) -> MutexGuard<'_, State> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Dedicated worker loop: wait for a new epoch, run our part if we are
/// a participant, report completion.
fn worker_loop(shared: &'static Shared, w: usize, mut seen: u64) {
    IN_REGION.with(|c| c.set(true));
    loop {
        let (job, parts) = {
            let mut st = lock(&shared.state);
            while st.epoch == seen {
                st = shared
                    .work_cv
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
            seen = st.epoch;
            (st.job, st.parts)
        };
        let Some(job) = job else { continue };
        if w < parts {
            // SAFETY: see `Job` — the caller is blocked until we
            // decrement `remaining`, so the closure is alive.
            let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)(w) }));
            let mut st = lock(&shared.state);
            if result.is_err() {
                st.panicked = true;
            }
            st.remaining -= 1;
            if st.remaining == 0 {
                shared.done_cv.notify_all();
            }
        }
    }
}

/// Spawns workers up to id `needed` (no-op when already spawned).
/// Called under the client lock, so never concurrently and never while
/// a region is active.
fn ensure_workers(shared: &'static Shared, needed: usize) {
    let (have, epoch) = {
        let st = lock(&shared.state);
        (st.spawned, st.epoch)
    };
    for w in have + 1..=needed {
        std::thread::Builder::new()
            .name(format!("vqmc-worker-{w}"))
            .spawn(move || worker_loop(shared, w, epoch))
            .expect("vqmc par: failed to spawn pool worker");
    }
    if needed > have {
        lock(&shared.state).spawned = needed;
    }
}

/// Executes `f(0), …, f(parts-1)`, each part exactly once, distributed
/// over the pool (the caller runs part 0).  Blocks until every part
/// has finished.  Nested calls (from inside any part) run inline
/// sequentially in ascending part order — bit-identical by the module
/// contract.  Panics in any part propagate to the caller after the
/// region drains; the pool remains usable.
///
/// The dispatch itself performs no heap allocation.
pub fn run(parts: usize, f: &(dyn Fn(usize) + Sync)) {
    let parts = parts.max(1);
    if parts == 1 || IN_REGION.with(|c| c.get()) {
        for w in 0..parts {
            f(w);
        }
        return;
    }
    let shared = shared();
    let region = shared
        .client
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    ensure_workers(shared, parts - 1);

    // SAFETY: launders the closure's stack lifetime into the 'static
    // the job slot needs; `run` does not return until `remaining == 0`,
    // i.e. until no worker can still dereference it.
    let job = Job(unsafe {
        std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
            f as *const (dyn Fn(usize) + Sync),
        )
    });
    {
        let mut st = lock(&shared.state);
        st.epoch += 1;
        st.job = Some(job);
        st.parts = parts;
        st.remaining = parts - 1;
    }
    shared.work_cv.notify_all();

    IN_REGION.with(|c| c.set(true));
    let own = catch_unwind(AssertUnwindSafe(|| f(0)));
    IN_REGION.with(|c| c.set(false));

    let mut st = lock(&shared.state);
    while st.remaining > 0 {
        st = shared.done_cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    st.job = None;
    let worker_panicked = std::mem::take(&mut st.panicked);
    drop(st);
    drop(region);

    if let Err(p) = own {
        resume_unwind(p);
    }
    if worker_panicked {
        panic!("vqmc par: a pool worker panicked inside a parallel region");
    }
}

/// A raw pointer that may cross into pool workers.  Used to hand each
/// part its disjoint stripe of a `&mut` slice when the stripe geometry
/// is too irregular for [`for_each_stripe_mut`] (e.g. several parallel
/// buffers striped in lockstep).  Access goes through [`SendPtr::get`]
/// so closures capture the wrapper (which is `Sync`) rather than the
/// raw field (which is not — 2021-edition closures capture disjoint
/// fields).
///
/// Safety is the caller's burden: parts must write disjoint index sets,
/// and the pointee must outlive the [`run`] region (it always does —
/// `run` joins before returning).
#[derive(Clone, Copy)]
pub struct SendPtr<T>(pub *mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// The wrapped pointer.
    #[inline]
    pub fn get(&self) -> *mut T {
        self.0
    }
}

/// Splits `xs` into contiguous stripes whose boundaries are multiples
/// of `granularity` and runs `f(offset, stripe)` for each, in parallel
/// over the active width.  Falls back to one inline call when only one
/// stripe is warranted.  Purely a partition — any elementwise `f` is
/// bit-identical to `f(0, xs)` at every thread count.
pub fn for_each_stripe_mut<T, F>(xs: &mut [T], granularity: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = xs.len();
    let g = granularity.max(1);
    let units = len.div_ceil(g);
    let parts = active_threads().min(units).max(1);
    if parts <= 1 {
        f(0, xs);
        return;
    }
    let base = SendPtr(xs.as_mut_ptr());
    run(parts, &|w| {
        let u = stripe(units, parts, w);
        let (s, e) = ((u.start * g).min(len), (u.end * g).min(len));
        if s < e {
            // SAFETY: stripes over distinct `w` are disjoint
            // (`stripe` partitions), and `xs` outlives the region.
            let sl = unsafe { std::slice::from_raw_parts_mut(base.get().add(s), e - s) };
            f(s, sl);
        }
    });
}

/// Parallel in-place transform of an `f64` slice through a
/// slice-kernel: stripes `xs` (8-element boundaries so each part's
/// vector lanes start aligned with the sequential sweep's) and applies
/// `f` per stripe when above threshold, else once on the whole slice.
/// `f` must be elementwise for the bit-identity contract to hold —
/// every slice kernel in [`crate::simd`] is.
#[inline]
pub fn par_apply(xs: &mut [f64], f: impl Fn(&mut [f64]) + Sync) {
    if should_parallelize(xs.len()) {
        for_each_stripe_mut(xs, 8, |_, s| f(s));
    } else {
        f(xs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn small_sizes_stay_sequential() {
        assert!(!should_parallelize(0));
        assert!(!should_parallelize(PAR_THRESHOLD_ELEMS - 1));
    }

    #[test]
    fn chunk_len_is_positive_and_bounded() {
        for rows in [0usize, 1, 7, 1024, 1_000_000] {
            let c = row_chunk_len(rows);
            assert!(c >= 1);
            assert!(c <= rows.max(1));
        }
    }

    #[test]
    fn stripes_partition_exactly() {
        for len in [0usize, 1, 7, 64, 1000] {
            for parts in 1..=9 {
                let mut covered = 0;
                let mut next = 0;
                for w in 0..parts {
                    let r = stripe(len, parts, w);
                    assert_eq!(r.start, next, "len={len} parts={parts} w={w}");
                    next = r.end;
                    covered += r.len();
                }
                assert_eq!(covered, len);
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn run_executes_every_part_once() {
        for parts in [1usize, 2, 3, 8] {
            let hits: Vec<AtomicUsize> = (0..parts).map(|_| AtomicUsize::new(0)).collect();
            with_threads(parts, || {
                run(parts, &|w| {
                    hits[w].fetch_add(1, Ordering::SeqCst);
                });
            });
            for (w, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::SeqCst), 1, "part {w}");
            }
        }
    }

    #[test]
    fn nested_regions_run_inline() {
        let outer: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        with_threads(4, || {
            run(4, &|w| {
                // Nested region from inside a part: must not deadlock,
                // must execute all its parts on this thread.
                let inner = AtomicUsize::new(0);
                run(4, &|_| {
                    inner.fetch_add(1, Ordering::SeqCst);
                });
                assert_eq!(inner.load(Ordering::SeqCst), 4);
                outer[w].fetch_add(1, Ordering::SeqCst);
            });
        });
        assert!(outer.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn for_each_stripe_mut_covers_all_elements() {
        let mut xs = vec![0u32; 10_007];
        with_threads(4, || {
            for_each_stripe_mut(&mut xs, 8, |off, s| {
                for (i, v) in s.iter_mut().enumerate() {
                    *v = (off + i) as u32;
                }
            });
        });
        for (i, &v) in xs.iter().enumerate() {
            assert_eq!(v as usize, i);
        }
    }

    #[test]
    fn with_threads_restores_on_exit() {
        let before = active_threads();
        with_threads(7, || assert_eq!(active_threads(), 7));
        assert_eq!(active_threads(), before);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let res = std::panic::catch_unwind(|| {
            with_threads(4, || {
                run(4, &|w| {
                    if w == 2 {
                        panic!("boom");
                    }
                });
            });
        });
        assert!(res.is_err());
        // Pool still functional after the panic.
        let count = AtomicUsize::new(0);
        with_threads(4, || {
            run(4, &|_| {
                count.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn caller_panic_propagates_and_pool_survives() {
        let res = std::panic::catch_unwind(|| {
            with_threads(2, || {
                run(2, &|w| {
                    if w == 0 {
                        panic!("caller part boom");
                    }
                });
            });
        });
        assert!(res.is_err());
        let count = AtomicUsize::new(0);
        with_threads(2, || {
            run(2, &|_| {
                count.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }
}
