//! Parallelism policy shared by the kernels in this crate.
//!
//! Rayon's overhead per `par_iter` dispatch is on the order of a few
//! microseconds; kernels touching fewer elements than
//! [`PAR_THRESHOLD_ELEMS`] run their sequential twin instead.  The
//! threshold is deliberately a compile-time constant (not a runtime knob)
//! so that the branch is free; the `bench_tensor` criterion group in
//! `vqmc-bench` sweeps it empirically.

/// Minimum number of `f64` elements a kernel must touch before the
/// parallel code path is worth its scheduling overhead.
pub const PAR_THRESHOLD_ELEMS: usize = 16 * 1024;

/// Returns `true` when a kernel over `elems` elements should take the
/// rayon code path.
#[inline]
pub fn should_parallelize(elems: usize) -> bool {
    elems >= PAR_THRESHOLD_ELEMS && rayon::current_num_threads() > 1
}

/// Splits `rows` rows into chunk sizes that give each rayon worker a few
/// chunks to steal, without descending into per-row tasks.
///
/// Returns a chunk length in rows, at least 1.
#[inline]
pub fn row_chunk_len(rows: usize) -> usize {
    let workers = rayon::current_num_threads().max(1);
    // Four chunks per worker gives the scheduler slack for imbalance
    // while keeping task-creation overhead negligible.
    (rows / (4 * workers)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sizes_stay_sequential() {
        assert!(!should_parallelize(0));
        assert!(!should_parallelize(PAR_THRESHOLD_ELEMS - 1));
    }

    #[test]
    fn chunk_len_is_positive() {
        for rows in [0usize, 1, 7, 1024, 1_000_000] {
            assert!(row_chunk_len(rows) >= 1);
        }
    }

    #[test]
    fn chunk_len_bounded_by_rows_for_large_inputs() {
        let rows = 1_000_000;
        assert!(row_chunk_len(rows) <= rows);
    }
}
