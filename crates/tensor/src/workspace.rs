//! A scratch-buffer pool for allocation-free steady-state loops.
//!
//! The training loop runs the same sequence of kernels every iteration,
//! so the sequence of scratch-buffer checkouts is identical from one
//! iteration to the next.  [`Workspace`] exploits that: `take` pops the
//! most recently returned buffer (LIFO) and resizes it, `give` returns
//! it.  Because the checkout order is deterministic, each call site gets
//! the *same* buffer every iteration — after the first (warm-up)
//! iteration every buffer has the right capacity and no heap allocation
//! happens again.
//!
//! Buffers move in and out as owned `Vec<f64>`s so they compose with
//! [`Matrix::from_vec`] / [`Matrix::into_vec`] (both allocation-free)
//! without any lifetime plumbing.

use crate::{Matrix, Vector};

/// A LIFO pool of reusable `f64` buffers.
#[derive(Default, Debug)]
pub struct Workspace {
    pool: Vec<Vec<f64>>,
}

impl Workspace {
    /// An empty pool; buffers are created on first checkout.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Checks out a zeroed buffer of length `len`.  Allocation-free once
    /// this call site's buffer is warm (see module docs).
    pub fn take(&mut self, len: usize) -> Vec<f64> {
        let mut buf = self.pool.pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Checks out a zeroed `rows x cols` matrix.
    pub fn take_matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.take(rows * cols))
    }

    /// Checks out a zeroed vector of length `len`.
    pub fn take_vector(&mut self, len: usize) -> Vector {
        Vector(self.take(len))
    }

    /// Returns a buffer to the pool for reuse.
    pub fn give(&mut self, buf: Vec<f64>) {
        self.pool.push(buf);
    }

    /// Returns a matrix's buffer to the pool.
    pub fn give_matrix(&mut self, m: Matrix) {
        self.give(m.into_vec());
    }

    /// Returns a vector's buffer to the pool.
    pub fn give_vector(&mut self, v: Vector) {
        self.give(v.into_vec());
    }

    /// Number of buffers currently parked in the pool.
    pub fn parked(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_buffers() {
        let mut ws = Workspace::new();
        let mut buf = ws.take(4);
        buf.iter().for_each(|&v| assert_eq!(v, 0.0));
        buf[2] = 7.0;
        ws.give(buf);
        // Dirty buffer comes back zeroed.
        let buf = ws.take(4);
        assert!(buf.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn steady_state_reuses_capacity() {
        let mut ws = Workspace::new();
        // Warm-up checkout establishes capacity...
        let buf = ws.take(100);
        let ptr = buf.as_ptr();
        ws.give(buf);
        // ...and the same-size checkout reuses the same storage.
        let buf = ws.take(100);
        assert_eq!(buf.as_ptr(), ptr);
        ws.give(buf);
        // Smaller checkouts also reuse it.
        let buf = ws.take(10);
        assert_eq!(buf.as_ptr(), ptr);
    }

    #[test]
    fn matrix_and_vector_checkout_roundtrip() {
        let mut ws = Workspace::new();
        let m = ws.take_matrix(3, 4);
        assert_eq!(m.shape(), (3, 4));
        ws.give_matrix(m);
        assert_eq!(ws.parked(), 1);
        let v = ws.take_vector(12);
        assert_eq!(v.len(), 12);
        ws.give_vector(v);
        assert_eq!(ws.parked(), 1);
    }

    #[test]
    fn lifo_discipline_matches_callsites() {
        let mut ws = Workspace::new();
        let a = ws.take(8);
        let b = ws.take(16);
        ws.give(b);
        ws.give(a);
        // Next take pops the last returned (a's storage).
        let again = ws.take(8);
        assert_eq!(again.capacity(), 8);
    }
}
