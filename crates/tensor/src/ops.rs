//! Numerically stable elementwise activations and their derivatives.
//!
//! These are the nonlinearities of the paper's two architectures:
//! `ReLU`/`Sigmoid` for MADE and `ln cosh` for the RBM's hidden units
//! (its `Lncoshsum` block).  Each function documents its stable
//! formulation; the derivative twins are consumed by the analytic
//! backprop in `vqmc-nn` and cross-checked against `vqmc-autodiff`.
//!
//! The `*_slice` variants are the hot entry points (MADE conditionals,
//! RBM `ln cosh` rows, local-energy ratio batches) and route through
//! the runtime-dispatched kernels in [`crate::simd`]: AVX2+FMA
//! vectorised transcendentals when the host supports them, the portable
//! scalar twins otherwise.  Both arms agree bit-for-bit; they agree
//! with the scalar functions here to ≤ 2 ULP (the scalar fns keep the
//! libm formulations, the kernels use the vendored `exp`/`log1p`
//! cores — see the `crate::simd` module docs for the exact contract).

/// Rectified linear unit `max(0, x)`.
#[inline]
pub fn relu(x: f64) -> f64 {
    if x > 0.0 {
        x
    } else {
        0.0
    }
}

/// Derivative of [`relu`]; the subgradient at 0 is taken to be 0, matching
/// the convention of mainstream autodiff frameworks.
#[inline]
pub fn relu_prime(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Logistic sigmoid `1 / (1 + e^{-x})`, computed without overflow for
/// any finite `x` by branching on the sign.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        let z = (-x).exp();
        1.0 / (1.0 + z)
    } else {
        let z = x.exp();
        z / (1.0 + z)
    }
}

/// Derivative of [`sigmoid`] expressed through its value:
/// `σ'(x) = σ(x)(1 - σ(x))`.
#[inline]
pub fn sigmoid_prime_from_value(s: f64) -> f64 {
    s * (1.0 - s)
}

/// `ln cosh(x)`, stable for large `|x|` via
/// `ln cosh(x) = |x| + ln(1 + e^{-2|x|}) - ln 2`.
///
/// The naive `x.cosh().ln()` overflows at `|x| ≈ 710`; RBM pre-activations
/// routinely exceed that on 10 000-spin problems.
#[inline]
pub fn ln_cosh(x: f64) -> f64 {
    let a = x.abs();
    a + (-2.0 * a).exp().ln_1p() - std::f64::consts::LN_2
}

/// Derivative of [`ln_cosh`]: `tanh(x)`.
#[inline]
pub fn ln_cosh_prime(x: f64) -> f64 {
    x.tanh()
}

/// `ln(1 + e^x)` (softplus), stable in both tails.
#[inline]
pub fn softplus(x: f64) -> f64 {
    if x > 0.0 {
        x + (-x).exp().ln_1p()
    } else {
        x.exp().ln_1p()
    }
}

/// Log of the sigmoid, `ln σ(x) = -softplus(-x)`, stable where the naive
/// `sigmoid(x).ln()` underflows to `-inf` (x ≲ -745).
///
/// MADE's log-probability of a conditional is exactly this quantity, so
/// its stability bounds the stability of the whole wavefunction.
#[inline]
pub fn log_sigmoid(x: f64) -> f64 {
    -softplus(-x)
}

/// Log of the complementary sigmoid, `ln(1 - σ(x)) = ln σ(-x)`.
#[inline]
pub fn log_one_minus_sigmoid(x: f64) -> f64 {
    log_sigmoid(-x)
}

/// Applies [`relu`] over a slice in place.  (A plain loop: the branch
/// auto-vectorises to `maxpd`, so no dispatched kernel is needed.)
/// Striped over the pool above the size threshold; elementwise, so
/// bit-identical at any thread count — as are all `*_slice` entry
/// points below.
pub fn relu_slice(xs: &mut [f64]) {
    crate::par::par_apply(xs, |s| {
        for x in s {
            *x = relu(*x);
        }
    });
}

/// Applies [`sigmoid`] over a slice in place (dispatched kernel).
pub fn sigmoid_slice(xs: &mut [f64]) {
    crate::par::par_apply(xs, crate::simd::kernels().sigmoid_slice)
}

/// Applies [`ln_cosh`] over a slice in place (dispatched kernel).
pub fn ln_cosh_slice(xs: &mut [f64]) {
    crate::par::par_apply(xs, crate::simd::kernels().ln_cosh_slice)
}

/// Applies [`log_sigmoid`] over a slice in place (dispatched kernel).
pub fn log_sigmoid_slice(xs: &mut [f64]) {
    crate::par::par_apply(xs, crate::simd::kernels().log_sigmoid_slice)
}

/// Applies `tanh` over a slice in place (dispatched kernel).
pub fn tanh_slice(xs: &mut [f64]) {
    crate::par::par_apply(xs, crate::simd::kernels().tanh_slice)
}

/// Applies `e^x` over a slice in place (dispatched kernel).
pub fn exp_slice(xs: &mut [f64]) {
    crate::par::par_apply(xs, crate::simd::kernels().exp_slice)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn relu_basics() {
        assert_eq!(relu(3.0), 3.0);
        assert_eq!(relu(-3.0), 0.0);
        assert_eq!(relu(0.0), 0.0);
        assert_eq!(relu_prime(2.0), 1.0);
        assert_eq!(relu_prime(-2.0), 0.0);
    }

    #[test]
    fn sigmoid_symmetry_and_range() {
        for &x in &[-50.0, -3.0, -0.5, 0.0, 0.5, 3.0, 50.0] {
            let s = sigmoid(x);
            assert!((0.0..=1.0).contains(&s));
            assert!(approx_eq(s + sigmoid(-x), 1.0, 1e-12));
        }
        assert!(approx_eq(sigmoid(0.0), 0.5, 1e-15));
    }

    #[test]
    fn sigmoid_extreme_inputs_do_not_overflow() {
        assert_eq!(sigmoid(1e4), 1.0);
        assert_eq!(sigmoid(-1e4), 0.0);
        assert!(sigmoid(f64::MAX).is_finite());
        assert!(sigmoid(f64::MIN).is_finite());
    }

    #[test]
    fn ln_cosh_matches_naive_in_safe_range() {
        for &x in &[-5.0, -1.0, -0.1, 0.0, 0.1, 1.0, 5.0, 20.0] {
            assert!(
                approx_eq(ln_cosh(x), x.cosh().ln(), 1e-12),
                "x={x}: {} vs {}",
                ln_cosh(x),
                x.cosh().ln()
            );
        }
    }

    #[test]
    fn ln_cosh_stable_for_huge_inputs() {
        // cosh(1e5) overflows; ln cosh(x) -> |x| - ln 2.
        let x = 1e5;
        assert!(approx_eq(ln_cosh(x), x - std::f64::consts::LN_2, 1e-12));
        assert!(approx_eq(ln_cosh(-x), x - std::f64::consts::LN_2, 1e-12));
    }

    #[test]
    fn ln_cosh_even_function() {
        for &x in &[0.3, 1.7, 42.0] {
            assert!(approx_eq(ln_cosh(x), ln_cosh(-x), 1e-14));
        }
    }

    #[test]
    fn log_sigmoid_matches_naive_in_safe_range() {
        for &x in &[-20.0, -1.0, 0.0, 1.0, 20.0] {
            assert!(approx_eq(log_sigmoid(x), sigmoid(x).ln(), 1e-10));
            assert!(approx_eq(
                log_one_minus_sigmoid(x),
                (1.0 - sigmoid(x)).ln(),
                1e-8
            ));
        }
    }

    #[test]
    fn log_sigmoid_stable_deep_in_tail() {
        // sigmoid(-800) underflows to 0, naive ln gives -inf; stable form
        // gives approximately -800.
        let v = log_sigmoid(-800.0);
        assert!(v.is_finite());
        assert!(approx_eq(v, -800.0, 1e-12));
    }

    #[test]
    fn derivative_identities_numerically() {
        let h = 1e-6;
        for &x in &[-2.0, -0.3, 0.7, 3.1] {
            let ds = (sigmoid(x + h) - sigmoid(x - h)) / (2.0 * h);
            assert!(approx_eq(ds, sigmoid_prime_from_value(sigmoid(x)), 1e-6));
            let dl = (ln_cosh(x + h) - ln_cosh(x - h)) / (2.0 * h);
            assert!(approx_eq(dl, ln_cosh_prime(x), 1e-6));
        }
    }

    #[test]
    fn slice_variants_match_scalar() {
        // The dispatched slice kernels use the vendored exp/log1p cores,
        // so they match the libm-based scalar functions to a couple of
        // ULP rather than bit-for-bit (the exact contract is in the
        // crate::simd docs and property-tested in tests/simd_proptests).
        let xs = [-800.0, -2.0, -0.5, 0.0, 0.5, 2.0, 800.0];
        let mut r = xs;
        relu_slice(&mut r);
        let mut s = xs;
        sigmoid_slice(&mut s);
        let mut l = xs;
        ln_cosh_slice(&mut l);
        let mut g = xs;
        log_sigmoid_slice(&mut g);
        let mut t = xs;
        tanh_slice(&mut t);
        let mut e = xs;
        exp_slice(&mut e);
        for i in 0..xs.len() {
            assert_eq!(r[i], relu(xs[i]));
            assert!(approx_eq(s[i], sigmoid(xs[i]), 1e-14), "sigmoid {i}");
            assert!(approx_eq(l[i], ln_cosh(xs[i]), 1e-14), "ln_cosh {i}");
            assert!(approx_eq(g[i], log_sigmoid(xs[i]), 1e-14), "log_sigmoid {i}");
            assert!(approx_eq(t[i], xs[i].tanh(), 1e-14), "tanh {i}");
            // exp(800) overflows to +inf on both sides; approx_eq can't
            // compare infinities, so accept exact equality there.
            assert!(
                e[i] == xs[i].exp() || approx_eq(e[i], xs[i].exp(), 1e-13),
                "exp {i}"
            );
        }
    }
}
