//! Row-major dense matrix with shape-checked arithmetic.
//!
//! The GEMM kernels themselves live in [`crate::gemm`]; this module owns
//! the container type and the convenience methods the rest of the
//! workspace uses (row views, bias broadcast, outer-product accumulation,
//! matrix-vector products).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::gemm;
use crate::vector::Vector;

/// A dense row-major `rows x cols` matrix of `f64`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a generating function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Wraps an existing row-major buffer; `data.len()` must equal
    /// `rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: buffer is {} elements, shape wants {}",
            data.len(),
            rows * cols
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix whose rows are the given equal-length slices.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "Matrix::from_rows: no rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        Matrix::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of the full row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the full row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        let start = r * self.cols;
        &self.data[start..start + self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        let start = r * self.cols;
        &mut self.data[start..start + self.cols]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols)
    }

    /// Column `c` copied into a new [`Vector`].
    pub fn col(&self, c: usize) -> Vector {
        assert!(c < self.cols);
        Vector::from_fn(self.rows, |r| self.get(r, c))
    }

    /// Reshapes in place to `rows x cols`, reusing the existing buffer
    /// when its capacity suffices (no allocation at steady state).
    /// Entries are **unspecified** afterwards; every `_into` kernel
    /// overwrites its output in full.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Copies `other` into `self`, reshaping as needed (allocation-free
    /// once the buffer is warm).
    pub fn copy_from(&mut self, other: &Matrix) {
        self.resize(other.rows, other.cols);
        self.data.copy_from_slice(&other.data);
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        self.transpose_into(&mut out);
        out
    }

    /// [`Matrix::transpose`] into a caller-owned matrix (reshaped in
    /// place).
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.resize(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
    }

    /// Matrix-vector product `A x`.
    pub fn matvec(&self, x: &Vector) -> Vector {
        let mut out = Vector::zeros(self.rows);
        self.matvec_into(x, &mut out);
        out
    }

    /// [`Matrix::matvec`] into a caller-owned vector (resized in place).
    pub fn matvec_into(&self, x: &Vector, out: &mut Vector) {
        assert_eq!(
            self.cols,
            x.len(),
            "matvec: A is {}x{}, x has length {}",
            self.rows,
            self.cols,
            x.len()
        );
        out.resize(self.rows);
        for r in 0..self.rows {
            out[r] = crate::vector::dot(self.row(r), x);
        }
    }

    /// Transposed matrix-vector product `A^T x`.
    pub fn matvec_t(&self, x: &Vector) -> Vector {
        let mut out = Vector::zeros(self.cols);
        self.matvec_t_into(x, &mut out);
        out
    }

    /// [`Matrix::matvec_t`] into a caller-owned vector (resized in
    /// place).
    pub fn matvec_t_into(&self, x: &Vector, out: &mut Vector) {
        assert_eq!(
            self.rows,
            x.len(),
            "matvec_t: A is {}x{}, x has length {}",
            self.rows,
            self.cols,
            x.len()
        );
        out.resize(self.cols);
        out.fill(0.0);
        for r in 0..self.rows {
            crate::vector::axpy(out, x[r], self.row(r));
        }
    }

    /// `C = A * B` where `self` is `m x k` and `b` is `k x n`.
    pub fn matmul_nn(&self, b: &Matrix) -> Matrix {
        gemm::gemm_nn(self, b)
    }

    /// [`Matrix::matmul_nn`] into a caller-owned output (reshaped in
    /// place).
    pub fn matmul_nn_into(&self, b: &Matrix, out: &mut Matrix) {
        gemm::gemm_nn_into(self, b, out);
    }

    /// `C = A * B^T` where `self` is `m x k` and `b` is `n x k`.
    ///
    /// This is the layout used by every fully-connected layer forward pass
    /// in `vqmc-nn` (`Y[bs,h] = X[bs,n] * W[h,n]^T`): both operands are
    /// traversed row-major, which is the cache-friendly direction.
    pub fn matmul_nt(&self, b: &Matrix) -> Matrix {
        gemm::gemm_nt(self, b)
    }

    /// [`Matrix::matmul_nt`] into a caller-owned output (reshaped in
    /// place).
    pub fn matmul_nt_into(&self, b: &Matrix, out: &mut Matrix) {
        gemm::gemm_nt_into(self, b, out);
    }

    /// `C = A^T * B` where `self` is `k x m` and `b` is `k x n`.
    ///
    /// Layout of the weight-gradient accumulation in backprop
    /// (`dW[h,n] = dY[bs,h]^T * X[bs,n]`).
    pub fn matmul_tn(&self, b: &Matrix) -> Matrix {
        gemm::gemm_tn(self, b)
    }

    /// [`Matrix::matmul_tn`] into a caller-owned output (reshaped in
    /// place).
    pub fn matmul_tn_into(&self, b: &Matrix, out: &mut Matrix) {
        gemm::gemm_tn_into(self, b, out);
    }

    /// Adds `bias` (length `cols`) to every row in place.
    pub fn add_row_bias(&mut self, bias: &Vector) {
        assert_eq!(bias.len(), self.cols, "add_row_bias: bias length mismatch");
        for row in self.data.chunks_exact_mut(self.cols) {
            for (v, b) in row.iter_mut().zip(bias.iter()) {
                *v += b;
            }
        }
    }

    /// Accumulates the outer product `self += alpha * x * y^T`.
    pub fn add_outer(&mut self, alpha: f64, x: &[f64], y: &[f64]) {
        assert_eq!(x.len(), self.rows, "add_outer: x length mismatch");
        assert_eq!(y.len(), self.cols, "add_outer: y length mismatch");
        for (r, &xr) in x.iter().enumerate() {
            let coeff = alpha * xr;
            if coeff != 0.0 {
                crate::vector::axpy(self.row_mut(r), coeff, y);
            }
        }
    }

    /// Elementwise in-place scale.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// `self += alpha * other`, elementwise.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "Matrix::axpy: shape mismatch");
        crate::vector::axpy(&mut self.data, alpha, &other.data);
    }

    /// Elementwise product in place (`self *= mask`), used to enforce
    /// MADE's autoregressive masks on weights and weight gradients.
    pub fn hadamard_inplace(&mut self, mask: &Matrix) {
        assert_eq!(
            self.shape(),
            mask.shape(),
            "hadamard_inplace: shape mismatch"
        );
        for (v, m) in self.data.iter_mut().zip(&mask.data) {
            *v *= m;
        }
    }

    /// Applies `f` elementwise in place (striped over the pool above
    /// the size threshold; bit-identical at any thread count).
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64 + Sync) {
        crate::par::par_apply(&mut self.data, |s| {
            for v in s {
                *v = f(*v);
            }
        });
    }

    /// Returns a new matrix with `f` applied elementwise.
    pub fn map(&self, f: impl Fn(f64) -> f64 + Sync) -> Matrix {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        crate::vector::dot(&self.data, &self.data).sqrt()
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        crate::reduce::sum(&self.data)
    }

    /// Fill with a constant.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// True when every entry is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Maximum absolute deviation from `other` (test helper).
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Default for Matrix {
    /// An empty `0 x 0` matrix — the natural initial state for scratch
    /// buffers that are `resize`d by the first `_into` call.
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(6);
        for r in 0..show_rows {
            let row = self.row(r);
            if self.cols <= 8 {
                writeln!(f, "  {row:?}")?;
            } else {
                writeln!(f, "  [{:?}, ...]", &row[..4])?;
            }
        }
        if self.rows > show_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn shape_and_access() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1).as_slice(), &[2.0, 5.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn matvec_matches_manual() {
        let m = sample();
        let x = Vector(vec![1.0, 0.0, -1.0]);
        assert_eq!(m.matvec(&x).as_slice(), &[-2.0, -2.0]);
        let y = Vector(vec![1.0, 1.0]);
        assert_eq!(m.matvec_t(&y).as_slice(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let m = sample();
        let i3 = Matrix::identity(3);
        assert_eq!(m.matmul_nn(&i3), m);
    }

    #[test]
    fn bias_broadcast() {
        let mut m = Matrix::zeros(2, 3);
        m.add_row_bias(&Vector(vec![1.0, 2.0, 3.0]));
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn outer_product_accumulation() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(2.0, &[1.0, 3.0], &[4.0, 5.0]);
        assert_eq!(m.row(0), &[8.0, 10.0]);
        assert_eq!(m.row(1), &[24.0, 30.0]);
    }

    #[test]
    fn hadamard_masks_entries() {
        let mut m = sample();
        let mask = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);
        m.hadamard_inplace(&mask);
        assert_eq!(m.row(0), &[1.0, 0.0, 3.0]);
        assert_eq!(m.row(1), &[0.0, 5.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "shape")]
    fn axpy_shape_mismatch_panics() {
        let mut a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        a.axpy(1.0, &b);
    }

    #[test]
    fn frobenius() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(m.frobenius_norm(), 5.0);
    }
}
