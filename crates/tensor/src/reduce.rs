//! Reductions over slices: sums, moments, extrema, log-sum-exp and the
//! covariance-style weighted accumulations the VQMC estimators need.
//!
//! `sum`, `mean`, `variance` and `log_sum_exp` use **pairwise
//! (cascade) summation**: the slice is split recursively in half down
//! to a [`PAIRWISE_BASE`]-element base case, which is handled by the
//! dispatched lane-striped kernel ([`crate::simd`]).  Pairwise halving
//! bounds the rounding error at `O(ε log n)` versus `O(ε n)` for a
//! running sum — on the 10⁵-sample energy estimators this is the
//! difference between keeping and losing the last ~2 digits when the
//! local energies nearly cancel (property-tested against a Neumaier
//! compensated reference in `tests/reduce_proptests.rs`).  The
//! association order is fully determined by the slice length, never by
//! thread count or backend (both dispatch arms reduce bit-identically).

use rayon::prelude::*;

use crate::par;
use crate::simd;

/// Base-case width of the pairwise recursion: small enough that the
/// base sum's own `O(ε·base)` error stays negligible, large enough
/// that the striped SIMD kernel dominates the runtime.
const PAIRWISE_BASE: usize = 128;

/// Sum of a slice (pairwise; see module docs).  The parallel path sums
/// fixed-size chunks and then the chunk partials, so its association
/// order is deterministic for a given length (independent of thread
/// count) — important for the distributed trainer's replica-consistency
/// test.
pub fn sum(xs: &[f64]) -> f64 {
    if par::should_parallelize(xs.len()) {
        xs.par_chunks(4096).map(sum_seq).collect::<Vec<_>>().iter().sum()
    } else {
        sum_seq(xs)
    }
}

#[inline]
fn sum_seq(xs: &[f64]) -> f64 {
    if xs.len() <= PAIRWISE_BASE {
        (simd::kernels().sum)(xs)
    } else {
        let mid = xs.len() / 2;
        sum_seq(&xs[..mid]) + sum_seq(&xs[mid..])
    }
}

/// Pairwise `Σ (x_i - m)²` over dispatched base blocks.
#[inline]
fn sq_dev_seq(xs: &[f64], m: f64) -> f64 {
    if xs.len() <= PAIRWISE_BASE {
        (simd::kernels().sq_dev_sum)(xs, m)
    } else {
        let mid = xs.len() / 2;
        sq_dev_seq(&xs[..mid], m) + sq_dev_seq(&xs[mid..], m)
    }
}

/// Pairwise `Σ e^{x_i - shift}` over dispatched base blocks.
#[inline]
fn sum_exp_seq(xs: &[f64], shift: f64) -> f64 {
    if xs.len() <= PAIRWISE_BASE {
        (simd::kernels().sum_exp_shifted)(xs, shift)
    } else {
        let mid = xs.len() / 2;
        sum_exp_seq(&xs[..mid], shift) + sum_exp_seq(&xs[mid..], shift)
    }
}

/// Arithmetic mean; panics on an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    sum(xs) / xs.len() as f64
}

/// Population variance (divides by `n`), computed in two passes for
/// numerical robustness, the squared-deviation pass pairwise over
/// dispatched base blocks.  Panics on an empty slice.
///
/// This is the estimator of the paper's Eq. 4: the variance of the local
/// energy, which vanishes exactly at eigenvectors.
pub fn variance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    let ss = if par::should_parallelize(xs.len()) {
        xs.par_chunks(4096).map(|c| sq_dev_seq(c, m)).sum()
    } else {
        sq_dev_seq(xs, m)
    };
    ss / xs.len() as f64
}

/// Standard deviation (square root of the population [`variance`]).
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Maximum element; panics on an empty slice. `NaN`s are ignored unless
/// every element is `NaN`.
pub fn max(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "max of empty slice");
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Minimum element; panics on an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "min of empty slice");
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Index of the maximum element (first occurrence).
pub fn argmax(xs: &[f64]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// `ln Σ e^{x_i}`, shifted by the maximum for stability.
///
/// Used when normalising wavefunction amplitudes over explicitly
/// enumerated bases (the exact-diagonalisation oracle) and in the
/// sampler exactness tests.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "log_sum_exp of empty slice");
    let m = max(xs);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    // Shifted exponentials through the dispatched kernel (vectorised
    // vendored exp), pairwise-accumulated like every other reduction.
    let s = sum_exp_seq(xs, m);
    m + s.ln()
}

/// Weighted mean `Σ w_i x_i / Σ w_i`; panics if the weights sum to zero.
pub fn weighted_mean(xs: &[f64], ws: &[f64]) -> f64 {
    assert_eq!(xs.len(), ws.len(), "weighted_mean: length mismatch");
    let wsum = sum(ws);
    assert!(wsum != 0.0, "weighted_mean: zero total weight");
    let dot = crate::vector::dot(xs, ws);
    dot / wsum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn sum_and_mean() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(sum(&xs), 15.0);
        assert_eq!(mean(&xs), 3.0);
    }

    #[test]
    fn sum_parallel_matches_sequential() {
        let xs: Vec<f64> = (0..100_000).map(|i| (i as f64 * 0.1).sin()).collect();
        assert!(approx_eq(sum(&xs), sum_seq(&xs), 1e-10));
    }

    #[test]
    fn variance_of_constant_is_zero() {
        let xs = [2.5; 100];
        assert_eq!(variance(&xs), 0.0);
        assert_eq!(std_dev(&xs), 0.0);
    }

    #[test]
    fn variance_known_value() {
        // var([1,2,3,4]) = 1.25 (population).
        assert!(approx_eq(variance(&[1.0, 2.0, 3.0, 4.0]), 1.25, 1e-14));
    }

    #[test]
    fn extrema() {
        let xs = [3.0, -1.0, 4.0, -1.5, 2.0];
        assert_eq!(max(&xs), 4.0);
        assert_eq!(min(&xs), -1.5);
        assert_eq!(argmax(&xs), 2);
    }

    #[test]
    fn log_sum_exp_stability() {
        // Naive would overflow: e^1000.
        let xs = [1000.0, 1000.0];
        assert!(approx_eq(
            log_sum_exp(&xs),
            1000.0 + std::f64::consts::LN_2,
            1e-12
        ));
        // All -inf stays -inf.
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }

    #[test]
    fn log_sum_exp_matches_naive_small() {
        let xs = [0.1f64, -0.3, 0.7];
        let naive: f64 = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!(approx_eq(log_sum_exp(&xs), naive, 1e-12));
    }

    #[test]
    fn weighted_mean_uniform_weights_is_mean() {
        let xs = [1.0, 2.0, 3.0];
        let ws = [1.0, 1.0, 1.0];
        assert!(approx_eq(weighted_mean(&xs, &ws), 2.0, 1e-14));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn mean_empty_panics() {
        let _ = mean(&[]);
    }
}
