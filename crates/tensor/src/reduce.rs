//! Reductions over slices: sums, moments, extrema, log-sum-exp and the
//! covariance-style weighted accumulations the VQMC estimators need.
//!
//! `sum`, `mean`, `variance` and `log_sum_exp` use **pairwise
//! (cascade) summation**: the slice is split recursively in half down
//! to a [`PAIRWISE_BASE`]-element base case, which is handled by the
//! dispatched lane-striped kernel ([`crate::simd`]).  Pairwise halving
//! bounds the rounding error at `O(ε log n)` versus `O(ε n)` for a
//! running sum — on the 10⁵-sample energy estimators this is the
//! difference between keeping and losing the last ~2 digits when the
//! local energies nearly cancel (property-tested against a Neumaier
//! compensated reference in `tests/reduce_proptests.rs`).
//!
//! **Determinism:** the association order is fully determined by the
//! slice length — never by thread count or backend.  The parallel path
//! does not invent its own chunking: it evaluates the top of the *same*
//! pairwise tree — the subtrees at a bounded depth become leaves, their
//! values are computed concurrently into a stack array, and the
//! combination replays the identical split recursion sequentially.
//! Because the sequential recursion below the cut is byte-for-byte the
//! same computation, `sum(xs)` is bit-identical at every
//! `VQMC_THREADS`, including 1 (tested in `tests/thread_identity.rs`).

use crate::par;
use crate::simd;

/// Base-case width of the pairwise recursion: small enough that the
/// base sum's own `O(ε·base)` error stays negligible, large enough
/// that the striped SIMD kernel dominates the runtime.
const PAIRWISE_BASE: usize = 128;

/// Maximum number of parallel leaves (bounds the recursion cut depth
/// and the stack arrays; 64 leaves keep ≥ 4 chunks per worker at the
/// pool's maximum width without ever allocating).
const MAX_LEAVES: usize = 64;

/// Evaluates the pairwise tree of `base` over `xs` with its top
/// `depth_budget` levels parallelised.  The split predicate — recurse
/// while `len > PAIRWISE_BASE` *and* budget remains — is mirrored
/// exactly by the sequential `*_seq` twins (which keep splitting at the
/// same midpoints below the cut), so the value is independent of both
/// the budget and the thread count.
fn pairwise_par(xs: &[f64], base: &(dyn Fn(&[f64]) -> f64 + Sync)) -> f64 {
    let parts = par::active_threads().min(MAX_LEAVES);
    // Enough leaves for ~4 per worker, capped by MAX_LEAVES and by the
    // tree's own depth (never split below PAIRWISE_BASE).
    let mut depth = 0u32;
    while (1usize << depth) < 4 * parts
        && (1usize << depth) < MAX_LEAVES
        && (xs.len() >> depth) > PAIRWISE_BASE
    {
        depth += 1;
    }

    // Collect the leaf ranges of the budgeted recursion, in order.
    let mut bounds = [(0usize, 0usize); MAX_LEAVES];
    let mut count = 0usize;
    fn collect(
        a: usize,
        b: usize,
        depth: u32,
        bounds: &mut [(usize, usize); MAX_LEAVES],
        count: &mut usize,
    ) {
        if b - a <= PAIRWISE_BASE || depth == 0 {
            bounds[*count] = (a, b);
            *count += 1;
        } else {
            let mid = a + (b - a) / 2;
            collect(a, mid, depth - 1, bounds, count);
            collect(mid, b, depth - 1, bounds, count);
        }
    }
    collect(0, xs.len(), depth, &mut bounds, &mut count);

    // Leaves in parallel (static contiguous leaf→worker assignment),
    // partials into a stack array — no heap allocation.
    let mut partials = [0.0f64; MAX_LEAVES];
    let pp = par::SendPtr(partials.as_mut_ptr());
    let workers = parts.min(count);
    par::run(workers, &|w| {
        for li in par::stripe(count, workers, w) {
            let (a, b) = bounds[li];
            // SAFETY: each leaf index is owned by exactly one part.
            unsafe { *pp.get().add(li) = base(&xs[a..b]) };
        }
    });

    // Replay the identical recursion to combine, consuming leaves in
    // order — this is the canonical (sequential) association.
    fn combine(a: usize, b: usize, depth: u32, cursor: &mut usize, partials: &[f64]) -> f64 {
        if b - a <= PAIRWISE_BASE || depth == 0 {
            let v = partials[*cursor];
            *cursor += 1;
            v
        } else {
            let mid = a + (b - a) / 2;
            let left = combine(a, mid, depth - 1, cursor, partials);
            let right = combine(mid, b, depth - 1, cursor, partials);
            left + right
        }
    }
    let mut cursor = 0;
    combine(0, xs.len(), depth, &mut cursor, &partials)
}

/// Sum of a slice (pairwise; see module docs).  Bit-identical at every
/// thread count — the parallel path evaluates the same tree.
pub fn sum(xs: &[f64]) -> f64 {
    if par::should_parallelize(xs.len()) {
        pairwise_par(xs, &sum_seq)
    } else {
        sum_seq(xs)
    }
}

fn sum_seq(xs: &[f64]) -> f64 {
    if xs.len() <= PAIRWISE_BASE {
        (simd::kernels().sum)(xs)
    } else {
        let mid = xs.len() / 2;
        sum_seq(&xs[..mid]) + sum_seq(&xs[mid..])
    }
}

/// Pairwise `Σ (x_i - m)²` over dispatched base blocks.
fn sq_dev_seq(xs: &[f64], m: f64) -> f64 {
    if xs.len() <= PAIRWISE_BASE {
        (simd::kernels().sq_dev_sum)(xs, m)
    } else {
        let mid = xs.len() / 2;
        sq_dev_seq(&xs[..mid], m) + sq_dev_seq(&xs[mid..], m)
    }
}

/// Pairwise `Σ e^{x_i - shift}` over dispatched base blocks.
fn sum_exp_seq(xs: &[f64], shift: f64) -> f64 {
    if xs.len() <= PAIRWISE_BASE {
        (simd::kernels().sum_exp_shifted)(xs, shift)
    } else {
        let mid = xs.len() / 2;
        sum_exp_seq(&xs[..mid], shift) + sum_exp_seq(&xs[mid..], shift)
    }
}

/// Arithmetic mean; panics on an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    sum(xs) / xs.len() as f64
}

/// Population variance (divides by `n`), computed in two passes for
/// numerical robustness, the squared-deviation pass pairwise over
/// dispatched base blocks.  Panics on an empty slice.
///
/// This is the estimator of the paper's Eq. 4: the variance of the local
/// energy, which vanishes exactly at eigenvectors.
pub fn variance(xs: &[f64]) -> f64 {
    let m = mean(xs);
    let ss = if par::should_parallelize(xs.len()) {
        pairwise_par(xs, &|c| sq_dev_seq(c, m))
    } else {
        sq_dev_seq(xs, m)
    };
    ss / xs.len() as f64
}

/// Standard deviation (square root of the population [`variance`]).
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Maximum element; panics on an empty slice. `NaN`s are ignored unless
/// every element is `NaN`.
pub fn max(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "max of empty slice");
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Minimum element; panics on an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "min of empty slice");
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Index of the maximum element (first occurrence).
pub fn argmax(xs: &[f64]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

/// `ln Σ e^{x_i}`, shifted by the maximum for stability.
///
/// Used when normalising wavefunction amplitudes over explicitly
/// enumerated bases (the exact-diagonalisation oracle) and in the
/// sampler exactness tests.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "log_sum_exp of empty slice");
    let m = max(xs);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    // Shifted exponentials through the dispatched kernel (vectorised
    // vendored exp), pairwise-accumulated like every other reduction —
    // and parallelised over the same tree (exp dominates the cost).
    let s = if par::should_parallelize(xs.len()) {
        pairwise_par(xs, &|c| sum_exp_seq(c, m))
    } else {
        sum_exp_seq(xs, m)
    };
    m + s.ln()
}

/// Weighted mean `Σ w_i x_i / Σ w_i`; panics if the weights sum to zero.
pub fn weighted_mean(xs: &[f64], ws: &[f64]) -> f64 {
    assert_eq!(xs.len(), ws.len(), "weighted_mean: length mismatch");
    let wsum = sum(ws);
    assert!(wsum != 0.0, "weighted_mean: zero total weight");
    let dot = crate::vector::dot(xs, ws);
    dot / wsum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn sum_and_mean() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(sum(&xs), 15.0);
        assert_eq!(mean(&xs), 3.0);
    }

    #[test]
    fn sum_parallel_bit_identical_to_sequential() {
        let xs: Vec<f64> = (0..100_000).map(|i| (i as f64 * 0.1).sin()).collect();
        let seq = sum_seq(&xs);
        for threads in [1usize, 2, 3, 4, 8] {
            let par_val = par::with_threads(threads, || sum(&xs));
            assert_eq!(
                par_val.to_bits(),
                seq.to_bits(),
                "threads={threads}: {par_val} vs {seq}"
            );
        }
    }

    #[test]
    fn variance_parallel_bit_identical_to_sequential() {
        let xs: Vec<f64> = (0..70_001).map(|i| (i as f64 * 0.31).cos()).collect();
        let seq = par::with_threads(1, || variance(&xs));
        for threads in [2usize, 4, 8] {
            let par_val = par::with_threads(threads, || variance(&xs));
            assert_eq!(par_val.to_bits(), seq.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn variance_of_constant_is_zero() {
        let xs = [2.5; 100];
        assert_eq!(variance(&xs), 0.0);
        assert_eq!(std_dev(&xs), 0.0);
    }

    #[test]
    fn variance_known_value() {
        // var([1,2,3,4]) = 1.25 (population).
        assert!(approx_eq(variance(&[1.0, 2.0, 3.0, 4.0]), 1.25, 1e-14));
    }

    #[test]
    fn extrema() {
        let xs = [3.0, -1.0, 4.0, -1.5, 2.0];
        assert_eq!(max(&xs), 4.0);
        assert_eq!(min(&xs), -1.5);
        assert_eq!(argmax(&xs), 2);
    }

    #[test]
    fn log_sum_exp_stability() {
        // Naive would overflow: e^1000.
        let xs = [1000.0, 1000.0];
        assert!(approx_eq(
            log_sum_exp(&xs),
            1000.0 + std::f64::consts::LN_2,
            1e-12
        ));
        // All -inf stays -inf.
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }

    #[test]
    fn log_sum_exp_matches_naive_small() {
        let xs = [0.1f64, -0.3, 0.7];
        let naive: f64 = xs.iter().map(|x| x.exp()).sum::<f64>().ln();
        assert!(approx_eq(log_sum_exp(&xs), naive, 1e-12));
    }

    #[test]
    fn weighted_mean_uniform_weights_is_mean() {
        let xs = [1.0, 2.0, 3.0];
        let ws = [1.0, 1.0, 1.0];
        assert!(approx_eq(weighted_mean(&xs, &ws), 2.0, 1e-14));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn mean_empty_panics() {
        let _ = mean(&[]);
    }
}
