//! Batches of binary spin configurations.
//!
//! A [`SpinBatch`] is the container every subsystem exchanges: samplers
//! produce them, Hamiltonians evaluate local energies on them, and
//! wavefunctions take them as network input.  Spins are stored as
//! `u8 ∈ {0, 1}` (one byte per spin keeps a 1024 x 10 000 batch at 10 MB);
//! the Ising convention `σ = 1 - 2x ∈ {+1, -1}` from the paper's Eq. 13
//! is applied on conversion.

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// A dense `batch_size x num_spins` array of binary spins.
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpinBatch {
    batch_size: usize,
    num_spins: usize,
    data: Vec<u8>,
}

impl SpinBatch {
    /// All-zero batch.
    pub fn zeros(batch_size: usize, num_spins: usize) -> Self {
        SpinBatch {
            batch_size,
            num_spins,
            data: vec![0; batch_size * num_spins],
        }
    }

    /// Builds a batch from a generating function of `(sample, spin)`.
    /// The function must return 0 or 1.
    pub fn from_fn(
        batch_size: usize,
        num_spins: usize,
        mut f: impl FnMut(usize, usize) -> u8,
    ) -> Self {
        let mut data = Vec::with_capacity(batch_size * num_spins);
        for s in 0..batch_size {
            for i in 0..num_spins {
                let bit = f(s, i);
                debug_assert!(bit <= 1, "SpinBatch entries must be 0 or 1");
                data.push(bit);
            }
        }
        SpinBatch {
            batch_size,
            num_spins,
            data,
        }
    }

    /// Builds a batch from a contiguous row-major byte slice (one byte
    /// per spin, values 0 or 1).  Bulk copy — the fast path for wire
    /// decode, where `from_fn`'s per-element closure is measurable at
    /// serving batch sizes.
    pub fn from_bytes(batch_size: usize, num_spins: usize, bytes: &[u8]) -> Self {
        assert_eq!(
            bytes.len(),
            batch_size * num_spins,
            "SpinBatch::from_bytes: length mismatch"
        );
        debug_assert!(
            bytes.iter().all(|&b| b <= 1),
            "SpinBatch entries must be 0 or 1"
        );
        SpinBatch {
            batch_size,
            num_spins,
            data: bytes.to_vec(),
        }
    }

    /// Fallible twin of [`SpinBatch::from_bytes`] for **untrusted**
    /// input — the wire-decode path.  Dimension overflow, length
    /// mismatch and out-of-`{0, 1}` bytes are `Err`s, never panics
    /// (and unlike `from_bytes`, the value check runs in release
    /// builds too), so a malformed frame can only fail its own
    /// request, not the worker that decodes it.
    pub fn try_from_bytes(
        batch_size: usize,
        num_spins: usize,
        bytes: &[u8],
    ) -> Result<Self, String> {
        let len = batch_size
            .checked_mul(num_spins)
            .ok_or_else(|| "batch dimensions overflow".to_string())?;
        if bytes.len() != len {
            return Err(format!(
                "expected {len} spin bytes ({batch_size}\u{d7}{num_spins}), got {}",
                bytes.len()
            ));
        }
        if let Some(&bad) = bytes.iter().find(|&&b| b > 1) {
            return Err(format!("spin bytes must be 0 or 1, got {bad}"));
        }
        Ok(SpinBatch {
            batch_size,
            num_spins,
            data: bytes.to_vec(),
        })
    }

    /// Builds a single-sample batch from a configuration slice.
    pub fn from_single(config: &[u8]) -> Self {
        SpinBatch::from_bytes(1, config.len(), config)
    }

    /// Concatenates batches with identical `num_spins` along the batch
    /// axis (used to gather per-device samples on the virtual cluster).
    pub fn concat(batches: &[SpinBatch]) -> Self {
        assert!(!batches.is_empty(), "SpinBatch::concat: nothing to concat");
        let num_spins = batches[0].num_spins;
        let total: usize = batches.iter().map(|b| b.batch_size).sum();
        let mut data = Vec::with_capacity(total * num_spins);
        for b in batches {
            assert_eq!(
                b.num_spins, num_spins,
                "SpinBatch::concat: spin-count mismatch"
            );
            data.extend_from_slice(&b.data);
        }
        SpinBatch {
            batch_size: total,
            num_spins,
            data,
        }
    }

    /// Reshapes in place to `batch_size x num_spins`, reusing the
    /// existing buffer when capacity suffices (no allocation at steady
    /// state).  Entries are **unspecified** afterwards; callers must
    /// overwrite every bit they read.
    pub fn resize(&mut self, batch_size: usize, num_spins: usize) {
        self.batch_size = batch_size;
        self.num_spins = num_spins;
        self.data.resize(batch_size * num_spins, 0);
    }

    /// Copies `other` into `self`, reshaping as needed (allocation-free
    /// once the buffer is warm).
    pub fn copy_from(&mut self, other: &SpinBatch) {
        self.resize(other.batch_size, other.num_spins);
        self.data.copy_from_slice(&other.data);
    }

    /// Number of samples in the batch.
    #[inline]
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of spins per sample.
    #[inline]
    pub fn num_spins(&self) -> usize {
        self.num_spins
    }

    /// Borrow of sample `s` as a slice of bits.
    #[inline]
    pub fn sample(&self, s: usize) -> &[u8] {
        let start = s * self.num_spins;
        &self.data[start..start + self.num_spins]
    }

    /// Mutable borrow of sample `s`.
    #[inline]
    pub fn sample_mut(&mut self, s: usize) -> &mut [u8] {
        let start = s * self.num_spins;
        &mut self.data[start..start + self.num_spins]
    }

    /// Iterator over sample slices.
    pub fn samples(&self) -> impl Iterator<Item = &[u8]> {
        self.data.chunks_exact(self.num_spins)
    }

    /// Fills every spin with `bit` (0 or 1).
    pub fn fill(&mut self, bit: u8) {
        debug_assert!(bit <= 1);
        self.data.fill(bit);
    }

    /// Bit accessor.
    #[inline]
    pub fn get(&self, s: usize, i: usize) -> u8 {
        self.data[s * self.num_spins + i]
    }

    /// Bit mutator (`bit` must be 0 or 1).
    #[inline]
    pub fn set(&mut self, s: usize, i: usize, bit: u8) {
        debug_assert!(bit <= 1);
        self.data[s * self.num_spins + i] = bit;
    }

    /// Flips spin `i` of sample `s`.
    #[inline]
    pub fn flip(&mut self, s: usize, i: usize) {
        let idx = s * self.num_spins + i;
        self.data[idx] ^= 1;
    }

    /// Converts the batch to an `f64` matrix with entries in `{0, 1}`
    /// (network-input convention).
    pub fn to_matrix(&self) -> Matrix {
        let mut out = Matrix::zeros(self.batch_size, self.num_spins);
        self.to_matrix_into(&mut out);
        out
    }

    /// [`SpinBatch::to_matrix`] into a caller-owned matrix (reshaped in
    /// place).
    pub fn to_matrix_into(&self, out: &mut Matrix) {
        out.resize(self.batch_size, self.num_spins);
        for (v, &b) in out.as_mut_slice().iter_mut().zip(&self.data) {
            *v = b as f64;
        }
    }

    /// Converts to the Ising convention `σ = 1 - 2x ∈ {+1, -1}` (Eq. 13).
    pub fn to_ising_matrix(&self) -> Matrix {
        let mut out = Matrix::zeros(self.batch_size, self.num_spins);
        self.to_ising_matrix_into(&mut out);
        out
    }

    /// [`SpinBatch::to_ising_matrix`] into a caller-owned matrix
    /// (reshaped in place).
    pub fn to_ising_matrix_into(&self, out: &mut Matrix) {
        out.resize(self.batch_size, self.num_spins);
        for (v, &b) in out.as_mut_slice().iter_mut().zip(&self.data) {
            *v = 1.0 - 2.0 * b as f64;
        }
    }

    /// Copies the sample rows `src` into `dst` (reshaped to
    /// `src.len() × num_spins`) as one contiguous memcpy — the bulk form
    /// of per-row `sample_mut(..).copy_from_slice(..)` scatter loops,
    /// used when a coalesced batch is split back into per-request
    /// replies.
    pub fn copy_rows_into(&self, src: std::ops::Range<usize>, dst: &mut SpinBatch) {
        assert!(
            src.start <= src.end && src.end <= self.batch_size,
            "copy_rows_into: row range {src:?} out of bounds (batch {})",
            self.batch_size
        );
        let rows = src.len();
        dst.resize(rows, self.num_spins);
        let start = src.start * self.num_spins;
        dst.data
            .copy_from_slice(&self.data[start..start + rows * self.num_spins]);
    }

    /// Raw byte view (for hashing / dedup in tests).
    pub fn as_bytes(&self) -> &[u8] {
        &self.data
    }

    /// Raw mutable byte view, row-major (`batch_size · num_spins`).
    /// Exists for bulk writers — the batched sampler's transpose and the
    /// local-energy neighbour builder stripe disjoint row ranges of this
    /// across the worker pool.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Encodes a spin configuration as a basis-state index, most significant
/// bit first: `x = 2^{n-1} x_1 + ... + 2^0 x_n` as in the paper's §2.4.
///
/// Panics if `config.len() > 63`.
pub fn encode_config(config: &[u8]) -> usize {
    assert!(
        config.len() <= 63,
        "encode_config: index would overflow usize"
    );
    config
        .iter()
        .fold(0usize, |acc, &b| (acc << 1) | (b as usize))
}

/// Inverse of [`encode_config`]: expands index `x` into `n` bits, most
/// significant first.
pub fn decode_config(x: usize, n: usize) -> Vec<u8> {
    assert!(n <= 63, "decode_config: more than 63 spins");
    assert!(x < (1usize << n), "decode_config: index out of range");
    (0..n).map(|i| ((x >> (n - 1 - i)) & 1) as u8).collect()
}

/// Enumerates all `2^n` configurations as a batch (ascending index
/// order).  Only sensible for small `n`; used by exactness tests and the
/// exact-diagonalisation oracle.
pub fn enumerate_configs(n: usize) -> SpinBatch {
    assert!(n <= 24, "enumerate_configs: 2^n would be enormous");
    let total = 1usize << n;
    SpinBatch::from_fn(total, n, |s, i| ((s >> (n - 1 - i)) & 1) as u8)
}

impl Default for SpinBatch {
    /// An empty `0 x 0` batch — the natural initial state for scratch
    /// buffers that are `resize`d by the first `_into` call.
    fn default() -> Self {
        SpinBatch::zeros(0, 0)
    }
}

impl std::fmt::Debug for SpinBatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SpinBatch(bs={}, n={})",
            self.batch_size, self.num_spins
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut b = SpinBatch::zeros(2, 3);
        assert_eq!(b.batch_size(), 2);
        assert_eq!(b.num_spins(), 3);
        b.set(1, 2, 1);
        assert_eq!(b.get(1, 2), 1);
        b.flip(1, 2);
        assert_eq!(b.get(1, 2), 0);
        b.flip(0, 0);
        assert_eq!(b.sample(0), &[1, 0, 0]);
    }

    #[test]
    fn codec_round_trip() {
        for n in 1..=10 {
            for x in 0..(1usize << n) {
                assert_eq!(encode_config(&decode_config(x, n)), x);
            }
        }
    }

    #[test]
    fn codec_msb_first_convention() {
        // x = [1, 0] should be index 2 = 2^1*1 + 2^0*0.
        assert_eq!(encode_config(&[1, 0]), 2);
        assert_eq!(decode_config(2, 2), vec![1, 0]);
    }

    #[test]
    fn enumerate_covers_all_states_once() {
        let n = 4;
        let all = enumerate_configs(n);
        assert_eq!(all.batch_size(), 16);
        for (s, config) in all.samples().enumerate() {
            assert_eq!(encode_config(config), s);
        }
    }

    #[test]
    fn ising_conversion() {
        let b = SpinBatch::from_single(&[0, 1]);
        let m = b.to_ising_matrix();
        assert_eq!(m.row(0), &[1.0, -1.0]);
        let m01 = b.to_matrix();
        assert_eq!(m01.row(0), &[0.0, 1.0]);
    }

    #[test]
    fn concat_stacks_samples() {
        let a = SpinBatch::from_single(&[0, 1]);
        let b = SpinBatch::from_single(&[1, 1]);
        let c = SpinBatch::concat(&[a, b]);
        assert_eq!(c.batch_size(), 2);
        assert_eq!(c.sample(0), &[0, 1]);
        assert_eq!(c.sample(1), &[1, 1]);
    }

    #[test]
    fn copy_rows_into_extracts_contiguous_rows() {
        let b = SpinBatch::from_fn(5, 3, |s, i| (((s + 1) * (i + 2)) % 2) as u8);
        let mut dst = SpinBatch::default();
        b.copy_rows_into(1..4, &mut dst);
        assert_eq!(dst.batch_size(), 3);
        assert_eq!(dst.num_spins(), 3);
        for s in 0..3 {
            assert_eq!(dst.sample(s), b.sample(1 + s));
        }
        // Empty range is legal and yields an empty batch.
        b.copy_rows_into(2..2, &mut dst);
        assert_eq!(dst.batch_size(), 0);
    }

    #[test]
    fn try_from_bytes_validates_untrusted_input() {
        // Well-formed input round-trips.
        let ok = SpinBatch::try_from_bytes(2, 3, &[0, 1, 1, 0, 0, 1]).unwrap();
        assert_eq!(ok, SpinBatch::from_bytes(2, 3, &[0, 1, 1, 0, 0, 1]));
        // Length mismatch.
        assert!(SpinBatch::try_from_bytes(2, 3, &[0, 1]).is_err());
        // Out-of-range spin byte (checked in release builds too).
        assert!(SpinBatch::try_from_bytes(1, 3, &[0, 2, 1]).is_err());
        // Dimension overflow.
        assert!(SpinBatch::try_from_bytes(usize::MAX, 2, &[]).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn copy_rows_into_rejects_out_of_range() {
        let b = SpinBatch::zeros(2, 3);
        let mut dst = SpinBatch::default();
        b.copy_rows_into(1..3, &mut dst);
    }

    #[test]
    #[should_panic(expected = "spin-count mismatch")]
    fn concat_rejects_ragged() {
        let a = SpinBatch::zeros(1, 2);
        let b = SpinBatch::zeros(1, 3);
        let _ = SpinBatch::concat(&[a, b]);
    }
}
