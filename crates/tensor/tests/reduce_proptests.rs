//! Property tests for the pairwise (cascade) reductions in
//! `vqmc_tensor::reduce`, against a Neumaier (improved Kahan)
//! compensated-summation reference on adversarially conditioned inputs.
//!
//! The generator builds slices dominated by cancellation: huge
//! near-opposite pairs, magnitudes spanning ~30 decades, and signs that
//! leave the true sum many orders of magnitude below `Σ|x|`.  On such
//! inputs a naive running sum loses `O(ε·n·Σ|x|)`; the pairwise scheme
//! must stay within `O(ε·(base + log₂ n)·Σ|x|)` of the compensated
//! reference.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vqmc_tensor::reduce;

/// Neumaier compensated sum: running sum plus a separately carried
/// correction term, immune to the `|next| > |sum|` failure of classic
/// Kahan.  Error is `O(ε)` relative to the true sum — the reference.
fn neumaier_sum(xs: &[f64]) -> f64 {
    let mut s = 0.0f64;
    let mut c = 0.0f64;
    for &x in xs {
        let t = s + x;
        c += if s.abs() >= x.abs() {
            (s - t) + x
        } else {
            (x - t) + s
        };
        s = t;
    }
    s + c
}

/// Adversarial cancellation input: mixes unit-scale values, huge
/// near-cancelling ± pairs (magnitude up to 10¹⁴), and tiny values that
/// a naive sum would absorb entirely into rounding.
fn cancellation_input(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(len + 1);
    while xs.len() < len {
        match rng.gen_range(0..4u32) {
            0 => {
                let big = rng.gen_range(1e10..1e14) * if rng.gen::<bool>() { 1.0 } else { -1.0 };
                xs.push(big);
                // Near-opposite partner, slightly perturbed so the pair
                // leaves a small residual rather than cancelling exactly.
                xs.push(-big * (1.0 + 1e-13 * rng.gen_range(-1.0..1.0)));
            }
            1 => xs.push(rng.gen_range(-1e-8..1e-8)),
            _ => xs.push(rng.gen_range(-1.0..1.0)),
        }
    }
    xs.truncate(len);
    xs
}

/// Pairwise-summation error bound relative to the compensated
/// reference: `ε · (base + log₂ n + C) · Σ|x|` with slack for the
/// base-case lane accumulation.
fn pairwise_tolerance(xs: &[f64]) -> f64 {
    let sum_abs: f64 = xs.iter().map(|x| x.abs()).sum();
    let log2n = (xs.len().max(2) as f64).log2();
    f64::EPSILON * (160.0 + 4.0 * log2n) * sum_abs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `reduce::sum` stays within the pairwise error bound of the
    /// Neumaier reference on cancellation-dominated inputs (a naive
    /// running sum violates this bound on the same inputs).
    #[test]
    fn sum_matches_compensated_reference(len in 1usize..3000, seed in 0u64..100_000) {
        let xs = cancellation_input(len, seed);
        let got = reduce::sum(&xs);
        let want = neumaier_sum(&xs);
        let tol = pairwise_tolerance(&xs);
        prop_assert!(
            (got - want).abs() <= tol,
            "n={len}: pairwise {got:e} vs compensated {want:e} (|Δ|={:e} > tol {:e})",
            (got - want).abs(), tol
        );
    }

    /// `mean` inherits the bound (it is `sum / n`).
    #[test]
    fn mean_matches_compensated_reference(len in 1usize..3000, seed in 0u64..100_000) {
        let xs = cancellation_input(len, seed);
        let got = reduce::mean(&xs);
        let want = neumaier_sum(&xs) / len as f64;
        prop_assert!((got - want).abs() <= pairwise_tolerance(&xs) / len as f64);
    }

    /// Two-pass `variance` with a pairwise squared-deviation pass stays
    /// within the analogous bound of a fully compensated two-pass
    /// reference.  (Squared deviations are non-negative, so `Σ|x|` of
    /// the second pass is the sum itself — the bound is relative.)
    #[test]
    fn variance_matches_compensated_reference(len in 1usize..3000, seed in 0u64..100_000) {
        let xs = cancellation_input(len, seed);
        let got = reduce::variance(&xs);
        // Reference: compensated mean, then compensated Σ(x−m)².
        let m = neumaier_sum(&xs) / len as f64;
        let sq: Vec<f64> = xs.iter().map(|&x| (x - m) * (x - m)).collect();
        let want = neumaier_sum(&sq) / len as f64;
        // The dominant error is forming (x − m)² at magnitude max|x−m|²,
        // identical in both implementations; the summation error bound
        // is relative to the (non-negative) sum of squares.
        let tol = f64::EPSILON * (160.0 + 4.0 * (len.max(2) as f64).log2()) * want.max(1e-300)
            + 1e-12 * want;
        prop_assert!(
            (got - want).abs() <= tol,
            "n={len}: variance {got:e} vs {want:e}"
        );
    }

    /// `log_sum_exp` through the vectorised shifted-exp kernel matches
    /// a compensated max-shift reference to relative precision.
    #[test]
    fn log_sum_exp_matches_compensated_reference(len in 1usize..3000, seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x10F);
        let xs: Vec<f64> = (0..len).map(|_| rng.gen_range(-400.0..400.0)).collect();
        let got = reduce::log_sum_exp(&xs);
        let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = xs.iter().map(|&x| (x - m).exp()).collect();
        let want = m + neumaier_sum(&exps).ln();
        prop_assert!(
            (got - want).abs() <= 1e-12 * (1.0 + want.abs()),
            "n={len}: {got} vs {want}"
        );
    }
}

/// A fixed worst case making the *motivation* concrete: the classic
/// `[1, 1e16, −1e16, …]` pattern where a naive running sum returns 0.
#[test]
fn pairwise_survives_classic_cancellation_pattern() {
    // Pairs (1e16, −1e16) interleaved with 1.0: true sum = count of 1s.
    let mut xs = Vec::new();
    for _ in 0..512 {
        xs.push(1.0);
        xs.push(1e16);
        xs.push(-1e16);
    }
    let got = reduce::sum(&xs);
    let want = neumaier_sum(&xs);
    // Both must agree within the pairwise bound; and the compensated
    // reference recovers the exact value.
    assert_eq!(want, 512.0);
    assert!(
        (got - want).abs() <= pairwise_tolerance(&xs),
        "pairwise sum {got} too far from {want}"
    );
}
