//! Property tests for the `_into` kernel family (proptest).
//!
//! Two invariant classes, over randomised shapes that deliberately
//! include empty dimensions and non-multiples of the microkernel tile
//! (`MR`/`NR`) and cache blocks (`KC`/`NC`):
//!
//! 1. **Blocked vs. naive** — the register-blocked GEMM loop nest
//!    reassociates the `k`-sum, so it is compared against the
//!    triple-loop [`gemm_reference`] with a `≤ 1e-12` relative
//!    tolerance.
//! 2. **`_into` vs. allocating** — each `_into` kernel is the
//!    implementation its allocating twin wraps, so starting from a
//!    dirty, wrong-shaped output buffer it must reproduce the
//!    allocating result **bit-identically**.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vqmc_tensor::gemm::{self, gemm_reference, KC, MR, NC, NR};
use vqmc_tensor::{Matrix, SpinBatch, Vector, Workspace};

/// Uniform(-1, 1) matrix from a seed.
fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

fn rand_vector(n: usize, seed: u64) -> Vector {
    let mut rng = StdRng::seed_from_u64(seed);
    Vector::from_fn(n, |_| rng.gen_range(-1.0..1.0))
}

/// A dirty, wrong-shaped output buffer: `_into` kernels must fully
/// overwrite it regardless of its prior shape or contents.
fn dirty(seed: u64) -> Matrix {
    rand_matrix(3, 5, seed ^ 0xD1127)
}

/// `|a - b| ≤ tol · scale`, elementwise, where `scale` grows with the
/// inner-product length so the bound is relative to the accumulation.
fn assert_close(got: &Matrix, want: &Matrix, k: usize, label: &str) {
    assert_eq!(got.shape(), want.shape(), "{label}: shape");
    let scale = 1.0 + k as f64;
    let diff = got.max_abs_diff(want);
    assert!(
        diff <= 1e-12 * scale,
        "{label}: max |Δ| = {diff:e} over tolerance {:e}",
        1e-12 * scale
    );
}

/// Maps a raw usize draw onto a shape that oscillates around the tile
/// boundaries: 0, 1, tile−1, tile, tile+1, … plus free values.
fn near(tile: usize, raw: usize) -> usize {
    match raw % 8 {
        0 => 0,
        1 => 1,
        2 => tile.saturating_sub(1),
        3 => tile,
        4 => tile + 1,
        5 => 2 * tile + 3,
        _ => raw % (2 * tile + 7),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Blocked `gemm_nt` equals the naive triple loop for any shape,
    /// including empty and non-tile-multiple dimensions.
    #[test]
    fn gemm_nt_matches_reference(mr in 0usize..64, nr in 0usize..64, kr in 0usize..512, seed in 0u64..1000) {
        let (m, n, k) = (near(MR, mr), near(NR, nr), near(KC, kr));
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(n, k, seed ^ 0xB);
        let got = gemm::gemm_nt(&a, &b);
        let want = gemm_reference(&a, &b.transpose());
        assert_close(&got, &want, k, "gemm_nt");
    }

    /// `gemm_nt` across the `NC` B-row block boundary (the L2 loop).
    #[test]
    fn gemm_nt_matches_reference_at_nc_block(m in 0usize..12, nr in 0usize..64, k in 0usize..40, seed in 0u64..1000) {
        let n = near(NC, nr);
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(n, k, seed ^ 0xC);
        assert_close(&gemm::gemm_nt(&a, &b), &gemm_reference(&a, &b.transpose()), k, "gemm_nt@NC");
    }

    /// `gemm_nn` equals the naive triple loop.
    #[test]
    fn gemm_nn_matches_reference(m in 0usize..40, n in 0usize..40, k in 0usize..40, seed in 0u64..1000) {
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(k, n, seed ^ 0xD);
        assert_close(&gemm::gemm_nn(&a, &b), &gemm_reference(&a, &b), k, "gemm_nn");
    }

    /// `gemm_tn` equals the naive triple loop.
    #[test]
    fn gemm_tn_matches_reference(m in 0usize..40, n in 0usize..40, k in 0usize..40, seed in 0u64..1000) {
        let a = rand_matrix(k, m, seed);
        let b = rand_matrix(k, n, seed ^ 0xE);
        assert_close(&gemm::gemm_tn(&a, &b), &gemm_reference(&a.transpose(), &b), k, "gemm_tn");
    }

    /// Every GEMM `_into` variant writing a dirty, wrong-shaped buffer
    /// is bit-identical to its allocating twin.
    #[test]
    fn gemm_into_bit_identical(m in 0usize..24, n in 0usize..24, k in 0usize..24, seed in 0u64..1000) {
        let a = rand_matrix(m, k, seed);
        let b_nt = rand_matrix(n, k, seed ^ 0x1);
        let b_nn = rand_matrix(k, n, seed ^ 0x2);
        let a_tn = rand_matrix(k, m, seed ^ 0x3);

        let mut c = dirty(seed);
        gemm::gemm_nt_into(&a, &b_nt, &mut c);
        prop_assert!(c == gemm::gemm_nt(&a, &b_nt), "gemm_nt_into");

        let mut c = dirty(seed ^ 0x10);
        gemm::gemm_nn_into(&a, &b_nn, &mut c);
        prop_assert!(c == gemm::gemm_nn(&a, &b_nn), "gemm_nn_into");

        let mut c = dirty(seed ^ 0x20);
        gemm::gemm_tn_into(&a_tn, &b_nn, &mut c);
        prop_assert!(c == gemm::gemm_tn(&a_tn, &b_nn), "gemm_tn_into");
    }

    /// Matrix-vector and transpose `_into` kernels are bit-identical to
    /// their allocating twins on dirty outputs.
    #[test]
    fn matvec_and_transpose_into_bit_identical(m in 0usize..24, n in 0usize..24, seed in 0u64..1000) {
        let a = rand_matrix(m, n, seed);
        let x = rand_vector(n, seed ^ 0x4);
        let y = rand_vector(m, seed ^ 0x5);

        let mut out = rand_vector(7, seed ^ 0x6);
        a.matvec_into(&x, &mut out);
        prop_assert!(out == a.matvec(&x), "matvec_into");

        let mut out = rand_vector(7, seed ^ 0x7);
        a.matvec_t_into(&y, &mut out);
        prop_assert!(out == a.matvec_t(&y), "matvec_t_into");

        let mut out = dirty(seed ^ 0x8);
        a.transpose_into(&mut out);
        prop_assert!(out == a.transpose(), "transpose_into");
    }

    /// Spin-batch lowering `_into` kernels are bit-identical to their
    /// allocating twins on dirty outputs.
    #[test]
    fn batch_lowering_into_bit_identical(bs in 0usize..24, n in 1usize..16, seed in 0u64..1000) {
        let batch = SpinBatch::from_fn(bs, n, |s, i| {
            ((s.wrapping_mul(31) ^ i.wrapping_mul(17) ^ seed as usize) % 2) as u8
        });
        let mut out = dirty(seed ^ 0x9);
        batch.to_matrix_into(&mut out);
        prop_assert!(out == batch.to_matrix(), "to_matrix_into");

        let mut out = dirty(seed ^ 0xA);
        batch.to_ising_matrix_into(&mut out);
        prop_assert!(out == batch.to_ising_matrix(), "to_ising_matrix_into");
    }

    /// Workspace-pooled checkouts do not change kernel results: running
    /// a GEMM into a pool buffer that previously held other (dirty)
    /// data matches the allocating kernel bit-for-bit.
    #[test]
    fn pooled_buffers_do_not_leak_state(m in 0usize..16, n in 0usize..16, k in 0usize..16, seed in 0u64..1000) {
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(n, k, seed ^ 0xF);
        let mut ws = Workspace::new();
        // Park a dirty buffer, then check it out as the GEMM output.
        ws.give(rand_vector(37, seed ^ 0x11).into_vec());
        let mut c = ws.take_matrix(0, 0);
        gemm::gemm_nt_into(&a, &b, &mut c);
        prop_assert!(c == gemm::gemm_nt(&a, &b), "pooled gemm_nt_into");
        ws.give_matrix(c);
        prop_assert_eq!(ws.parked(), 1);
    }
}

/// The pool-parallel code path — shapes crossing the GEMM FLOP gate,
/// run at several thread counts via `par::with_threads` — agrees with
/// the naive reference too.  Deterministic shapes straddling tile
/// boundaries; not a proptest so the expensive cases run once.
#[test]
fn parallel_paths_match_reference() {
    for &(m, n, k) in &[
        (MR * 33 + 1, NR * 13 + 2, 29),
        (130, NC + 5, KC + 3),
        (2 * NC, 2 * MR, 601),
    ] {
        let a = rand_matrix(m, k, 77);
        let b = rand_matrix(n, k, 78);
        let b_nn = rand_matrix(k, n, 79);
        let a_tn = rand_matrix(k, m, 80);
        let seq = vqmc_tensor::par::with_threads(1, || {
            (
                gemm::gemm_nt(&a, &b),
                gemm::gemm_nn(&a, &b_nn),
                gemm::gemm_tn(&a_tn, &b_nn),
            )
        });
        assert_close(&seq.0, &gemm_reference(&a, &b.transpose()), k, "par gemm_nt");
        assert_close(&seq.1, &gemm_reference(&a, &b_nn), k, "par gemm_nn");
        assert_close(&seq.2, &gemm_reference(&a_tn.transpose(), &b_nn), k, "par gemm_tn");
        for threads in [2, 4] {
            let par = vqmc_tensor::par::with_threads(threads, || {
                (
                    gemm::gemm_nt(&a, &b),
                    gemm::gemm_nn(&a, &b_nn),
                    gemm::gemm_tn(&a_tn, &b_nn),
                )
            });
            assert!(par.0 == seq.0, "gemm_nt t={threads} ({m},{n},{k})");
            assert!(par.1 == seq.1, "gemm_nn t={threads} ({m},{n},{k})");
            assert!(par.2 == seq.2, "gemm_tn t={threads} ({m},{n},{k})");
        }
    }
}
