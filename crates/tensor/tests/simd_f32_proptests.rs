//! Property tests for the **f32** kernel table (`simd::KernelsF32`).
//!
//! Two invariant classes, mirroring `simd_proptests.rs`:
//!
//! 1. **Cross-arm bit-identity within the f32 precision** — the
//!    portable, AVX2 and AVX-512 f32 arms share stripe layout
//!    (`LANES_F32` = 8), FMA placement and the widened combine tree,
//!    so they must agree bit-for-bit on every kernel, including the
//!    `sample_step_cols` activation *panel* (the masked update uses
//!    select semantics in every arm, so masked-off lanes keep their
//!    stored bits exactly).
//! 2. **Bounded agreement with f64** — the f32 arm's contract against
//!    the f64 reference is an error *bound*, never bits.  The bounds
//!    asserted here are the documented ones (DESIGN.md "Precision"):
//!    `O(k·ε₃₂)`-style dot bounds for reductions and GEMM, and a
//!    widen→f64-kernel→narrow route for transcendentals that is exact
//!    up to the final rounding.
//!
//! Cross-arm cases degenerate to trivially-true when the host lacks
//! the vector features (the accessors return `None`).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vqmc_tensor::gemm32::{self, KC, MR, NR};
use vqmc_tensor::simd::{self, KernelsF32};

/// Asserts two f32 slices are bitwise identical (NaN ≡ NaN).
fn assert_bits_eq32(got: &[f32], want: &[f32], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits() || (g.is_nan() && w.is_nan()),
            "{label}[{i}]: {g:?} != {w:?}"
        );
    }
}

fn assert_bits_eq64(got: &[f64], want: &[f64], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits() || (g.is_nan() && w.is_nan()),
            "{label}[{i}]: {g:?} != {w:?}"
        );
    }
}

fn rand_f32(len: usize, seed: u64, lo: f64, hi: f64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(lo..hi) as f32).collect()
}

fn run_slice_kernel(k: &KernelsF32, which: usize, xs: &mut [f32]) {
    match which {
        0 => (k.sigmoid_slice)(xs),
        1 => (k.log_sigmoid_slice)(xs),
        2 => (k.ln_cosh_slice)(xs),
        _ => (k.exp_slice)(xs),
    }
}

const KERNEL_NAMES: [&str; 4] = ["sigmoid", "log_sigmoid", "ln_cosh", "exp"];

/// The vector f32 tables that exist on this host, labelled.
fn vector_arms() -> Vec<(&'static str, &'static KernelsF32)> {
    let mut arms = Vec::new();
    if let Some(t) = simd::avx2_kernels_f32() {
        arms.push(("avx2", t));
    }
    if let Some(t) = simd::avx512_kernels_f32() {
        arms.push(("avx512", t));
    }
    arms
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Transcendental f32 slice kernels agree bit-for-bit across arms
    /// (they inherit the f64 arms' bit-identity through the widen →
    /// f64 kernel → narrow route, with one shared final rounding).
    #[test]
    fn slice_kernels_bit_identical_across_arms(len in 0usize..300, seed in 0u64..10_000, which in 0usize..4) {
        let xs = rand_f32(len, seed, -30.0, 30.0);
        let mut want = xs.clone();
        run_slice_kernel(simd::portable_kernels_f32(), which, &mut want);
        for (name, arm) in vector_arms() {
            let mut got = xs.clone();
            run_slice_kernel(arm, which, &mut got);
            assert_bits_eq32(&got, &want, &format!("{name} {}", KERNEL_NAMES[which]));
        }
    }

    /// f32 reductions (`sum`, `dot`, `relu_dot`) and `axpy` agree
    /// bit-for-bit across arms, including scalar tails.
    #[test]
    fn reduction_kernels_bit_identical_across_arms(len in 0usize..300, seed in 0u64..10_000) {
        let xs = rand_f32(len, seed, -100.0, 100.0);
        let ys = rand_f32(len, seed ^ 0x9, -100.0, 100.0);
        let alpha = 1.5f32;
        let port = simd::portable_kernels_f32();
        for (name, arm) in vector_arms() {
            prop_assert_eq!((arm.sum)(&xs).to_bits(), (port.sum)(&xs).to_bits(), "{} sum", name);
            prop_assert_eq!((arm.dot)(&xs, &ys).to_bits(), (port.dot)(&xs, &ys).to_bits(), "{} dot", name);
            prop_assert_eq!(
                (arm.relu_dot)(&xs, &ys).to_bits(),
                (port.relu_dot)(&xs, &ys).to_bits(),
                "{} relu_dot", name
            );
            let mut ya = ys.clone();
            let mut yp = ys.clone();
            (arm.axpy)(&mut ya, alpha, &xs);
            (port.axpy)(&mut yp, alpha, &xs);
            assert_bits_eq32(&ya, &yp, "axpy");
        }
    }

    /// f32 `dot` tracks the f64-accumulated reference within the
    /// documented `2k²·ε₃₂` bound (operands in [-1, 1]).
    #[test]
    fn dot_tracks_f64_reference(len in 0usize..600, seed in 0u64..10_000) {
        let xs = rand_f32(len, seed, -1.0, 1.0);
        let ys = rand_f32(len, seed ^ 0x7, -1.0, 1.0);
        let want: f64 = xs.iter().zip(&ys).map(|(&a, &b)| a as f64 * b as f64).sum();
        let got = (simd::kernels_f32().dot)(&xs, &ys);
        let kf = len.max(1) as f64;
        prop_assert!((got - want).abs() <= (2.0 * kf * kf * f32::EPSILON as f64).max(1e-6));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The f32 `sample_step_cols` arms agree bit-for-bit on both the
    /// logits *and* the updated activation panel, across non-multiple
    /// `h`/`b`, first-bit (`w_prev = None`) and masked-update cases —
    /// and the logits track an f64 row-path reference within the
    /// `O(h·ε₃₂)` bound.
    #[test]
    fn sample_step_cols_bit_identical_across_arms(h in 0usize..133, b in 0usize..40, seed in 0u64..10_000, first_bit in 0u64..2) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF32);
        let zt: Vec<f32> = (0..h * b).map(|_| rng.gen_range(-3.0..3.0) as f32).collect();
        let w_prev: Vec<f32> = (0..h).map(|_| rng.gen_range(-2.0..2.0) as f32).collect();
        let w_out: Vec<f32> = (0..h).map(|_| rng.gen_range(-2.0..2.0) as f32).collect();
        let mask: Vec<f32> = (0..b).map(|_| if rng.gen::<f64>() < 0.5 { 1.0 } else { 0.0 }).collect();
        let bias = rng.gen_range(-2.0..2.0f64);
        let wp = (first_bit == 0).then_some(&w_prev[..]);

        let mut scratch = vec![0.0f32; 10 * b];
        let mut zt_p = zt.clone();
        let mut logits_p = vec![0.0f64; b];
        (simd::portable_kernels_f32().sample_step_cols)(
            &mut zt_p, b, wp, &mask, &w_out, bias, &mut scratch, &mut logits_p,
        );

        // f64 row-path reference bound: logits within O(h·ε₃₂) of the
        // exact (widened) computation.
        for r in 0..b {
            let mut want = bias;
            for j in 0..h {
                let mut z = zt[j * b + r] as f64;
                if let Some(w) = wp {
                    if mask[r] > 0.5 {
                        z += w[j] as f64;
                    }
                }
                want += w_out[j] as f64 * z.max(0.0);
            }
            let bound = (32.0 * h.max(1) as f64 * f32::EPSILON as f64).max(1e-5);
            prop_assert!(
                (logits_p[r] - want).abs() <= bound,
                "row {r}: {} vs {} (bound {bound})", logits_p[r], want
            );
        }

        for (name, arm) in vector_arms() {
            let mut zt_v = zt.clone();
            let mut logits_v = vec![0.0f64; b];
            (arm.sample_step_cols)(&mut zt_v, b, wp, &mask, &w_out, bias, &mut scratch, &mut logits_v);
            assert_bits_eq64(&logits_v, &logits_p, &format!("{name} f32 cols logits"));
            assert_bits_eq32(&zt_v, &zt_p, &format!("{name} f32 cols panel"));
        }
    }

    /// Packed f32 GEMM: driver + microkernel agree bit-for-bit across
    /// arms and track the f64 reference within the dot bound, across
    /// shapes oscillating around the `MR`/`NR`/`KC` boundaries.
    #[test]
    fn packed_gemm_f32_remainder_sweep(mr in 0usize..40, nr in 0usize..40, kr in 0usize..512, seed in 0u64..1000) {
        let near = |tile: usize, raw: usize| match raw % 8 {
            0 => 0,
            1 => 1,
            2 => tile.saturating_sub(1),
            3 => tile,
            4 => tile + 1,
            5 => 2 * tile + 3,
            _ => raw % (2 * tile + 7),
        };
        let (m, n, k) = (near(MR, mr), near(NR, nr), near(KC, kr));
        let a = rand_f32(m * k, seed, -1.0, 1.0);
        let b = rand_f32(n * k, seed ^ 0xAB, -1.0, 1.0);
        let mut c_port = vec![0.0f32; m * n];
        gemm32::gemm_nt_f32_with(m, n, k, &a, &b, &mut c_port, simd::portable_kernels_f32().micro_8x4);
        let want = gemm32::gemm_nt_f32_reference(m, n, k, &a, &b);
        let kf = k.max(1) as f64;
        let bound = (2.0 * kf * kf * f32::EPSILON as f64).max(1e-6);
        for (i, (&cv, &rv)) in c_port.iter().zip(&want).enumerate() {
            prop_assert!((cv as f64 - rv).abs() <= bound, "({m},{n},{k})[{i}]");
        }
        for (name, arm) in vector_arms() {
            let mut c_vec = vec![0.0f32; m * n];
            gemm32::gemm_nt_f32_with(m, n, k, &a, &b, &mut c_vec, arm.micro_8x4);
            assert_bits_eq32(&c_vec, &c_port, &format!("{name} packed f32 nt"));
        }
    }
}

/// Panel shapes straddling the AVX-512 kernel's 64 KiB register/
/// hidden-major traversal split (`h·b·4` bytes), plus tail-row and
/// sub-block widths the proptest's small shapes may miss: every vector
/// arm must stay bit-identical to the portable kernel on **both**
/// traversals.
#[test]
fn sample_step_cols_traversal_split_bit_identical() {
    // (h, b): register path (≤ 64 KiB), exactly at the boundary, just
    // above it (hidden-major), deep hidden-major, and tail rows b%16≠0.
    let shapes = [
        (256usize, 16usize),
        (1024, 16),
        (1000, 16),
        (1024, 17),
        (512, 32),
        (2048, 16),
        (2048, 40),
        (256, 7),
        (4096, 8),
    ];
    for (h, b) in shapes {
        for first_bit in [true, false] {
            let mut rng = StdRng::seed_from_u64((h * 31 + b) as u64);
            let zt: Vec<f32> = (0..h * b).map(|_| rng.gen_range(-3.0..3.0) as f32).collect();
            let w_prev: Vec<f32> = (0..h).map(|_| rng.gen_range(-2.0..2.0) as f32).collect();
            let w_out: Vec<f32> = (0..h).map(|_| rng.gen_range(-2.0..2.0) as f32).collect();
            let mask: Vec<f32> = (0..b)
                .map(|_| if rng.gen::<f64>() < 0.5 { 1.0 } else { 0.0 })
                .collect();
            let bias = rng.gen_range(-2.0..2.0f64);
            let wp = (!first_bit).then_some(&w_prev[..]);

            let mut scratch = vec![0.0f32; 10 * b];
            let mut zt_p = zt.clone();
            let mut logits_p = vec![0.0f64; b];
            (simd::portable_kernels_f32().sample_step_cols)(
                &mut zt_p, b, wp, &mask, &w_out, bias, &mut scratch, &mut logits_p,
            );
            for (name, arm) in vector_arms() {
                let mut zt_v = zt.clone();
                let mut logits_v = vec![0.0f64; b];
                (arm.sample_step_cols)(
                    &mut zt_v, b, wp, &mask, &w_out, bias, &mut scratch, &mut logits_v,
                );
                assert_bits_eq64(&logits_v, &logits_p, &format!("{name} h={h} b={b} logits"));
                assert_bits_eq32(&zt_v, &zt_p, &format!("{name} h={h} b={b} panel"));
            }
        }
    }
}

/// The production f32 dispatch only ever returns a published table and
/// honours the same `VQMC_SIMD`/`force-scalar` overrides as the f64
/// dispatch.
#[test]
fn dispatch_returns_a_published_table() {
    let k = simd::kernels_f32();
    let is_portable = std::ptr::eq(k, simd::portable_kernels_f32());
    let is_avx = simd::avx2_kernels_f32()
        .map(|a| std::ptr::eq(k, a))
        .unwrap_or(false);
    let is_avx512 = simd::avx512_kernels_f32()
        .map(|a| std::ptr::eq(k, a))
        .unwrap_or(false);
    assert!(is_portable || is_avx || is_avx512);
    if cfg!(feature = "force-scalar") {
        assert!(is_portable);
    }
    // The f32 arm resolves to the same backend tier as the f64 arm.
    assert_eq!(k.backend, simd::backend());
}
