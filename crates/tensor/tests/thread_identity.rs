//! Cross-thread-count bit-identity: every pool-parallel kernel must
//! produce the same bits at `VQMC_THREADS ∈ {1, 2, 4, 8}`.
//!
//! This is the integration-level enforcement of the determinism
//! contract in `third_party/README.md`: static stripe partition, fixed
//! reduction trees, partition-safe kernels only.  The per-module unit
//! tests cover each kernel in isolation; this suite drives the public
//! entry points exactly as the training loop does, on shapes big enough
//! to clear every parallel gate (`PAR_THRESHOLD_ELEMS`,
//! `PAR_GEMM_MIN_FLOPS`), and compares against the 1-thread run
//! bit-for-bit.

use vqmc_tensor::{gemm, ops, par, reduce, vector, Matrix, Vector};

/// Deterministic ill-conditioned filler: mixed signs and magnitudes so
/// any change of summation association flips low (often high) bits.
fn filler(i: usize) -> f64 {
    let x = ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
    let mag = 10f64.powi((i % 13) as i32 - 6);
    x * mag
}

fn mat(r: usize, c: usize, salt: usize) -> Matrix {
    Matrix::from_fn(r, c, |i, j| filler(i * c + j + salt))
}

fn vec_of(n: usize, salt: usize) -> Vector {
    Vector::from_fn(n, |i| filler(i + salt))
}

const THREADS: [usize; 3] = [2, 4, 8];

/// Big enough that `m·n·k` clears `PAR_GEMM_MIN_FLOPS` (1 Mi) and the
/// row-slab count exceeds any tested worker count.
#[test]
fn gemm_variants_bit_identical_across_thread_counts() {
    let a = mat(192, 160, 1);
    let b_nt = mat(144, 160, 2); // b is 144×160, nt computes a·bᵀ
    let b_nn = mat(160, 144, 3);
    let a_tn = mat(160, 192, 4); // tn computes aᵀ·b_nn

    let run = || {
        let mut c_nt = Matrix::zeros(192, 144);
        let mut c_nn = Matrix::zeros(192, 144);
        let mut c_tn = Matrix::zeros(192, 144);
        gemm::gemm_nt_into(&a, &b_nt, &mut c_nt);
        gemm::gemm_nn_into(&a, &b_nn, &mut c_nn);
        gemm::gemm_tn_into(&a_tn, &b_nn, &mut c_tn);
        (c_nt, c_nn, c_tn)
    };

    let seq = par::with_threads(1, run);
    for threads in THREADS {
        let par_res = par::with_threads(threads, run);
        assert_eq!(par_res.0, seq.0, "gemm_nt at {threads} threads");
        assert_eq!(par_res.1, seq.1, "gemm_nn at {threads} threads");
        assert_eq!(par_res.2, seq.2, "gemm_tn at {threads} threads");
    }
}

/// Slice transcendental kernels (the `ops` entry points ride
/// `par_apply`): element-wise, so bit-identity just needs the stripe
/// partition not to change which kernel arm handles an element.
#[test]
fn slice_ops_bit_identical_across_thread_counts() {
    let n = 200_000; // clears PAR_THRESHOLD_ELEMS (32 Ki)
    let run = |f: fn(&mut [f64])| {
        move || {
            let mut xs: Vec<f64> = (0..n).map(|i| filler(i) % 30.0).collect();
            f(&mut xs);
            xs
        }
    };
    let fns: [(&str, fn(&mut [f64])); 3] = [
        ("exp_slice", ops::exp_slice),
        ("sigmoid_slice", ops::sigmoid_slice),
        ("log_sigmoid_slice", ops::log_sigmoid_slice),
    ];
    for (name, f) in fns {
        let seq = par::with_threads(1, run(f));
        for threads in THREADS {
            let par_res = par::with_threads(threads, run(f));
            assert!(
                par_res
                    .iter()
                    .zip(&seq)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{name} differs at {threads} threads"
            );
        }
    }
}

/// Reductions replay a fixed pairwise tree at every thread count.
#[test]
fn reductions_bit_identical_across_thread_counts() {
    let xs = vec_of(150_000, 7);
    let run = || {
        (
            reduce::sum(xs.as_slice()),
            reduce::variance(xs.as_slice()),
            reduce::log_sum_exp(xs.as_slice()),
        )
    };
    let seq = par::with_threads(1, run);
    for threads in THREADS {
        let par_res = par::with_threads(threads, run);
        assert_eq!(par_res.0.to_bits(), seq.0.to_bits(), "sum at {threads}");
        assert_eq!(
            par_res.1.to_bits(),
            seq.1.to_bits(),
            "variance at {threads}"
        );
        assert_eq!(
            par_res.2.to_bits(),
            seq.2.to_bits(),
            "log_sum_exp at {threads}"
        );
    }
}

/// Striped vector updates (`axpy`, `xpby`, `scale`): per-element, fixed
/// partition.
#[test]
fn vector_updates_bit_identical_across_thread_counts() {
    let n = 120_000;
    let x = vec_of(n, 11);
    let run = || {
        let mut y = vec_of(n, 13);
        vector::axpy(y.as_mut_slice(), 0.37, x.as_slice());
        vector::xpby(y.as_mut_slice(), x.as_slice(), -1.25);
        y.scale(1.0 / 3.0);
        y
    };
    let seq = par::with_threads(1, run);
    for threads in THREADS {
        let par_res = par::with_threads(threads, run);
        assert!(
            par_res
                .as_slice()
                .iter()
                .zip(seq.as_slice())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "vector updates differ at {threads} threads"
        );
    }
}
