//! Property tests for the runtime-dispatched SIMD backend.
//!
//! Three invariant classes:
//!
//! 1. **AVX2 arm ↔ portable arm** — the vector kernels and their scalar
//!    twins are written operation-for-operation identically (same FMA
//!    placement, same lane-striped accumulator layout, same horizontal
//!    reduction order), so they must agree **bit-for-bit** on every
//!    input, including non-lane-multiple lengths, the scalar tail, and
//!    exceptional lanes (saturated, infinite, NaN).  This is stronger
//!    than the ≤ 2 ULP contract the module documents.
//! 2. **Packed GEMM remainder sweep** — the packed driver run with the
//!    AVX2 8×4 microkernel equals the same driver run with the portable
//!    twin bit-for-bit, and both match the naive triple loop to a
//!    length-scaled tolerance, across shapes oscillating around every
//!    blocking boundary (`MR_SIMD`/`NR_SIMD`/`KC` and the `MC` /
//!    `NC_PACKED` outer blocks).
//! 3. **Vendored `exp` accuracy** — ≤ 2 ULP against `f64::exp` over the
//!    full finite range, including the overflow edge, the subnormal
//!    regime, and the underflow edge.
//!
//! The cross-arm tests are skipped (they degenerate to trivially-true)
//! when the host lacks AVX2+FMA or the `force-scalar` feature compiled
//! the vector arm out — `simd::avx2_kernels()` returns `None` there.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vqmc_tensor::gemm::{self, gemm_reference, KC, MR_SIMD, NR_SIMD};
use vqmc_tensor::simd::{self, Kernels};
use vqmc_tensor::Matrix;

/// Ordered-bits ULP distance (`0` for bitwise-equal or both-NaN).
fn ulp_diff(a: f64, b: f64) -> u64 {
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return if a.is_nan() && b.is_nan() { 0 } else { u64::MAX };
    }
    let to_ordered = |x: f64| {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            i64::MIN.wrapping_sub(bits) as u64
        } else {
            (bits as u64).wrapping_add(1 << 63)
        }
    };
    to_ordered(a).abs_diff(to_ordered(b))
}

/// An input slice mixing the moderate range the kernels are tuned for
/// with values that exercise every exceptional path: saturation bounds,
/// overflow/underflow edges, infinities, zeros and NaN — scattered at
/// random positions so they land in vector lanes *and* scalar tails.
fn adversarial_input(len: usize, seed: u64) -> Vec<f64> {
    const SPECIALS: &[f64] = &[
        0.0,
        -0.0,
        1e-300,
        -1e-300,
        353.9,
        -353.9,
        354.1,
        -354.1,
        707.9,
        -707.9,
        708.1,
        -708.1,
        709.9,
        -745.2,
        1e4,
        -1e4,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::NAN,
    ];
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| match rng.gen_range(0..4u32) {
            0 => SPECIALS[rng.gen_range(0..SPECIALS.len())],
            1 => rng.gen_range(-700.0..700.0),
            _ => rng.gen_range(-8.0..8.0),
        })
        .collect()
}

/// Asserts two slices are bitwise identical (NaN ≡ NaN).
fn assert_bits_eq(got: &[f64], want: &[f64], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits() || (g.is_nan() && w.is_nan()),
            "{label}[{i}]: {g:?} ({:#x}) != {w:?} ({:#x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

fn run_slice_kernel(k: &Kernels, which: usize, xs: &mut [f64]) {
    match which {
        0 => (k.sigmoid_slice)(xs),
        1 => (k.log_sigmoid_slice)(xs),
        2 => (k.ln_cosh_slice)(xs),
        3 => (k.tanh_slice)(xs),
        _ => (k.exp_slice)(xs),
    }
}

const KERNEL_NAMES: [&str; 5] = ["sigmoid", "log_sigmoid", "ln_cosh", "tanh", "exp"];

/// Uniform(-1, 1) matrix from a seed.
fn rand_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

/// Shape oscillating around a tile/block boundary (see
/// `kernel_proptests::near`).
fn near(tile: usize, raw: usize) -> usize {
    match raw % 8 {
        0 => 0,
        1 => 1,
        2 => tile.saturating_sub(1),
        3 => tile,
        4 => tile + 1,
        5 => 2 * tile + 3,
        _ => raw % (2 * tile + 7),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every transcendental slice kernel agrees bit-for-bit between the
    /// AVX2 arm and the portable arm, across lengths that are not lane
    /// multiples and inputs hitting every exceptional path.
    #[test]
    fn slice_kernels_bit_identical_across_arms(len in 0usize..130, seed in 0u64..10_000, which in 0usize..5) {
        if let Some(avx) = simd::avx2_kernels() {
            let xs = adversarial_input(len, seed);
            let mut v = xs.clone();
            let mut s = xs;
            run_slice_kernel(avx, which, &mut v);
            run_slice_kernel(simd::portable_kernels(), which, &mut s);
            assert_bits_eq(&v, &s, KERNEL_NAMES[which]);
        }
    }

    /// The reduction kernels (`sum`, `sq_dev_sum`, `sum_exp_shifted`,
    /// `dot`, `relu_dot`) agree bit-for-bit across arms — this is what
    /// makes `reduce::sum`/`variance`/`log_sum_exp` backend-independent.
    #[test]
    fn reduction_kernels_bit_identical_across_arms(len in 0usize..130, seed in 0u64..10_000) {
        if let Some(avx) = simd::avx2_kernels() {
            let port = simd::portable_kernels();
            let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
            let xs: Vec<f64> = (0..len).map(|_| rng.gen_range(-1e3..1e3)).collect();
            let ys: Vec<f64> = (0..len).map(|_| rng.gen_range(-1e3..1e3)).collect();
            let m = rng.gen_range(-10.0..10.0);

            prop_assert_eq!((avx.sum)(&xs).to_bits(), (port.sum)(&xs).to_bits());
            prop_assert_eq!((avx.sq_dev_sum)(&xs, m).to_bits(), (port.sq_dev_sum)(&xs, m).to_bits());
            prop_assert_eq!((avx.dot)(&xs, &ys).to_bits(), (port.dot)(&xs, &ys).to_bits());
            prop_assert_eq!((avx.relu_dot)(&xs, &ys).to_bits(), (port.relu_dot)(&xs, &ys).to_bits());
            // Shifted exp sum: shift near max keeps arguments ≤ 0.
            let shift = xs.iter().cloned().fold(0.0, f64::max);
            prop_assert_eq!(
                (avx.sum_exp_shifted)(&xs, shift).to_bits(),
                (port.sum_exp_shifted)(&xs, shift).to_bits()
            );

            let mut ya = ys.clone();
            let mut yp = ys.clone();
            (avx.axpy)(&mut ya, m, &xs);
            (port.axpy)(&mut yp, m, &xs);
            assert_bits_eq(&ya, &yp, "axpy");
            let mut ya = ys.clone();
            let mut yp = ys;
            (avx.xpby)(&mut ya, m, &xs);
            (port.xpby)(&mut yp, m, &xs);
            assert_bits_eq(&ya, &yp, "xpby");
        }
    }

    /// The packed GEMM driver is microkernel-agnostic: the AVX2 8×4
    /// kernel and its portable twin produce bit-identical C across
    /// shapes oscillating around the `MR_SIMD`/`NR_SIMD`/`KC`
    /// boundaries, and both match the naive reference.
    #[test]
    fn packed_gemm_remainder_sweep(mr in 0usize..64, nr in 0usize..64, kr in 0usize..512, seed in 0u64..1000) {
        let (m, n, k) = (near(MR_SIMD, mr), near(NR_SIMD, nr), near(KC, kr));
        let a = rand_matrix(m, k, seed);
        let b = rand_matrix(n, k, seed ^ 0xAB);
        let mut c_port = Matrix::zeros(0, 0);
        gemm::gemm_nt_packed_with(&a, &b, &mut c_port, simd::portable_kernels().micro_8x4);
        let want = gemm_reference(&a, &b.transpose());
        let tol = 1e-12 * (1.0 + k as f64);
        prop_assert!(c_port.max_abs_diff(&want) <= tol, "portable micro vs reference");
        if let Some(avx) = simd::avx2_kernels() {
            let mut c_avx = Matrix::zeros(0, 0);
            gemm::gemm_nt_packed_with(&a, &b, &mut c_avx, avx.micro_8x4);
            assert_bits_eq(c_avx.as_slice(), c_port.as_slice(), "packed nt micro");
        }
    }

    /// Same sweep for the `nn` and `tn` packing variants (column
    /// gather paths).
    #[test]
    fn packed_gemm_variants_remainder_sweep(mr in 0usize..64, nr in 0usize..64, k in 0usize..40, seed in 0u64..1000) {
        let (m, n) = (near(MR_SIMD, mr), near(NR_SIMD, nr));
        let a_nn = rand_matrix(m, k, seed);
        let b_nn = rand_matrix(k, n, seed ^ 0x11);
        let a_tn = rand_matrix(k, m, seed ^ 0x12);
        let tol = 1e-12 * (1.0 + k as f64);

        let port = simd::portable_kernels().micro_8x4;
        let mut c_port = Matrix::zeros(0, 0);
        gemm::gemm_nn_packed_with(&a_nn, &b_nn, &mut c_port, port);
        prop_assert!(c_port.max_abs_diff(&gemm_reference(&a_nn, &b_nn)) <= tol, "packed nn");
        if let Some(avx) = simd::avx2_kernels() {
            let mut c_avx = Matrix::zeros(0, 0);
            gemm::gemm_nn_packed_with(&a_nn, &b_nn, &mut c_avx, avx.micro_8x4);
            assert_bits_eq(c_avx.as_slice(), c_port.as_slice(), "packed nn micro");
        }

        let mut c_port = Matrix::zeros(0, 0);
        gemm::gemm_tn_packed_with(&a_tn, &b_nn, &mut c_port, port);
        prop_assert!(c_port.max_abs_diff(&gemm_reference(&a_tn.transpose(), &b_nn)) <= tol, "packed tn");
        if let Some(avx) = simd::avx2_kernels() {
            let mut c_avx = Matrix::zeros(0, 0);
            gemm::gemm_tn_packed_with(&a_tn, &b_nn, &mut c_avx, avx.micro_8x4);
            assert_bits_eq(c_avx.as_slice(), c_port.as_slice(), "packed tn micro");
        }
    }
}

/// Deterministic crossings of the *outer* cache blocks (`MC` = 256
/// output rows, `NC_PACKED` = 2048 output columns), too large for the
/// randomized sweep.
#[test]
fn packed_gemm_crosses_outer_blocks() {
    for &(m, n, k) in &[(259usize, 7usize, 301usize), (9, 2051, 5)] {
        let a = rand_matrix(m, k, 42);
        let b = rand_matrix(n, k, 43);
        let mut c = Matrix::zeros(0, 0);
        gemm::gemm_nt_packed_with(&a, &b, &mut c, simd::portable_kernels().micro_8x4);
        let want = gemm_reference(&a, &b.transpose());
        let tol = 1e-12 * (1.0 + k as f64);
        assert!(
            c.max_abs_diff(&want) <= tol,
            "({m},{n},{k}): {:e}",
            c.max_abs_diff(&want)
        );
        if let Some(avx) = simd::avx2_kernels() {
            let mut c_avx = Matrix::zeros(0, 0);
            gemm::gemm_nt_packed_with(&a, &b, &mut c_avx, avx.micro_8x4);
            assert_bits_eq(c_avx.as_slice(), c.as_slice(), "outer-block micro");
        }
    }
}

/// Vendored `exp` stays within 2 ULP of `f64::exp` across the full
/// finite range: dense near zero, log-spaced across the normal range,
/// through the subnormal-result regime and both saturation edges.
#[test]
fn vendored_exp_full_range_ulp() {
    let mut worst = (0u64, 0.0f64);
    let mut check = |x: f64| {
        let d = ulp_diff(simd::exp::exp(x), x.exp());
        if d > worst.0 {
            worst = (d, x);
        }
    };
    // Dense near zero (reduction r ≈ x, n = 0 path).
    let mut x = -1.0;
    while x <= 1.0 {
        check(x);
        x += 1e-3;
    }
    // Whole normal range.
    let mut x = -709.0;
    while x <= 709.0 {
        check(x);
        check(x + 0.343);
        x += 0.761;
    }
    // Subnormal results: exp(x) < 2^-1022 for x < -708.39.
    let mut x = -745.13;
    while x <= -708.0 {
        check(x);
        x += 0.0137;
    }
    // Saturation edges.
    for &x in &[
        709.782712893384,
        709.7827128933841,
        -745.1332191019412,
        -745.133219101941,
        f64::MIN_POSITIVE,
        -f64::MIN_POSITIVE,
        5e-324,
        -5e-324,
    ] {
        check(x);
    }
    assert!(
        worst.0 <= 2,
        "max ulp {} at x = {:?}",
        worst.0,
        worst.1
    );
    // Non-finite edges are exact.
    assert_eq!(simd::exp::exp(f64::INFINITY), f64::INFINITY);
    assert_eq!(simd::exp::exp(f64::NEG_INFINITY), 0.0);
    assert!(simd::exp::exp(f64::NAN).is_nan());
}

/// The production dispatch only ever returns one of the two published
/// tables, and honours the `VQMC_SIMD=off`/`force-scalar` overrides.
#[test]
fn dispatch_returns_a_published_table() {
    let k = simd::kernels();
    let is_portable = std::ptr::eq(k, simd::portable_kernels());
    let is_avx = simd::avx2_kernels().map(|a| std::ptr::eq(k, a)).unwrap_or(false);
    let is_avx512 = simd::avx512_kernels()
        .map(|a| std::ptr::eq(k, a))
        .unwrap_or(false);
    assert!(
        is_portable || is_avx || is_avx512,
        "kernels() returned an unknown table"
    );
    if cfg!(feature = "force-scalar") {
        assert!(is_portable, "force-scalar must pin the portable arm");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `sample_step_cols` — the fused batched AUTO bit step — is
    /// bit-identical per row to the unfused row path (`axpy` of the
    /// previous W₁ column, then `relu_dot`), and the two arms agree
    /// bit-for-bit with each other, across non-multiple `h`/`b`,
    /// first-bit (`w_prev = None`) and masked-update cases.
    #[test]
    fn sample_step_cols_matches_row_path(h in 0usize..133, b in 0usize..19, seed in 0u64..10_000, first_bit in 0u64..2) {
        let port = simd::portable_kernels();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC015);
        let zt: Vec<f64> = (0..h * b).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let w_prev: Vec<f64> = (0..h).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let w_out: Vec<f64> = (0..h).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mask: Vec<f64> = (0..b).map(|_| if rng.gen::<f64>() < 0.5 { 1.0 } else { 0.0 }).collect();
        let bias = rng.gen_range(-2.0..2.0);
        let first_bit = first_bit == 1;
        let wp = (!first_bit).then_some(&w_prev[..]);

        // Reference: per-row gather → axpy → relu_dot.
        let mut want_logits = vec![0.0f64; b];
        let mut want_zt = zt.clone();
        for r in 0..b {
            let mut row: Vec<f64> = (0..h).map(|j| zt[j * b + r]).collect();
            if !first_bit && mask[r] > 0.5 {
                (port.axpy)(&mut row, 1.0, &w_prev);
            }
            want_logits[r] = bias + (port.relu_dot)(&w_out, &row);
            for j in 0..h {
                want_zt[j * b + r] = row[j];
            }
        }

        let mut scratch = vec![0.0f64; 6 * b];
        let mut zt_p = zt.clone();
        let mut logits_p = vec![0.0f64; b];
        (port.sample_step_cols)(&mut zt_p, b, wp, &mask, &w_out, bias, &mut scratch, &mut logits_p);
        assert_bits_eq(&logits_p, &want_logits, "portable sample_step_cols logits");
        assert_bits_eq(&zt_p, &want_zt, "portable sample_step_cols panel");

        if let Some(avx) = simd::avx2_kernels() {
            let mut zt_v = zt.clone();
            let mut logits_v = vec![0.0f64; b];
            (avx.sample_step_cols)(&mut zt_v, b, wp, &mask, &w_out, bias, &mut scratch, &mut logits_v);
            assert_bits_eq(&logits_v, &logits_p, "avx2 sample_step_cols logits");
            assert_bits_eq(&zt_v, &zt_p, "avx2 sample_step_cols panel");
        }

        if let Some(k512) = simd::avx512_kernels() {
            let mut zt_v = zt.clone();
            let mut logits_v = vec![0.0f64; b];
            (k512.sample_step_cols)(&mut zt_v, b, wp, &mask, &w_out, bias, &mut scratch, &mut logits_v);
            assert_bits_eq(&logits_v, &logits_p, "avx512 sample_step_cols logits");
            assert_bits_eq(&zt_v, &zt_p, "avx512 sample_step_cols panel");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same cross-arm identity, but on panels past the 256 KiB
    /// traversal switch: the SIMD arms take their hidden-major path
    /// (stripe accumulators in scratch instead of registers) for these
    /// shapes, and must still match the portable arm bit-for-bit.
    #[test]
    fn sample_step_cols_large_panel_matches_portable(
        h in 48usize..100,
        b in 768usize..1100,
        seed in 0u64..10_000,
        first_bit in 0u64..2,
    ) {
        // Smallest shape is 48·768·8 = 294912 bytes — always past the
        // 256 KiB traversal switch.
        let port = simd::portable_kernels();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB16);
        let zt: Vec<f64> = (0..h * b).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let w_prev: Vec<f64> = (0..h).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let w_out: Vec<f64> = (0..h).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let mask: Vec<f64> = (0..b).map(|_| if rng.gen::<f64>() < 0.5 { 1.0 } else { 0.0 }).collect();
        let bias = rng.gen_range(-2.0..2.0);
        let wp = (first_bit == 0).then_some(&w_prev[..]);

        let mut scratch = vec![0.0f64; 6 * b];
        let mut zt_p = zt.clone();
        let mut logits_p = vec![0.0f64; b];
        (port.sample_step_cols)(&mut zt_p, b, wp, &mask, &w_out, bias, &mut scratch, &mut logits_p);

        if let Some(avx) = simd::avx2_kernels() {
            let mut zt_v = zt.clone();
            let mut logits_v = vec![0.0f64; b];
            (avx.sample_step_cols)(&mut zt_v, b, wp, &mask, &w_out, bias, &mut scratch, &mut logits_v);
            assert_bits_eq(&logits_v, &logits_p, "avx2 hidden-major logits");
            assert_bits_eq(&zt_v, &zt_p, "avx2 hidden-major panel");
        }

        if let Some(k512) = simd::avx512_kernels() {
            let mut zt_v = zt.clone();
            let mut logits_v = vec![0.0f64; b];
            (k512.sample_step_cols)(&mut zt_v, b, wp, &mask, &w_out, bias, &mut scratch, &mut logits_v);
            assert_bits_eq(&logits_v, &logits_p, "avx512 hidden-major logits");
            assert_bits_eq(&zt_v, &zt_p, "avx512 hidden-major panel");
        }
    }
}
