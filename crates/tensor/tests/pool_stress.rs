//! Pool saturation: many OS threads hammer the shared worker pool
//! concurrently, each repeatedly dispatching parallel work and checking
//! its result against a sequential twin computed up front.
//!
//! The pool serialises client regions behind a mutex, so concurrent
//! callers contend hard on dispatch — this is a torture test for the
//! epoch/condvar handshake (lost wakeups, stale jobs, cross-client
//! leakage), not a throughput benchmark.  Results must stay
//! bit-identical under contention: a worker running another client's
//! closure or a caller returning before its workers finish would show
//! up as corrupted sums or torn slices.
//!
//! Debug builds skip it (`--release` only): the value is in iteration
//! count, and unoptimised kernels would turn it into a minutes-long
//! test for no extra coverage.

use std::sync::atomic::{AtomicUsize, Ordering};

use vqmc_tensor::{gemm, ops, par, reduce, Matrix};

fn filler(i: usize) -> f64 {
    let x = ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5;
    x * 10f64.powi((i % 9) as i32 - 4)
}

#[test]
#[cfg_attr(debug_assertions, ignore = "saturation test is release-only")]
fn concurrent_callers_saturating_the_pool_stay_bit_identical() {
    const CALLERS: usize = 8;
    const ITERS: usize = 100;

    // Sequential twins, computed once before any contention.
    let xs: Vec<f64> = (0..100_000).map(filler).collect();
    let expected_sum = par::with_threads(1, || reduce::sum(&xs));
    let expected_exp = par::with_threads(1, || {
        let mut v: Vec<f64> = xs.iter().map(|x| x % 20.0).collect();
        ops::exp_slice(&mut v);
        v
    });
    let a = Matrix::from_fn(96, 128, |i, j| filler(i * 128 + j));
    let b = Matrix::from_fn(112, 128, |i, j| filler(i * 131 + j + 7));
    let expected_c = par::with_threads(1, || {
        let mut c = Matrix::zeros(96, 112);
        gemm::gemm_nt_into(&a, &b, &mut c);
        c
    });

    let failures = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for t in 0..CALLERS {
            let xs = &xs;
            let a = &a;
            let b = &b;
            let expected_exp = &expected_exp;
            let expected_c = &expected_c;
            let failures = &failures;
            scope.spawn(move || {
                for it in 0..ITERS {
                    // Vary the requested width per iteration so clients
                    // with different `parts` interleave on the same pool.
                    let threads = 1 + (t + it) % 8;
                    let ok = par::with_threads(threads, || {
                        let s = reduce::sum(xs);
                        if s.to_bits() != expected_sum.to_bits() {
                            return false;
                        }
                        let mut v: Vec<f64> = xs.iter().map(|x| x % 20.0).collect();
                        ops::exp_slice(&mut v);
                        if !v
                            .iter()
                            .zip(expected_exp)
                            .all(|(p, q)| p.to_bits() == q.to_bits())
                        {
                            return false;
                        }
                        let mut c = Matrix::zeros(96, 112);
                        gemm::gemm_nt_into(a, b, &mut c);
                        c == *expected_c
                    });
                    if !ok {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(
        failures.load(Ordering::Relaxed),
        0,
        "pool produced non-identical results under saturation"
    );
}
